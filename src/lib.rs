//! # stateless-computation
//!
//! Umbrella crate for the Rust reproduction of **"Stateless Computation"**
//! (Dolev, Erdmann, Lutz, Schapira, Zair — PODC 2017). It re-exports every
//! sub-crate of the workspace under one roof so that examples, integration
//! tests, and downstream users need a single dependency.
//!
//! * [`core`] — the model: graphs, labels, reactions, protocols, schedules,
//!   simulation engine ([`stateless_core`]).
//! * [`verify`] — exact r-stabilization model checking
//!   ([`stabilization_verify`]).
//! * [`circuits`] — Boolean circuits, the P/poly substrate
//!   ([`boolean_circuit`]).
//! * [`branching`] — branching programs, the L/poly substrate
//!   ([`branching_program`]).
//! * [`turing`] — space-bounded Turing machines with advice
//!   ([`turing_machine`]).
//! * [`hypercube`] — snake-in-the-box constructions ([`hypercube_snake`]).
//! * [`comm`] — fooling sets and counting bounds ([`comm_complexity`]).
//! * [`protocols`] — every construction from the paper
//!   ([`stateless_protocols`]).
//! * [`games`] — best-response dynamics, BGP, contagion ([`best_response`]).
//!
//! ## Example
//!
//! ```
//! use stateless_computation::core::prelude::*;
//!
//! let graph = topology::unidirectional_ring(4);
//! let p = Protocol::builder(graph, 8.0)
//!     .uniform_reaction(FnReaction::new(|_, incoming: &[u64], input| {
//!         let m = incoming[0].max(input);
//!         (vec![m], m)
//!     }))
//!     .build()?;
//! let mut sim = Simulation::new(&p, &[3, 1, 4, 1], vec![0; 4])?;
//! sim.run_until_label_stable(&mut Synchronous, 100)?;
//! assert_eq!(sim.outputs(), &[4, 4, 4, 4]);
//! # Ok::<(), stateless_computation::core::CoreError>(())
//! ```

#![forbid(unsafe_code)]

pub use best_response as games;
pub use boolean_circuit as circuits;
pub use branching_program as branching;
pub use comm_complexity as comm;
pub use hypercube_snake as hypercube;
pub use stabilization_verify as verify;
pub use stateless_core as core;
pub use stateless_protocols as protocols;
pub use turing_machine as turing;
