//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the workspace vendors a
//! miniature property-testing harness covering the subset of proptest the
//! integration tests use: the `proptest!` macro with `name in strategy`
//! bindings over integer-range strategies, `prop_assert!` /
//! `prop_assert_eq!`, and `ProptestConfig::with_cases`.
//!
//! Each generated test runs its body over `cases` pseudo-random inputs
//! drawn from a deterministic per-test seed (FNV-1a of the test's module
//! path and name), so failures are reproducible across runs. Shrinking is
//! not implemented — the failing input values are reported via the panic
//! message instead.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

#[doc(hidden)]
pub use rand;

use rand::rngs::StdRng;

/// Harness configuration; only the case count is supported.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// A source of random test inputs.
pub trait Strategy {
    /// The produced value type.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                use rand::RngExt;
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                use rand::RngExt;
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for bool {
    type Value = bool;
    fn sample(&self, rng: &mut StdRng) -> bool {
        use rand::RngExt;
        // The literal `true`/`false` strategy degenerates to a coin flip
        // when used as `any::<bool>()` is unavailable; constants are rare.
        let _ = self;
        rng.random_bool(0.5)
    }
}

/// Deterministic 64-bit FNV-1a, used to derive per-test seeds.
#[doc(hidden)]
pub fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Declares property tests; see the crate docs for the supported grammar.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let seed = $crate::fnv1a(concat!(module_path!(), "::", stringify!($name)));
                let mut rng = <$crate::rand::rngs::StdRng as $crate::rand::SeedableRng>::seed_from_u64(seed);
                for case in 0..cfg.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                    let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| $body));
                    if let Err(panic) = result {
                        eprintln!(
                            "proptest case {}/{} failed for {} with inputs: {}",
                            case + 1,
                            cfg.cases,
                            stringify!($name),
                            [$(format!(concat!(stringify!($arg), " = {:?}"), &$arg)),*].join(", "),
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}

/// Asserts a property holds (panics with the formatted message otherwise).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts two values are unequal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// The commonly glob-imported surface.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_respect_bounds(a in 3usize..9, b in 0u64..=5) {
            prop_assert!((3..9).contains(&a));
            prop_assert!(b <= 5);
        }

        #[test]
        fn arithmetic_property(x in 0u32..1000, y in 0u32..1000) {
            prop_assert_eq!(x + y, y + x);
            prop_assert_ne!(x + y + 1, x + y);
        }
    }

    #[test]
    fn fnv_is_stable() {
        assert_eq!(crate::fnv1a("abc"), crate::fnv1a("abc"));
        assert_ne!(crate::fnv1a("abc"), crate::fnv1a("abd"));
    }

    #[test]
    fn default_config_has_cases() {
        assert!(ProptestConfig::default().cases > 0);
    }
}
