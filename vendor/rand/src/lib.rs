//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this repository has no network access, so the
//! workspace vendors a minimal, API-compatible subset of `rand` (the parts
//! the code base actually uses): seedable deterministic RNGs, ranged and
//! Bernoulli sampling, and slice choosing. The generator is xoshiro256++
//! seeded through SplitMix64 — high quality for simulation workloads, and
//! fully deterministic given a seed, which is all the experiments and
//! property tests rely on.
//!
//! This is **not** a cryptographic RNG and makes no attempt to match the
//! value streams of the real `rand` crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words. The trait the generic simulation code
/// bounds on (`R: Rng`); sampling helpers live in [`RngExt`].
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (upper half of [`Rng::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Sampling extension methods, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        // 53 uniform mantissa bits: value in [0, 1) with full f64 precision.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// Samples uniformly from `range` (half-open or inclusive integer
    /// ranges).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// A range that can be sampled uniformly; see [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample an empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample an empty range");
                let span = (end as u128) - (start as u128) + 1;
                start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// Seedable RNG constructors.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a deterministic function of
    /// `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// The default generator: xoshiro256++ seeded through SplitMix64.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        // SplitMix64 expansion, the canonical xoshiro seeding procedure.
        let mut sm = state;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++ (Blackman & Vigna).
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    pub use crate::StdRng;
}

/// Random selection from indexable collections.
pub trait IndexedRandom {
    /// Element type.
    type Item;

    /// A uniformly random element, or `None` if the collection is empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> IndexedRandom for [T] {
    type Item = T;

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            let i = (rng.next_u64() % self.len() as u64) as usize;
            self.get(i)
        }
    }
}

/// The commonly glob-imported surface.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{IndexedRandom, Rng, RngExt, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.random_range(0u32..=4);
            assert!(w <= 4);
        }
    }

    #[test]
    fn bool_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            assert!(!rng.random_bool(0.0));
            assert!(rng.random_bool(1.0));
        }
    }

    #[test]
    fn bool_probability_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn choose_covers_slice() {
        let mut rng = StdRng::seed_from_u64(4);
        let xs = [1, 2, 3];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(*xs.choose(&mut rng).unwrap());
        }
        assert_eq!(seen.len(), 3);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
