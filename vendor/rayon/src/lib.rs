//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the small slice of rayon's surface the simulation code needs: scoped
//! threads, a fork-join primitive, and the thread-count query. Everything
//! is backed by `std::thread::scope` — real OS-level parallelism, without
//! rayon's work-stealing pool. The parallel sweep drivers in
//! `stateless-core` chunk their own work, so a pool is unnecessary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use std::thread::{scope, Scope};

/// Number of worker threads a parallel region should use: the machine's
/// available parallelism (1 if it cannot be queried).
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Runs both closures, potentially in parallel, and returns both results.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let b = s.spawn(oper_b);
        let ra = oper_a();
        (ra, b.join().expect("joined closure panicked"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(current_num_threads() >= 1);
    }

    #[test]
    fn scope_spawns_run() {
        let mut results = vec![0u64; 4];
        scope(|s| {
            for (i, slot) in results.iter_mut().enumerate() {
                s.spawn(move || *slot = i as u64 + 1);
            }
        });
        assert_eq!(results, vec![1, 2, 3, 4]);
    }
}
