//! Offline stand-in for the `criterion` benchmarking crate.
//!
//! The build environment has no network access, so the workspace vendors a
//! small, API-compatible benchmarking harness covering the subset of
//! criterion the `benches/` targets use: benchmark groups, per-input
//! benchmarks, throughput annotation, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Methodology: each benchmark is warmed up, then the iteration count is
//! calibrated so one sample takes ≈ `SAMPLE_TARGET`; several samples are
//! collected and the **median** per-iteration time is reported (robust to
//! scheduler noise). Results are printed in a criterion-like one-line
//! format and, when `CRITERION_JSON` is set, appended as JSON lines to the
//! named file so tooling can diff runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Per-sample wall-clock target. Small enough that a full `cargo bench`
/// stays fast, large enough to dominate timer resolution.
const SAMPLE_TARGET: Duration = Duration::from_millis(40);
const DEFAULT_SAMPLES: usize = 12;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifies one benchmark within a group: a function name plus a
/// parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`, criterion's conventional id shape.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The top-level harness handle passed to every benchmark function.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
            samples: DEFAULT_SAMPLES,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_one("", &id.to_string(), None, DEFAULT_SAMPLES, f);
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the element/byte throughput of one iteration (reported as a
    /// rate next to the time).
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets the number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(3);
        self
    }

    /// Benchmarks `f`.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            &self.name,
            &id.to_string(),
            self.throughput,
            self.samples,
            &mut f,
        );
        self
    }

    /// Benchmarks `f` with an input value (criterion's per-input form).
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            &self.name,
            &id.to_string(),
            self.throughput,
            self.samples,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group. (Reports are emitted eagerly; this is for API
    /// compatibility.)
    pub fn finish(self) {}
}

/// Drives the timed iterations of one benchmark.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` over this sample's calibrated iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F>(group: &str, id: &str, throughput: Option<Throughput>, samples: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let full = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    // Warmup + calibration: grow the iteration count until one sample
    // takes at least SAMPLE_TARGET.
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= SAMPLE_TARGET || iters >= 1 << 30 {
            break;
        }
        let per_iter = (b.elapsed.as_nanos() / u128::from(iters)).max(1);
        let want = (SAMPLE_TARGET.as_nanos() * 5 / 4) / per_iter;
        iters = iters
            .max(1)
            .saturating_mul(2)
            .max(want.try_into().unwrap_or(u64::MAX))
            .min(1 << 30);
    }
    // Measurement: median of per-iteration sample means.
    let mut per_iter_ns: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    per_iter_ns.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
    let median = per_iter_ns[per_iter_ns.len() / 2];
    let (lo, hi) = (per_iter_ns[0], per_iter_ns[per_iter_ns.len() - 1]);

    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => {
            format!("  thrpt: {} elem/s", human_rate(n as f64 / (median / 1e9)))
        }
        Throughput::Bytes(n) => format!("  thrpt: {} B/s", human_rate(n as f64 / (median / 1e9))),
    });
    println!(
        "{full:<48} time: [{} {} {}]{}",
        human_time(lo),
        human_time(median),
        human_time(hi),
        rate.as_deref().unwrap_or("")
    );
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        if let Ok(mut file) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            let elems = match throughput {
                Some(Throughput::Elements(n)) => n,
                _ => 0,
            };
            let _ = writeln!(
                file,
                "{{\"bench\":\"{full}\",\"median_ns_per_iter\":{median:.1},\"low_ns\":{lo:.1},\"high_ns\":{hi:.1},\"elements_per_iter\":{elems}}}"
            );
        }
    }
}

fn human_time(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn human_rate(per_s: f64) -> String {
    if per_s >= 1e9 {
        format!("{:.2} G", per_s / 1e9)
    } else if per_s >= 1e6 {
        format!("{:.2} M", per_s / 1e6)
    } else if per_s >= 1e3 {
        format!("{:.2} K", per_s / 1e3)
    } else {
        format!("{per_s:.1} ")
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes harness flags (e.g. `--bench`); none apply here.
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_render_like_criterion() {
        assert_eq!(
            BenchmarkId::new("stabilize", 16).to_string(),
            "stabilize/16"
        );
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }

    #[test]
    fn bencher_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("selftest");
        group.sample_size(3);
        group.throughput(Throughput::Elements(1));
        let mut runs = 0u64;
        group.bench_function("noop", |b| b.iter(|| runs = runs.wrapping_add(1)));
        group.finish();
        assert!(runs > 0);
    }

    #[test]
    fn humanized_units() {
        assert!(human_time(12.3).ends_with("ns"));
        assert!(human_time(12_300.0).ends_with("µs"));
        assert!(human_time(12_300_000.0).ends_with("ms"));
        assert!(human_rate(2.5e7).ends_with('M'));
    }
}
