//! Unit and regression tests for `stateless_core::symmetry`: Booth's
//! minimal-rotation algorithm against brute force, behavioral group
//! derivation on the standard topologies (rotations on the
//! unidirectional ring, the dihedral group on the bidirectional ring,
//! coordinate/bit permutations on the hypercube), orbit-constancy and
//! idempotence of `canonicalize`, fixed-point orbits smaller than the
//! group, and the headline quotient: a node-symmetric protocol on a
//! small bidirectional ring interns ≥ 5× fewer states under
//! `SymmetryMode::Auto` with a bit-identical verdict.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use stateless_computation::core::intern::pack;
use stateless_computation::core::prelude::*;
use stateless_computation::core::symmetry::{
    booth_least_rotation, Automorphism, CanonScratch, PackedLayout, Symmetry,
};
use stateless_computation::verify::{verify_label_stabilization_with_stats, Limits, SymmetryMode};

/// Brute-force reference: compare every rotation, least index wins ties.
fn least_rotation_naive<T: Ord + Clone>(seq: &[T]) -> usize {
    let n = seq.len();
    let rot = |m: usize| -> Vec<T> { (0..n).map(|i| seq[(m + i) % n].clone()).collect::<Vec<_>>() };
    (0..n).min_by_key(|&m| (rot(m), m)).unwrap_or(0)
}

#[test]
fn booth_matches_brute_force_on_random_sequences() {
    let mut rng = StdRng::seed_from_u64(0xB007);
    for len in 1..=12usize {
        for _ in 0..64 {
            let seq: Vec<u8> = (0..len).map(|_| rng.random_range(0..4u8)).collect();
            assert_eq!(
                booth_least_rotation(&seq),
                least_rotation_naive(&seq),
                "sequence {seq:?}"
            );
        }
    }
}

#[test]
fn booth_breaks_ties_toward_the_least_index() {
    // All rotations equal: index 0 must win.
    assert_eq!(booth_least_rotation(&[7u8; 6]), 0);
    // Period-2 word: rotations 0 and 2 tie as (1,2,1,2); 0 wins.
    assert_eq!(booth_least_rotation(&[1u8, 2, 1, 2]), 0);
    assert_eq!(booth_least_rotation(&[2u8, 1, 2, 1]), 1);
    assert_eq!(booth_least_rotation(&[] as &[u8]), 0);
}

/// One seeded reaction shared by every node (the node id never enters the
/// mixing), so vertex-transitive topologies keep their full automorphism
/// group. Requires uniform out-degree.
fn symmetric_protocol(graph: &DiGraph, q: u64, seed: u64) -> Protocol<u64> {
    let deg = graph.out_degree(0);
    Protocol::builder(graph.clone(), (q as f64).log2())
        .uniform_reaction(FnBufReaction::new(
            vec![0u64; deg],
            move |_, incoming: &[u64], input: u64, out: &mut [u64]| {
                let mut acc = 0xcbf2_9ce4_8422_2325u64 ^ seed;
                for &l in incoming {
                    acc = (acc.rotate_left(7) ^ l).wrapping_mul(0x0000_0100_0000_01B3);
                }
                acc = (acc.rotate_left(7) ^ input).wrapping_mul(0x0000_0100_0000_01B3);
                for (k, slot) in out.iter_mut().enumerate() {
                    *slot = (acc.wrapping_mul(2 * k as u64 + 1).rotate_left(11) ^ acc) % q;
                }
                acc % q
            },
        ))
        .build()
        .unwrap()
}

/// Like [`symmetric_protocol`], but additionally invariant under
/// permutations of the incoming/outgoing edge *slots*: the incoming fold
/// is commutative (sum mod `q`) and every outgoing slot gets the same
/// label. Reflections and coordinate permutations — which reorder a
/// node's edge slots — only validate against reactions like this.
fn exchange_symmetric_protocol(graph: &DiGraph, q: u64, seed: u64) -> Protocol<u64> {
    let deg = graph.out_degree(0);
    Protocol::builder(graph.clone(), (q as f64).log2())
        .uniform_reaction(FnBufReaction::new(
            vec![0u64; deg],
            move |_, incoming: &[u64], input: u64, out: &mut [u64]| {
                let sum: u64 = incoming.iter().sum();
                let w = (sum + input + seed) % q;
                out.fill(w);
                w
            },
        ))
        .build()
        .unwrap()
}

#[test]
fn derive_finds_the_full_rotation_group_on_a_unidirectional_ring() {
    let n = 6;
    let protocol = symmetric_protocol(&topology::unidirectional_ring(n), 3, 11);
    let sym = Symmetry::derive(&protocol, &vec![0u64; n], &[0u64, 1, 2]);
    assert_eq!(sym.order(), n, "cyclic group C_{n}");
    // Element 0 is the identity; the others move every node.
    assert!(sym.elements()[0].is_identity());
    for el in &sym.elements()[1..] {
        assert!(!el.is_identity());
    }
}

#[test]
fn derive_finds_the_dihedral_group_on_a_bidirectional_ring() {
    let n = 5;
    let protocol = exchange_symmetric_protocol(&topology::bidirectional_ring(n), 2, 3);
    let sym = Symmetry::derive(&protocol, &vec![0u64; n], &[0u64, 1]);
    // Rotations × reflection: the dihedral group D_n of order 2n. (The
    // reflection reorders each node's two incoming slots, so it only
    // validates because the reaction folds them commutatively.)
    assert_eq!(sym.order(), 2 * n, "dihedral group D_{n}");
    let reflections = sym
        .elements()
        .iter()
        .filter(|el| !el.is_identity() && el.compose(el).is_identity())
        .count();
    assert!(reflections >= n, "every axis reflection is an involution");
}

#[test]
fn derive_finds_bit_permutations_on_the_hypercube() {
    let d = 3;
    let n = 1usize << d;
    let protocol = exchange_symmetric_protocol(&topology::hypercube(d as u32), 2, 5);
    let sym = Symmetry::derive(&protocol, &vec![0u64; n], &[0u64, 1]);
    // The candidate generators (bit rotation, bit swap, xor translation)
    // close into a subgroup of the hyperoctahedral group; for d = 3 that
    // is at least the 6 coordinate permutations and one translation
    // coset, and never more than 2^d · d! = 48.
    assert!(sym.order() >= 12, "got order {}", sym.order());
    assert!(sym.order() <= 48, "got order {}", sym.order());
}

#[test]
fn derive_degrades_to_identity_when_inputs_break_the_symmetry() {
    let n = 6;
    let protocol = symmetric_protocol(&topology::unidirectional_ring(n), 3, 11);
    let mut inputs = vec![0u64; n];
    inputs[2] = 1; // constant on no nontrivial orbit
    let sym = Symmetry::derive(&protocol, &inputs, &[0u64, 1, 2]);
    assert!(sym.is_trivial());
}

#[test]
fn derive_degrades_to_identity_when_the_reaction_is_node_dependent() {
    // The node id enters the reaction with period 2 on an *odd* ring, so
    // no rotation preserves the parity pattern. (At n = 4 the rotation by
    // 2 genuinely IS a behavioral automorphism — nodes 0/2 and 1/3 share
    // reactions — and derive correctly finds it via the 2×2 torus
    // candidate shifts; an odd length removes every such coincidence.)
    let n = 5;
    let graph = topology::unidirectional_ring(n);
    let mut b = Protocol::builder(graph, 1.0);
    for node in 0..n {
        b = b.reaction(
            node,
            FnReaction::new(move |i: NodeId, incoming: &[u64], _| {
                (vec![(incoming[0] + i as u64) % 2], 0)
            }),
        );
    }
    let protocol = b.build().unwrap();
    let sym = Symmetry::derive(&protocol, &vec![0u64; n], &[0u64, 1]);
    assert!(sym.is_trivial());
}

/// The n rotations of a ring layout where edge k co-rotates with node k.
fn ring_rotations(n: usize) -> Symmetry {
    let step = Automorphism {
        node_perm: (0..n as u32).map(|i| (i + 1) % n as u32).collect(),
        edge_perm: (0..n as u32).map(|i| (i + 1) % n as u32).collect(),
    };
    Symmetry::from_generators(n, n, &[step]).unwrap()
}

fn ring_layout(n: usize, lw: u32, cw: u32) -> PackedLayout {
    let bits = n * (lw + cw) as usize;
    PackedLayout {
        label_width: lw,
        countdown_width: cw,
        edges: n,
        nodes: n,
        words: bits.div_ceil(64).max(1),
        aux: 0,
    }
}

fn pack_ring_state(layout: &PackedLayout, labels: &[u32], cds: &[u32]) -> Vec<u64> {
    let mut words = vec![0u64; layout.words];
    let lw = layout.label_width as usize;
    let cw = layout.countdown_width as usize;
    for (k, &l) in labels.iter().enumerate() {
        pack(&mut words, k * lw, layout.label_width, u64::from(l));
    }
    for (i, &c) in cds.iter().enumerate() {
        pack(
            &mut words,
            layout.edges * lw + i * cw,
            layout.countdown_width,
            u64::from(c),
        );
    }
    words
}

#[test]
fn canonicalize_is_orbit_constant_and_idempotent() {
    let n = 6;
    let sym = ring_rotations(n);
    assert_eq!(sym.order(), n);
    let layout = ring_layout(n, 2, 2);
    let mut rng = StdRng::seed_from_u64(0xCA20);
    let mut scratch = CanonScratch::default();
    for _ in 0..50 {
        let labels: Vec<u32> = (0..n).map(|_| rng.random_range(0..4u32)).collect();
        let cds: Vec<u32> = (0..n).map(|_| rng.random_range(0..3u32)).collect();
        // Canonicalize every rotation of the same state: all must land on
        // the same representative.
        let mut reps: Vec<Vec<u64>> = Vec::new();
        for j in 0..n {
            let rl: Vec<u32> = (0..n).map(|i| labels[(i + j) % n]).collect();
            let rc: Vec<u32> = (0..n).map(|i| cds[(i + j) % n]).collect();
            let mut words = pack_ring_state(&layout, &rl, &rc);
            let mut aux: Vec<u64> = Vec::new();
            let elem = sym.canonicalize(&layout, &mut words, &mut aux, &mut scratch);
            assert!(elem < sym.order());
            reps.push(words);
        }
        assert!(reps.windows(2).all(|w| w[0] == w[1]), "orbit constancy");
        // A second pass is the identity.
        let mut again = reps[0].clone();
        let mut aux: Vec<u64> = Vec::new();
        let elem = sym.canonicalize(&layout, &mut again, &mut aux, &mut scratch);
        assert_eq!(elem, 0, "canonical states are fixed points");
        assert_eq!(again, reps[0]);
    }
}

#[test]
fn canonicalize_reports_the_element_that_maps_original_to_canonical() {
    let n = 5;
    let sym = ring_rotations(n);
    let layout = ring_layout(n, 3, 1);
    let labels: Vec<u32> = vec![4, 1, 3, 2, 5];
    let cds: Vec<u32> = vec![0, 1, 0, 1, 0];
    let mut words = pack_ring_state(&layout, &labels, &cds);
    let original = words.clone();
    let mut aux: Vec<u64> = Vec::new();
    let elem = sym.canonicalize(&layout, &mut words, &mut aux, &mut CanonScratch::default());
    // Re-apply the reported element to the original by hand: it must
    // reproduce the canonical form.
    let el = &sym.elements()[elem];
    let mut rl = vec![0u32; n];
    let mut rc = vec![0u32; n];
    for (k, &l) in labels.iter().enumerate() {
        rl[el.edge_perm[k] as usize] = l;
    }
    for (i, &c) in cds.iter().enumerate() {
        rc[el.node_perm[i] as usize] = c;
    }
    assert_eq!(pack_ring_state(&layout, &rl, &rc), words);
    if elem == 0 {
        assert_eq!(words, original);
    }
}

#[test]
fn fixed_point_orbits_are_smaller_than_the_group() {
    // A uniform state is fixed by every rotation: its orbit has size 1
    // even though the group has order n. The canonicalizer must return
    // the identity and leave the state untouched (regression: an earlier
    // sketch assumed orbit size == group order when picking the
    // representative).
    let n = 8;
    let sym = ring_rotations(n);
    let layout = ring_layout(n, 2, 2);
    let mut words = pack_ring_state(&layout, &vec![3u32; n], &vec![1u32; n]);
    let expected = words.clone();
    let mut aux: Vec<u64> = Vec::new();
    let elem = sym.canonicalize(&layout, &mut words, &mut aux, &mut CanonScratch::default());
    assert_eq!(elem, 0);
    assert_eq!(words, expected);

    // Period-2 word on an even ring: orbit size n/2, still canonical at
    // the least rotation.
    let labels: Vec<u32> = (0..n).map(|i| (i % 2) as u32).collect();
    let mut words = pack_ring_state(&layout, &labels, &vec![0u32; n]);
    let canon = {
        let mut aux: Vec<u64> = Vec::new();
        sym.canonicalize(&layout, &mut words, &mut aux, &mut CanonScratch::default());
        words.clone()
    };
    let shifted: Vec<u32> = (0..n).map(|i| labels[(i + 1) % n]).collect();
    let mut words2 = pack_ring_state(&layout, &shifted, &vec![0u32; n]);
    let mut aux: Vec<u64> = Vec::new();
    sym.canonicalize(&layout, &mut words2, &mut aux, &mut CanonScratch::default());
    assert_eq!(words2, canon);
}

#[test]
fn from_generators_rejects_non_permutations() {
    let bad = Automorphism {
        node_perm: vec![0, 0, 1],
        edge_perm: vec![0, 1, 2],
    };
    assert!(Symmetry::from_generators(3, 3, &[bad]).is_none());
    let out_of_range = Automorphism {
        node_perm: vec![0, 1, 3],
        edge_perm: vec![0, 1, 2],
    };
    assert!(Symmetry::from_generators(3, 3, &[out_of_range]).is_none());
}

#[test]
fn quotient_shrinks_the_bidirectional_ring_at_least_5x_with_identical_verdict() {
    // The issue's acceptance shape at a feasible size: D_5 has order 10,
    // so on the bidirectional 5-ring (2^10 labelings × r^n countdowns)
    // SymmetryMode::Auto must intern ≥ 5× fewer states and return the
    // bit-identical verdict.
    let n = 5;
    let protocol = exchange_symmetric_protocol(&topology::bidirectional_ring(n), 2, 3);
    let inputs = vec![0u64; n];
    let alphabet = [0u64, 1];
    let (full_v, full) =
        verify_label_stabilization_with_stats(&protocol, &inputs, &alphabet, 2, Limits::default())
            .unwrap();
    let (quot_v, quot) = verify_label_stabilization_with_stats(
        &protocol,
        &inputs,
        &alphabet,
        2,
        Limits {
            symmetry: SymmetryMode::Auto,
            ..Limits::default()
        },
    )
    .unwrap();
    assert_eq!(
        std::mem::discriminant(&full_v),
        std::mem::discriminant(&quot_v),
        "verdicts must agree"
    );
    assert!(
        quot.states * 5 <= full.states,
        "expected a ≥5× quotient, got {} vs {}",
        full.states,
        quot.states
    );
}
