//! Property-based integration tests (proptest): invariants that must hold
//! across randomly generated protocols, schedules, and initial labelings.

use proptest::prelude::*;
use stateless_computation::core::prelude::*;
use stateless_computation::protocols::counter::{
    counter_protocol, sync_rounds_bound, CounterFields,
};
use stateless_computation::protocols::generic::{generic_protocol, round_bound, GenericLabel};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Engine determinism: the same protocol, inputs, labeling, and
    /// schedule always produce the same trajectory.
    #[test]
    fn engine_is_deterministic(seed in 0u64..1000, n in 3usize..8) {
        let p = Protocol::builder(topology::unidirectional_ring(n), 8.0)
            .uniform_reaction(FnReaction::new(|_, inc: &[u64], x| {
                let v = inc[0].wrapping_mul(31).wrapping_add(x) % 97;
                (vec![v], v)
            }))
            .build()
            .unwrap();
        let inputs: Vec<u64> = (0..n as u64).map(|i| (i * seed) % 5).collect();
        let init: Vec<u64> = (0..n as u64).map(|i| (i + seed) % 7).collect();
        let run = |mut sched: RoundRobin| {
            let mut sim = Simulation::new(&p, &inputs, init.clone()).unwrap();
            sim.run(&mut sched, 50);
            (sim.labeling().to_vec(), sim.outputs().to_vec())
        };
        prop_assert_eq!(run(RoundRobin::new(2)), run(RoundRobin::new(2)));
    }

    /// The RandomRFair schedule is r-fair for arbitrary parameters.
    #[test]
    fn random_schedule_is_r_fair(seed in 0u64..500, r in 1usize..6, n in 2usize..10) {
        use rand::SeedableRng;
        let rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut sched = FairnessMonitor::new(RandomRFair::new(r, 0.3, rng));
        for t in 1..=300 {
            let set = sched.activations(t, n);
            prop_assert!(!set.is_empty());
            prop_assert!(set.iter().all(|&i| i < n));
        }
        prop_assert!(sched.worst_gap() <= r);
    }

    /// RandomRFair stays r-fair across a node-count growth event: both the
    /// schedule and the monitor preserve the deadline counters of nodes
    /// that were already present (a from-scratch rebuild of the counters
    /// would let an old node's activation gap exceed r unobserved).
    #[test]
    fn random_schedule_stays_r_fair_when_nodes_join(
        seed in 0u64..500,
        r in 1usize..6,
        n1 in 2usize..6,
        extra in 1usize..5,
    ) {
        use rand::SeedableRng;
        let rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut sched = FairnessMonitor::new(RandomRFair::new(r, 0.2, rng));
        let mut buf = Vec::new();
        for t in 1..=300u64 {
            let n = if t <= 150 { n1 } else { n1 + extra };
            sched.activations_into(t, n, &mut buf);
            prop_assert!(!buf.is_empty());
            prop_assert!(buf.iter().all(|&i| i < n));
        }
        prop_assert!(sched.worst_gap() <= r, "gap {} > r {}", sched.worst_gap(), r);
    }

    /// Proposition 2.3 end-to-end: the generic protocol computes any
    /// (randomly chosen) 3-junta from any initial labeling within 2n
    /// synchronous rounds.
    #[test]
    fn generic_protocol_computes_random_juntas(
        table in 0u32..256,
        x_bits in 0u32..64,
        garbage in 0u64..1000,
    ) {
        let n = 6;
        let f = move |x: &[bool]| {
            let idx = usize::from(x[0]) | usize::from(x[2]) << 1 | usize::from(x[4]) << 2;
            table >> idx & 1 == 1
        };
        let g = topology::bidirectional_ring(n);
        let p = generic_protocol(g, f).unwrap();
        let x: Vec<bool> = (0..n).map(|i| x_bits >> i & 1 == 1).collect();
        let inputs: Vec<u64> = x.iter().map(|&b| u64::from(b)).collect();
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(garbage);
        let init: Vec<GenericLabel> = (0..p.edge_count())
            .map(|_| GenericLabel {
                z: (0..n).map(|_| rng.random_bool(0.5)).collect(),
                b: rng.random_bool(0.5),
            })
            .collect();
        let mut sim = Simulation::new(&p, &inputs, init).unwrap();
        let steps = sim
            .run_until_label_stable(&mut Synchronous, round_bound(n) + 1)
            .unwrap();
        prop_assert!(steps <= round_bound(n));
        sim.run(&mut Synchronous, 1);
        let expected = u64::from(f(&x));
        prop_assert_eq!(sim.outputs(), &vec![expected; n][..]);
    }

    /// Claim 5.6 as a property: the D-counter synchronizes from arbitrary
    /// labelings for random odd sizes and moduli.
    #[test]
    fn counter_synchronizes(seed in 0u64..200, half_n in 1usize..5, d in 2u32..12) {
        let n = 2 * half_n + 1;
        let p = counter_protocol(n, d).unwrap();
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let init: Vec<CounterFields> = (0..p.edge_count())
            .map(|_| CounterFields {
                b1: rng.random_bool(0.5),
                b2: rng.random_bool(0.5),
                z: rng.random_range(0..3 * d),
                g: rng.random_range(0..3 * d),
            })
            .collect();
        let mut sim = Simulation::new(&p, &vec![0; n], init).unwrap();
        sim.run(&mut Synchronous, sync_rounds_bound(n));
        let mut prev = None;
        for _ in 0..d + 3 {
            sim.run(&mut Synchronous, 1);
            let outs = sim.outputs().to_vec();
            prop_assert!(outs.iter().all(|&c| c == outs[0]), "outputs: {:?}", outs);
            if let Some(p) = prev {
                prop_assert_eq!(outs[0], (p + 1) % u64::from(d));
            }
            prev = Some(outs[0]);
        }
    }

    /// Stable labelings are absorbing: once a simulation sits on a stable
    /// labeling, no schedule can move it.
    #[test]
    fn stable_labelings_are_absorbing(seed in 0u64..300, n in 3usize..6) {
        use stateless_computation::protocols::example1;
        let p = example1::example1_protocol(n);
        let stable = example1::uniform_labeling(n, seed % 2 == 0);
        use rand::SeedableRng;
        let rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut sched = RandomRFair::new(3, 0.4, rng);
        let mut sim = Simulation::new(&p, &vec![0; n], stable.clone()).unwrap();
        sim.run(&mut sched, 60);
        prop_assert_eq!(sim.labeling(), &stable[..]);
    }
}
