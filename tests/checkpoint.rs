//! Crash-safe verification suite: checkpointed explorations must resume
//! from **any** epoch — at any thread count, under either SCC backend,
//! with symmetry quotienting on or off — to verdicts, witnesses, and
//! stats bit-identical to an uninterrupted run; a corrupted newest epoch
//! must fall back to the previous one; a mismatched instance must be the
//! typed [`ResumeError::InstanceMismatch`], never a silent wrong answer;
//! a [`Limits::deadline`] must degrade gracefully to a resumable
//! [`Verdict::Partial`]; meaningless policies are rejected up front; and
//! a panicking expand worker is isolated (retried once, then
//! checkpoint-and-fail as [`VerifyError::PoisonedChunk`]).

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use stateless_computation::core::checkpoint::CheckpointStore;
use stateless_computation::core::prelude::*;
use stateless_computation::verify::{
    verify_label_stabilization, verify_label_stabilization_resumed,
    verify_label_stabilization_resumed_at, verify_label_stabilization_with_stats,
    verify_output_stabilization, verify_output_stabilization_resumed, CheckpointPolicy,
    ExploreStats, Limits, ResumeError, SccBackend, SymmetryMode, Verdict, VerifyError,
};

/// Thread counts the resume-equality matrix runs at (mirrors the
/// differential suite): `1`, `2`, `4`, plus `STATELESS_TEST_THREADS`.
fn test_threads() -> Vec<usize> {
    let mut counts = vec![1, 2, 4];
    if let Some(n) = std::env::var("STATELESS_TEST_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        if !counts.contains(&n) {
            counts.push(n);
        }
    }
    counts
}

/// A fresh, empty scratch directory unique to this process and test.
fn scratch_dir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("stateless-ckpt-test-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The non-stabilizing rotation ring (every node copies its
/// predecessor): node-uniform, so `SymmetryMode::Auto` derives a
/// nontrivial group, and large enough at `r = 3` to take several expand
/// batches — i.e. several checkpoint epochs at `every_states: Some(1)`.
fn rotate_ring(n: usize) -> Protocol<bool> {
    Protocol::builder(topology::unidirectional_ring(n), 1.0)
        .uniform_reaction(FnReaction::new(|_, inc: &[bool], _| (vec![inc[0]], 42)))
        .build()
        .unwrap()
}

/// A checkpoint-every-batch policy with effectively unbounded retention,
/// so the resume matrix can replay from *every* epoch.
fn every_batch(dir: &std::path::Path) -> CheckpointPolicy {
    CheckpointPolicy {
        every_states: Some(1),
        retain: usize::MAX,
        ..CheckpointPolicy::new(dir)
    }
}

/// The tentpole acceptance test: a checkpointed run leaves a trail of
/// epochs, and resuming from **each** of them — across thread counts,
/// SCC backends, and symmetry modes — reproduces the uninterrupted
/// run's verdict, witness, and stats bit for bit.
#[test]
fn resume_from_every_epoch_is_bit_identical() {
    let p = rotate_ring(4);
    let inputs = [0u64; 4];
    let alphabet = [false, true];
    let r = 3;
    for symmetry in [SymmetryMode::Off, SymmetryMode::Auto] {
        let dir = scratch_dir(&format!("every-epoch-{symmetry:?}"));
        let limits = Limits {
            symmetry,
            checkpoint: Some(every_batch(&dir)),
            ..Limits::default()
        };
        let clean =
            verify_label_stabilization_with_stats(&p, &inputs, &alphabet, r, limits.clone())
                .unwrap();
        assert!(
            matches!(clean.0, Verdict::NotStabilizing(_)),
            "rotation never label-stabilizes"
        );
        let epochs = CheckpointStore::open(&dir).unwrap().epochs().unwrap();
        assert!(
            epochs.len() >= 2,
            "every-batch policy must leave a multi-epoch trail, got {epochs:?}"
        );
        for &epoch in &epochs {
            for threads in test_threads() {
                for scc in [SccBackend::ForwardBackward, SccBackend::Tarjan] {
                    let resumed = verify_label_stabilization_resumed_at(
                        &p,
                        &inputs,
                        &alphabet,
                        r,
                        Limits {
                            threads,
                            scc,
                            checkpoint: None,
                            ..limits.clone()
                        },
                        &dir,
                        Some(epoch),
                    )
                    .unwrap();
                    assert_eq!(
                        clean, resumed,
                        "epoch {epoch}, {threads} threads, {scc:?}, {symmetry:?}"
                    );
                }
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// The output-stabilization twin resumes too (its checkpoints carry the
/// auxiliary output rows, and its instance fingerprint differs from the
/// label mode's).
#[test]
fn output_mode_resumes_to_identical_verdicts() {
    let p = rotate_ring(3);
    let inputs = [0u64; 3];
    let alphabet = [false, true];
    let dir = scratch_dir("output-mode");
    let limits = Limits {
        checkpoint: Some(every_batch(&dir)),
        ..Limits::default()
    };
    let clean = verify_output_stabilization(&p, &inputs, &alphabet, 3, limits.clone()).unwrap();
    assert!(clean.is_stabilizing(), "constant outputs converge");
    let (resumed, _) = verify_output_stabilization_resumed(
        &p,
        &inputs,
        &alphabet,
        3,
        Limits {
            threads: 4,
            checkpoint: None,
            ..Limits::default()
        },
        &dir,
    )
    .unwrap();
    assert_eq!(clean, resumed);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A tiny deadline degrades gracefully: [`Verdict::Partial`] with the
/// interned-state count, the unexpanded frontier, and a checkpoint
/// handle naming the epoch that was flushed on the way out — and that
/// handle resumes to the uninterrupted run's exact verdict.
#[test]
fn deadline_yields_resumable_partial_verdict() {
    let p = rotate_ring(4);
    let inputs = [0u64; 4];
    let alphabet = [false, true];
    let dir = scratch_dir("deadline");
    let clean = verify_label_stabilization_with_stats(&p, &inputs, &alphabet, 3, Limits::default())
        .unwrap();
    let (partial, stats) = verify_label_stabilization_with_stats(
        &p,
        &inputs,
        &alphabet,
        3,
        Limits {
            deadline: Some(Duration::from_nanos(1)),
            checkpoint: Some(CheckpointPolicy::new(&dir)),
            ..Limits::default()
        },
    )
    .unwrap();
    let Verdict::Partial {
        states_explored,
        frontier_len,
        checkpoint,
    } = partial
    else {
        panic!("a 1 ns deadline must truncate the exploration, got {partial:?}")
    };
    assert!(!Verdict::<bool>::Partial {
        states_explored,
        frontier_len,
        checkpoint: checkpoint.clone()
    }
    .is_stabilizing());
    assert_eq!(states_explored, stats.states);
    assert!(frontier_len > 0, "nothing was expanded before the deadline");
    let handle = checkpoint.expect("a checkpoint policy was set");
    assert_eq!(handle.dir, dir);
    let resumed =
        verify_label_stabilization_resumed(&p, &inputs, &alphabet, 3, Limits::default(), &dir)
            .unwrap();
    assert_eq!(clean, resumed, "resume after deadline truncation");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Flipping one byte in the newest epoch file must not poison resume:
/// the store falls back to the previous (still-valid) epoch, and the
/// resumed verdict is still bit-identical. Explicitly requesting the
/// corrupted epoch is a typed error.
#[test]
fn corrupted_newest_epoch_falls_back_to_previous() {
    let p = rotate_ring(4);
    let inputs = [0u64; 4];
    let alphabet = [false, true];
    let dir = scratch_dir("corrupt");
    let limits = Limits {
        checkpoint: Some(every_batch(&dir)),
        ..Limits::default()
    };
    let clean =
        verify_label_stabilization_with_stats(&p, &inputs, &alphabet, 3, limits.clone()).unwrap();
    let store = CheckpointStore::open(&dir).unwrap();
    let epochs = store.epochs().unwrap();
    assert!(epochs.len() >= 2, "need a fallback epoch, got {epochs:?}");
    let newest = *epochs.last().unwrap();
    let path = store.epoch_path(newest);
    let mut bytes = std::fs::read(&path).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xff;
    std::fs::write(&path, bytes).unwrap();
    assert_eq!(
        store.latest_valid_epoch().unwrap(),
        Some(newest - 1),
        "torn newest epoch must be skipped"
    );
    let resumed = verify_label_stabilization_resumed(
        &p,
        &inputs,
        &alphabet,
        3,
        Limits {
            checkpoint: None,
            ..limits.clone()
        },
        &dir,
    )
    .unwrap();
    assert_eq!(clean, resumed, "resume from the fallback epoch");
    let err = verify_label_stabilization_resumed_at(
        &p,
        &inputs,
        &alphabet,
        3,
        Limits::default(),
        &dir,
        Some(newest),
    )
    .unwrap_err();
    assert!(
        matches!(
            &err,
            VerifyError::Resume(ResumeError::Corrupt { .. } | ResumeError::Io { .. })
        ),
        "explicitly resuming the torn epoch: {err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Resuming a checkpoint under a *different* instance (here: another
/// fairness bound, then other inputs) is the typed
/// [`ResumeError::InstanceMismatch`] — never a silently wrong verdict.
#[test]
fn instance_mismatch_is_a_typed_error() {
    let p = rotate_ring(3);
    let alphabet = [false, true];
    let dir = scratch_dir("mismatch");
    let limits = Limits {
        checkpoint: Some(CheckpointPolicy {
            every_states: Some(1),
            ..CheckpointPolicy::new(&dir)
        }),
        ..Limits::default()
    };
    verify_label_stabilization(&p, &[0u64; 3], &alphabet, 2, limits).unwrap();
    for (inputs, r) in [([0u64; 3], 3), ([1u64; 3], 2)] {
        let err =
            verify_label_stabilization_resumed(&p, &inputs, &alphabet, r, Limits::default(), &dir)
                .unwrap_err();
        assert!(
            matches!(
                err,
                VerifyError::Resume(ResumeError::InstanceMismatch { expected, found })
                    if expected != found
            ),
            "inputs {inputs:?}, r = {r}: {err}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// An empty (or never-written) checkpoint directory is
/// [`ResumeError::NoEpoch`].
#[test]
fn resuming_an_empty_directory_is_no_epoch() {
    let p = rotate_ring(3);
    let dir = scratch_dir("empty");
    std::fs::create_dir_all(&dir).unwrap();
    let err = verify_label_stabilization_resumed(
        &p,
        &[0u64; 3],
        &[false, true],
        2,
        Limits::default(),
        &dir,
    )
    .unwrap_err();
    assert!(
        matches!(err, VerifyError::Resume(ResumeError::NoEpoch { .. })),
        "{err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Meaningless deadline/checkpoint combinations are rejected up front as
/// [`VerifyError::BadParameters`] — before any exploration work.
#[test]
fn meaningless_policies_are_rejected_up_front() {
    let p = rotate_ring(3);
    let dir = scratch_dir("badparams");
    let bad = [
        Limits {
            deadline: Some(Duration::ZERO),
            ..Limits::default()
        },
        Limits {
            checkpoint: Some(CheckpointPolicy {
                every_states: Some(0),
                ..CheckpointPolicy::new(&dir)
            }),
            ..Limits::default()
        },
        Limits {
            checkpoint: Some(CheckpointPolicy {
                every_secs: Some(0.0),
                ..CheckpointPolicy::new(&dir)
            }),
            ..Limits::default()
        },
        Limits {
            checkpoint: Some(CheckpointPolicy {
                every_secs: Some(f64::NAN),
                ..CheckpointPolicy::new(&dir)
            }),
            ..Limits::default()
        },
        Limits {
            checkpoint: Some(CheckpointPolicy {
                retain: 0,
                ..CheckpointPolicy::new(&dir)
            }),
            ..Limits::default()
        },
    ];
    for limits in bad {
        let err = verify_label_stabilization(&p, &[0u64; 3], &[false, true], 2, limits.clone())
            .unwrap_err();
        assert!(
            matches!(err, VerifyError::BadParameters { .. }),
            "{limits:?}: {err}"
        );
    }
    assert!(!dir.exists(), "rejected policies must not touch the disk");
}

/// A rotation ring whose uniform reaction starts panicking at the
/// `trip`-th call and never recovers (`trip = usize::MAX` never trips).
/// The behavior below the trip point is exactly [`rotate_ring`]'s, so
/// tripped and untripped instances share one fingerprint.
fn tripwire_ring(n: usize, trip: usize) -> (Protocol<bool>, Arc<AtomicUsize>) {
    let calls = Arc::new(AtomicUsize::new(0));
    let counter = Arc::clone(&calls);
    let p = Protocol::builder(topology::unidirectional_ring(n), 1.0)
        .uniform_reaction(FnReaction::new(move |_, inc: &[bool], _| {
            if counter.fetch_add(1, Ordering::Relaxed) >= trip {
                panic!("tripwire: injected reaction fault");
            }
            (vec![inc[0]], 42)
        }))
        .build()
        .unwrap();
    (p, calls)
}

/// A reaction that panics **once** is isolated: the poisoned chunk is
/// retried serially, the retry succeeds, and the verdict and stats are
/// bit-identical to a clean run's.
#[test]
fn single_worker_panic_is_retried_and_absorbed() {
    let p = rotate_ring(4);
    let inputs = [0u64; 4];
    let alphabet = [false, true];
    let clean = verify_label_stabilization_with_stats(&p, &inputs, &alphabet, 3, Limits::default())
        .unwrap();
    // A one-shot tripwire: exactly the 200th reaction call panics (well
    // past the seed phase, inside batch expansion), every later call
    // succeeds — so the serial chunk retry goes through.
    let fired = Arc::new(AtomicUsize::new(0));
    let armed = Arc::clone(&fired);
    let p_once = Protocol::builder(topology::unidirectional_ring(4), 1.0)
        .uniform_reaction(FnReaction::new(move |_, inc: &[bool], _| {
            if armed.fetch_add(1, Ordering::Relaxed) == 200 {
                panic!("tripwire: injected one-shot reaction fault");
            }
            (vec![inc[0]], 42)
        }))
        .build()
        .unwrap();
    let recovered = verify_label_stabilization_with_stats(
        &p_once,
        &inputs,
        &alphabet,
        3,
        Limits {
            threads: 1,
            ..Limits::default()
        },
    )
    .unwrap();
    assert!(
        fired.load(Ordering::Relaxed) > 200,
        "the tripwire must actually have fired"
    );
    assert_eq!(clean, recovered, "one panic, retried, absorbed");
}

/// A chunk that panics on the retry too is **checkpoint-and-fail**:
/// the typed [`VerifyError::PoisonedChunk`] carries the panic message
/// and a handle to the epoch flushed at the failed batch's boundary —
/// and a healthy protocol resumes from that handle to the exact verdict.
#[test]
fn persistent_panic_checkpoints_and_fails() {
    let inputs = [0u64; 4];
    let alphabet = [false, true];
    let dir = scratch_dir("poisoned");
    let clean = verify_label_stabilization_with_stats(
        &rotate_ring(4),
        &inputs,
        &alphabet,
        3,
        Limits::default(),
    )
    .unwrap();
    // The instance fingerprint's behavioral probes run ~n·8 reactions at
    // `begin`; trip far past them so the fingerprint matches
    // `rotate_ring`'s, but well inside the first expand batches.
    let (poisoned, _) = tripwire_ring(4, 500);
    let err = verify_label_stabilization(
        &poisoned,
        &inputs,
        &alphabet,
        3,
        Limits {
            threads: 2,
            checkpoint: Some(CheckpointPolicy::new(&dir)),
            ..Limits::default()
        },
    )
    .unwrap_err();
    let VerifyError::PoisonedChunk { what, checkpoint } = err else {
        panic!("a persistent panic must poison the run, got {err:?}")
    };
    assert!(what.contains("tripwire"), "panic message survives: {what}");
    let handle = checkpoint.expect("checkpoint-and-fail flushes an epoch");
    assert_eq!(handle.dir, dir);
    let resumed = verify_label_stabilization_resumed(
        &rotate_ring(4),
        &inputs,
        &alphabet,
        3,
        Limits::default(),
        &dir,
    )
    .unwrap();
    assert_eq!(clean, resumed, "resume from the checkpoint-and-fail epoch");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Without a checkpoint policy, a persistent panic still fails typed —
/// with no handle to resume from.
#[test]
fn persistent_panic_without_policy_has_no_handle() {
    let (poisoned, _) = tripwire_ring(4, 100);
    let err = verify_label_stabilization(
        &poisoned,
        &[0u64; 4],
        &[false, true],
        3,
        Limits {
            threads: 1,
            ..Limits::default()
        },
    )
    .unwrap_err();
    assert!(
        matches!(
            err,
            VerifyError::PoisonedChunk {
                checkpoint: None,
                ..
            }
        ),
        "{err:?}"
    );
}

/// `ExploreStats` sanity on a resumed run: the struct still carries the
/// packed-layout figures (regression guard for the header round-trip).
#[test]
fn resumed_stats_carry_the_packed_layout() {
    let p = rotate_ring(3);
    let dir = scratch_dir("stats");
    let limits = Limits {
        checkpoint: Some(every_batch(&dir)),
        ..Limits::default()
    };
    let (_, clean): (Verdict<bool>, ExploreStats) =
        verify_label_stabilization_with_stats(&p, &[0u64; 3], &[false, true], 2, limits).unwrap();
    let (_, resumed) = verify_label_stabilization_resumed(
        &p,
        &[0u64; 3],
        &[false, true],
        2,
        Limits::default(),
        &dir,
    )
    .unwrap();
    assert_eq!(clean, resumed);
    assert!(resumed.words_per_state >= 1 && resumed.state_bytes > 0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite (PR 10): a process that dies between `begin_epoch` and
/// `commit` leaves an orphaned `epoch-*.ckpt.tmp` behind; reopening the
/// store — which is what a checkpointed verification or a resume does
/// first — must sweep the orphan while leaving every committed epoch
/// loadable. The crash is simulated by running a checkpointed
/// verification (committed epochs), then dropping an uncommitted
/// `SegmentWriter` and a torn `MANIFEST.tmp` into the same store.
#[test]
fn crashed_commit_orphans_are_swept_on_reopen() {
    let p = rotate_ring(4);
    let inputs = [0u64; 4];
    let alphabet = [false, true];
    let r = 3;
    let dir = scratch_dir("orphan-sweep");
    let limits = Limits {
        checkpoint: Some(every_batch(&dir)),
        ..Limits::default()
    };
    let clean =
        verify_label_stabilization_with_stats(&p, &inputs, &alphabet, r, limits.clone()).unwrap();

    // Crash simulation: an epoch write that never reached commit, plus a
    // manifest rewrite torn mid-flight.
    let store = CheckpointStore::open(&dir).unwrap();
    let committed = store.epochs().unwrap();
    let next = committed.last().unwrap() + 1;
    let mut w = store.begin_epoch(next).unwrap();
    w.begin_segment(1);
    w.put_u64(0xdead);
    w.end_segment().unwrap();
    drop(w); // process dies before CheckpointStore::commit
    std::fs::write(dir.join("MANIFEST.tmp"), "torn").unwrap();
    let orphan = dir.join(format!("epoch-{next}.ckpt.tmp"));
    assert!(orphan.exists(), "crash must leave the tmp file behind");

    // Reopening sweeps both orphans and keeps the committed trail.
    let store = CheckpointStore::open(&dir).unwrap();
    assert!(!orphan.exists(), "stale epoch tmp must be swept on open");
    assert!(!dir.join("MANIFEST.tmp").exists());
    assert_eq!(store.epochs().unwrap(), committed);

    // The swept store still resumes to the bit-identical verdict.
    let resumed =
        verify_label_stabilization_resumed(&p, &inputs, &alphabet, r, Limits::default(), &dir)
            .unwrap();
    assert_eq!(clean, resumed, "sweep must not disturb committed epochs");
    let _ = std::fs::remove_dir_all(&dir);
}
