//! Differential tests: the buffered engine hot path (`react_into` /
//! `step_sync` / scratch-buffer `step_with`) must produce **bit-identical**
//! labeling traces and outputs to the naive allocating `react` path, on
//! random protocols, topologies, schedules, and initial labelings; the
//! buffered `Schedule::activations_into` must emit the same activation
//! sequences as the allocating wrapper for every built-in schedule; the
//! fingerprint-arena `classify_sync` must agree exactly with the
//! clone-based reference; the `Brent` cycle detector must agree with
//! `ExactArena` on every classified run; and the parallel product-graph
//! explorer must produce verdicts, witnesses, and state/edge counts that
//! are bit-identical across thread counts — and verdict-identical to the
//! owned-`Vec` naive explorer.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use stateless_computation::core::convergence::{
    classify_scheduled, classify_sync, classify_sync_naive, classify_sync_with, CycleDetector,
};
use stateless_computation::core::graph::DiGraph;
use stateless_computation::core::prelude::*;
use stateless_computation::verify::{
    explore_product, product_graph_csr, verify_label_stabilization,
    verify_label_stabilization_naive, verify_label_stabilization_with_stats,
    verify_output_stabilization, verify_output_stabilization_naive, CycleWitness, Limits,
    SccBackend, SymmetryMode, Verdict, VerifyError,
};

/// Thread counts the cross-thread/cross-backend assertions run at: `2`
/// and `4` always, plus `STATELESS_TEST_THREADS=N` (set by the CI
/// multi-worker job) so the determinism suite provably exercises more
/// than one worker where cores exist.
fn test_threads() -> Vec<usize> {
    let mut counts = vec![2, 4];
    if let Some(n) = std::env::var("STATELESS_TEST_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        if !counts.contains(&n) {
            counts.push(n);
        }
    }
    counts
}

/// A pseudo-random but fully deterministic reaction body: mixes the node
/// id, the incoming labels, and the input into one word, then derives a
/// distinct label per outgoing edge. `q` bounds the label alphabet so
/// classification state spaces stay finite.
fn mix(node: NodeId, incoming: &[u64], input: u64, q: u64) -> u64 {
    let mut acc = 0xcbf2_9ce4_8422_2325u64 ^ (node as u64);
    for &l in incoming {
        acc = (acc.rotate_left(7) ^ l).wrapping_mul(0x0000_0100_0000_01B3);
    }
    acc = (acc.rotate_left(7) ^ input).wrapping_mul(0x0000_0100_0000_01B3);
    acc % q
}

fn out_label(seed_word: u64, k: usize, q: u64) -> u64 {
    (seed_word.wrapping_mul(2 * k as u64 + 1).rotate_left(11) ^ seed_word) % q
}

/// The same random protocol through the naive (allocating `FnReaction`)
/// and buffered (`FnBufReaction`) paths.
fn protocol_pair(graph: &DiGraph, q: u64) -> (Protocol<u64>, Protocol<u64>) {
    let mut naive = Protocol::builder(graph.clone(), (q as f64).log2());
    let mut buffered = Protocol::builder(graph.clone(), (q as f64).log2());
    for node in 0..graph.node_count() {
        let deg = graph.out_degree(node);
        naive = naive.reaction(
            node,
            FnReaction::new(move |i: NodeId, incoming: &[u64], input| {
                let w = mix(i, incoming, input, q);
                ((0..deg).map(|k| out_label(w, k, q)).collect(), w)
            }),
        );
        buffered = buffered.reaction(
            node,
            FnBufReaction::new(
                vec![0u64; deg],
                move |i: NodeId, incoming: &[u64], input, out: &mut [u64]| {
                    let w = mix(i, incoming, input, q);
                    for (k, slot) in out.iter_mut().enumerate() {
                        *slot = out_label(w, k, q);
                    }
                    w
                },
            ),
        );
    }
    (naive.build().unwrap(), buffered.build().unwrap())
}

fn topology_of(kind: usize, size: usize) -> DiGraph {
    match kind % 4 {
        0 => topology::unidirectional_ring(size.max(2)),
        1 => topology::bidirectional_ring(size.max(3)),
        2 => topology::clique(size.max(2)),
        _ => topology::torus(3, size.max(3)),
    }
}

/// Random activation schedule: `steps` nonempty subsets drawn with a
/// seeded RNG, replayed identically against both engines.
fn random_schedule(rng: &mut StdRng, n: usize, steps: usize) -> Vec<Vec<NodeId>> {
    (0..steps)
        .map(|_| {
            let mut set: Vec<NodeId> = (0..n).filter(|_| rng.random_bool(0.4)).collect();
            if set.is_empty() {
                set.push(rng.random_range(0..n));
            }
            set
        })
        .collect()
}

/// Small strongly connected topologies whose product graphs stay
/// exhaustively explorable (`|Σ|^E · r^n` states).
fn verify_topology_of(kind: usize) -> DiGraph {
    match kind % 4 {
        0 => topology::unidirectional_ring(3),
        1 => topology::unidirectional_ring(4),
        2 => topology::bidirectional_ring(3),
        _ => topology::clique(3),
    }
}

/// A node-symmetric random protocol: one seeded reaction shared by every
/// node (the node id never enters the mix), so on vertex-transitive
/// topologies the derived automorphism group is usually nontrivial and
/// `SymmetryMode::Auto` actually quotients. Requires a uniform
/// out-degree, which every topology below has.
fn symmetric_protocol(graph: &DiGraph, q: u64, seed: u64) -> Protocol<u64> {
    let deg = graph.out_degree(0);
    Protocol::builder(graph.clone(), (q as f64).log2())
        .uniform_reaction(FnBufReaction::new(
            vec![0u64; deg],
            move |_, incoming: &[u64], input, out: &mut [u64]| {
                let w = mix(seed as usize, incoming, input, q);
                for (k, slot) in out.iter_mut().enumerate() {
                    *slot = out_label(w, k, q);
                }
                w
            },
        ))
        .build()
        .unwrap()
}

/// Small vertex-transitive topologies for the symmetry-quotient sweep:
/// rings (cyclic/dihedral groups, the Booth path) and the 2-cube
/// (bit-permutation group, the generic orbit-scan path).
fn quotient_topology_of(kind: usize) -> DiGraph {
    match kind % 4 {
        0 => topology::unidirectional_ring(3),
        1 => topology::unidirectional_ring(4),
        2 => topology::bidirectional_ring(3),
        _ => topology::hypercube(2),
    }
}

/// Replays a [`CycleWitness`] from its labeling through two laps of its
/// cyclic schedule; returns whether the labels changed, whether the
/// outputs changed, and whether the labeling returned to the start after
/// each lap (the witness is a product-graph cycle, so a valid one always
/// closes). Output changes are measured on the second lap only: the
/// countdown construction activates every node at least once per lap, so
/// lap one flushes the fresh simulation's placeholder outputs and lap two
/// runs exactly along the product cycle, outputs included.
fn replay_witness(
    p: &Protocol<u64>,
    inputs: &[Input],
    w: &CycleWitness<u64>,
) -> (bool, bool, bool) {
    let n = p.node_count();
    let mut sim = Simulation::new(p, inputs, w.labeling.clone()).unwrap();
    let mut sched = Scripted::cycle(w.schedule.clone());
    sched.validate(n).expect("witness names real nodes");
    let mut active = Vec::new();
    let (mut labels_changed, mut outputs_changed) = (false, false);
    let mut closed = true;
    for lap in 0..2 {
        for _ in 0..w.schedule.len() {
            let labels_before = sim.labeling().to_vec();
            let outputs_before = sim.outputs().to_vec();
            sched.activations_into(sim.time() + 1, n, &mut active);
            sim.step_with(&active);
            labels_changed |= labels_before != sim.labeling();
            if lap == 1 {
                outputs_changed |= outputs_before != sim.outputs();
            }
        }
        closed &= sim.labeling() == &w.labeling[..];
    }
    (labels_changed, outputs_changed, closed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// step_with (buffered scratch path) ≡ step_with_naive (allocating
    /// apply path) under random asynchronous schedules, on every topology
    /// family.
    #[test]
    fn buffered_step_matches_naive_trace(seed in 0u64..10_000, kind in 0usize..4, size in 3usize..7) {
        let graph = topology_of(kind, size);
        let n = graph.node_count();
        let q = 17;
        let (p_naive, p_buf) = protocol_pair(&graph, q);
        let mut rng = StdRng::seed_from_u64(seed);
        let inputs: Vec<u64> = (0..n).map(|_| rng.random_range(0u64..5)).collect();
        let init: Vec<u64> = (0..graph.edge_count()).map(|_| rng.random_range(0..q)).collect();
        let schedule = random_schedule(&mut rng, n, 40);

        let mut a = Simulation::new(&p_naive, &inputs, init.clone()).unwrap();
        let mut b = Simulation::new(&p_buf, &inputs, init).unwrap();
        for (t, active) in schedule.iter().enumerate() {
            a.step_with_naive(active);
            b.step_with(active);
            prop_assert_eq!(a.labeling(), b.labeling(), "labelings diverged at step {}", t);
            prop_assert_eq!(a.outputs(), b.outputs(), "outputs diverged at step {}", t);
        }
    }

    /// step_sync ≡ step_with_naive(all nodes): the synchronous fast path
    /// is trace-identical to the naive full-activation step.
    #[test]
    fn step_sync_matches_naive_trace(seed in 0u64..10_000, kind in 0usize..4, size in 3usize..7) {
        let graph = topology_of(kind, size);
        let n = graph.node_count();
        let q = 23;
        let (p_naive, p_buf) = protocol_pair(&graph, q);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x51ac_0ff5);
        let inputs: Vec<u64> = (0..n).map(|_| rng.random_range(0u64..5)).collect();
        let init: Vec<u64> = (0..graph.edge_count()).map(|_| rng.random_range(0..q)).collect();
        let all: Vec<NodeId> = (0..n).collect();

        let mut a = Simulation::new(&p_naive, &inputs, init.clone()).unwrap();
        let mut b = Simulation::new(&p_buf, &inputs, init).unwrap();
        for t in 0..30 {
            a.step_with_naive(&all);
            b.step_sync();
            prop_assert_eq!(a.labeling(), b.labeling(), "labelings diverged at round {}", t);
            prop_assert_eq!(a.outputs(), b.outputs(), "outputs diverged at round {}", t);
        }
    }

    /// run_until_label_stable through the buffered engine agrees with the
    /// naive reference — on the step count when it converges, and on the
    /// NotConverged verdict and final labeling when it does not (max of
    /// *incoming* labels can oscillate on even structures).
    #[test]
    fn run_until_stable_agrees_across_paths(seed in 0u64..10_000, size in 3usize..7) {
        let graph = topology::bidirectional_ring(size.max(3));
        let n = graph.node_count();
        let build = |buffered: bool| -> Protocol<u64> {
            let mut b = Protocol::builder(graph.clone(), 8.0);
            for node in 0..n {
                let deg = graph.out_degree(node);
                if buffered {
                    b = b.reaction(node, FnBufReaction::new(
                        vec![0u64; deg],
                        |_, inc: &[u64], x, out: &mut [u64]| {
                            let m = inc.iter().copied().max().unwrap_or(0).max(x);
                            out.fill(m);
                            m
                        },
                    ));
                } else {
                    b = b.reaction(node, FnReaction::new(move |_, inc: &[u64], x| {
                        let m = inc.iter().copied().max().unwrap_or(0).max(x);
                        (vec![m; deg], m)
                    }));
                }
            }
            b.build().unwrap()
        };
        let p_naive = build(false);
        let p_buf = build(true);
        let mut rng = StdRng::seed_from_u64(seed);
        let inputs: Vec<u64> = (0..n).map(|_| rng.random_range(0u64..100)).collect();
        let init: Vec<u64> = (0..graph.edge_count()).map(|_| rng.random_range(0u64..100)).collect();

        let mut a = Simulation::new(&p_naive, &inputs, init.clone()).unwrap();
        let mut b = Simulation::new(&p_buf, &inputs, init).unwrap();
        let sa = a.run_until_label_stable(&mut Synchronous, 10 * n as u64);
        let sb = b.run_until_label_stable(&mut Synchronous, 10 * n as u64);
        prop_assert_eq!(sa, sb);
        prop_assert_eq!(a.labeling(), b.labeling());
        prop_assert_eq!(a.outputs(), b.outputs());
    }

    /// Fingerprint classify_sync ≡ clone-based reference on random small
    /// instances (both stabilizing and oscillating dynamics arise from the
    /// mixed reactions).
    #[test]
    fn classify_agrees_with_reference(seed in 0u64..10_000, kind in 0usize..3, size in 3usize..5, q in 2u64..4) {
        let graph = topology_of(kind, size);
        let (p_naive, p_buf) = protocol_pair(&graph, q);
        let mut rng = StdRng::seed_from_u64(seed);
        let n = graph.node_count();
        let inputs: Vec<u64> = (0..n).map(|_| rng.random_range(0u64..3)).collect();
        let init: Vec<u64> = (0..graph.edge_count()).map(|_| rng.random_range(0..q)).collect();
        let cap = 200_000;
        let fast = classify_sync(&p_buf, &inputs, init.clone(), cap);
        let reference = classify_sync_naive(&p_naive, &inputs, init, cap);
        prop_assert_eq!(fast, reference);
    }

    /// Buffered activations_into ≡ allocating activations, for every
    /// built-in schedule type, driving two identically seeded instances
    /// side by side (stateful schedules must advance identically through
    /// either entry point).
    #[test]
    fn buffered_activations_match_allocating(seed in 0u64..10_000, n in 1usize..9, r in 1usize..5, k in 1usize..6) {
        let script: Vec<Vec<NodeId>> = {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..6).map(|_| {
                let mut set: Vec<NodeId> = (0..n).filter(|_| rng.random_bool(0.5)).collect();
                if set.is_empty() {
                    set.push(rng.random_range(0..n));
                }
                set
            }).collect()
        };
        let pairs: Vec<(Box<dyn Schedule>, Box<dyn Schedule>)> = vec![
            (Box::new(Synchronous), Box::new(Synchronous)),
            (Box::new(RoundRobin::new(k)), Box::new(RoundRobin::new(k))),
            (
                Box::new(Scripted::cycle(script.clone())),
                Box::new(Scripted::cycle(script.clone())),
            ),
            (
                Box::new(RandomRFair::new(r, 0.3, StdRng::seed_from_u64(seed))),
                Box::new(RandomRFair::new(r, 0.3, StdRng::seed_from_u64(seed))),
            ),
            (
                Box::new(FairnessMonitor::new(RandomRFair::new(r, 0.3, StdRng::seed_from_u64(seed)))),
                Box::new(FairnessMonitor::new(RandomRFair::new(r, 0.3, StdRng::seed_from_u64(seed)))),
            ),
        ];
        let mut buf = Vec::new();
        for (mut buffered, mut allocating) in pairs {
            for t in 1..=40u64 {
                buffered.activations_into(t, n, &mut buf);
                let fresh = allocating.activations(t, n);
                prop_assert_eq!(&buf, &fresh, "t = {}", t);
                prop_assert!(!fresh.is_empty());
                prop_assert!(fresh.iter().all(|&i| i < n));
            }
        }
    }

    /// `Simulation::run` through the buffered scheduling layer ≡ the naive
    /// loop (allocating activations + naive allocating step), bit for bit,
    /// for every built-in schedule type on random protocols.
    #[test]
    fn buffered_run_matches_naive_loop(seed in 0u64..10_000, kind in 0usize..4, size in 3usize..7, r in 1usize..5) {
        let graph = topology_of(kind, size);
        let n = graph.node_count();
        let (p_naive, p_buf) = protocol_pair(&graph, 13);
        let mut rng = StdRng::seed_from_u64(seed);
        let inputs: Vec<u64> = (0..n).map(|_| rng.random_range(0u64..5)).collect();
        let init: Vec<u64> = (0..graph.edge_count()).map(|_| rng.random_range(0..13)).collect();
        let script = random_schedule(&mut rng, n, 7);
        let schedules: Vec<(Box<dyn Schedule>, Box<dyn Schedule>)> = vec![
            (Box::new(Synchronous), Box::new(Synchronous)),
            (Box::new(RoundRobin::new(2)), Box::new(RoundRobin::new(2))),
            (
                Box::new(Scripted::cycle(script.clone())),
                Box::new(Scripted::cycle(script.clone())),
            ),
            (
                Box::new(RandomRFair::new(r, 0.4, StdRng::seed_from_u64(seed))),
                Box::new(RandomRFair::new(r, 0.4, StdRng::seed_from_u64(seed))),
            ),
            (
                Box::new(FairnessMonitor::new(RoundRobin::new(3))),
                Box::new(FairnessMonitor::new(RoundRobin::new(3))),
            ),
        ];
        for (mut s_buf, mut s_naive) in schedules {
            let mut a = Simulation::new(&p_buf, &inputs, init.clone()).unwrap();
            a.run(s_buf.as_mut(), 30);
            let mut b = Simulation::new(&p_naive, &inputs, init.clone()).unwrap();
            for _ in 0..30 {
                let active = s_naive.activations(b.time() + 1, n);
                b.step_with_naive(&active);
            }
            prop_assert_eq!(a.labeling(), b.labeling());
            prop_assert_eq!(a.outputs(), b.outputs());
            prop_assert_eq!(a.time(), b.time());
        }
    }

    /// Brent ≡ ExactArena on synchronous classification of random
    /// protocols: identical outcome enums, including rounds and periods.
    #[test]
    fn brent_agrees_with_arena(seed in 0u64..10_000, kind in 0usize..3, size in 3usize..5, q in 2u64..4) {
        let graph = topology_of(kind, size);
        let (_, p) = protocol_pair(&graph, q);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xb4e9);
        let n = graph.node_count();
        let inputs: Vec<u64> = (0..n).map(|_| rng.random_range(0u64..3)).collect();
        let init: Vec<u64> = (0..graph.edge_count()).map(|_| rng.random_range(0..q)).collect();
        let cap = 2_000_000;
        let arena = classify_sync_with(&p, &inputs, init.clone(), cap, CycleDetector::ExactArena);
        let brent = classify_sync_with(&p, &inputs, init, cap, CycleDetector::Brent);
        prop_assert_eq!(arena, brent);
    }

    /// Brent ≡ ExactArena on product-state classification under random
    /// periodic (scripted) schedules.
    #[test]
    fn brent_agrees_with_arena_scheduled(seed in 0u64..10_000, kind in 0usize..3, size in 3usize..5, q in 2u64..3, period in 1usize..5) {
        let graph = topology_of(kind, size);
        let (_, p) = protocol_pair(&graph, q);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5c4ed);
        let n = graph.node_count();
        let inputs: Vec<u64> = (0..n).map(|_| rng.random_range(0u64..3)).collect();
        let init: Vec<u64> = (0..graph.edge_count()).map(|_| rng.random_range(0..q)).collect();
        let sched = Scripted::cycle(random_schedule(&mut rng, n, period));
        let cap = 2_000_000;
        let arena = classify_scheduled(&p, &inputs, init.clone(), &sched, cap, CycleDetector::ExactArena);
        let brent = classify_scheduled(&p, &inputs, init, &sched, cap, CycleDetector::Brent);
        prop_assert_eq!(arena, brent);
    }

    /// The packed-arena product explorer ≡ the retained owned-`Vec`
    /// reference, on random protocols, topologies, and fairness bounds:
    /// identical verdicts for both label and output r-stabilization, and
    /// every produced witness must be *valid* (its labels really change
    /// and its cycle really closes when replayed) — the two explorers may
    /// legitimately find different witnesses of the same oscillation.
    #[test]
    fn packed_verifier_agrees_with_naive(seed in 0u64..10_000, kind in 0usize..4, q in 2u64..4, r in 1u8..4) {
        let graph = verify_topology_of(kind);
        let n = graph.node_count();
        // Keep |Σ|^E · rⁿ exhaustively explorable: wide graphs get the
        // Boolean alphabet.
        let q = if graph.edge_count() > 4 { 2 } else { q };
        let (_, p) = protocol_pair(&graph, q);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x7e51f);
        let inputs: Vec<u64> = (0..n).map(|_| rng.random_range(0u64..3)).collect();
        let alphabet: Vec<u64> = (0..q).collect();
        let limits = Limits { max_states: 500_000, ..Limits::default() };

        let fast = verify_label_stabilization(&p, &inputs, &alphabet, r, limits.clone()).unwrap();
        let naive = verify_label_stabilization_naive(&p, &inputs, &alphabet, r, limits.clone()).unwrap();
        prop_assert_eq!(fast.is_stabilizing(), naive.is_stabilizing(), "label verdicts");
        for v in [&fast, &naive] {
            if let Verdict::NotStabilizing(w) = v {
                let (labels_changed, _, closed) = replay_witness(&p, &inputs, w);
                prop_assert!(labels_changed, "label witness must change labels");
                prop_assert!(closed, "label witness must close its cycle");
            }
        }

        let fast_o = verify_output_stabilization(&p, &inputs, &alphabet, r, limits.clone()).unwrap();
        let naive_o = verify_output_stabilization_naive(&p, &inputs, &alphabet, r, limits).unwrap();
        prop_assert_eq!(fast_o.is_stabilizing(), naive_o.is_stabilizing(), "output verdicts");
        for v in [&fast_o, &naive_o] {
            if let Verdict::NotStabilizing(w) = v {
                let (_, outputs_changed, closed) = replay_witness(&p, &inputs, w);
                prop_assert!(outputs_changed, "output witness must change outputs");
                prop_assert!(closed, "output witness must close its cycle");
            }
        }
    }

    /// The parallel product explorer is **deterministic in the thread
    /// count**: verdicts, witnesses (bit for bit — labeling and schedule,
    /// not just validity), and the explored state/edge counts are
    /// identical at 1, 2, and 4 workers, for both label and output
    /// stabilization, on random protocols, topologies, and fairness
    /// bounds. This is the hard invariant of the sharded-interning
    /// design, not a best-effort property.
    #[test]
    fn packed_verifier_identical_across_thread_counts(seed in 0u64..10_000, kind in 0usize..4, q in 2u64..4, r in 1u8..4) {
        let graph = verify_topology_of(kind);
        let n = graph.node_count();
        let q = if graph.edge_count() > 4 { 2 } else { q };
        let (_, p) = protocol_pair(&graph, q);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x3a11e1);
        let inputs: Vec<u64> = (0..n).map(|_| rng.random_range(0u64..3)).collect();
        let alphabet: Vec<u64> = (0..q).collect();
        let at = |threads: usize| {
            let limits = Limits { max_states: 500_000, threads, ..Limits::default() };
            let label =
                verify_label_stabilization_with_stats(&p, &inputs, &alphabet, r, limits.clone())
                    .unwrap();
            let output = verify_output_stabilization(&p, &inputs, &alphabet, r, limits).unwrap();
            (label, output)
        };
        let sequential = at(1);
        for threads in test_threads() {
            let parallel = at(threads);
            prop_assert_eq!(&sequential.0 .0, &parallel.0 .0, "label verdict+witness, {} threads", threads);
            prop_assert_eq!(sequential.0 .1, parallel.0 .1, "explore stats, {} threads", threads);
            prop_assert_eq!(&sequential.1, &parallel.1, "output verdict+witness, {} threads", threads);
        }
    }

    /// The parallel trim+Forward–Backward SCC engine is a **drop-in** for
    /// the serial Tarjan reference end to end: on random protocols,
    /// topologies, and fairness bounds, both backends produce identical
    /// verdicts, bit-identical witnesses, and identical [`Limits`]-level
    /// stats — at one worker and at every multi-worker count — and every
    /// witness replays as a real oscillation via `Scripted::cycle`.
    #[test]
    fn verifier_identical_across_scc_backends(seed in 0u64..10_000, kind in 0usize..4, q in 2u64..4, r in 1u8..4) {
        let graph = verify_topology_of(kind);
        let n = graph.node_count();
        let q = if graph.edge_count() > 4 { 2 } else { q };
        let (_, p) = protocol_pair(&graph, q);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5cc_d1ff);
        let inputs: Vec<u64> = (0..n).map(|_| rng.random_range(0u64..3)).collect();
        let alphabet: Vec<u64> = (0..q).collect();
        let at = |scc: SccBackend, threads: usize| {
            let limits = Limits { max_states: 500_000, threads, scc, ..Limits::default() };
            let label =
                verify_label_stabilization_with_stats(&p, &inputs, &alphabet, r, limits.clone())
                    .unwrap();
            let output = verify_output_stabilization(&p, &inputs, &alphabet, r, limits).unwrap();
            (label, output)
        };
        let reference = at(SccBackend::Tarjan, 1);
        let mut runs = vec![(1usize, at(SccBackend::ForwardBackward, 1))];
        for threads in test_threads() {
            runs.push((threads, at(SccBackend::ForwardBackward, threads)));
        }
        for (threads, fb) in &runs {
            prop_assert_eq!(&reference.0 .0, &fb.0 .0, "label verdict+witness, {} threads", threads);
            prop_assert_eq!(reference.0 .1, fb.0 .1, "explore stats, {} threads", threads);
            prop_assert_eq!(&reference.1, &fb.1, "output verdict+witness, {} threads", threads);
        }
        if let Verdict::NotStabilizing(w) = &reference.0 .0 {
            let (labels_changed, _, closed) = replay_witness(&p, &inputs, w);
            prop_assert!(labels_changed, "label witness must change labels");
            prop_assert!(closed, "label witness must close its cycle");
        }
        if let Verdict::NotStabilizing(w) = &reference.1 {
            let (_, outputs_changed, closed) = replay_witness(&p, &inputs, w);
            prop_assert!(outputs_changed, "output witness must change outputs");
            prop_assert!(closed, "output witness must close its cycle");
        }
    }

    /// A dense activation-set workload (a clique protocol where no node
    /// is deadline-forced initially, so every state fans out into
    /// `2^n − 1` activation edges) that exceeds [`Limits::max_edges`]
    /// must surface as [`VerifyError::TooManyEdges`] — never a panic or
    /// an OOM grind — under **both** SCC backends and at one and several
    /// workers. (The cap trips during exploration, before any SCC runs;
    /// asserting it per backend guards the error path staying shared.)
    #[test]
    fn edge_cap_trips_cleanly_on_dense_activation_sets(r in 2u8..4, max_edges in 16usize..200) {
        let graph = topology::clique(4);
        let (_, p) = protocol_pair(&graph, 2);
        let inputs = vec![0u64; 4];
        for scc in [SccBackend::ForwardBackward, SccBackend::Tarjan] {
            for threads in [1usize, 4] {
                let limits = Limits { max_edges, threads, scc, ..Limits::default() };
                let err = verify_label_stabilization(&p, &inputs, &[0, 1], r, limits)
                    .unwrap_err();
                prop_assert_eq!(
                    err,
                    VerifyError::TooManyEdges { limit: max_edges },
                    "scc = {:?}, threads = {}", scc, threads
                );
            }
        }
    }

    /// Symmetry-quotient exploration (`SymmetryMode::Auto`) ≡ the full
    /// unquotiented explorer on random node-symmetric protocols over
    /// ring and hypercube topologies: identical verdicts for label and
    /// output r-stabilization across the swept fairness bounds, a state
    /// space that never grows, every quotient witness valid on the
    /// **unquotiented** system — and the quotient run itself
    /// bit-identical across 1/2/4(/`STATELESS_TEST_THREADS`) workers and
    /// both SCC backends.
    #[test]
    fn quotient_verifier_agrees_with_full(seed in 0u64..10_000, kind in 0usize..4, q in 2u64..4, r in 1u8..4) {
        let graph = quotient_topology_of(kind);
        let n = graph.node_count();
        let q = if graph.edge_count() > 4 { 2 } else { q };
        let p = symmetric_protocol(&graph, q, seed);
        // Uniform inputs keep the automorphism group alive (asymmetric
        // inputs degrade Auto to the identity, which the `Off` arm
        // already covers).
        let inputs = vec![0u64; n];
        let alphabet: Vec<u64> = (0..q).collect();
        let full_limits = Limits { max_states: 500_000, ..Limits::default() };
        let full =
            verify_label_stabilization_with_stats(&p, &inputs, &alphabet, r, full_limits.clone())
                .unwrap();
        let full_o =
            verify_output_stabilization(&p, &inputs, &alphabet, r, full_limits.clone()).unwrap();
        let at = |threads: usize, scc: SccBackend| {
            let limits = Limits {
                threads,
                scc,
                symmetry: SymmetryMode::Auto,
                ..full_limits.clone()
            };
            let label =
                verify_label_stabilization_with_stats(&p, &inputs, &alphabet, r, limits.clone())
                    .unwrap();
            let output = verify_output_stabilization(&p, &inputs, &alphabet, r, limits).unwrap();
            (label, output)
        };
        let base = at(1, SccBackend::ForwardBackward);
        prop_assert_eq!(base.0 .0.is_stabilizing(), full.0.is_stabilizing(), "label verdicts");
        prop_assert_eq!(base.1.is_stabilizing(), full_o.is_stabilizing(), "output verdicts");
        prop_assert!(
            base.0 .1.states <= full.1.states,
            "quotient interned {} states, full {}",
            base.0 .1.states, full.1.states
        );
        if let Verdict::NotStabilizing(w) = &base.0 .0 {
            let (labels_changed, _, closed) = replay_witness(&p, &inputs, w);
            prop_assert!(labels_changed, "quotient label witness must change labels");
            prop_assert!(closed, "quotient label witness must close its cycle");
        }
        if let Verdict::NotStabilizing(w) = &base.1 {
            let (_, outputs_changed, closed) = replay_witness(&p, &inputs, w);
            prop_assert!(outputs_changed, "quotient output witness must change outputs");
            prop_assert!(closed, "quotient output witness must close its cycle");
        }
        for threads in test_threads() {
            prop_assert_eq!(&base, &at(threads, SccBackend::ForwardBackward), "{} threads", threads);
        }
        prop_assert_eq!(&base, &at(1, SccBackend::Tarjan), "tarjan");
        prop_assert_eq!(&base, &at(4, SccBackend::Tarjan), "tarjan, 4 threads");
    }

    /// Every `NotStabilizing` witness of the packed explorer, replayed
    /// via `Scripted::cycle`, oscillates: labels change within the lap
    /// and the labeling closes the cycle (the generalization of the
    /// hand-written `witness_schedule_really_oscillates` test to random
    /// protocols).
    #[test]
    fn verifier_witness_replays_as_oscillation(seed in 0u64..10_000, kind in 0usize..4, r in 1u8..4) {
        let graph = verify_topology_of(kind);
        let n = graph.node_count();
        let (_, p) = protocol_pair(&graph, 2);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9b1d);
        let inputs: Vec<u64> = (0..n).map(|_| rng.random_range(0u64..3)).collect();
        let limits = Limits { max_states: 500_000, ..Limits::default() };
        let verdict = verify_label_stabilization(&p, &inputs, &[0, 1], r, limits).unwrap();
        if let Verdict::NotStabilizing(w) = verdict {
            prop_assert!(!w.schedule.is_empty());
            prop_assert!(w.schedule.iter().all(|step| !step.is_empty()));
            let (labels_changed, _, closed) = replay_witness(&p, &inputs, &w);
            prop_assert!(labels_changed, "witness labels oscillate");
            prop_assert!(closed, "witness cycle closes");
        }
    }
}

/// The edge-less verifier's memory win, pinned end to end on the
/// clique(4) dense-activation regression (the same instance whose CSR
/// made `TooManyEdges` the binding limit): the **peak transient** edge
/// bytes the exploration + witness pipeline ever holds
/// ([`ExploreStats::edge_bytes`] — per-batch record buffers plus the
/// re-expanded verdict-component CSR) must stay below half of what
/// storing the full product CSR used to cost. The old figure is
/// reconstructed from the materialized adjacency (offsets at 8 bytes
/// per state, targets + activation metadata at 8 bytes per edge) — the
/// exact layout the pre-oracle verifier kept resident.
/// Satellite of the symmetry PR: asking the oracle-SCC engine for more
/// workers than the machine has cores must not run *slower* than asking
/// for exactly the core count. The regression this guards (BENCH_engine
/// `scc_vs_t1` at 0.28/0.22 for t=2/4 on a 1-core host) had three
/// compounding causes, each now fixed: `ProductOracle` kept one global
/// `Mutex` around its scratch pool and acquired it twice per successor
/// query from every worker (now striped by worker thread id); idle FB
/// workers busy-spun on the empty task queue while one worker walked
/// the giant initial slice, stealing the only core (now parked on a
/// condvar); and — the dominant term — extra workers shrank the
/// FB→Tarjan cutoff, so rounds of Forward–Backward (whose backward
/// closure re-expands the slice to a fixpoint — real extra work through
/// a regenerating oracle) replaced the single Tarjan pass with **zero
/// additional cores to pay for them**. `effective_workers` therefore
/// clamps requests at the available parallelism, and this test pins the
/// clamp end to end: condense at 2×/4× the core count must stay within
/// a noise band of condense at the core count (the sibling of
/// `tests/scc.rs`'s `small_graphs_condense_without_parallel_overhead`,
/// but through the verifier's oracle path on a real product graph).
#[test]
fn oracle_scc_scales_without_contention() {
    // Label rotation on uniring(9) (the verify_scaling workload one size
    // down): ~100k product states — past the SCC engine's
    // PARALLEL_MIN_STATES, so t=2/4 genuinely spawn workers against the
    // oracle.
    let graph = topology::unidirectional_ring(9);
    let p = Protocol::builder(graph, 1.0)
        .uniform_reaction(FnBufReaction::new(
            vec![0u64; 1],
            |_, inc: &[u64], _, out: &mut [u64]| {
                out[0] = inc[0];
                0
            },
        ))
        .build()
        .unwrap();
    let inputs = vec![0u64; 9];
    let ep = explore_product(&p, &inputs, &[0, 1], 2, Limits::default()).unwrap();
    assert!(
        ep.stats().states > 32_768,
        "the timing graph must be large enough to engage parallel SCC \
         (got {} states)",
        ep.stats().states
    );
    // Oversubscribed requests clamp to the same worker count as the
    // baseline, i.e. the identical code path — so best-of-runs is the
    // right estimator (immune to scheduler-noise outliers on loaded
    // hosts, where medians of small samples flake).
    // Samples are interleaved (base, 2x, 4x within each round) so slow
    // drift — CPU-quota throttling, frequency scaling — hits every
    // request equally instead of biasing whichever batch runs last.
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    let requests = [cores, 2 * cores, 4 * cores];
    let mut best = [f64::INFINITY; 3];
    for _ in 0..5 {
        for (slot, &threads) in best.iter_mut().zip(&requests) {
            let t = std::time::Instant::now();
            std::hint::black_box(ep.condense(SccBackend::ForwardBackward, threads));
            *slot = slot.min(t.elapsed().as_secs_f64());
        }
    }
    for (factor, &over) in [2usize, 4].iter().zip(&best[1..]) {
        let ratio = best[0] / over;
        assert!(
            ratio >= 0.90,
            "oracle condense at {factor}x the core count ({cores} cores) is \
             {ratio:.2}x the at-core-count throughput — oversubscribed \
             requests must clamp to the available parallelism (≥ ~1.0x \
             expected on any host, 0.90 asserted for noise)"
        );
    }
}

#[test]
fn edgeless_verifier_peak_transient_stays_below_half_the_old_csr() {
    let graph = topology::clique(4);
    let (_, p) = protocol_pair(&graph, 2);
    let inputs = vec![0u64; 4];
    let alphabet = [0u64, 1];
    for r in [2u8, 3] {
        let (_, stats) =
            verify_label_stabilization_with_stats(&p, &inputs, &alphabet, r, Limits::default())
                .unwrap();
        let (offsets, targets) =
            product_graph_csr(&p, &inputs, &alphabet, r, Limits::default()).unwrap();
        let old_csr_bytes = offsets.len() * std::mem::size_of::<usize>() + targets.len() * (4 + 4);
        assert!(
            stats.edge_bytes * 2 < old_csr_bytes,
            "r = {r}: peak transient edge bytes ({}) must stay below half the \
             old stored-CSR bytes ({old_csr_bytes}) on clique(4)",
            stats.edge_bytes
        );
        assert!(
            stats.edge_bytes > 0,
            "r = {r}: the peak must be tracked, not dropped"
        );
    }
}
