//! Graph-oracle differential suite for `stateless_core::scc`: the
//! parallel trim + Forward–Backward engine (`condense`) must produce the
//! **same components in the same canonical numbering** as the serial
//! iterative Tarjan oracle (`tarjan`), at every thread count, on random
//! CSR digraphs from two generator families (Erdős–Rényi, including
//! self-loops, and layered DAGs of cliques) plus fixed regression
//! graphs. The verifier's cross-backend equivalence rides on exactly
//! this equality (`tests/differential.rs`).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use stateless_computation::core::scc::{
    condense, condense_oracle, condense_oracle_with, condense_with, effective_workers, from_fn,
    tarjan, tarjan_oracle,
};

/// Thread counts the determinism assertions run at. `1/2/4` always;
/// `STATELESS_TEST_THREADS=N` (the CI multi-worker job) adds `N`, so the
/// suite provably exercises more than one worker where cores exist.
fn test_threads() -> Vec<usize> {
    let mut counts = vec![1, 2, 4];
    if let Some(n) = std::env::var("STATELESS_TEST_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        if !counts.contains(&n) {
            counts.push(n);
        }
    }
    counts
}

/// CSR arrays from an explicit edge list over `n` states.
fn csr(n: usize, edges: &[(u32, u32)]) -> (Vec<usize>, Vec<u32>) {
    let mut offsets = vec![0usize; n + 1];
    for &(u, _) in edges {
        offsets[u as usize + 1] += 1;
    }
    for i in 0..n {
        offsets[i + 1] += offsets[i];
    }
    let mut cursor = offsets[..n].to_vec();
    let mut targets = vec![0u32; edges.len()];
    for &(u, v) in edges {
        targets[cursor[u as usize]] = v;
        cursor[u as usize] += 1;
    }
    (offsets, targets)
}

/// Asserts `condense` ≡ `tarjan` — same components, same canonical
/// numbering — at every test thread count, and returns the oracle's
/// component vector for further shape assertions.
fn assert_matches_oracle(n: usize, edges: &[(u32, u32)]) -> Vec<u32> {
    let (offsets, targets) = csr(n, edges);
    let oracle = tarjan(&offsets, &targets);
    // An **implicit** view of the same graph — successors regenerated
    // from the edge list on every query, no CSR borrowed — must agree
    // with every CSR entry point: the verifier's edge-less pipeline is
    // exactly this equivalence.
    let implicit = from_fn(n, |u, out| {
        out.clear();
        out.extend(
            targets[offsets[u as usize]..offsets[u as usize + 1]]
                .iter()
                .copied(),
        );
    });
    assert_eq!(
        tarjan_oracle(&implicit),
        oracle,
        "oracle-Tarjan diverged from CSR Tarjan (n = {n}, {} edges)",
        edges.len()
    );
    for threads in test_threads() {
        assert_eq!(
            condense(&offsets, &targets, threads),
            oracle,
            "condense diverged from the Tarjan oracle at {threads} threads \
             (n = {n}, {} edges)",
            edges.len()
        );
        assert_eq!(
            condense_oracle(&implicit, threads),
            oracle,
            "implicit-oracle condense diverged from the Tarjan oracle at \
             {threads} threads (n = {n}, {} edges)",
            edges.len()
        );
        // Cutoff 0 disables the slice-local Tarjan shortcut, so the pure
        // trim + Forward–Backward path is oracle-tested even on graphs
        // far below the production cutoff.
        assert_eq!(
            condense_with(&offsets, &targets, threads, 0),
            oracle,
            "pure FB diverged from the Tarjan oracle at {threads} threads \
             (n = {n}, {} edges)",
            edges.len()
        );
        assert_eq!(
            condense_oracle_with(&implicit, threads, 0),
            oracle,
            "implicit-oracle pure FB diverged from the Tarjan oracle at \
             {threads} threads (n = {n}, {} edges)",
            edges.len()
        );
    }
    oracle
}

/// Erdős–Rényi digraph on `n` states: every ordered pair — including
/// self-loops, which the product graphs this module serves do contain —
/// is an edge with probability `p`.
fn erdos_renyi(rng: &mut StdRng, n: usize, p: f64) -> Vec<(u32, u32)> {
    let mut edges = Vec::new();
    for u in 0..n as u32 {
        for v in 0..n as u32 {
            if rng.random_bool(p) {
                edges.push((u, v));
            }
        }
    }
    edges
}

/// Layered DAG of cliques: `layers` layers of bidirectional-clique
/// blocks of `width` states (each block one SCC), with every
/// consecutive-layer state pair connected forward with probability
/// `0.5` — an adversarial shape for the trim pass (nothing trims) and
/// for FB slicing (many same-size components).
fn layered_cliques(rng: &mut StdRng, layers: usize, width: usize) -> (usize, Vec<(u32, u32)>) {
    let n = layers * width;
    let mut edges = Vec::new();
    for l in 0..layers {
        let base = (l * width) as u32;
        for a in 0..width as u32 {
            for b in 0..width as u32 {
                if a != b {
                    edges.push((base + a, base + b));
                }
            }
        }
        if l + 1 < layers {
            for a in 0..width as u32 {
                for b in 0..width as u32 {
                    if rng.random_bool(0.5) {
                        edges.push((base + a, base + width as u32 + b));
                    }
                }
            }
        }
    }
    (n, edges)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Erdős–Rényi graphs across the density spectrum — sparse graphs
    /// exercise the trim pass, dense ones collapse into few giant SCCs.
    #[test]
    fn erdos_renyi_matches_tarjan(seed in 0u64..100_000, n in 1usize..40, permille in 5u64..250) {
        let mut rng = StdRng::seed_from_u64(seed);
        let edges = erdos_renyi(&mut rng, n, permille as f64 / 1000.0);
        assert_matches_oracle(n, &edges);
    }

    /// Layered DAGs of cliques: the condensation must recover exactly
    /// one component per clique block, numbered by layer.
    #[test]
    fn layered_cliques_match_tarjan(seed in 0u64..100_000, layers in 1usize..6, width in 1usize..6) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xc11c);
        let (n, edges) = layered_cliques(&mut rng, layers, width);
        let comp = assert_matches_oracle(n, &edges);
        // Each width-block is one SCC; canonical numbering orders the
        // blocks by their first state, i.e. by layer.
        let expected: Vec<u32> = (0..n).map(|u| (u / width) as u32).collect();
        prop_assert_eq!(comp, expected);
    }
}

#[test]
fn empty_graph() {
    assert_eq!(assert_matches_oracle(0, &[]), Vec::<u32>::new());
}

#[test]
fn self_loops_are_kept_out_of_the_trim() {
    // 0 →(loop) 0 → 1 → 2(loop): self-loops pin their states as real
    // one-state SCCs; state 1 trims away as a trivial singleton. The
    // partition is all-singletons either way — the point is that no
    // path panics or misnumbers.
    let comp = assert_matches_oracle(3, &[(0, 0), (0, 1), (1, 2), (2, 2)]);
    assert_eq!(comp, vec![0, 1, 2]);
}

#[test]
fn two_cycles() {
    // Two disjoint 2-cycles plus a bridge: exactly two components.
    let comp = assert_matches_oracle(4, &[(0, 1), (1, 0), (2, 3), (3, 2), (1, 2)]);
    assert_eq!(comp, vec![0, 0, 1, 1]);
}

#[test]
fn single_giant_scc() {
    // A 512-cycle with chords: one component containing every state.
    let n = 512u32;
    let mut edges: Vec<(u32, u32)> = (0..n).map(|u| (u, (u + 1) % n)).collect();
    edges.extend((0..n).step_by(7).map(|u| (u, (u + n / 2) % n)));
    let comp = assert_matches_oracle(n as usize, &edges);
    assert!(comp.iter().all(|&c| c == 0), "one giant component");
}

#[test]
fn max_id_isolated_state() {
    // The highest state id has no edges at all; the rest form a cycle.
    // Guards the offsets/degree bookkeeping at the array boundary.
    let comp = assert_matches_oracle(5, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
    assert_eq!(comp, vec![0, 0, 0, 0, 1]);
}

/// Satellite of the oracle refactor: small graphs must not pay for
/// parallelism. Below `PARALLEL_MIN_STATES` the engine is forced
/// single-worker (`effective_workers`), so `condense` at 2/4 threads
/// runs the *identical* serial code path as 1 thread — first asserted
/// structurally, then backed by a median-of-runs timing ratio with
/// slack for scheduler noise (the regression this guards was t4 at
/// 0.56× t1, far outside any noise band).
#[test]
fn small_graphs_condense_without_parallel_overhead() {
    // Structural: the scheduling decision itself. Large graphs honor the
    // request only up to the machine's core count — oversubscribed
    // workers would add FB rounds with no cores to run them on.
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    assert_eq!(effective_workers(1 << 14, 4), 1, "small graph, 4 threads");
    assert_eq!(effective_workers(1 << 14, 2), 1, "small graph, 2 threads");
    assert_eq!(
        effective_workers(1 << 16, 4),
        4.min(cores),
        "large graph, 4 threads"
    );

    // Timing: a ~16K-state giant SCC (cycle + chords), well under the
    // single-worker threshold, must condense at 2/4 threads within a
    // ~0.95× band of the 1-thread time. Thread counts below the
    // threshold all run the *identical* serial code path, so the
    // best-of-runs estimator is the right one — it is immune to the
    // scheduler-noise outliers that make medians of millisecond-scale
    // samples flaky on loaded hosts.
    let n: u32 = 16_000;
    let mut edges: Vec<(u32, u32)> = (0..n).map(|u| (u, (u + 1) % n)).collect();
    edges.extend((0..n).step_by(7).map(|u| (u, (u + n / 2) % n)));
    let (offsets, targets) = csr(n as usize, &edges);
    // Interleave the samples (t1, t2, t4 within each round) so slow
    // drift — CPU-quota throttling after sustained load, frequency
    // scaling — hits every thread count equally instead of biasing
    // whichever batch runs last.
    let counts = [1usize, 2, 4];
    let mut best = [f64::INFINITY; 3];
    for _ in 0..15 {
        for (slot, &threads) in best.iter_mut().zip(&counts) {
            let t = std::time::Instant::now();
            std::hint::black_box(condense(&offsets, &targets, threads));
            *slot = slot.min(t.elapsed().as_secs_f64());
        }
    }
    let t1 = best[0];
    for (&threads, &tn) in counts.iter().zip(&best).skip(1) {
        let ratio = t1 / tn;
        assert!(
            ratio >= 0.90,
            "condense at {threads} threads is {ratio:.2}x the 1-thread \
             throughput on a {n}-state graph — small-slice work must stay \
             single-worker (≥ ~0.95x expected, 0.90 asserted for noise)"
        );
    }
}

#[test]
fn pure_dag_numbering_is_the_identity() {
    // On a DAG every state is its own component and the canonical
    // numbering (by minimum member id) is the identity permutation.
    let comp = assert_matches_oracle(6, &[(0, 2), (1, 2), (2, 3), (2, 4), (4, 5)]);
    assert_eq!(comp, vec![0, 1, 2, 3, 4, 5]);
}
