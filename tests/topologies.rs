//! The paper's future-work direction (3): stateless computation on
//! further topologies — hypercube, torus, star, path. The Prop 2.3
//! generic protocol and the convergence bounds must hold on all of them.

use stateless_computation::core::prelude::*;
use stateless_computation::protocols::generic::{generic_protocol, round_bound, GenericLabel};

fn check_parity_on(graph: stateless_core::graph::DiGraph) {
    let n = graph.node_count();
    assert!(graph.is_strongly_connected());
    let p = generic_protocol(graph, |x: &[bool]| {
        x.iter().filter(|&&b| b).count() % 2 == 1
    })
    .unwrap();
    let inputs_sets: Vec<u32> = vec![0, 1, (1 << n.min(20)) - 1, 0b1011];
    for bits in inputs_sets {
        let x: Vec<bool> = (0..n).map(|i| bits >> (i % 20) & 1 == 1).collect();
        let inputs: Vec<u64> = x.iter().map(|&b| u64::from(b)).collect();
        let mut sim =
            Simulation::new(&p, &inputs, vec![GenericLabel::zero(n); p.edge_count()]).unwrap();
        let steps = sim
            .run_until_label_stable(&mut Synchronous, round_bound(n) + 1)
            .unwrap();
        assert!(steps <= round_bound(n), "Rₙ ≤ 2n on every topology");
        sim.run(&mut Synchronous, 1);
        let expected = u64::from(x.iter().filter(|&&b| b).count() % 2 == 1);
        assert_eq!(sim.outputs(), &vec![expected; n][..]);
    }
}

#[test]
fn generic_protocol_on_hypercube() {
    check_parity_on(topology::hypercube(3));
    check_parity_on(topology::hypercube(4));
}

#[test]
fn generic_protocol_on_torus() {
    check_parity_on(topology::torus(3, 3));
    check_parity_on(topology::torus(4, 3));
}

#[test]
fn generic_protocol_on_star_and_path() {
    check_parity_on(topology::star(9));
    check_parity_on(topology::bidirectional_path(8));
}

#[test]
fn contagion_on_torus_spreads_from_a_block() {
    use stateless_computation::core::convergence::classify_sync;
    use stateless_computation::games::contagion::{contagion_protocol, seeded_labeling};
    let g = topology::torus(4, 4);
    let p = contagion_protocol(g.clone(), 1, 2);
    // A 2×2 block of adopters: every frontier node sees 2 of 4 neighbors.
    let seeds = [0usize, 1, 4, 5];
    let init = seeded_labeling(&g, &seeds);
    let outcome = classify_sync(&p, &[0; 16], init, 1_000_000).unwrap();
    // With 4-neighbor adjacency, a frontier node sees only 1 of 4 adopters:
    // the block self-sustains but does NOT spread — Morris's point that the
    // contagion threshold depends on neighborhood structure.
    let outs = outcome.final_outputs().expect("stabilizes");
    let adopters: Vec<usize> = (0..16).filter(|&i| outs[i] == 1).collect();
    assert_eq!(adopters, seeds.to_vec());
}

#[test]
fn counter_rejects_even_rings_but_runs_on_all_odd_sizes() {
    use stateless_computation::protocols::counter::counter_protocol;
    for n in (3..=13).step_by(2) {
        assert!(counter_protocol(n, 6).is_ok(), "odd n = {n}");
    }
    for n in (4..=12).step_by(2) {
        assert!(counter_protocol(n, 6).is_err(), "even n = {n}");
    }
}
