//! Memoized verdict cache suite: a hit must be bit-identical to the
//! computing run's `{verdict, witness, stats}` no matter which thread
//! count or SCC backend either side used (they are excluded from the
//! cache key by design); a [`Verdict::Partial`] must never be served as
//! a final answer — it is stored as a resume pointer, so a later query
//! with a longer (or no) deadline *continues* the exploration; a
//! corrupt persisted cache must degrade to recomputation, never a wrong
//! answer; and LRU eviction must respect the byte budget.

use std::path::PathBuf;
use std::time::Duration;

use stateless_computation::core::prelude::*;
use stateless_computation::verify::cache::DEFAULT_BYTE_BUDGET;
use stateless_computation::verify::{
    verify_label_stabilization_with_stats, CacheOutcome, CheckpointPolicy, Limits, SccBackend,
    SymmetryMode, Verdict, VerdictCache,
};

/// Thread counts the hit-equality matrix runs at (mirrors the
/// differential suite): `1`, `2`, `4`, plus `STATELESS_TEST_THREADS`.
fn test_threads() -> Vec<usize> {
    let mut counts = vec![1, 2, 4];
    if let Some(n) = std::env::var("STATELESS_TEST_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        if !counts.contains(&n) {
            counts.push(n);
        }
    }
    counts
}

/// A fresh, empty scratch directory unique to this process and test.
fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "stateless-cache-test-{}-{name}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The non-stabilizing rotation ring (every node copies its
/// predecessor) — its `NotStabilizing` witness exercises the full
/// labeling/schedule/adversary encoding of a cache entry.
fn rotate_ring(n: usize) -> Protocol<bool> {
    Protocol::builder(topology::unidirectional_ring(n), 1.0)
        .uniform_reaction(FnReaction::new(|_, inc: &[bool], _| (vec![inc[0]], 42)))
        .build()
        .unwrap()
}

/// A stabilizing twin: every node emits a constant, so the ring settles
/// in one round and the cached verdict is a plain `Stabilizing`.
fn const_ring(n: usize) -> Protocol<bool> {
    Protocol::builder(topology::unidirectional_ring(n), 1.0)
        .uniform_reaction(FnReaction::new(|_, _: &[bool], _| (vec![false], 7)))
        .build()
        .unwrap()
}

/// The key property of the cache key: thread count and SCC backend are
/// **excluded** from the instance fingerprint, so one cold computation
/// serves every `{threads} × {backend}` combination — bit-identically,
/// witness and stats included. Symmetry mode is *in* the key, so each
/// mode gets its own cold run and its own entry.
#[test]
fn hits_are_bit_identical_across_threads_backends_and_symmetry() {
    let witnessed = rotate_ring(4);
    let settling = const_ring(4);
    let inputs = [0u64; 4];
    let alphabet = [false, true];
    let r = 2;
    for (name, protocol) in [("rotate", &witnessed), ("const", &settling)] {
        let cache = VerdictCache::in_memory(DEFAULT_BYTE_BUDGET);
        for symmetry in [SymmetryMode::Off, SymmetryMode::Auto] {
            let base = Limits {
                symmetry,
                ..Limits::default()
            };
            let reference = verify_label_stabilization_with_stats(
                protocol,
                &inputs,
                &alphabet,
                r,
                base.clone(),
            )
            .unwrap();
            let cold = cache
                .verify_label(protocol, &inputs, &alphabet, r, &base)
                .unwrap();
            assert_eq!(cold.outcome, CacheOutcome::Miss, "{name} {symmetry:?}");
            assert_eq!((cold.verdict.clone(), cold.stats), reference, "{name}");
            for threads in test_threads() {
                for scc in [SccBackend::ForwardBackward, SccBackend::Tarjan] {
                    let hit = cache
                        .verify_label(
                            protocol,
                            &inputs,
                            &alphabet,
                            r,
                            &Limits {
                                threads,
                                scc,
                                symmetry,
                                ..Limits::default()
                            },
                        )
                        .unwrap();
                    assert_eq!(
                        hit.outcome,
                        CacheOutcome::Hit,
                        "{name} {symmetry:?} t={threads} {scc:?}"
                    );
                    assert_eq!(
                        (hit.verdict, hit.stats),
                        reference,
                        "{name} {symmetry:?} t={threads} {scc:?}: hit must be bit-identical"
                    );
                    assert_eq!(hit.fingerprint, cold.fingerprint);
                }
            }
        }
        // Two symmetry modes ⇒ two distinct entries.
        assert_eq!(cache.len(), 2, "{name}");
    }
}

/// The `Partial` contract: a deadline-truncated run is memoized only as
/// a resume pointer — a repeat query is `Resumed` (the exploration
/// continues from the checkpoint epoch and completes under the longer
/// deadline, bit-identical to an uninterrupted run), and only *then* is
/// the final verdict memoized, making a third query a plain `Hit`.
#[test]
fn partial_is_never_served_as_final_and_resumes_instead() {
    let p = rotate_ring(4);
    let inputs = [0u64; 4];
    let alphabet = [false, true];
    let r = 3;
    let ckpt = scratch_dir("partial-ckpt");
    let reference =
        verify_label_stabilization_with_stats(&p, &inputs, &alphabet, r, Limits::default())
            .unwrap();
    let cache = VerdictCache::in_memory(DEFAULT_BYTE_BUDGET);
    let truncated = cache
        .verify_label(
            &p,
            &inputs,
            &alphabet,
            r,
            &Limits {
                deadline: Some(Duration::from_nanos(1)),
                checkpoint: Some(CheckpointPolicy::new(&ckpt)),
                ..Limits::default()
            },
        )
        .unwrap();
    assert_eq!(truncated.outcome, CacheOutcome::Miss);
    assert!(
        matches!(
            truncated.verdict,
            Verdict::Partial {
                checkpoint: Some(_),
                ..
            }
        ),
        "a 1 ns deadline must truncate, got {:?}",
        truncated.verdict
    );
    assert_eq!(cache.len(), 1, "the pointer is memoized");
    // The repeat query carries no deadline: it must RESUME the stored
    // checkpoint — never be handed the Partial as if it were final.
    let resumed = cache
        .verify_label(&p, &inputs, &alphabet, r, &Limits::default())
        .unwrap();
    assert_eq!(resumed.outcome, CacheOutcome::Resumed);
    assert_eq!(
        (resumed.verdict, resumed.stats),
        reference,
        "resumed completion is bit-identical to an uninterrupted run"
    );
    let hit = cache
        .verify_label(&p, &inputs, &alphabet, r, &Limits::default())
        .unwrap();
    assert_eq!(hit.outcome, CacheOutcome::Hit, "completion was memoized");
    assert_eq!((hit.verdict, hit.stats), reference);
    let _ = std::fs::remove_dir_all(&ckpt);
}

/// A stale resume pointer (its checkpoint directory deleted) degrades
/// to a plain recomputation — still the right verdict, reported as the
/// `Miss` it effectively was.
#[test]
fn dead_resume_pointers_degrade_to_recompute() {
    let p = rotate_ring(4);
    let inputs = [0u64; 4];
    let alphabet = [false, true];
    let r = 3;
    let ckpt = scratch_dir("dead-pointer-ckpt");
    let reference =
        verify_label_stabilization_with_stats(&p, &inputs, &alphabet, r, Limits::default())
            .unwrap();
    let cache = VerdictCache::in_memory(DEFAULT_BYTE_BUDGET);
    let truncated = cache
        .verify_label(
            &p,
            &inputs,
            &alphabet,
            r,
            &Limits {
                deadline: Some(Duration::from_nanos(1)),
                checkpoint: Some(CheckpointPolicy::new(&ckpt)),
                ..Limits::default()
            },
        )
        .unwrap();
    assert!(matches!(truncated.verdict, Verdict::Partial { .. }));
    std::fs::remove_dir_all(&ckpt).unwrap();
    let recomputed = cache
        .verify_label(&p, &inputs, &alphabet, r, &Limits::default())
        .unwrap();
    assert_eq!(recomputed.outcome, CacheOutcome::Miss);
    assert_eq!((recomputed.verdict, recomputed.stats), reference);
}

/// Corrupt persisted entries are skipped, never trusted: flipping bytes
/// in every epoch file leaves a reopened cache empty (or falls back to
/// a still-valid epoch when only the newest is torn), the next query
/// recomputes the correct verdict, and the store heals itself.
#[test]
fn corrupt_cache_files_recompute_instead_of_serving_garbage() {
    let p = rotate_ring(4);
    let inputs = [0u64; 4];
    let alphabet = [false, true];
    let r = 2;
    let dir = scratch_dir("corrupt-cache");
    let reference =
        verify_label_stabilization_with_stats(&p, &inputs, &alphabet, r, Limits::default())
            .unwrap();
    {
        let cache = VerdictCache::open(&dir, DEFAULT_BYTE_BUDGET).unwrap();
        let cold = cache
            .verify_label(&p, &inputs, &alphabet, r, &Limits::default())
            .unwrap();
        assert_eq!(cold.outcome, CacheOutcome::Miss);
    }
    // A clean reopen serves a hit from disk.
    {
        let cache = VerdictCache::open(&dir, DEFAULT_BYTE_BUDGET).unwrap();
        let hit = cache
            .verify_label(&p, &inputs, &alphabet, r, &Limits::default())
            .unwrap();
        assert_eq!(hit.outcome, CacheOutcome::Hit, "reload from disk");
        assert_eq!((hit.verdict, hit.stats), reference);
    }
    // Corrupt EVERY epoch file: the checksummed framing must reject
    // them all and the reopened cache recomputes from scratch.
    let mut flipped = 0;
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "ckpt") {
            let mut bytes = std::fs::read(&path).unwrap();
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0xff;
            std::fs::write(&path, bytes).unwrap();
            flipped += 1;
        }
    }
    assert!(flipped > 0, "the cache must have persisted epoch files");
    {
        let cache = VerdictCache::open(&dir, DEFAULT_BYTE_BUDGET).unwrap();
        assert!(cache.is_empty(), "corrupt epochs must load nothing");
        let recomputed = cache
            .verify_label(&p, &inputs, &alphabet, r, &Limits::default())
            .unwrap();
        assert_eq!(recomputed.outcome, CacheOutcome::Miss);
        assert_eq!(
            (recomputed.verdict, recomputed.stats),
            reference,
            "recomputation after corruption is still exact"
        );
    }
    // The recomputation re-persisted: a final reopen hits again.
    {
        let cache = VerdictCache::open(&dir, DEFAULT_BYTE_BUDGET).unwrap();
        let hit = cache
            .verify_label(&p, &inputs, &alphabet, r, &Limits::default())
            .unwrap();
        assert_eq!(hit.outcome, CacheOutcome::Hit, "store healed itself");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// LRU eviction under the byte budget: distinct instances (the input
/// vector is part of the fingerprint) fill a deliberately small cache;
/// the oldest entries fall out — re-querying them is a `Miss` — while
/// the most recent stays a `Hit`, and `total_bytes` never exceeds the
/// budget once more than one entry is involved.
#[test]
fn eviction_respects_the_byte_budget_lru_first() {
    let p = rotate_ring(3);
    let alphabet = [false, true];
    let r = 1;
    // Size one entry, then budget for about two of them.
    let probe = VerdictCache::in_memory(DEFAULT_BYTE_BUDGET);
    probe
        .verify_label(&p, &[0, 0, 0], &alphabet, r, &Limits::default())
        .unwrap();
    let entry_bytes = probe.total_bytes();
    assert!(entry_bytes > 0);
    let budget = entry_bytes * 2 + entry_bytes / 2;
    let cache = VerdictCache::in_memory(budget);
    let inputs_of = |k: u64| [k, k + 1, k + 2];
    for k in 0..4u64 {
        let miss = cache
            .verify_label(&p, &inputs_of(k), &alphabet, r, &Limits::default())
            .unwrap();
        assert_eq!(miss.outcome, CacheOutcome::Miss, "instance {k} is fresh");
        assert!(
            cache.total_bytes() <= budget,
            "after instance {k}: {} bytes exceeds the {budget} budget",
            cache.total_bytes()
        );
    }
    assert!(
        cache.len() < 4,
        "four entries cannot fit a two-entry budget"
    );
    // The newest instance survived; the oldest was evicted LRU-first.
    let newest = cache
        .verify_label(&p, &inputs_of(3), &alphabet, r, &Limits::default())
        .unwrap();
    assert_eq!(newest.outcome, CacheOutcome::Hit);
    let oldest = cache
        .verify_label(&p, &inputs_of(0), &alphabet, r, &Limits::default())
        .unwrap();
    assert_eq!(oldest.outcome, CacheOutcome::Miss, "evicted LRU-first");
}

/// A cache shared by the cached sweep drivers: the second sweep over
/// the same instance set is pure hits, and its rows (verdicts and
/// witnesses) are identical to the cold sweep's and to the uncached
/// driver's.
#[test]
fn cached_sweeps_warm_to_pure_hits_with_identical_rows() {
    use stateless_computation::protocols::bfs_tree::{bfs_alphabet, bfs_tree_protocol};
    use stateless_computation::verify::{
        sweep_byzantine_placements, sweep_byzantine_placements_cached,
    };
    let p = bfs_tree_protocol(topology::bidirectional_ring(4), 0, 2, FaultModel::none()).unwrap();
    let inputs = vec![0u64; 4];
    let alphabet = bfs_alphabet(2);
    let plain =
        sweep_byzantine_placements(&p, &inputs, &alphabet, 1, Limits::default(), 1, &[]).unwrap();
    let cache = VerdictCache::in_memory(DEFAULT_BYTE_BUDGET);
    let cold = sweep_byzantine_placements_cached(
        &p,
        &inputs,
        &alphabet,
        1,
        Limits::default(),
        1,
        &[],
        &cache,
    )
    .unwrap();
    assert_eq!(cold.len(), plain.len());
    assert!(cold.iter().all(|row| row.cache == CacheOutcome::Miss));
    let warm = sweep_byzantine_placements_cached(
        &p,
        &inputs,
        &alphabet,
        1,
        Limits::default(),
        1,
        &[],
        &cache,
    )
    .unwrap();
    assert!(
        warm.iter().all(|row| row.cache == CacheOutcome::Hit),
        "warm sweep must be pure hits"
    );
    for ((plain_row, cold_row), warm_row) in plain.iter().zip(&cold).zip(&warm) {
        assert_eq!(plain_row.placement, cold_row.placement);
        assert_eq!(plain_row.verdict, cold_row.verdict, "cold matches uncached");
        assert_eq!(cold_row.placement, warm_row.placement);
        assert_eq!(cold_row.verdict, warm_row.verdict, "hit matches cold");
        assert_eq!(cold_row.stats, warm_row.stats);
    }
}
