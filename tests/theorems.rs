//! Cross-crate integration tests: each test replays one of the paper's
//! results end-to-end through the public API of the umbrella crate.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use stateless_computation::branching::convert as bpconv;
use stateless_computation::branching::library as bps;
use stateless_computation::circuits::library as circuits;
use stateless_computation::comm::fooling;
use stateless_computation::core::convergence::{classify_sync, SyncOutcome};
use stateless_computation::core::prelude::*;
use stateless_computation::games::bgp;
use stateless_computation::hypercube::Snake;
use stateless_computation::protocols::circuit_ring::{compile_circuit, CircuitLabel};
use stateless_computation::protocols::counter::CounterFields;
use stateless_computation::protocols::example1;
use stateless_computation::protocols::generic::{generic_protocol, GenericLabel};
use stateless_computation::protocols::metanode::{lifted_labeling, metanode_lift};
use stateless_computation::protocols::snake_reduction::{eq_initial_labeling, eq_reduction};
use stateless_computation::protocols::string_oscillation::StringOscillation;
use stateless_computation::protocols::tm_ring;
use stateless_computation::turing::library as machines;
use stateless_computation::verify::{
    enumerate_stable_labelings, verify_label_stabilization, Limits,
};

/// Theorem 3.1 + Example 1: two stable labelings ⟹ not (n−1)-stabilizing,
/// and the bound is tight.
#[test]
fn theorem_3_1_and_tightness() {
    let n = 3;
    let p = example1::example1_protocol(n);
    let stable = enumerate_stable_labelings(&p, &[0; 3], &[false, true]).unwrap();
    assert_eq!(stable.len(), 2);
    let at_threshold =
        verify_label_stabilization(&p, &[0; 3], &[false, true], 2, Limits::default()).unwrap();
    assert!(!at_threshold.is_stabilizing());
    let below =
        verify_label_stabilization(&p, &[0; 3], &[false, true], 1, Limits::default()).unwrap();
    assert!(below.is_stabilizing());
}

/// Theorem 3.1's corollary for games: BGP DISAGREE has two stable trees
/// and flaps forever under simultaneous updates.
#[test]
fn bgp_disagree_route_flap() {
    let spp = bgp::disagree_gadget();
    let p = spp.to_protocol();
    let a = spp.labeling_from(&[vec![0], vec![1, 2, 0], vec![2, 0]]);
    let b = spp.labeling_from(&[vec![0], vec![1, 0], vec![2, 1, 0]]);
    assert!(p.is_stable_labeling(&a, &[0; 3]).unwrap());
    assert!(p.is_stable_labeling(&b, &[0; 3]).unwrap());
    let init = spp.labeling_from(&[vec![0], vec![1, 0], vec![2, 0]]);
    let outcome = classify_sync(&p, &[0; 3], init, 100_000).unwrap();
    assert!(matches!(outcome, SyncOutcome::Oscillating { .. }));
}

/// Theorem 4.1 (EQ regime): the snake reduction distinguishes x = y from
/// x ≠ y by stabilization behavior.
#[test]
fn theorem_4_1_eq_reduction() {
    let snake = Snake::embedded_isolated(5).unwrap();
    let x: Vec<bool> = (0..snake.len()).map(|i| i % 3 != 0).collect();
    let (p, layout) = eq_reduction(&snake, &x, &x);
    let init = eq_initial_labeling(layout, true, snake.vertices()[2]);
    let osc = classify_sync(&p, &vec![0; layout.n], init, 500_000).unwrap();
    assert!(!osc.is_label_stable());

    let mut y = x.clone();
    y[4] = !y[4];
    let (p, layout) = eq_reduction(&snake, &x, &y);
    let init = eq_initial_labeling(layout, true, snake.vertices()[2]);
    let conv = classify_sync(&p, &vec![0; layout.n], init, 500_000).unwrap();
    assert!(conv.is_label_stable());
}

/// Theorem 4.2: the PSPACE-hardness pipeline preserves stabilization in
/// both directions through the metanode lift.
#[test]
fn theorem_4_2_pipeline() {
    for (halts, inst) in [
        (true, StringOscillation::new(2, 2, |_| None)),
        (false, StringOscillation::new(2, 2, |t| Some(1 - t[0]))),
    ] {
        let stateful = inst.to_stateful_protocol();
        let lifted = metanode_lift(&stateful, 4.0);
        let init = lifted_labeling(&inst.initial_labels(&[0, 0]));
        let outcome =
            classify_sync(&lifted, &vec![0; 3 * stateful.node_count()], init, 300_000).unwrap();
        assert_eq!(outcome.is_label_stable(), halts);
    }
}

/// Theorem 5.2 both directions: a logspace machine runs on the ring; a
/// ring protocol unrolls into a branching program; both agree with direct
/// evaluation.
#[test]
fn theorem_5_2_round_trip() {
    let n = 4;
    let m = machines::parity_machine(n);
    let p = tm_ring::tm_ring_protocol(m.clone());
    let budget = tm_ring::output_rounds_bound(&m);
    for bits in 0..1u32 << n {
        let x: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
        let inputs: Vec<u64> = x.iter().map(|&b| u64::from(b)).collect();
        let mut sim = Simulation::new(&p, &inputs, vec![tm_ring::TmLabel::reset(&m); n]).unwrap();
        sim.run(&mut Synchronous, budget);
        let expected = u64::from(m.decide(&x).unwrap());
        assert_eq!(sim.outputs(), &vec![expected; n][..]);
    }

    // BP → ring → outputs, and ring → BP extraction.
    let bp = bps::equality(6);
    let rp = bpconv::bp_to_uniring_protocol(&bp).unwrap();
    let x = [true, false, true, true, false, true];
    let inputs: Vec<u64> = x.iter().map(|&b| u64::from(b)).collect();
    let mut sim = Simulation::new(&rp, &inputs, vec![bpconv::BpRingLabel::default(); 6]).unwrap();
    sim.run(&mut Synchronous, bpconv::output_rounds_bound(&bp));
    assert_eq!(sim.outputs(), &[1; 6]);
}

/// Theorem 5.4: a random circuit, compiled to the ring, self-stabilizes to
/// the right output from a random labeling.
#[test]
fn theorem_5_4_random_circuit() {
    let mut rng = StdRng::seed_from_u64(77);
    let circuit = stateless_computation::circuits::synthesis::random_circuit(4, 7, &mut rng);
    let compiled = compile_circuit(&circuit).unwrap();
    for bits in [0u32, 5, 9, 15] {
        let x: Vec<bool> = (0..4).map(|i| bits >> i & 1 == 1).collect();
        let expected = u64::from(circuit.eval(&x).unwrap());
        let initial: Vec<CircuitLabel> = (0..compiled.protocol().edge_count())
            .map(|_| CircuitLabel {
                ctr: CounterFields {
                    b1: rng.random_bool(0.5),
                    b2: rng.random_bool(0.5),
                    z: rng.random_range(0..compiled.modulus()),
                    g: rng.random_range(0..compiled.modulus()),
                },
                i1: rng.random_bool(0.5),
                i2: rng.random_bool(0.5),
                v: rng.random_bool(0.5),
                o: rng.random_bool(0.5),
            })
            .collect();
        let mut sim =
            Simulation::new(compiled.protocol(), &compiled.ring_inputs(&x), initial).unwrap();
        sim.run(&mut Synchronous, compiled.rounds_bound());
        assert!(sim.outputs().iter().all(|&y| y == expected), "x = {x:?}");
    }
}

/// Theorem 6.2: fooling-set bounds hold and the Prop 2.3 protocol (whose
/// label complexity n+1 must exceed them) demonstrates the cut-injectivity
/// the proof relies on.
#[test]
fn theorem_6_2_bounds_vs_real_protocol() {
    let n = 10;
    let ring = topology::bidirectional_ring(n);
    let eq_set = fooling::equality_fooling_set(n).unwrap();
    let bound = eq_set.label_bound(&ring).unwrap();
    let p = generic_protocol(ring, fooling::equality_fn).unwrap();
    assert!(
        p.label_bits() >= bound,
        "the generic protocol respects the lower bound ({} ≥ {bound})",
        p.label_bits()
    );
}

/// Proposition 2.1: radius lower-bounds round complexity on the circuit
/// library too (cross-crate sanity).
#[test]
fn radius_bound_on_generic_protocols() {
    for n in [4usize, 6] {
        let g = topology::unidirectional_ring(n);
        let radius = g.radius().unwrap() as u64;
        let p = generic_protocol(g, |x: &[bool]| x.iter().any(|&b| b)).unwrap();
        let mut worst = 0;
        for bits in [1u32, 1 << (n - 1)] {
            let x: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
            let inputs: Vec<u64> = x.iter().map(|&b| u64::from(b)).collect();
            let mut sim =
                Simulation::new(&p, &inputs, vec![GenericLabel::zero(n); p.edge_count()]).unwrap();
            worst = worst.max(
                sim.run_until_label_stable(&mut Synchronous, 10 * n as u64)
                    .unwrap(),
            );
        }
        assert!(worst >= radius);
    }
}

/// The compiled majority circuit and the majority branching program and
/// the majority machine all agree — three substrates, one function.
#[test]
fn substrates_agree_on_majority() {
    let n = 5;
    let circuit = circuits::majority(n);
    let bp = bps::majority(n);
    for bits in 0..1u32 << n {
        let x: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
        let expected = 2 * x.iter().filter(|&&b| b).count() >= n;
        assert_eq!(circuit.eval(&x).unwrap(), expected);
        assert_eq!(bp.eval(&x).unwrap(), expected);
    }
}
