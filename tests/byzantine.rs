//! Byzantine-adversary verification suite: the packed product explorer
//! under a [`FaultModel`] must agree verdict-for-verdict with the naive
//! adversary-enumerating reference on random protocols and fault
//! placements; adversarial verdicts, witnesses, and stats must be
//! bit-identical across thread counts, SCC backends, and symmetry
//! modes; every `NotStabilizing` witness must replay as a concrete
//! adversary strategy through `Simulation::step_with_adversary`; fault
//! parameters are validated up front; and the BFS spanning-tree
//! protocol's f = 1 placement sweep separates tolerated from fatal
//! placements on small rings.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use stateless_computation::core::graph::DiGraph;
use stateless_computation::core::prelude::*;
use stateless_computation::protocols::bfs_tree::{bfs_alphabet, bfs_tree_protocol};
use stateless_computation::verify::{
    sweep_byzantine_placements, verify_label_stabilization, verify_label_stabilization_naive,
    verify_label_stabilization_with_stats, verify_output_stabilization,
    verify_output_stabilization_naive, CycleWitness, Limits, SccBackend, SymmetryMode, Verdict,
    VerifyError,
};

/// Thread counts the cross-thread assertions run at (mirrors the
/// differential suite): `2` and `4` always, plus `STATELESS_TEST_THREADS`.
fn test_threads() -> Vec<usize> {
    let mut counts = vec![2, 4];
    if let Some(n) = std::env::var("STATELESS_TEST_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        if !counts.contains(&n) {
            counts.push(n);
        }
    }
    counts
}

fn mix(node: NodeId, incoming: &[u64], input: u64, q: u64) -> u64 {
    let mut acc = 0xcbf2_9ce4_8422_2325u64 ^ (node as u64);
    for &l in incoming {
        acc = (acc.rotate_left(7) ^ l).wrapping_mul(0x0000_0100_0000_01B3);
    }
    acc = (acc.rotate_left(7) ^ input).wrapping_mul(0x0000_0100_0000_01B3);
    acc % q
}

fn out_label(seed_word: u64, k: usize, q: u64) -> u64 {
    (seed_word.wrapping_mul(2 * k as u64 + 1).rotate_left(11) ^ seed_word) % q
}

/// A pseudo-random deterministic protocol (the differential suite's
/// buffered construction).
fn random_protocol(graph: &DiGraph, q: u64) -> Protocol<u64> {
    let mut builder = Protocol::builder(graph.clone(), (q as f64).log2());
    for node in 0..graph.node_count() {
        let deg = graph.out_degree(node);
        builder = builder.reaction(
            node,
            FnBufReaction::new(
                vec![0u64; deg],
                move |i: NodeId, incoming: &[u64], input, out: &mut [u64]| {
                    let w = mix(i, incoming, input, q);
                    for (k, slot) in out.iter_mut().enumerate() {
                        *slot = out_label(w, k, q);
                    }
                    w
                },
            ),
        );
    }
    builder.build().unwrap()
}

/// A node-symmetric protocol (uniform reaction), so `SymmetryMode::Auto`
/// derives a nontrivial group that the fault coloring then restricts.
fn symmetric_protocol(graph: &DiGraph, q: u64, seed: u64) -> Protocol<u64> {
    let deg = graph.out_degree(0);
    Protocol::builder(graph.clone(), (q as f64).log2())
        .uniform_reaction(FnBufReaction::new(
            vec![0u64; deg],
            move |_, incoming: &[u64], input, out: &mut [u64]| {
                let w = mix(seed as usize, incoming, input, q);
                for (k, slot) in out.iter_mut().enumerate() {
                    *slot = out_label(w, k, q);
                }
                w
            },
        ))
        .build()
        .unwrap()
}

/// Small strongly connected topologies whose adversarial product graphs
/// stay exhaustively explorable.
fn small_topology_of(kind: usize) -> DiGraph {
    match kind % 4 {
        0 => topology::unidirectional_ring(3),
        1 => topology::unidirectional_ring(4),
        2 => topology::bidirectional_ring(3),
        _ => topology::star(4),
    }
}

/// A random fault model with `f < n`: one Byzantine node, plus sometimes
/// one crash node.
fn random_faults(rng: &mut StdRng, n: usize) -> FaultModel {
    let byz = rng.random_range(0..n);
    if n > 2 && rng.random_bool(0.4) {
        let crash = (byz + 1 + rng.random_range(0..n - 1)) % n;
        if crash != byz {
            return FaultModel::new(&[byz], &[crash]).unwrap();
        }
    }
    FaultModel::byzantine(&[byz]).unwrap()
}

/// Replays an **adversarial** [`CycleWitness`]: drives the simulation
/// from the witness labeling with `Scripted::cycle` activations and the
/// recorded per-step adversary choices via
/// `Simulation::step_with_adversary`. Returns whether any
/// correct-sourced label changed, whether outputs changed (second lap,
/// as in the differential suite), and whether the labeling closed the
/// cycle after each lap.
fn replay_adversarial_witness(
    p: &Protocol<u64>,
    inputs: &[Input],
    faults: FaultModel,
    w: &CycleWitness<u64>,
) -> (bool, bool, bool) {
    let n = p.node_count();
    let correct_src: Vec<usize> = p
        .graph()
        .edges()
        .filter(|&(_, u, _)| !faults.is_faulty(u))
        .map(|(id, _, _)| id)
        .collect();
    assert_eq!(
        w.adversary.len(),
        w.schedule.len(),
        "one adversary entry per schedule step"
    );
    let mut sim = Simulation::new(p, inputs, w.labeling.clone()).unwrap();
    let mut sched = Scripted::cycle(w.schedule.clone());
    sched.validate(n).expect("witness names real nodes");
    let mut active = Vec::new();
    let (mut labels_changed, mut outputs_changed) = (false, false);
    let mut closed = true;
    for lap in 0..2 {
        for (t, _) in w.schedule.iter().enumerate() {
            let labels_before = sim.labeling().to_vec();
            let outputs_before = sim.outputs().to_vec();
            sched.activations_into(sim.time() + 1, n, &mut active);
            sim.step_with_adversary(&active, faults, &w.adversary[t]);
            labels_changed |= correct_src
                .iter()
                .any(|&k| labels_before[k] != sim.labeling()[k]);
            if lap == 1 {
                outputs_changed |= outputs_before != sim.outputs();
            }
        }
        closed &= sim.labeling() == &w.labeling[..];
    }
    (labels_changed, outputs_changed, closed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Packed adversarial explorer ≡ the naive adversary-enumerating
    /// reference: identical label and output verdicts on random
    /// protocols, topologies, fault placements, and fairness bounds —
    /// and every packed `NotStabilizing` witness replays as a concrete
    /// adversary strategy.
    #[test]
    fn adversarial_verdicts_match_naive(seed in 0u64..10_000, kind in 0usize..4, r in 1u8..3) {
        let graph = small_topology_of(kind);
        let n = graph.node_count();
        let p = random_protocol(&graph, 2);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xb12a);
        let faults = random_faults(&mut rng, n);
        let inputs: Vec<u64> = (0..n).map(|_| rng.random_range(0u64..3)).collect();
        let limits = Limits { max_states: 500_000, faults, ..Limits::default() };
        let fast = verify_label_stabilization(&p, &inputs, &[0, 1], r, limits.clone()).unwrap();
        let slow = verify_label_stabilization_naive(&p, &inputs, &[0, 1], r, limits.clone()).unwrap();
        prop_assert_eq!(fast.is_stabilizing(), slow.is_stabilizing(), "label verdicts");
        let fast_o = verify_output_stabilization(&p, &inputs, &[0, 1], r, limits.clone()).unwrap();
        let slow_o = verify_output_stabilization_naive(&p, &inputs, &[0, 1], r, limits).unwrap();
        prop_assert_eq!(fast_o.is_stabilizing(), slow_o.is_stabilizing(), "output verdicts");
        for (verdict, label_mode) in [(&fast, true), (&slow, true), (&fast_o, false), (&slow_o, false)] {
            if let Verdict::NotStabilizing(w) = verdict {
                let (labels_changed, outputs_changed, closed) =
                    replay_adversarial_witness(&p, &inputs, faults, w);
                prop_assert!(closed, "adversarial witness must close its cycle");
                if label_mode {
                    prop_assert!(labels_changed, "correct-sourced labels must oscillate");
                } else {
                    prop_assert!(outputs_changed, "outputs must oscillate");
                }
            }
        }
    }

    /// Adversarial determinism: with a symmetry-compatible fault
    /// placement, verdicts, witnesses (schedule **and** adversary
    /// choices), and exploration stats are bit-identical across
    /// 1/2/4(/`STATELESS_TEST_THREADS`) workers and both SCC backends —
    /// and `SymmetryMode::Auto` agrees with `Off` on the verdict with a
    /// state space that never grows, its witnesses replaying on the
    /// unquotiented system.
    #[test]
    fn adversarial_runs_are_deterministic(seed in 0u64..10_000, kind in 0usize..3, r in 1u8..3) {
        let graph = match kind {
            0 => topology::unidirectional_ring(4),
            1 => topology::bidirectional_ring(4),
            _ => topology::hypercube(2),
        };
        let n = graph.node_count();
        let p = symmetric_protocol(&graph, 2, seed);
        // {0, 2} is fixed by a nontrivial subgroup on all three
        // topologies, so the coloring restriction leaves real symmetry.
        let faults = FaultModel::byzantine(&[0, 2]).unwrap();
        let inputs = vec![0u64; n];
        let base_limits = Limits { max_states: 500_000, faults, ..Limits::default() };
        let at = |threads: usize, scc: SccBackend, symmetry: SymmetryMode| {
            let limits = Limits { threads, scc, symmetry, ..base_limits.clone() };
            verify_label_stabilization_with_stats(&p, &inputs, &[0, 1], r, limits).unwrap()
        };
        let base = at(1, SccBackend::ForwardBackward, SymmetryMode::Off);
        for threads in test_threads() {
            prop_assert_eq!(&base, &at(threads, SccBackend::ForwardBackward, SymmetryMode::Off),
                "{} threads", threads);
        }
        prop_assert_eq!(&base, &at(1, SccBackend::Tarjan, SymmetryMode::Off), "tarjan");
        prop_assert_eq!(&base, &at(4, SccBackend::Tarjan, SymmetryMode::Off), "tarjan, 4 threads");
        let quot = at(1, SccBackend::ForwardBackward, SymmetryMode::Auto);
        prop_assert_eq!(quot.0.is_stabilizing(), base.0.is_stabilizing(), "quotient verdict");
        prop_assert!(quot.1.states <= base.1.states, "quotient never grows the state space");
        for threads in test_threads() {
            prop_assert_eq!(&quot, &at(threads, SccBackend::ForwardBackward, SymmetryMode::Auto),
                "quotient, {} threads", threads);
        }
        for (verdict, tag) in [(&base.0, "full"), (&quot.0, "quotient")] {
            if let Verdict::NotStabilizing(w) = verdict {
                let (labels_changed, _, closed) =
                    replay_adversarial_witness(&p, &inputs, faults, w);
                prop_assert!(closed, "{} witness must close", tag);
                prop_assert!(labels_changed, "{} witness must oscillate", tag);
            }
        }
    }
}

/// Fault parameters are rejected up front as `BadParameters`, never as a
/// mid-exploration panic: out-of-range ids, `f ≥ n`, and an adversary
/// fan-out too large to enumerate — on both the packed and naive paths.
#[test]
fn bad_fault_parameters_are_rejected_up_front() {
    let graph = topology::bidirectional_ring(3);
    let p = random_protocol(&graph, 2);
    let inputs = vec![0u64; 3];
    let oob = Limits {
        faults: FaultModel::byzantine(&[5]).unwrap(),
        ..Limits::default()
    };
    for result in [
        verify_label_stabilization(&p, &inputs, &[0, 1], 1, oob.clone()),
        verify_label_stabilization_naive(&p, &inputs, &[0, 1], 1, oob),
    ] {
        match result.unwrap_err() {
            VerifyError::BadParameters { what } => {
                assert!(what.contains("out of range"), "{what}")
            }
            other => panic!("expected BadParameters, got {other:?}"),
        }
    }
    let all_faulty = Limits {
        faults: FaultModel::new(&[0, 1], &[2]).unwrap(),
        ..Limits::default()
    };
    for result in [
        verify_label_stabilization(&p, &inputs, &[0, 1], 1, all_faulty.clone()),
        verify_label_stabilization_naive(&p, &inputs, &[0, 1], 1, all_faulty),
    ] {
        match result.unwrap_err() {
            VerifyError::BadParameters { what } => assert!(what.contains("f = 3"), "{what}"),
            other => panic!("expected BadParameters, got {other:?}"),
        }
    }
    // |Σ|^byz-out-degree beyond 32 bits of per-state fan-out: 65536² on
    // a degree-2 node overflows before any state is interned.
    let huge: Vec<u64> = (0..1 << 16).collect();
    let wide = Limits {
        faults: FaultModel::byzantine(&[1]).unwrap(),
        ..Limits::default()
    };
    match verify_label_stabilization(&p, &inputs, &huge, 1, wide).unwrap_err() {
        VerifyError::BadParameters { what } => {
            assert!(what.contains("too large to enumerate"), "{what}")
        }
        other => panic!("expected BadParameters, got {other:?}"),
    }
}

/// An `f = 0` placement sweep degenerates to exactly one fault-free
/// verification, bit-identical to `verify_label_stabilization` without
/// a fault model.
#[test]
fn zero_fault_sweep_reproduces_the_fault_free_verdict() {
    let graph = topology::bidirectional_ring(3);
    let p = symmetric_protocol(&graph, 2, 7);
    let inputs = vec![0u64; 3];
    let rows =
        sweep_byzantine_placements(&p, &inputs, &[0, 1], 2, Limits::default(), 0, &[]).unwrap();
    assert_eq!(rows.len(), 1);
    assert!(rows[0].placement.is_empty());
    let plain = verify_label_stabilization(&p, &inputs, &[0, 1], 2, Limits::default()).unwrap();
    assert_eq!(rows[0].verdict, plain);
}

/// Crash faults are the degenerate single-choice adversary: a crashed
/// relay freezes its outgoing labels, and the max-propagation ring
/// around it still label-stabilizes (every correct node eventually
/// copies a constant).
#[test]
fn crashed_relay_still_stabilizes_the_ring() {
    let graph = topology::unidirectional_ring(4);
    let p = Protocol::builder(graph, 1.0)
        .uniform_reaction(FnBufReaction::new(
            vec![0u64],
            |_, incoming: &[u64], _, out: &mut [u64]| {
                out[0] = incoming[0];
                incoming[0]
            },
        ))
        .build()
        .unwrap();
    let inputs = vec![0u64; 4];
    let faults = Limits {
        faults: FaultModel::crash(&[2]).unwrap(),
        ..Limits::default()
    };
    let verdict = verify_label_stabilization(&p, &inputs, &[0, 1], 1, faults).unwrap();
    assert!(
        verdict.is_stabilizing(),
        "a frozen relay is a constant source"
    );
    // The same ring with a *Byzantine* node in place of the crash
    // oscillates: the adversary alternates the label it feeds downstream.
    let byz = Limits {
        faults: FaultModel::byzantine(&[2]).unwrap(),
        ..Limits::default()
    };
    match verify_label_stabilization(&p, &inputs, &[0, 1], 1, byz).unwrap() {
        Verdict::NotStabilizing(w) => {
            let fm = FaultModel::byzantine(&[2]).unwrap();
            let (labels_changed, _, closed) = replay_adversarial_witness(&p, &inputs, fm, &w);
            assert!(closed && labels_changed, "byzantine relay witness replays");
            assert!(
                w.adversary.iter().flatten().any(|(node, _)| *node == 2),
                "the strategy actually uses node 2"
            );
        }
        Verdict::Stabilizing => panic!("a byzantine relay must break the copy ring"),
        Verdict::Partial { .. } => panic!("no deadline was set, so no partial verdict"),
    }
}

/// The BFS spanning-tree protocol is `Stabilizing` fault-free on small
/// rooted topologies — exact product-graph verdicts, not just sampled
/// synchronous runs.
#[test]
fn bfs_tree_is_stabilizing_fault_free() {
    for (graph, root, cap) in [
        (topology::bidirectional_ring(3), 0, 2),
        (topology::bidirectional_ring(4), 0, 2),
        (topology::star(4), 0, 2),
    ] {
        let n = graph.node_count();
        let p = bfs_tree_protocol(graph, root, cap, FaultModel::none()).unwrap();
        let limits = Limits {
            max_states: 2_000_000,
            ..Limits::default()
        };
        let verdict =
            verify_label_stabilization(&p, &vec![0; n], &bfs_alphabet(cap), 1, limits).unwrap();
        assert!(verdict.is_stabilizing(), "bfs_tree fault-free on n={n}");
    }
}

/// The f = 1 Byzantine placement sweep on the 4-ring rooted at 0: the
/// root's *neighbors* are fatal (they sit on node 2's min-selection and
/// can flip its distance forever), while the antipodal node is tolerated
/// (both of its neighbors already hear the root directly). Every fatal
/// placement's witness replays as a concrete adversary strategy.
#[test]
fn bfs_tree_f1_placement_sweep_on_the_4_ring() {
    let graph = topology::bidirectional_ring(4);
    let cap = 2;
    let p = bfs_tree_protocol(graph, 0, cap, FaultModel::none()).unwrap();
    let inputs = vec![0u64; 4];
    let limits = Limits {
        max_states: 2_000_000,
        ..Limits::default()
    };
    let rows =
        sweep_byzantine_placements(&p, &inputs, &bfs_alphabet(cap), 1, limits.clone(), 1, &[0])
            .unwrap();
    assert_eq!(rows.len(), 3, "C(3,1) placements excluding the root");
    for row in &rows {
        let expect_stabilizing = row.placement == [2];
        assert_eq!(
            row.verdict.is_stabilizing(),
            expect_stabilizing,
            "placement {:?}",
            row.placement
        );
        if let Verdict::NotStabilizing(w) = &row.verdict {
            let fm = FaultModel::byzantine(&row.placement).unwrap();
            let (labels_changed, _, closed) = replay_adversarial_witness(&p, &inputs, fm, w);
            assert!(closed, "placement {:?} witness closes", row.placement);
            assert!(
                labels_changed,
                "placement {:?} witness oscillates",
                row.placement
            );
        }
    }
    // The 3-ring tolerates every non-root placement: each correct node
    // hears the root directly, so min-selection ignores the liar.
    let g3 = topology::bidirectional_ring(3);
    let p3 = bfs_tree_protocol(g3, 0, cap, FaultModel::none()).unwrap();
    let rows3 =
        sweep_byzantine_placements(&p3, &[0; 3], &bfs_alphabet(cap), 1, limits, 1, &[0]).unwrap();
    assert_eq!(rows3.len(), 2);
    assert!(rows3.iter().all(|r| r.verdict.is_stabilizing()));
}
