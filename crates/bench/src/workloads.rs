//! Shared benchmark workloads: the reference protocols and schedules the
//! criterion benches and the `--json` perf summary both measure. One
//! definition — so the committed `BENCH_engine.json`, the benches, and the
//! acceptance numbers always time the same reactions.

use rand::rngs::StdRng;
use rand::SeedableRng;
use stateless_core::prelude::*;

/// Max-propagation on the unidirectional ring through the buffered
/// (zero-allocation) reaction path.
pub fn max_ring(n: usize) -> Protocol<u64> {
    Protocol::builder(topology::unidirectional_ring(n), 8.0)
        .uniform_reaction(FnBufReaction::new(
            vec![0u64],
            |_, inc: &[u64], x, out: &mut [u64]| {
                let m = inc[0].max(x);
                out[0] = m;
                m
            },
        ))
        .build()
        .expect("ring nodes all have reactions")
}

/// The same protocol through plain `FnReaction` closures, so the naive
/// baseline also pays the closure's `Vec` return (as all seed reactions
/// did).
pub fn max_ring_naive(n: usize) -> Protocol<u64> {
    Protocol::builder(topology::unidirectional_ring(n), 8.0)
        .uniform_reaction(FnReaction::new(|_, inc: &[u64], x| {
            let m = inc[0].max(x);
            (vec![m], m)
        }))
        .build()
        .expect("ring nodes all have reactions")
}

/// Sticky-OR on the unidirectional ring (buffered): the standard
/// exhaustive-sweep workload — stabilizes from every labeling.
pub fn sticky_or_ring(n: usize) -> Protocol<bool> {
    Protocol::builder(topology::unidirectional_ring(n), 1.0)
        .uniform_reaction(FnBufReaction::new(
            vec![false],
            |_, inc: &[bool], x, out: &mut [bool]| {
                let b = inc[0] || x == 1;
                out[0] = b;
                u64::from(b)
            },
        ))
        .build()
        .expect("ring nodes all have reactions")
}

/// Rotation on the unidirectional ring (buffered): every node forwards
/// its incoming label, so labels circulate forever — the canonical
/// non-stabilizing instance for the exact verifier (its ≈4ⁿ-state
/// product graph at r = 2 exercises interning, SCCs, and witnesses).
pub fn rotation_ring(n: usize) -> Protocol<bool> {
    Protocol::builder(topology::unidirectional_ring(n), 1.0)
        .uniform_reaction(FnBufReaction::new(
            vec![false],
            |_, inc: &[bool], _, out: &mut [bool]| {
                out[0] = inc[0];
                0
            },
        ))
        .build()
        .expect("ring nodes all have reactions")
}

/// The benchmark schedule families (one representative per built-in
/// schedule type, seeded deterministically) for a graph of `n` nodes.
/// `random_rfair_8` (sparse, p = 0.05) and `random_rfair_dense` (p = 0.5)
/// bracket the geometric gap sampler: the sparse case is where per-node
/// Bernoulli sampling wasted ~n RNG draws per step, the dense case is
/// where gap sampling degenerates toward one draw per node again.
pub const SCHEDULE_KINDS: [&str; 5] = [
    "round_robin_64",
    "scripted_pairs",
    "random_rfair_8",
    "random_rfair_dense",
    "monitored_rr_64",
];

/// Builds the named schedule workload from [`SCHEDULE_KINDS`].
///
/// # Panics
///
/// Panics on an unknown `kind`.
pub fn schedule_workload(kind: &str, n: usize) -> Box<dyn Schedule> {
    match kind {
        "round_robin_64" => Box::new(RoundRobin::new(64)),
        "scripted_pairs" => Box::new(Scripted::cycle(
            (0..n).map(|t| vec![t, (t + 1) % n]).collect(),
        )),
        "random_rfair_8" => Box::new(RandomRFair::new(8, 0.05, StdRng::seed_from_u64(7))),
        "random_rfair_dense" => Box::new(RandomRFair::new(8, 0.5, StdRng::seed_from_u64(11))),
        "monitored_rr_64" => Box::new(FairnessMonitor::new(RoundRobin::new(64))),
        other => unreachable!("unknown schedule kind {other}"),
    }
}

/// The seed's per-round stability probe: one allocating `apply` per node,
/// compared edge by edge. The naive counterpart of
/// `Protocol::is_stable_labeling_buffered`.
pub fn is_stable_naive(p: &Protocol<u64>, labeling: &[u64], inputs: &[Input]) -> bool {
    for (node, &input) in inputs.iter().enumerate() {
        let (out, _) = p
            .apply(node, labeling, input)
            .expect("reaction arity is valid");
        for (slot, &e) in out.iter().zip(p.graph().out_edges(node)) {
            if *slot != labeling[e] {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffered_and_naive_workloads_agree() {
        let n = 16;
        let inputs: Vec<u64> = (0..n as u64).collect();
        let p = max_ring(n);
        let p_naive = max_ring_naive(n);
        let mut a = Simulation::new(&p, &inputs, vec![0; n]).unwrap();
        let mut b = Simulation::new(&p_naive, &inputs, vec![0; n]).unwrap();
        a.run(&mut Synchronous, n as u64);
        b.run(&mut Synchronous, n as u64);
        assert_eq!(a.labeling(), b.labeling());
        assert!(is_stable_naive(&p_naive, b.labeling(), &inputs));
    }
}
