//! `bench-report` — renders one or more measurement files (the per-commit
//! `bench-json-<sha>` CI artifacts, or the committed `BENCH_engine.json`
//! perf summary) into a per-bench median markdown table on stdout:
//!
//! ```text
//! cargo run --release -p stateless-bench --bin bench-report -- \
//!     bench-lines-old.jsonl bench-lines-new.jsonl
//! ```
//!
//! Columns are the input files (labeled by file stem) in argument order,
//! so passing artifacts of successive commits yields a left-to-right
//! trend view.
//!
//! With `--compare <baseline> <current>` (exactly two files) the table
//! gains a trailing `current / baseline` ratio column — CI uses this to
//! diff each commit's fresh measurements against the committed
//! `BENCH_engine.json` baseline. Either argument may be a perf summary;
//! it is adapted into comparable bench lines automatically.

use std::path::Path;
use std::process::ExitCode;

use stateless_bench::report::{parse_any, render_compare, render_markdown, BenchLine};

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let compare = args.iter().any(|a| a == "--compare");
    args.retain(|a| a != "--compare");
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: bench-report [--compare] <bench-lines.jsonl | BENCH_engine.json>...");
        eprintln!("renders measurement files as a per-bench median markdown table");
        eprintln!("--compare takes exactly two files (baseline, current) and adds a ratio column");
        return if args.is_empty() {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        };
    }
    if compare && args.len() != 2 {
        eprintln!(
            "bench-report: --compare takes exactly two files (baseline, current), got {}",
            args.len()
        );
        return ExitCode::FAILURE;
    }
    let mut files: Vec<(String, Vec<BenchLine>)> = Vec::with_capacity(args.len());
    for path in &args {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("bench-report: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let label = Path::new(path)
            .file_stem()
            .map_or_else(|| path.clone(), |s| s.to_string_lossy().into_owned());
        files.push((label, parse_any(&text)));
    }
    if compare {
        print!("{}", render_compare(&files[0], &files[1]));
    } else {
        print!("{}", render_markdown(&files));
    }
    ExitCode::SUCCESS
}
