//! `bench-report` — renders one or more `CRITERION_JSON` line-JSON files
//! (the per-commit `bench-json-<sha>` CI artifacts) into a per-bench
//! median markdown table on stdout:
//!
//! ```text
//! cargo run --release -p stateless-bench --bin bench-report -- \
//!     bench-lines-old.jsonl bench-lines-new.jsonl
//! ```
//!
//! Columns are the input files (labeled by file stem) in argument order,
//! so passing artifacts of successive commits yields a left-to-right
//! trend view.

use std::path::Path;
use std::process::ExitCode;

use stateless_bench::report::{parse_lines, render_markdown, BenchLine};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: bench-report <bench-lines.jsonl>...");
        eprintln!("renders CRITERION_JSON line-JSON files as a per-bench median markdown table");
        return if args.is_empty() {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        };
    }
    let mut files: Vec<(String, Vec<BenchLine>)> = Vec::with_capacity(args.len());
    for path in &args {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("bench-report: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let label = Path::new(path)
            .file_stem()
            .map_or_else(|| path.clone(), |s| s.to_string_lossy().into_owned());
        files.push((label, parse_lines(&text)));
    }
    print!("{}", render_markdown(&files));
    ExitCode::SUCCESS
}
