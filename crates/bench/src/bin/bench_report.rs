//! `bench-report` — renders one or more measurement files (the per-commit
//! `bench-json-<sha>` CI artifacts, or the committed `BENCH_engine.json`
//! perf summary) into a per-bench median markdown table on stdout:
//!
//! ```text
//! cargo run --release -p stateless-bench --bin bench-report -- \
//!     bench-lines-old.jsonl bench-lines-new.jsonl
//! ```
//!
//! Columns are the input files (labeled by file stem) in argument order,
//! so passing artifacts of successive commits yields a left-to-right
//! trend view.
//!
//! With `--compare <baseline> <current>` (exactly two files) the table
//! gains a trailing `current / baseline` ratio column — CI uses this to
//! diff each commit's fresh measurements against the committed
//! `BENCH_engine.json` baseline. Either argument may be a perf summary;
//! it is adapted into comparable bench lines automatically.
//!
//! With `--trend <dir>` the positional arguments are replaced by every
//! `bench-json-<sha>` artifact (file or directory) found under `<dir>`,
//! ordered oldest → newest — the multi-commit trend table CI publishes
//! as `BENCH_trend.md` next to the per-commit delta.
//!
//! With `--memgate <baseline> <current>` (two perf summaries) nothing is
//! rendered; instead the verifier memory gate runs: the largest
//! `verify_scaling` row's `(packed_arena_bytes + peak_edge_bytes) /
//! states` must stay within 1.25× the baseline's (old summaries'
//! `csr_edge_bytes` is accepted on either side), and a violation exits
//! nonzero — the state-linear budget guarding the edge-less verifier.

use std::path::Path;
use std::process::ExitCode;

use stateless_bench::report::{
    check_memory_gate, collect_trend, parse_any, render_compare, render_markdown, BenchLine,
};

/// Slack factor of the memory gate: per-state bytes may grow this much
/// over the committed baseline before the gate fails (covers timing- and
/// shape-level jitter in the transient peak, not a real regression).
const MEMGATE_SLACK: f64 = 1.25;

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let compare = args.iter().any(|a| a == "--compare");
    let memgate = args.iter().any(|a| a == "--memgate");
    let trend = args.iter().any(|a| a == "--trend");
    args.retain(|a| a != "--compare" && a != "--memgate" && a != "--trend");
    let modes = usize::from(compare) + usize::from(memgate) + usize::from(trend);
    if modes > 1 || args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: bench-report [--compare | --memgate | --trend] \
             <bench-lines.jsonl | BENCH_engine.json | dir>..."
        );
        eprintln!("renders measurement files as a per-bench median markdown table");
        eprintln!("--compare takes exactly two files (baseline, current) and adds a ratio column");
        eprintln!("--trend takes one directory of bench-json-<sha> artifacts, ordered by age");
        eprintln!(
            "--memgate takes exactly two perf summaries (baseline, current) and fails when the \
             largest verify_scaling row's per-state memory exceeds {MEMGATE_SLACK}x the baseline"
        );
        return if args.is_empty() || modes > 1 {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        };
    }
    if (compare || memgate) && args.len() != 2 {
        eprintln!(
            "bench-report: --compare/--memgate take exactly two files (baseline, current), got {}",
            args.len()
        );
        return ExitCode::FAILURE;
    }
    if trend && args.len() != 1 {
        eprintln!(
            "bench-report: --trend takes exactly one artifact directory, got {}",
            args.len()
        );
        return ExitCode::FAILURE;
    }
    let read = |path: &str| -> Result<String, ExitCode> {
        std::fs::read_to_string(path).map_err(|e| {
            eprintln!("bench-report: cannot read {path}: {e}");
            ExitCode::FAILURE
        })
    };
    if memgate {
        let (baseline, current) = match (read(&args[0]), read(&args[1])) {
            (Ok(b), Ok(c)) => (b, c),
            (Err(code), _) | (_, Err(code)) => return code,
        };
        return match check_memory_gate(&baseline, &current, MEMGATE_SLACK) {
            Ok(verdict) => {
                println!("{verdict}");
                ExitCode::SUCCESS
            }
            Err(verdict) => {
                eprintln!("{verdict}");
                ExitCode::FAILURE
            }
        };
    }
    let files: Vec<(String, Vec<BenchLine>)> = if trend {
        match collect_trend(Path::new(&args[0])) {
            Ok(files) if !files.is_empty() => files,
            Ok(_) => {
                eprintln!("bench-report: no bench-json-* artifacts under {}", args[0]);
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("bench-report: cannot scan {}: {e}", args[0]);
                return ExitCode::FAILURE;
            }
        }
    } else {
        let mut files = Vec::with_capacity(args.len());
        for path in &args {
            let text = match read(path) {
                Ok(t) => t,
                Err(code) => return code,
            };
            let label = Path::new(path)
                .file_stem()
                .map_or_else(|| path.clone(), |s| s.to_string_lossy().into_owned());
            files.push((label, parse_any(&text)));
        }
        files
    };
    if compare {
        print!("{}", render_compare(&files[0], &files[1]));
    } else {
        print!("{}", render_markdown(&files));
    }
    ExitCode::SUCCESS
}
