//! Regenerates the experiment tables of EXPERIMENTS.md.
//!
//! Usage: `cargo run --release -p stateless-bench --bin experiments [e1 e4 …]`
//! (no arguments = run everything).
//!
//! With `--json`, instead emits a machine-readable perf summary comparing
//! the buffered engine / fingerprint classifier / parallel sweep /
//! parallel exact verifier against their naive references (the committed
//! `BENCH_engine.json` snapshot):
//! `cargo run --release -p stateless-bench --bin experiments -- --json > BENCH_engine.json`
//!
//! `--threads N` caps the worker sweep of the `verify_scaling` section
//! (rows at 1, 2, 4, … up to N); without it the sweep uses the machine's
//! available parallelism, so a 1-core CI host records the single-thread
//! row only.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut max_threads = 0usize;
    if let Some(i) = args.iter().position(|a| a == "--threads") {
        max_threads = match args.get(i + 1).and_then(|v| v.parse().ok()) {
            Some(n) if n > 0 => n,
            _ => {
                eprintln!("--threads expects a positive integer");
                std::process::exit(2);
            }
        };
    }
    if args.iter().any(|a| a == "--json") {
        print!("{}", stateless_bench::perf::summary_json(max_threads));
        return;
    }
    // Strip the flag (and its value) so experiment name filters still work.
    let mut names = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == "--threads" {
            it.next();
        } else {
            names.push(a);
        }
    }
    stateless_bench::experiments::run(&names);
}
