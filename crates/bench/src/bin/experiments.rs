//! Regenerates the experiment tables of EXPERIMENTS.md.
//!
//! Usage: `cargo run --release -p stateless-bench --bin experiments [e1 e4 …]`
//! (no arguments = run everything).
//!
//! With `--json`, instead emits a machine-readable perf summary comparing
//! the buffered engine / fingerprint classifier / parallel sweep against
//! their naive references (the committed `BENCH_engine.json` snapshot):
//! `cargo run --release -p stateless-bench --bin experiments -- --json > BENCH_engine.json`

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--json") {
        print!("{}", stateless_bench::perf::summary_json());
        return;
    }
    stateless_bench::experiments::run(&args);
}
