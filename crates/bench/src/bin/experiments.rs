//! Regenerates the experiment tables of EXPERIMENTS.md.
//!
//! Usage: `cargo run --release -p stateless-bench --bin experiments [e1 e4 …]`
//! (no arguments = run everything).

fn main() {
    let ids: Vec<String> = std::env::args().skip(1).collect();
    stateless_bench::experiments::run(&ids);
}
