//! One function per experiment in EXPERIMENTS.md (E1–E15). Each prints a
//! small table of paper-expected vs. measured values.

use std::time::Instant;

use boolean_circuit::library as circuits;
use branching_program::convert::{bp_to_uniring_protocol, uniring_protocol_to_bp, BpRingLabel};
use branching_program::library as bps;
use comm_complexity::{counting, fooling};
use hypercube_snake::{abbott_katchalski_bound, longest_snake, Snake};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use stabilization_verify::{enumerate_stable_labelings, verify_label_stabilization, Limits};
use stateless_core::convergence::{classify_scheduled, classify_sync, CycleDetector, SyncOutcome};
use stateless_core::prelude::*;
use stateless_protocols::circuit_ring::{compile_circuit, CircuitLabel};
use stateless_protocols::counter::{counter_protocol, sync_rounds_bound, CounterFields};
use stateless_protocols::example1::{example1_protocol, hot_node_labeling, oscillation_schedule};
use stateless_protocols::generic::{generic_protocol, round_bound, GenericLabel};
use stateless_protocols::metanode::{lifted_labeling, metanode_lift};
use stateless_protocols::snake_reduction::{
    disj_oscillation_schedule, disj_reduction, eq_initial_labeling, eq_reduction,
};
use stateless_protocols::string_oscillation::StringOscillation;
use stateless_protocols::tm_ring::{output_rounds_bound, tm_ring_protocol, TmLabel};
use stateless_protocols::worst_case::{exact_rounds, worst_case_protocol};
use turing_machine::library as machines;

fn header(id: &str, title: &str) {
    println!("\n=== {id}: {title} ===");
}

fn bools_of(bits: u32, n: usize) -> Vec<bool> {
    (0..n).map(|i| bits >> i & 1 == 1).collect()
}

/// E1 — Proposition 2.1: radius ≤ Rₙ.
pub fn e1() {
    header(
        "E1",
        "Proposition 2.1 — graph radius lower-bounds round complexity",
    );
    println!("{:<28} {:>7} {:>11}", "graph", "radius", "measured Rₙ");
    let parity = |x: &[bool]| x.iter().filter(|&&b| b).count() % 2 == 1;
    let mut rng = StdRng::seed_from_u64(1);
    let graphs: Vec<(String, stateless_core::graph::DiGraph)> = vec![
        ("uniring(6)".into(), topology::unidirectional_ring(6)),
        ("uniring(10)".into(), topology::unidirectional_ring(10)),
        ("biring(9)".into(), topology::bidirectional_ring(9)),
        ("clique(6)".into(), topology::clique(6)),
        ("star(8)".into(), topology::star(8)),
        (
            "random(8,+10)".into(),
            topology::random_strongly_connected(8, 10, &mut rng),
        ),
    ];
    for (name, g) in graphs {
        let n = g.node_count();
        let radius = g.radius().expect("strongly connected");
        let p = generic_protocol(g, parity).unwrap();
        let mut worst = 0u64;
        for bits in [0u32, 1, (1 << n) - 1, 0b1010] {
            let x = bools_of(bits, n);
            let inputs: Vec<u64> = x.iter().map(|&b| u64::from(b)).collect();
            let mut sim =
                Simulation::new(&p, &inputs, vec![GenericLabel::zero(n); p.edge_count()]).unwrap();
            let steps = sim
                .run_until_label_stable(&mut Synchronous, 10 * n as u64)
                .unwrap();
            worst = worst.max(steps);
        }
        println!("{name:<28} {radius:>7} {worst:>11}");
        assert!(worst >= radius as u64, "Prop 2.1 shape");
    }
}

/// E2 — Proposition 2.2: Rₙ ≤ |Σ|^|E| (trivial but measurable).
pub fn e2() {
    header(
        "E2",
        "Proposition 2.2 — Rₙ never exceeds the configuration count",
    );
    println!(
        "{:<14} {:>6} {:>14} {:>12}",
        "protocol", "n", "|Σ|^|E| bound", "measured Rₙ"
    );
    for (n, q) in [(2usize, 3u64), (3, 3), (3, 4), (4, 2)] {
        let p = worst_case_protocol(n, q);
        let outcome = classify_sync(&p, &vec![0; n], vec![0u64; n], 10_000_000).unwrap();
        let round = match outcome {
            SyncOutcome::LabelStable { round, .. } => round,
            _ => unreachable!("worst-case protocol stabilizes"),
        };
        let bound = q.pow(n as u32);
        println!(
            "{:<14} {n:>6} {bound:>14} {round:>12}",
            format!("worst(q={q})")
        );
        assert!(round <= bound * n as u64);
    }
}

/// E3 — Proposition 2.3: the generic protocol achieves Lₙ = n+1, Rₙ ≤ 2n.
pub fn e3() {
    header(
        "E3",
        "Proposition 2.3 — generic protocol: Lₙ = n+1, Rₙ ≤ 2n",
    );
    println!(
        "{:<26} {:>4} {:>8} {:>10} {:>9}",
        "graph/function", "n", "Lₙ bits", "2n bound", "worst Rₙ"
    );
    let maj = |x: &[bool]| 2 * x.iter().filter(|&&b| b).count() >= x.len();
    for n in [4usize, 5, 6] {
        for (gname, g) in [
            ("uniring", topology::unidirectional_ring(n)),
            ("biring", topology::bidirectional_ring(n)),
            ("clique", topology::clique(n)),
        ] {
            let p = generic_protocol(g, maj).unwrap();
            let mut worst = 0u64;
            for bits in 0..1u32 << n {
                let x = bools_of(bits, n);
                let inputs: Vec<u64> = x.iter().map(|&b| u64::from(b)).collect();
                let mut sim =
                    Simulation::new(&p, &inputs, vec![GenericLabel::zero(n); p.edge_count()])
                        .unwrap();
                let steps = sim
                    .run_until_label_stable(&mut Synchronous, round_bound(n) + 1)
                    .unwrap();
                worst = worst.max(steps);
            }
            println!(
                "{:<26} {n:>4} {:>8} {:>10} {worst:>9}",
                format!("{gname}/majority"),
                p.label_bits(),
                round_bound(n)
            );
            assert!(worst <= round_bound(n));
        }
    }
}

/// E4 — Theorem 3.1 + Example 1: the (n−1)-fair threshold, exactly.
pub fn e4() {
    header(
        "E4",
        "Theorem 3.1 & Example 1 — two stable labelings, (n−1)-fair threshold",
    );
    println!(
        "{:<6} {:>14} {:>22} {:>22}",
        "n", "stable count", "r = n−2 verdict", "r = n−1 verdict"
    );
    for n in [3usize, 4] {
        let p = example1_protocol(n);
        let stable = enumerate_stable_labelings(&p, &vec![0; n], &[false, true]).unwrap();
        let lo = verify_label_stabilization(
            &p,
            &vec![0; n],
            &[false, true],
            (n - 2) as u8,
            Limits {
                max_states: 5_000_000,
                ..Limits::default()
            },
        )
        .unwrap();
        let hi = verify_label_stabilization(
            &p,
            &vec![0; n],
            &[false, true],
            (n - 1) as u8,
            Limits {
                max_states: 5_000_000,
                ..Limits::default()
            },
        )
        .unwrap();
        println!(
            "{n:<6} {:>14} {:>22} {:>22}",
            stable.len(),
            if lo.is_stabilizing() {
                "stabilizing"
            } else {
                "OSCILLATES"
            },
            if hi.is_stabilizing() {
                "stabilizing"
            } else {
                "OSCILLATES"
            }
        );
        assert!(lo.is_stabilizing() && !hi.is_stabilizing());
    }
    // The explicit witness schedule scales to any n — and the product-state
    // classifier turns the replay into a machine-checked verdict: the
    // (labeling, phase) cycle is *proven*, with its exact period.
    for n in [8usize, 32] {
        let p = example1_protocol(n);
        let outcome = classify_scheduled(
            &p,
            &vec![0; n],
            hot_node_labeling(n, 0),
            &oscillation_schedule(n),
            10_000,
            CycleDetector::ExactArena,
        )
        .unwrap();
        let SyncOutcome::Oscillating {
            cycle_start,
            period,
            ..
        } = outcome
        else {
            unreachable!("Example 1 oscillates under its witness schedule")
        };
        println!(
            "explicit witness, n={n}: proven oscillation, cycle start {cycle_start}, product period {period}"
        );
        assert_eq!((cycle_start, period), (0, n as u64));
    }
}

/// E5 — Theorem 4.1: snake lengths and both reductions in action.
pub fn e5() {
    header(
        "E5",
        "Theorem 4.1 — snake-in-the-box reductions (EQ and DISJ)",
    );
    println!(
        "{:<4} {:>8} {:>12} {:>10}",
        "d", "s(d)", "λ·2^d", "exhausted"
    );
    for d in 2..=6u32 {
        let known = Snake::known(d).unwrap().len();
        let out = longest_snake(d, Some(50_000_000));
        println!(
            "{d:<4} {known:>8} {:>12.1} {:>10}",
            abbott_katchalski_bound(d),
            out.exhausted
        );
    }
    for d in [4u32, 5] {
        let snake = Snake::embedded_isolated(d).unwrap();
        let len = snake.len();
        let x: Vec<bool> = (0..len).map(|i| i % 2 == 0).collect();
        let (p, layout) = eq_reduction(&snake, &x, &x);
        let init = eq_initial_labeling(layout, false, snake.vertices()[0]);
        let eq_osc = classify_sync(&p, &vec![0; layout.n], init, 1_000_000).unwrap();
        let mut y = x.clone();
        y[1] = !y[1];
        let (p2, layout2) = eq_reduction(&snake, &x, &y);
        let init2 = eq_initial_labeling(layout2, false, snake.vertices()[0]);
        let neq = classify_sync(&p2, &vec![0; layout2.n], init2, 1_000_000).unwrap();
        println!(
            "EQ reduction d={d} (|S|={len}): x=y → {}, x≠y → {}",
            verdict(&eq_osc),
            verdict(&neq)
        );
        assert!(!eq_osc.is_label_stable() && neq.is_label_stable());
    }
    // DISJ: intersecting oscillates under the Claim B.8 schedule — proven
    // by product-state cycle detection rather than a one-lap replay.
    let snake = Snake::embedded_isolated(4).unwrap();
    let q = 3;
    let (p, layout) = disj_reduction(&snake, q, &[true, false, true], &[false, false, true]);
    let (sched, init) = disj_oscillation_schedule(&snake, layout, q, 2);
    let outcome = classify_scheduled(
        &p,
        &vec![0; layout.n],
        init,
        &sched,
        100_000,
        CycleDetector::ExactArena,
    )
    .unwrap();
    let SyncOutcome::Oscillating { period, .. } = outcome else {
        unreachable!("intersecting sets oscillate under the Claim B.8 schedule")
    };
    println!(
        "DISJ reduction d=4, q={q}: intersecting sets → proven period-{period} oscillation \
         (script period {})",
        sched.period()
    );
    assert_eq!(period, sched.period() as u64);
}

fn verdict<L>(o: &SyncOutcome<L>) -> &'static str {
    if o.is_label_stable() {
        "stabilizes"
    } else {
        "OSCILLATES"
    }
}

/// E6 — Theorem 4.2 / B.11 / B.14: PSPACE-hardness pipeline, end to end.
pub fn e6() {
    header(
        "E6",
        "Theorem 4.2 — String-Oscillation → stateful → stateless (metanode)",
    );
    let cases: Vec<(&str, StringOscillation)> = vec![
        ("halting g", StringOscillation::new(2, 2, |_| None)),
        (
            "looping g",
            StringOscillation::new(2, 2, |t| Some(1 - t[0])),
        ),
        (
            "mixed g",
            StringOscillation::new(2, 3, |t| if t[0] == 0 { None } else { Some(t[0]) }),
        ),
    ];
    println!(
        "{:<12} {:>16} {:>26}",
        "instance", "brute-force", "metanode protocol (sync)"
    );
    for (name, inst) in cases {
        let brute = inst.find_oscillating_string();
        let stateful = inst.to_stateful_protocol();
        let lifted = metanode_lift(&stateful, 4.0);
        let n_big = 3 * stateful.node_count();
        // Probe from the lifted encodings of every string.
        let mut any_osc = false;
        let mut t = vec![0u8; inst.string_len()];
        'outer: loop {
            let init = lifted_labeling(&inst.initial_labels(&t));
            let outcome = classify_sync(&lifted, &vec![0; n_big], init, 300_000).unwrap();
            any_osc |= !outcome.is_label_stable();
            let mut i = 0;
            loop {
                if i == t.len() {
                    break 'outer;
                }
                t[i] += 1;
                if t[i] == inst.alphabet() {
                    t[i] = 0;
                    i += 1;
                } else {
                    break;
                }
            }
        }
        println!(
            "{name:<12} {:>16} {:>26}",
            if brute.is_some() {
                "oscillates"
            } else {
                "always halts"
            },
            if any_osc { "OSCILLATES" } else { "stabilizes" }
        );
        assert_eq!(brute.is_some(), any_osc, "reduction preserves the verdict");
    }
}

/// E7 — Claim 5.5: the 2-counter alternates on every odd ring.
pub fn e7() {
    header("E7", "Claim 5.5 — stateless 2-counter on odd rings");
    println!(
        "{:<4} {:>16} {:>18}",
        "n", "rounds to sync", "alternating after"
    );
    for n in [3usize, 5, 7, 9, 11, 15] {
        let p = counter_protocol(n, 2).unwrap();
        let mut rng = StdRng::seed_from_u64(n as u64);
        let initial: Vec<CounterFields> = (0..p.edge_count())
            .map(|_| CounterFields {
                b1: rng.random_bool(0.5),
                b2: rng.random_bool(0.5),
                z: rng.random_range(0..4),
                g: rng.random_range(0..4),
            })
            .collect();
        let mut sim = Simulation::new(&p, &vec![0; n], initial).unwrap();
        // Find the first round after which outputs alternate for 2n rounds.
        let mut synced_at = None;
        let mut streak = 0u64;
        let mut prev: Option<Vec<u64>> = None;
        for t in 1..=(8 * n as u64 + 64) {
            sim.run(&mut Synchronous, 1);
            let outs = sim.outputs().to_vec();
            let uniform = outs.iter().all(|&c| c == outs[0]);
            let alternating = prev
                .as_ref()
                .map(|p| p.iter().zip(&outs).all(|(&a, &b)| (a + 1) % 2 == b))
                .unwrap_or(false);
            if uniform && alternating {
                streak += 1;
                if streak >= 2 * n as u64 && synced_at.is_none() {
                    synced_at = Some(t - streak + 1);
                }
            } else {
                streak = 0;
            }
            prev = Some(outs);
        }
        let at = synced_at.expect("2-counter synchronizes");
        println!("{n:<4} {:>16} {at:>18}", sync_rounds_bound(n));
        assert!(at <= sync_rounds_bound(n) + 1);
    }
}

/// E8 — Claim 5.6: the D-counter synchronizes in O(n) with O(log D) labels.
pub fn e8() {
    header(
        "E8",
        "Claim 5.6 — D-counter: sync time vs 4n shape, label bits vs 2+3·log D",
    );
    println!(
        "{:<4} {:>4} {:>12} {:>12} {:>12} {:>14}",
        "n", "D", "bound 4n+8", "measured", "paper bits", "our bits"
    );
    for (n, d) in [(5usize, 4u32), (9, 8), (13, 16), (21, 32), (33, 64)] {
        let p = counter_protocol(n, d).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let initial: Vec<CounterFields> = (0..p.edge_count())
            .map(|_| CounterFields {
                b1: rng.random_bool(0.5),
                b2: rng.random_bool(0.5),
                z: rng.random_range(0..2 * d),
                g: rng.random_range(0..2 * d),
            })
            .collect();
        let mut sim = Simulation::new(&p, &vec![0; n], initial).unwrap();
        let mut synced_at = None;
        let mut streak = 0u64;
        let mut prev: Option<u64> = None;
        for t in 1..=(sync_rounds_bound(n) + 4 * u64::from(d) + 64) {
            sim.run(&mut Synchronous, 1);
            let outs = sim.outputs();
            let uniform = outs.iter().all(|&c| c == outs[0]);
            let incrementing = prev
                .map(|p| (p + 1) % u64::from(d) == outs[0])
                .unwrap_or(false);
            if uniform && incrementing {
                streak += 1;
                if streak >= 2 * u64::from(d) && synced_at.is_none() {
                    synced_at = Some(t - streak + 1);
                }
            } else {
                streak = 0;
            }
            prev = Some(outs[0]);
        }
        let at = synced_at.expect("D-counter synchronizes");
        let paper_bits = 2.0 + 3.0 * f64::from(d).log2();
        println!(
            "{n:<4} {d:>4} {:>12} {at:>12} {paper_bits:>12.1} {:>14}",
            sync_rounds_bound(n),
            p.label_bits()
        );
        assert!(at <= sync_rounds_bound(n) + 1);
    }
}

/// E9 — Theorem 5.2 (⊇): logspace machines run on the unidirectional ring.
pub fn e9() {
    header(
        "E9",
        "Theorem 5.2 — TM-on-ring: correctness and O(log n) labels",
    );
    println!(
        "{:<22} {:>4} {:>8} {:>12} {:>10} {:>8}",
        "language", "n", "|Z|", "round budget", "correct", "bits"
    );
    let cases: Vec<(&str, usize, turing_machine::Machine)> = vec![
        ("parity", 4, machines::parity_machine(4)),
        ("Σ≡0 (mod 3)", 4, machines::mod_count_machine(4, 3, 0)),
        ("contains 11", 5, machines::contains_11_machine(5)),
        ("first = last", 4, machines::first_equals_last_machine(4)),
    ];
    for (name, n, m) in cases {
        let p = tm_ring_protocol(m.clone());
        let budget = output_rounds_bound(&m);
        let mut correct = 0usize;
        let total = 1usize << n;
        for bits in 0..total as u32 {
            let x = bools_of(bits, n);
            let expected = u64::from(m.decide(&x).unwrap());
            let inputs: Vec<u64> = x.iter().map(|&b| u64::from(b)).collect();
            let mut sim = Simulation::new(&p, &inputs, vec![TmLabel::reset(&m); n]).unwrap();
            sim.run(&mut Synchronous, budget);
            if sim.outputs().iter().all(|&y| y == expected) {
                correct += 1;
            }
        }
        println!(
            "{name:<22} {n:>4} {:>8} {budget:>12} {:>10} {:>8.1}",
            m.config_count(),
            format!("{correct}/{total}"),
            p.label_bits()
        );
        assert_eq!(correct, total);
    }
}

/// E10 — Theorem 5.2 (⊆) + Lemma C.2: branching programs both ways.
pub fn e10() {
    header(
        "E10",
        "Theorem 5.2 / Lemma C.2 — branching programs ⇄ unidirectional rings",
    );
    // BP → protocol.
    println!(
        "{:<18} {:>4} {:>6} {:>12} {:>10}",
        "program", "n", "size", "round budget", "correct"
    );
    for (name, bp) in [
        ("parity", bps::parity(5)),
        ("majority", bps::majority(5)),
        ("equality", bps::equality(6)),
        ("contains 11", bps::contains_11(5)),
    ] {
        let n = bp.input_count();
        let p = bp_to_uniring_protocol(&bp).unwrap();
        let budget = branching_program::convert::output_rounds_bound(&bp);
        let mut correct = 0usize;
        for bits in 0..1u32 << n {
            let x = bools_of(bits, n);
            let expected = u64::from(bp.eval(&x).unwrap());
            let inputs: Vec<u64> = x.iter().map(|&b| u64::from(b)).collect();
            let mut sim = Simulation::new(&p, &inputs, vec![BpRingLabel::default(); n]).unwrap();
            sim.run(&mut Synchronous, budget);
            if sim.outputs().iter().all(|&y| y == expected) {
                correct += 1;
            }
        }
        println!(
            "{name:<18} {n:>4} {:>6} {budget:>12} {:>10}",
            bp.size(),
            format!("{correct}/{}", 1 << n)
        );
        assert_eq!(correct, 1 << n);
    }
    // Protocol → BP: extract from the sticky-OR ring.
    let n = 5;
    let p = Protocol::builder(topology::unidirectional_ring(n), 1.0)
        .uniform_reaction(FnReaction::new(|_, inc: &[bool], x| {
            let b = inc[0] || x == 1;
            (vec![b], u64::from(b))
        }))
        .build()
        .unwrap();
    let bp = uniring_protocol_to_bp(&p, &[false, true], &false).unwrap();
    println!(
        "protocol → BP: sticky-OR(n={n}): extracted size {} = n·|Σ|² = {}",
        bp.size(),
        n * 4
    );
    assert_eq!(bp.size(), n * 4);
    // Lemma C.2(2): the exact worst case.
    println!("Lemma C.2(2): worst-case protocol Rₙ = n(|Σ|−1):");
    for (n, q) in [(3usize, 4u64), (4, 5), (5, 3)] {
        let p = worst_case_protocol(n, q);
        let outcome = classify_sync(&p, &vec![0; n], vec![0u64; n], 1_000_000).unwrap();
        let SyncOutcome::LabelStable { round, .. } = outcome else {
            unreachable!()
        };
        println!(
            "  n={n} q={q}: measured {round}, formula {}",
            exact_rounds(n, q)
        );
        assert_eq!(round, exact_rounds(n, q));
    }
}

/// E11 — Theorem 5.4: circuits compiled onto the bidirectional ring.
pub fn e11() {
    header(
        "E11",
        "Theorem 5.4 — circuit-on-ring compiler (P/poly ⊆ ÕSb_log)",
    );
    println!(
        "{:<16} {:>4} {:>5} {:>6} {:>12} {:>10} {:>7}",
        "circuit", "n", "|C|", "N", "round budget", "correct", "bits"
    );
    let mut rng = StdRng::seed_from_u64(5);
    let mut cases = vec![
        ("parity(3)".to_string(), circuits::parity(3)),
        ("equality(4)".to_string(), circuits::equality(4)),
        ("majority(3)".to_string(), circuits::majority(3)),
        ("mod3(3)".to_string(), circuits::mod_count(3, 3, 0)),
    ];
    cases.push((
        "random(3,6)".to_string(),
        boolean_circuit::synthesis::random_circuit(3, 6, &mut rng),
    ));
    for (name, c) in cases {
        let n = c.input_count();
        let compiled = compile_circuit(&c).unwrap();
        let mut correct = 0usize;
        for bits in 0..1u32 << n {
            let x = bools_of(bits, n);
            let expected = u64::from(c.eval(&x).unwrap());
            let initial: Vec<CircuitLabel> = (0..compiled.protocol().edge_count())
                .map(|_| CircuitLabel {
                    ctr: CounterFields {
                        b1: rng.random_bool(0.5),
                        b2: rng.random_bool(0.5),
                        z: rng.random_range(0..compiled.modulus()),
                        g: rng.random_range(0..compiled.modulus()),
                    },
                    i1: rng.random_bool(0.5),
                    i2: rng.random_bool(0.5),
                    v: rng.random_bool(0.5),
                    o: rng.random_bool(0.5),
                })
                .collect();
            let mut sim =
                Simulation::new(compiled.protocol(), &compiled.ring_inputs(&x), initial).unwrap();
            sim.run(&mut Synchronous, compiled.rounds_bound());
            if sim.outputs().iter().all(|&y| y == expected) {
                correct += 1;
            }
        }
        println!(
            "{name:<16} {n:>4} {:>5} {:>6} {:>12} {:>10} {:>7}",
            c.size(),
            compiled.ring_size(),
            compiled.rounds_bound(),
            format!("{correct}/{}", 1 << n),
            compiled.protocol().label_bits()
        );
        assert_eq!(correct, 1 << n);
    }
}

/// E12 — Theorem 5.10: the counting lower bound.
pub fn e12() {
    header(
        "E12",
        "Theorem 5.10 — counting bound Lₙ ≥ n/(4k) on degree-k graphs",
    );
    println!(
        "{:<6} {:<4} {:>12} {:>22}",
        "n", "k", "n/(4k) bits", "counting threshold bits"
    );
    for n in [16usize, 32, 64, 128] {
        for k in [2usize, 4] {
            let bound = counting::theorem_5_10_bound(n, k);
            let feasible = counting::min_feasible_label_bits(n, k);
            println!("{n:<6} {k:<4} {bound:>12.2} {feasible:>22}");
            assert!(counting::labels_insufficient(n, k, bound / 8.0));
        }
    }
}

/// E13 — Theorem 6.2 + Corollaries 6.3/6.4: fooling-set lower bounds.
pub fn e13() {
    header(
        "E13",
        "Theorem 6.2 — fooling sets for EQ and MAJ on the bidirectional ring",
    );
    println!(
        "{:<6} {:>10} {:>14} {:>16}",
        "n", "|S| (EQ)", "EQ bound bits", "MAJ bound bits"
    );
    for n in [8usize, 12, 16, 20] {
        let ring = topology::bidirectional_ring(n);
        let eq = fooling::equality_fooling_set(n).unwrap();
        let eq_bound = eq.label_bound(&ring).unwrap();
        let maj = fooling::majority_fooling_set(n).unwrap();
        let maj_bound = maj.label_bound(&ring).unwrap();
        println!(
            "{n:<6} {:>10} {eq_bound:>14.3} {maj_bound:>16.3}",
            eq.size()
        );
        assert!((eq_bound - (n as f64 - 4.0) / 8.0).abs() < 1e-9);
    }
    // The proof mechanism, live: cut labelings of a real label-stabilizing
    // protocol are injective over the fooling set.
    let n = 8;
    let ring = topology::bidirectional_ring(n);
    let eq = fooling::equality_fooling_set(n).unwrap();
    let p = generic_protocol(ring.clone(), fooling::equality_fn).unwrap();
    let (c_edges, d_edges) = fooling::cut_edges(&ring, n / 2);
    let mut signatures = std::collections::HashSet::new();
    for (x, y) in &eq.pairs {
        let mut input_bits: Vec<u64> = x.iter().map(|&b| u64::from(b)).collect();
        input_bits.extend(y.iter().map(|&b| u64::from(b)));
        let mut sim =
            Simulation::new(&p, &input_bits, vec![GenericLabel::zero(n); p.edge_count()]).unwrap();
        sim.run_until_label_stable(&mut Synchronous, 4 * n as u64)
            .unwrap();
        let sig: Vec<GenericLabel> = c_edges
            .iter()
            .chain(&d_edges)
            .map(|&e| sim.labeling()[e].clone())
            .collect();
        signatures.insert(sig);
    }
    println!(
        "cut-labeling injectivity on EQ_{n}: {} distinct signatures for {} fooling pairs",
        signatures.len(),
        eq.size()
    );
    assert_eq!(signatures.len(), eq.size());
}

/// E14 — the applications: BGP, contagion, asynchronous circuits, games.
pub fn e14() {
    header(
        "E14",
        "Applications — BGP gadgets, contagion, async circuits, games",
    );
    use best_response::{async_circuit, bgp, contagion, game};
    // BGP.
    for (name, spp, expect_stable) in [
        ("GOOD gadget", bgp::good_gadget(), true),
        ("DISAGREE", bgp::disagree_gadget(), false),
        ("BAD gadget", bgp::bad_gadget(), false),
    ] {
        let p = spp.to_protocol();
        let nn = spp.node_count();
        let direct: Vec<bgp::Route> = (0..nn as u8)
            .map(|i| if i == 0 { vec![0] } else { vec![i, 0] })
            .collect();
        let init = spp.labeling_from(&direct);
        let outcome = classify_sync(&p, &vec![0; nn], init, 1_000_000).unwrap();
        println!(
            "BGP {name:<12} sync from direct routes → {}",
            verdict(&outcome)
        );
        assert_eq!(outcome.is_label_stable(), expect_stable);
    }
    // Contagion.
    let g = topology::bidirectional_ring(9);
    let p = contagion::contagion_protocol(g.clone(), 1, 2);
    let init = contagion::seeded_labeling(&g, &[4]);
    let outcome = classify_sync(&p, &[0; 9], init, 1_000_000).unwrap();
    println!(
        "contagion q=1/2, ring(9), one seed → {} (full adoption: {})",
        verdict(&outcome),
        outcome.final_outputs() == Some(&vec![1; 9][..])
    );
    // Async circuits.
    let latch = async_circuit::sr_latch();
    let meta = classify_sync(&latch, &[0, 0], vec![false, false], 1000).unwrap();
    println!(
        "SR latch, S=R=0, simultaneous switching → {}",
        verdict(&meta)
    );
    assert!(!meta.is_label_stable());
    // Games.
    let mp = game::matching_pennies().to_protocol();
    let o = classify_sync(&mp, &[0, 0], vec![0u64, 0], 1000).unwrap();
    println!("matching pennies best-response → {}", verdict(&o));
    let pd = game::prisoners_dilemma().to_protocol();
    let o = classify_sync(&pd, &[0, 0], vec![0u64, 0], 1000).unwrap();
    println!("prisoner's dilemma best-response → {}", verdict(&o));
    assert!(o.is_label_stable());
}

/// E15 — engine throughput sanity.
pub fn e15() {
    header("E15", "Engine throughput — node-activations per second");
    for n in [100usize, 1000, 10_000] {
        let p = Protocol::builder(topology::unidirectional_ring(n), 8.0)
            .uniform_reaction(FnReaction::new(|_, inc: &[u64], x| {
                let m = inc[0].max(x);
                (vec![m], m)
            }))
            .build()
            .unwrap();
        let inputs: Vec<u64> = (0..n as u64).collect();
        let mut sim = Simulation::new(&p, &inputs, vec![0u64; n]).unwrap();
        let rounds = 2_000_000 / n as u64;
        let start = Instant::now();
        sim.run(&mut Synchronous, rounds);
        let dt = start.elapsed().as_secs_f64();
        let act = rounds as f64 * n as f64;
        println!(
            "n={n:<7} {rounds:>6} rounds  {:>12.0} activations/s",
            act / dt
        );
    }
}

/// Runs the experiments selected by `ids` (all when empty).
pub fn run(ids: &[String]) {
    let all: Vec<(&str, fn())> = vec![
        ("e1", e1 as fn()),
        ("e2", e2),
        ("e3", e3),
        ("e4", e4),
        ("e5", e5),
        ("e6", e6),
        ("e7", e7),
        ("e8", e8),
        ("e9", e9),
        ("e10", e10),
        ("e11", e11),
        ("e12", e12),
        ("e13", e13),
        ("e14", e14),
        ("e15", e15),
    ];
    let wanted: Vec<String> = ids.iter().map(|s| s.to_lowercase()).collect();
    for (id, f) in all {
        if wanted.is_empty() || wanted.iter().any(|w| w == id) {
            f();
        }
    }
}
