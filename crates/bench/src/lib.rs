//! # stateless-bench
//!
//! Experiment harness and Criterion benchmarks for the reproduction. The
//! `experiments` binary regenerates every experiment table recorded in
//! `EXPERIMENTS.md` (`cargo run --release -p stateless-bench --bin
//! experiments [ids…]`); the benches in `benches/` time the same code
//! paths.

#![forbid(unsafe_code)]

pub mod experiments;
pub mod perf;
pub mod report;
pub mod workloads;
