//! Rendering of `CRITERION_JSON` line-JSON measurement files into a
//! per-bench markdown table — the perf trend report.
//!
//! Both the vendored criterion harness and the `experiments --json`
//! runner append one JSON object per measurement to the file named by
//! `$CRITERION_JSON`, in the fixed shape
//! `{"bench":"…","median_ns_per_iter":…,"low_ns":…,"high_ns":…,"elements_per_iter":…}`;
//! CI archives that file per commit as the `bench-json-<sha>` artifact.
//! [`render_markdown`] turns one or more such files (e.g. the artifacts
//! of successive commits) into a bench × file table of medians, so a perf
//! regression is one `git diff`/eyeball away instead of buried in raw
//! line JSON. The `bench-report` binary is the CLI wrapper.
//!
//! Two pieces turn the table into a *trend* report:
//!
//! * [`parse_summary`] adapts the committed `BENCH_engine.json` perf
//!   summary into the same [`BenchLine`] shape (each section's per-entry
//!   rates/times become synthetic `perf/…` bench ids matching the ones
//!   the runner emits), so the repository's committed baseline is
//!   directly comparable with a fresh `CRITERION_JSON` artifact —
//!   [`parse_any`] picks the right parser per file.
//! * [`render_compare`] renders a baseline/current pair with a trailing
//!   `current / baseline` ratio column (< 1 is faster). CI diffs every
//!   commit's fresh measurements against `BENCH_engine.json` this way
//!   (`bench-report --compare`).

use std::collections::BTreeMap;

/// One parsed measurement line.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchLine {
    /// Full bench id (e.g. `engine/step_sync/1024`).
    pub bench: String,
    /// Median nanoseconds per iteration.
    pub median_ns: f64,
}

/// Extracts the string value of `"key":"…"` from one JSON line. Handles
/// backslash escapes enough for bench ids (which our harnesses restrict
/// to path-ish characters anyway).
fn string_field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => out.push(chars.next()?),
            _ => out.push(c),
        }
    }
    None
}

/// Extracts the numeric value of `"key":…` from one JSON line.
fn number_field(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !matches!(c, '0'..='9' | '.' | '-' | '+' | 'e' | 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parses the measurement lines of one `CRITERION_JSON` file; lines
/// without the two required fields (or non-JSON noise) are skipped.
pub fn parse_lines(text: &str) -> Vec<BenchLine> {
    text.lines()
        .filter_map(|line| {
            Some(BenchLine {
                bench: string_field(line, "bench")?,
                median_ns: number_field(line, "median_ns_per_iter")?,
            })
        })
        .collect()
}

/// Extracts the section name of a perf-summary line
/// (`  "engine_throughput": […]` → `engine_throughput`).
fn section_name(line: &str) -> Option<&str> {
    let rest = line.trim_start().strip_prefix('"')?;
    let end = rest.find('"')?;
    rest[end + 1..]
        .trim_start()
        .starts_with(':')
        .then_some(&rest[..end])
}

/// The balanced `{…}` object substrings of one summary line. The perf
/// summary keeps each section's entries un-nested (one flat object per
/// row), so a depth-1 scan captures exactly the rows.
fn objects_in(line: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut start = 0usize;
    let mut depth = 0u32;
    for (i, b) in line.bytes().enumerate() {
        match b {
            b'{' => {
                if depth == 0 {
                    start = i;
                }
                depth += 1;
            }
            b'}' if depth > 0 => {
                depth -= 1;
                if depth == 0 {
                    out.push(&line[start..=i]);
                }
            }
            _ => {}
        }
    }
    out
}

/// Converts one perf-summary row into synthetic [`BenchLine`]s whose ids
/// match the ones `emit_criterion_line` writes for the same measurements,
/// so a summary column lines up with a `CRITERION_JSON` column.
fn summary_object_lines(section: &str, obj: &str, out: &mut Vec<BenchLine>) {
    let num = |key: &str| number_field(obj, key);
    let mut push = |bench: String, ns: Option<f64>| {
        if let Some(ns) = ns.filter(|ns| ns.is_finite() && *ns > 0.0) {
            out.push(BenchLine {
                bench,
                median_ns: ns,
            });
        }
    };
    // Rates (x_per_s over a known work amount) and times (ms per run)
    // both reduce to nanoseconds per iteration.
    let per_s = |work: f64, rate: Option<f64>| rate.map(|r| work / r * 1e9);
    let ms = |v: Option<f64>| v.map(|ms| ms * 1e6);
    match section {
        "engine_throughput" => {
            let (Some(n), Some(rounds)) = (num("n"), num("rounds_per_iter")) else {
                return;
            };
            let work = rounds * n;
            let n = n as u64;
            push(
                format!("perf/engine/{n}/naive"),
                per_s(work, num("naive_activations_per_s")),
            );
            push(
                format!("perf/engine/{n}/buffered"),
                per_s(work, num("buffered_activations_per_s")),
            );
        }
        "async_engine" => {
            let (Some(kind), Some(steps)) = (string_field(obj, "schedule"), num("steps_per_iter"))
            else {
                return;
            };
            push(
                format!("perf/async_engine/{kind}/alloc"),
                per_s(steps, num("alloc_steps_per_s")),
            );
            push(
                format!("perf/async_engine/{kind}/buffered"),
                per_s(steps, num("buffered_steps_per_s")),
            );
        }
        "label_stabilization" => {
            let Some(n) = num("n").map(|n| n as u64) else {
                return;
            };
            push(
                format!("perf/stabilization/{n}/naive"),
                ms(num("naive_ms_per_run")),
            );
            push(
                format!("perf/stabilization/{n}/buffered"),
                ms(num("buffered_ms_per_run")),
            );
        }
        "classify_sync" => {
            let Some(n) = num("n").map(|n| n as u64) else {
                return;
            };
            push(
                format!("perf/classify/{n}/naive"),
                ms(num("naive_ms_per_run")),
            );
            push(
                format!("perf/classify/{n}/fingerprint"),
                ms(num("fingerprint_ms_per_run")),
            );
        }
        "classify_detectors" => {
            let Some(n) = num("n").map(|n| n as u64) else {
                return;
            };
            push(
                format!("perf/classify_detectors/{n}/arena"),
                ms(num("arena_ms_per_run")),
            );
            push(
                format!("perf/classify_detectors/{n}/brent"),
                ms(num("brent_ms_per_run")),
            );
        }
        "round_complexity_sweep" => {
            let Some(n) = num("n").map(|n| n as u64) else {
                return;
            };
            push(
                format!("perf/sweep/{n}/sequential"),
                ms(num("sequential_ms")),
            );
            push(format!("perf/sweep/{n}/parallel"), ms(num("parallel_ms")));
        }
        "verify_scaling" => {
            let (Some(n), Some(states)) = (num("n"), num("states")) else {
                return;
            };
            let n = n as u64;
            // Rows predating the worker sweep carry no `threads` field —
            // they were single-threaded.
            let threads = num("threads").map_or(1, |t| t as u64);
            push(
                format!("perf/verify_scaling/{n}/packed/t{threads}"),
                per_s(states, num("packed_states_per_s")),
            );
            push(
                format!("perf/verify_scaling/{n}/scc/t{threads}"),
                ms(num("scc_ms")),
            );
            if threads == 1 {
                push(
                    format!("perf/verify_scaling/{n}/naive"),
                    per_s(states, num("naive_states_per_s")),
                );
                push(
                    format!("perf/verify_scaling/{n}/scc/tarjan"),
                    ms(num("tarjan_scc_ms")),
                );
                // Symmetry-quotient run (measured once per n, stamped on
                // every row): throughput over the *quotient* state count.
                // Trivial-group rows carry 0 sentinels, which the `push`
                // positivity filter drops — same contract as
                // `naive_states_per_s` on rows past the naive cutoff.
                if let Some(sym_states) = num("sym_states").filter(|&s| s > 0.0) {
                    push(
                        format!("perf/verify_scaling/{n}/sym"),
                        per_s(sym_states, num("sym_states_per_s")),
                    );
                }
            }
        }
        "byzantine_scaling" => {
            let (Some(n), Some(states)) = (num("n"), num("states")) else {
                return;
            };
            let n = n as u64;
            // Pure-Byzantine rows key on `f`; mixed-model rows (one
            // Byzantine plus one crashed node) carry an explicit `model`
            // slug instead.
            let id = match string_field(obj, "model") {
                Some(model) => format!("perf/byzantine/{n}/{model}"),
                None => {
                    let Some(f) = num("f") else {
                        return;
                    };
                    format!("perf/byzantine/{n}/f{}", f as u64)
                }
            };
            push(id, per_s(states, num("states_per_s")));
        }
        "checkpoint_overhead" => {
            let (Some(n), Some(states)) = (num("n"), num("states")) else {
                return;
            };
            let n = n as u64;
            push(
                format!("perf/checkpoint/{n}/plain"),
                per_s(states, num("plain_states_per_s")),
            );
            push(
                format!("perf/checkpoint/{n}/checkpointed"),
                per_s(states, num("checkpointed_states_per_s")),
            );
        }
        "cache_service" => {
            let (Some(n), Some(states)) = (num("n"), num("sweep_states")) else {
                return;
            };
            let n = n as u64;
            push(
                format!("perf/cache_service/{n}/cold"),
                per_s(states, num("cold_states_per_s")),
            );
            push(
                format!("perf/cache_service/{n}/warm"),
                per_s(states, num("warm_states_per_s")),
            );
        }
        _ => {}
    }
}

/// Parses a `BENCH_engine.json`-style perf summary into synthetic
/// [`BenchLine`]s (see [`summary_object_lines`] for the id mapping).
pub fn parse_summary(text: &str) -> Vec<BenchLine> {
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(section) = section_name(line) else {
            continue;
        };
        for obj in objects_in(line) {
            summary_object_lines(section, obj, &mut out);
        }
    }
    out
}

/// Parses a measurement file of either supported shape: `CRITERION_JSON`
/// measurement lines when any are present, otherwise the
/// `BENCH_engine.json` perf-summary adaptation.
pub fn parse_any(text: &str) -> Vec<BenchLine> {
    let lines = parse_lines(text);
    if lines.is_empty() {
        parse_summary(text)
    } else {
        lines
    }
}

/// Median of a non-empty sample (mean of the middle pair for even sizes).
fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN medians"));
    let m = xs.len() / 2;
    if xs.len() % 2 == 1 {
        xs[m]
    } else {
        (xs[m - 1] + xs[m]) / 2.0
    }
}

/// Formats nanoseconds with a human-readable unit.
fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Renders labeled measurement files as a markdown table: one row per
/// bench id (union over all files, sorted), one column per file, each
/// cell the per-bench median of that file's measurements (`—` when a file
/// lacks the bench — e.g. a bench added after an old artifact was taken).
pub fn render_markdown(files: &[(String, Vec<BenchLine>)]) -> String {
    let mut per_file: Vec<BTreeMap<&str, Vec<f64>>> = Vec::with_capacity(files.len());
    let mut benches: BTreeMap<&str, ()> = BTreeMap::new();
    for (_, lines) in files {
        let mut map: BTreeMap<&str, Vec<f64>> = BTreeMap::new();
        for l in lines {
            map.entry(&l.bench).or_default().push(l.median_ns);
            benches.entry(&l.bench).or_insert(());
        }
        per_file.push(map);
    }
    let mut out = String::from("| bench |");
    for (label, _) in files {
        out.push_str(&format!(" {label} |"));
    }
    out.push_str("\n|---|");
    out.push_str(&"---:|".repeat(files.len()));
    out.push('\n');
    for (bench, ()) in &benches {
        out.push_str(&format!("| `{bench}` |"));
        for map in &per_file {
            match map.get(bench) {
                Some(xs) => out.push_str(&format!(" {} |", format_ns(median(xs.clone())))),
                None => out.push_str(" — |"),
            }
        }
        out.push('\n');
    }
    out
}

/// Collects the historical `bench-json-<sha>` artifacts under `dir` into
/// labeled measurement columns for [`render_markdown`] — the
/// multi-commit trend view. Accepts both artifact layouts: a loose
/// `bench-json-<sha>` file (the raw line JSON) or a `bench-json-<sha>`
/// directory wrapping it (how `actions/download-artifact` unpacks each
/// artifact); any other entry is ignored. Columns are ordered oldest →
/// newest by modification time (ties broken by name) and labeled with
/// the `<sha>` suffix, so the rendered table reads left to right along
/// history.
pub fn collect_trend(dir: &std::path::Path) -> std::io::Result<Vec<(String, Vec<BenchLine>)>> {
    let mut dated: Vec<(std::time::SystemTime, String, Vec<BenchLine>)> = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        // Artifact directories keep their name verbatim; loose files drop
        // the extension, so `bench-json-<sha>.jsonl` labels as `<sha>`.
        let name = if path.is_dir() {
            entry.file_name().to_string_lossy().into_owned()
        } else {
            path.file_stem()
                .map_or_else(String::new, |s| s.to_string_lossy().into_owned())
        };
        let Some(sha) = name.strip_prefix("bench-json-") else {
            continue;
        };
        let mut text = String::new();
        if path.is_dir() {
            // Concatenate the artifact directory's files (normally one).
            let mut inner: Vec<std::path::PathBuf> = std::fs::read_dir(&path)?
                .filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| p.is_file())
                .collect();
            inner.sort();
            for p in inner {
                text.push_str(&std::fs::read_to_string(p)?);
                text.push('\n');
            }
        } else {
            text = std::fs::read_to_string(&path)?;
        }
        let lines = parse_any(&text);
        if lines.is_empty() {
            continue;
        }
        let mtime = entry
            .metadata()
            .and_then(|m| m.modified())
            .unwrap_or(std::time::SystemTime::UNIX_EPOCH);
        dated.push((mtime, sha.to_owned(), lines));
    }
    dated.sort_by(|a, b| (a.0, &a.1).cmp(&(b.0, &b.1)));
    Ok(dated
        .into_iter()
        .map(|(_, label, lines)| (label, lines))
        .collect())
}

/// The verifier-memory figure of a perf summary: from the
/// `verify_scaling` row with the largest `n` (and, among those, the
/// highest thread count — rows of one `n` report identical sizes),
/// `(n, (packed_arena_bytes + peak_edge_bytes) / states)` — resident
/// state storage plus peak transient edge storage, per state. Summaries
/// predating the edge-less verifier report the stored CSR under
/// `csr_edge_bytes`; it is accepted as the edge figure so the gate can
/// compare across that boundary. When the summary carries a
/// `checkpoint_overhead` section, its `scratch_bytes_per_state` (the
/// largest framed segment a checkpoint resume must buffer, per state)
/// is added on top — summaries predating crash-safe verification
/// contribute zero scratch, so old baselines stay comparable.
///
/// Rows the table adapter would skip as sentinels must not reach the
/// gate either: a non-finite or non-positive state count, or a byte
/// total of zero (the `0` sentinel rows of sections that did not
/// measure memory), would make the per-state ratio NaN/∞/0 and let
/// [`check_memory_gate`] pass vacuously. Such rows are skipped here, so
/// a summary with *only* sentinel rows yields `None` and the gate
/// errors out instead of silently passing.
pub fn memory_per_state(text: &str) -> Option<(u64, f64)> {
    let mut best: Option<(u64, f64)> = None;
    let mut scratch = 0.0f64;
    for line in text.lines() {
        match section_name(line) {
            Some("verify_scaling") => {
                for obj in objects_in(line) {
                    let num = |key: &str| number_field(obj, key);
                    let (Some(n), Some(states)) = (num("n"), num("states")) else {
                        continue;
                    };
                    if !states.is_finite() || states <= 0.0 {
                        continue;
                    }
                    let arena = num("packed_arena_bytes").unwrap_or(0.0);
                    let Some(edge) = num("peak_edge_bytes").or_else(|| num("csr_edge_bytes"))
                    else {
                        continue;
                    };
                    let bytes = arena + edge;
                    if !bytes.is_finite() || bytes <= 0.0 {
                        continue;
                    }
                    let candidate = (n as u64, bytes / states);
                    if best.is_none_or(|(bn, _)| candidate.0 >= bn) {
                        best = Some(candidate);
                    }
                }
            }
            Some("checkpoint_overhead") => {
                for obj in objects_in(line) {
                    if let Some(s) = number_field(obj, "scratch_bytes_per_state") {
                        if s.is_finite() && s > 0.0 {
                            scratch = scratch.max(s);
                        }
                    }
                }
            }
            _ => {}
        }
    }
    best.map(|(n, bytes)| (n, bytes + scratch))
}

/// The memory-regression gate: fails (returns `Err` with the verdict
/// line) when the current summary's largest-row
/// [`memory_per_state`] exceeds `slack` × the baseline's — the
/// state-linear budget the edge-less verifier must hold. Comparing
/// bytes *per state* keeps the gate meaningful when the largest row's
/// `n` grows (more states is the point; super-linear bytes per state is
/// the regression).
pub fn check_memory_gate(baseline: &str, current: &str, slack: f64) -> Result<String, String> {
    let Some((bn, bb)) = memory_per_state(baseline) else {
        return Err("memory gate: baseline has no verify_scaling memory figures".into());
    };
    let Some((cn, cb)) = memory_per_state(current) else {
        return Err("memory gate: current has no verify_scaling memory figures".into());
    };
    // memory_per_state only admits finite positive rows, so these
    // figures are well-formed by construction — but a gate must never
    // trust its inputs: re-check before comparing, so a future parsing
    // change can only make the gate fail loudly, not pass vacuously.
    if !(bb.is_finite() && bb > 0.0 && cb.is_finite() && cb > 0.0) {
        return Err(format!(
            "memory gate: degenerate figures (baseline {bb} B/state, current {cb} B/state)"
        ));
    }
    let verdict = format!(
        "memory gate: baseline n={bn} {bb:.1} B/state, current n={cn} {cb:.1} B/state, \
         budget {slack:.2}x = {:.1} B/state",
        bb * slack
    );
    if cb <= bb * slack {
        Ok(verdict)
    } else {
        Err(verdict)
    }
}

/// Renders a baseline/current pair as a markdown table with a trailing
/// delta column: per-bench `current / baseline` median ratio (`< 1` is
/// faster than the baseline, `—` when a bench exists on one side only).
pub fn render_compare(
    baseline: &(String, Vec<BenchLine>),
    current: &(String, Vec<BenchLine>),
) -> String {
    let fold = |lines: &[BenchLine]| -> BTreeMap<String, f64> {
        let mut samples: BTreeMap<&str, Vec<f64>> = BTreeMap::new();
        for l in lines {
            samples.entry(&l.bench).or_default().push(l.median_ns);
        }
        samples
            .into_iter()
            .map(|(bench, xs)| (bench.to_owned(), median(xs)))
            .collect()
    };
    let base = fold(&baseline.1);
    let cur = fold(&current.1);
    let mut out = format!(
        "| bench | {} | {} | current / baseline |\n|---|---:|---:|---:|\n",
        baseline.0, current.0
    );
    let benches: BTreeMap<&str, ()> = base.keys().chain(cur.keys()).map(|b| (&**b, ())).collect();
    for (bench, ()) in benches {
        let cell = |m: Option<&f64>| m.map_or("—".into(), |&ns| format_ns(ns));
        let ratio = match (base.get(bench), cur.get(bench)) {
            (Some(&b), Some(&c)) if b > 0.0 => format!("{:.2}×", c / b),
            _ => "—".into(),
        };
        out.push_str(&format!(
            "| `{bench}` | {} | {} | {ratio} |\n",
            cell(base.get(bench)),
            cell(cur.get(bench)),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = concat!(
        "{\"bench\":\"engine/step/1024\",\"median_ns_per_iter\":1500.0,\"low_ns\":1400.0,\"high_ns\":1600.0,\"elements_per_iter\":1}\n",
        "{\"bench\":\"engine/step/1024\",\"median_ns_per_iter\":2500.0,\"low_ns\":2400.0,\"high_ns\":2600.0,\"elements_per_iter\":1}\n",
        "not json at all\n",
        "{\"bench\":\"verify/example1\",\"median_ns_per_iter\":2000000.0,\"low_ns\":1.0,\"high_ns\":1.0,\"elements_per_iter\":4}\n",
    );

    #[test]
    fn parses_well_formed_lines_and_skips_noise() {
        let lines = parse_lines(SAMPLE);
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].bench, "engine/step/1024");
        assert_eq!(lines[0].median_ns, 1500.0);
        assert_eq!(lines[2].bench, "verify/example1");
    }

    #[test]
    fn median_folds_repeated_measurements() {
        assert_eq!(median(vec![3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(vec![4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn renders_union_of_benches_across_files() {
        let a = parse_lines(SAMPLE);
        let b = parse_lines(
            "{\"bench\":\"engine/step/1024\",\"median_ns_per_iter\":1800.0,\"low_ns\":1,\"high_ns\":1,\"elements_per_iter\":1}\n",
        );
        let table = render_markdown(&[("old".into(), a), ("new".into(), b)]);
        // Two medians for engine/step in file "old" fold to their mean.
        assert!(
            table.contains("| `engine/step/1024` | 2.00 µs | 1.80 µs |"),
            "{table}"
        );
        // verify/example1 exists only in "old"; the other cell is a dash.
        assert!(
            table.contains("| `verify/example1` | 2.00 ms | — |"),
            "{table}"
        );
        assert!(
            table.starts_with("| bench | old | new |\n|---|---:|---:|\n"),
            "{table}"
        );
    }

    #[test]
    fn unit_formatting_scales() {
        assert_eq!(format_ns(12.0), "12.0 ns");
        assert_eq!(format_ns(12_340.0), "12.34 µs");
        assert_eq!(format_ns(12_340_000.0), "12.34 ms");
        assert_eq!(format_ns(12_340_000_000.0), "12.340 s");
    }

    #[test]
    fn escaped_quotes_in_bench_ids_survive() {
        let lines = parse_lines("{\"bench\":\"weird\\\"name\",\"median_ns_per_iter\":5.0}\n");
        assert_eq!(lines[0].bench, "weird\"name");
    }

    /// A structural miniature of `BENCH_engine.json`: every section kind,
    /// including a per-thread `verify_scaling` row and a legacy row
    /// without the `threads` field.
    const SUMMARY: &str = concat!(
        "{\n",
        "  \"suite\": \"stateless-computation perf summary\",\n",
        "  \"threads\": 1,\n",
        "  \"engine_throughput\": [{\"n\":100,\"rounds_per_iter\":1000,\"naive_activations_per_s\":200000000,\"buffered_activations_per_s\":400000000,\"speedup\":2.00}],\n",
        "  \"async_engine\": [{\"schedule\":\"random_rfair_8\",\"n\":1024,\"steps_per_iter\":50000,\"alloc_steps_per_s\":100000,\"buffered_steps_per_s\":200000,\"speedup\":2.00}],\n",
        "  \"label_stabilization\": {\"n\":1024,\"naive_ms_per_run\":60.000,\"buffered_ms_per_run\":10.000,\"speedup\":6.00},\n",
        "  \"classify_sync\": {\"n\":1024,\"naive_ms_per_run\":50.000,\"fingerprint_ms_per_run\":20.000,\"speedup\":2.50},\n",
        "  \"classify_detectors\": {\"n\":1024,\"arena_ms_per_run\":17.000,\"brent_ms_per_run\":34.000},\n",
        "  \"round_complexity_sweep\": {\"n\":14,\"labelings\":16384,\"threads\":1,\"sequential_ms\":12.000,\"parallel_ms\":6.000,\"speedup\":2.00},\n",
        "  \"verify_scaling\": [{\"n\":6,\"r\":2,\"threads\":2,\"states\":1000,\"edges\":9,\"naive_states_per_s\":250000,\"packed_states_per_s\":1000000,\"scc_ms\":4.000,\"scc_vs_t1\":1.50,\"tarjan_scc_ms\":5.000,\"sym_states\":100,\"quotient_ratio\":10.00,\"sym_states_per_s\":500000}, {\"n\":8,\"r\":2,\"states\":2000,\"edges\":9,\"naive_states_per_s\":100000,\"packed_states_per_s\":200000,\"scc_ms\":8.000,\"tarjan_scc_ms\":7.000,\"sym_states\":200,\"quotient_ratio\":10.00,\"sym_states_per_s\":1000000}, {\"n\":9,\"r\":2,\"states\":3000,\"edges\":9,\"naive_states_per_s\":0,\"packed_states_per_s\":300000,\"scc_ms\":9.000,\"tarjan_scc_ms\":8.000,\"sym_states\":0,\"quotient_ratio\":0.00,\"sym_states_per_s\":0}],\n",
        "  \"byzantine_scaling\": [{\"n\":4,\"f\":0,\"r\":1,\"states\":4000,\"states_per_s\":2000000,\"stabilizing\":true,\"f0_matches_faultfree\":true}, {\"n\":4,\"f\":1,\"r\":1,\"states\":20000,\"states_per_s\":1000000,\"stabilizing\":false,\"f0_matches_faultfree\":true}, {\"n\":4,\"model\":\"byz1crash1\",\"r\":1,\"states\":8000,\"states_per_s\":4000000,\"stabilizing\":false}],\n",
        "  \"checkpoint_overhead\": {\"n\":4,\"f\":1,\"r\":1,\"states\":20000,\"every_states\":2500,\"plain_states_per_s\":1000000,\"checkpointed_states_per_s\":800000,\"overhead\":1.250,\"epochs\":2,\"epoch_bytes\":400000,\"checkpoint_scratch_bytes\":100000,\"scratch_bytes_per_state\":5.00},\n",
        "  \"cache_service\": {\"n\":4,\"f\":1,\"r\":1,\"placements\":4,\"sweep_states\":40000,\"cold_states_per_s\":1000000,\"warm_states_per_s\":100000000,\"warm_speedup\":100.0,\"warm_jobs\":5,\"warm_hits\":4,\"hit_rate\":0.800}\n",
        "}\n",
    );

    #[test]
    fn summary_adapter_matches_runner_bench_ids() {
        let lines = parse_summary(SUMMARY);
        let get = |bench: &str| -> f64 {
            lines
                .iter()
                .find(|l| l.bench == bench)
                .unwrap_or_else(|| panic!("missing {bench}"))
                .median_ns
        };
        // 1000 rounds × 100 nodes at 4e8 activations/s = 250 µs per iter.
        assert_eq!(get("perf/engine/100/buffered"), 250_000.0);
        assert_eq!(get("perf/engine/100/naive"), 500_000.0);
        // 50_000 steps at 2e5 steps/s = 0.25 s.
        assert_eq!(get("perf/async_engine/random_rfair_8/buffered"), 2.5e8);
        assert_eq!(get("perf/stabilization/1024/buffered"), 1e7);
        assert_eq!(get("perf/classify/1024/fingerprint"), 2e7);
        assert_eq!(get("perf/classify_detectors/1024/arena"), 1.7e7);
        assert_eq!(get("perf/sweep/14/parallel"), 6e6);
        // Explicit threads field lands in the bench id; the naive and
        // Tarjan reference rows are emitted only for 1-thread entries
        // (the t=2 row has neither).
        assert_eq!(get("perf/verify_scaling/6/packed/t2"), 1e6);
        assert_eq!(get("perf/verify_scaling/6/scc/t2"), 4e6);
        assert!(!lines
            .iter()
            .any(|l| l.bench == "perf/verify_scaling/6/naive"
                || l.bench == "perf/verify_scaling/6/scc/tarjan"));
        // Legacy rows without `threads` count as single-threaded.
        assert_eq!(get("perf/verify_scaling/8/packed/t1"), 1e7);
        assert_eq!(get("perf/verify_scaling/8/naive"), 2e7);
        assert_eq!(get("perf/verify_scaling/8/scc/t1"), 8e6);
        assert_eq!(get("perf/verify_scaling/8/scc/tarjan"), 7e6);
        // The symmetry-quotient run is 1-thread-only: 200 quotient
        // states at 1e6/s = 200 µs per iter. The t=2 row never emits it,
        // and the 0-sentinel row (trivial derived group, like the 0 in
        // `naive_states_per_s` past the naive cutoff) is skipped.
        assert_eq!(get("perf/verify_scaling/8/sym"), 2e5);
        assert!(!lines.iter().any(|l| l.bench == "perf/verify_scaling/6/sym"
            || l.bench == "perf/verify_scaling/9/sym"
            || l.bench == "perf/verify_scaling/9/naive"));
        // Byzantine rows key on (n, f): 4000 states at 2e6 states/s =
        // 2 ms; the f=1 row's larger adversary-branched graph maps the
        // same way, and the mixed-model row keys on its `model` slug.
        assert_eq!(get("perf/byzantine/4/f0"), 2e6);
        assert_eq!(get("perf/byzantine/4/f1"), 2e7);
        assert_eq!(get("perf/byzantine/4/byz1crash1"), 2e6);
        // Checkpoint overhead: 20000 states at 1e6 (plain) / 8e5
        // (checkpointed) states/s.
        assert_eq!(get("perf/checkpoint/4/plain"), 2e7);
        assert_eq!(get("perf/checkpoint/4/checkpointed"), 2.5e7);
        // Verdict-cache service: 40000 sweep states at 1e6 (cold) / 1e8
        // (warm, pure hits) states/s.
        assert_eq!(get("perf/cache_service/4/cold"), 4e7);
        assert_eq!(get("perf/cache_service/4/warm"), 4e5);
    }

    #[test]
    fn parse_any_picks_the_right_shape() {
        assert_eq!(parse_any(SAMPLE).len(), parse_lines(SAMPLE).len());
        let adapted = parse_any(SUMMARY);
        assert!(!adapted.is_empty());
        assert!(adapted.iter().all(|l| l.bench.starts_with("perf/")));
    }

    #[test]
    fn trend_collects_artifacts_in_age_then_name_order() {
        let dir = std::env::temp_dir().join(format!(
            "bench-trend-test-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        // A loose artifact file…
        std::fs::write(
            dir.join("bench-json-aaa1111"),
            "{\"bench\":\"perf/engine/100/buffered\",\"median_ns_per_iter\":100.0}\n",
        )
        .unwrap();
        // …an artifact directory wrapping its file (download-artifact
        // layout)…
        let wrapped = dir.join("bench-json-bbb2222");
        std::fs::create_dir_all(&wrapped).unwrap();
        std::fs::write(
            wrapped.join("lines.jsonl"),
            "{\"bench\":\"perf/engine/100/buffered\",\"median_ns_per_iter\":200.0}\n",
        )
        .unwrap();
        // …and noise that must be ignored.
        std::fs::write(dir.join("README.txt"), "not an artifact").unwrap();
        std::fs::write(dir.join("bench-json-ccc3333"), "no parsable lines").unwrap();

        let files = collect_trend(&dir).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
        let labels: Vec<&str> = files.iter().map(|(l, _)| l.as_str()).collect();
        assert_eq!(labels, vec!["aaa1111", "bbb2222"], "label set and order");
        assert_eq!(files[0].1[0].median_ns, 100.0);
        assert_eq!(files[1].1[0].median_ns, 200.0);
        let table = render_markdown(&files);
        assert!(
            table.contains("| `perf/engine/100/buffered` | 100.0 ns | 200.0 ns |"),
            "{table}"
        );
    }

    /// Summaries for the memory gate: the largest-`n` row decides, and
    /// legacy `csr_edge_bytes` is accepted where `peak_edge_bytes` is
    /// missing.
    const MEM_BASE: &str = "  \"verify_scaling\": [\
        {\"n\":6,\"threads\":1,\"states\":100,\"packed_arena_bytes\":800,\"csr_edge_bytes\":3200}, \
        {\"n\":8,\"threads\":1,\"states\":1000,\"packed_arena_bytes\":8000,\"csr_edge_bytes\":32000}]\n";
    const MEM_GOOD: &str = "  \"verify_scaling\": [\
        {\"n\":10,\"threads\":1,\"states\":10000,\"packed_arena_bytes\":80000,\"peak_edge_bytes\":100000}]\n";
    const MEM_BAD: &str = "  \"verify_scaling\": [\
        {\"n\":10,\"threads\":1,\"states\":10000,\"packed_arena_bytes\":80000,\"peak_edge_bytes\":500000}]\n";

    #[test]
    fn memory_gate_compares_largest_rows_per_state() {
        // Baseline largest row: n=8, (8000 + 32000) / 1000 = 40 B/state.
        assert_eq!(memory_per_state(MEM_BASE), Some((8, 40.0)));
        // Current: n=10, (80000 + 100000) / 10000 = 18 B/state — holds
        // the state-linear budget easily.
        assert_eq!(memory_per_state(MEM_GOOD), Some((10, 18.0)));
        assert!(check_memory_gate(MEM_BASE, MEM_GOOD, 1.25).is_ok());
        // 58 B/state blows 40 × 1.25 = 50.
        assert_eq!(memory_per_state(MEM_BAD), Some((10, 58.0)));
        assert!(check_memory_gate(MEM_BASE, MEM_BAD, 1.25).is_err());
        // No figures at all → gate errors out rather than passing.
        assert!(check_memory_gate("{}", MEM_GOOD, 1.25).is_err());
    }

    #[test]
    fn memory_gate_skips_sentinel_and_degenerate_rows() {
        // A largest-n row whose byte fields carry the 0 sentinel (a
        // summary section that did not measure memory) used to produce
        // a 0 B/state "current" figure — and 0 ≤ any budget, so the
        // gate passed vacuously. The sentinel row must be skipped and
        // the next valid row decide instead.
        let sentinel_largest: &str = "  \"verify_scaling\": [\
            {\"n\":8,\"threads\":1,\"states\":1000,\"packed_arena_bytes\":8000,\"peak_edge_bytes\":32000}, \
            {\"n\":10,\"threads\":1,\"states\":10000,\"packed_arena_bytes\":0,\"peak_edge_bytes\":0}]\n";
        assert_eq!(memory_per_state(sentinel_largest), Some((8, 40.0)));
        // Zero or non-finite state counts cannot divide: skipped too
        // (NaN passed the old `states <= 0.0` guard — NaN comparisons
        // are false — and the row divided to NaN per-state bytes).
        let zero_states: &str = "  \"verify_scaling\": [\
            {\"n\":10,\"threads\":1,\"states\":0,\"packed_arena_bytes\":80000,\"peak_edge_bytes\":100000}]\n";
        assert_eq!(memory_per_state(zero_states), None);
        let nan_states: &str = "  \"verify_scaling\": [\
            {\"n\":10,\"threads\":1,\"states\":NaN,\"packed_arena_bytes\":80000,\"peak_edge_bytes\":100000}]\n";
        assert_eq!(memory_per_state(nan_states), None);
        // All rows sentinel → no figure at all → the gate errors
        // instead of comparing against 0.
        let all_sentinel: &str = "  \"verify_scaling\": [\
            {\"n\":10,\"threads\":1,\"states\":10000,\"packed_arena_bytes\":0,\"peak_edge_bytes\":0}]\n";
        assert_eq!(memory_per_state(all_sentinel), None);
        assert!(check_memory_gate(MEM_BASE, all_sentinel, 1.25).is_err());
        assert!(check_memory_gate(all_sentinel, MEM_GOOD, 1.25).is_err());
        // A sentinel scratch figure must not disturb the resident sum.
        let sentinel_scratch = format!(
            "{MEM_GOOD}  \"checkpoint_overhead\": {{\"n\":4,\"states\":0,\
             \"scratch_bytes_per_state\":0.00}}\n"
        );
        assert_eq!(memory_per_state(&sentinel_scratch), Some((10, 18.0)));
    }

    #[test]
    fn memory_gate_charges_checkpoint_scratch() {
        // 18 B/state resident+edge, plus 5 B/state of checkpoint resume
        // scratch = 23 B/state; a scratch-free baseline (old summary
        // shape) contributes zero and stays comparable.
        let current = format!(
            "{MEM_GOOD}  \"checkpoint_overhead\": {{\"n\":4,\"states\":20000,\
             \"checkpoint_scratch_bytes\":100000,\"scratch_bytes_per_state\":5.00}}\n"
        );
        assert_eq!(memory_per_state(&current), Some((10, 23.0)));
        assert!(check_memory_gate(MEM_BASE, &current, 1.25).is_ok());
        // Scratch alone can blow the gate: 40 × 1.25 = 50 < 18 + 33.
        let heavy = format!(
            "{MEM_GOOD}  \"checkpoint_overhead\": {{\"n\":4,\"states\":20000,\
             \"scratch_bytes_per_state\":33.00}}\n"
        );
        assert!(check_memory_gate(MEM_BASE, &heavy, 1.25).is_err());
    }

    #[test]
    fn compare_renders_ratio_column() {
        let base = (
            "baseline".to_string(),
            parse_lines(
                "{\"bench\":\"perf/classify/1024/fingerprint\",\"median_ns_per_iter\":20000000.0}\n{\"bench\":\"perf/only/base\",\"median_ns_per_iter\":5.0}\n",
            ),
        );
        let cur = (
            "current".to_string(),
            parse_lines(
                "{\"bench\":\"perf/classify/1024/fingerprint\",\"median_ns_per_iter\":10000000.0}\n{\"bench\":\"perf/only/current\",\"median_ns_per_iter\":7.0}\n",
            ),
        );
        let table = render_compare(&base, &cur);
        assert!(
            table.starts_with("| bench | baseline | current | current / baseline |\n"),
            "{table}"
        );
        assert!(
            table.contains("| `perf/classify/1024/fingerprint` | 20.00 ms | 10.00 ms | 0.50× |"),
            "{table}"
        );
        assert!(
            table.contains("| `perf/only/base` | 5.0 ns | — | — |"),
            "{table}"
        );
        assert!(
            table.contains("| `perf/only/current` | — | 7.0 ns | — |"),
            "{table}"
        );
    }
}
