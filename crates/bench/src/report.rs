//! Rendering of `CRITERION_JSON` line-JSON measurement files into a
//! per-bench markdown table — the first step of the perf trend report.
//!
//! Both the vendored criterion harness and the `experiments --json`
//! runner append one JSON object per measurement to the file named by
//! `$CRITERION_JSON`, in the fixed shape
//! `{"bench":"…","median_ns_per_iter":…,"low_ns":…,"high_ns":…,"elements_per_iter":…}`;
//! CI archives that file per commit as the `bench-json-<sha>` artifact.
//! [`render_markdown`] turns one or more such files (e.g. the artifacts
//! of successive commits) into a bench × file table of medians, so a perf
//! regression is one `git diff`/eyeball away instead of buried in raw
//! line JSON. The `bench-report` binary is the CLI wrapper.

use std::collections::BTreeMap;

/// One parsed measurement line.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchLine {
    /// Full bench id (e.g. `engine/step_sync/1024`).
    pub bench: String,
    /// Median nanoseconds per iteration.
    pub median_ns: f64,
}

/// Extracts the string value of `"key":"…"` from one JSON line. Handles
/// backslash escapes enough for bench ids (which our harnesses restrict
/// to path-ish characters anyway).
fn string_field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => out.push(chars.next()?),
            _ => out.push(c),
        }
    }
    None
}

/// Extracts the numeric value of `"key":…` from one JSON line.
fn number_field(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !matches!(c, '0'..='9' | '.' | '-' | '+' | 'e' | 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parses the measurement lines of one `CRITERION_JSON` file; lines
/// without the two required fields (or non-JSON noise) are skipped.
pub fn parse_lines(text: &str) -> Vec<BenchLine> {
    text.lines()
        .filter_map(|line| {
            Some(BenchLine {
                bench: string_field(line, "bench")?,
                median_ns: number_field(line, "median_ns_per_iter")?,
            })
        })
        .collect()
}

/// Median of a non-empty sample (mean of the middle pair for even sizes).
fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN medians"));
    let m = xs.len() / 2;
    if xs.len() % 2 == 1 {
        xs[m]
    } else {
        (xs[m - 1] + xs[m]) / 2.0
    }
}

/// Formats nanoseconds with a human-readable unit.
fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Renders labeled measurement files as a markdown table: one row per
/// bench id (union over all files, sorted), one column per file, each
/// cell the per-bench median of that file's measurements (`—` when a file
/// lacks the bench — e.g. a bench added after an old artifact was taken).
pub fn render_markdown(files: &[(String, Vec<BenchLine>)]) -> String {
    let mut per_file: Vec<BTreeMap<&str, Vec<f64>>> = Vec::with_capacity(files.len());
    let mut benches: BTreeMap<&str, ()> = BTreeMap::new();
    for (_, lines) in files {
        let mut map: BTreeMap<&str, Vec<f64>> = BTreeMap::new();
        for l in lines {
            map.entry(&l.bench).or_default().push(l.median_ns);
            benches.entry(&l.bench).or_insert(());
        }
        per_file.push(map);
    }
    let mut out = String::from("| bench |");
    for (label, _) in files {
        out.push_str(&format!(" {label} |"));
    }
    out.push_str("\n|---|");
    out.push_str(&"---:|".repeat(files.len()));
    out.push('\n');
    for (bench, ()) in &benches {
        out.push_str(&format!("| `{bench}` |"));
        for map in &per_file {
            match map.get(bench) {
                Some(xs) => out.push_str(&format!(" {} |", format_ns(median(xs.clone())))),
                None => out.push_str(" — |"),
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = concat!(
        "{\"bench\":\"engine/step/1024\",\"median_ns_per_iter\":1500.0,\"low_ns\":1400.0,\"high_ns\":1600.0,\"elements_per_iter\":1}\n",
        "{\"bench\":\"engine/step/1024\",\"median_ns_per_iter\":2500.0,\"low_ns\":2400.0,\"high_ns\":2600.0,\"elements_per_iter\":1}\n",
        "not json at all\n",
        "{\"bench\":\"verify/example1\",\"median_ns_per_iter\":2000000.0,\"low_ns\":1.0,\"high_ns\":1.0,\"elements_per_iter\":4}\n",
    );

    #[test]
    fn parses_well_formed_lines_and_skips_noise() {
        let lines = parse_lines(SAMPLE);
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].bench, "engine/step/1024");
        assert_eq!(lines[0].median_ns, 1500.0);
        assert_eq!(lines[2].bench, "verify/example1");
    }

    #[test]
    fn median_folds_repeated_measurements() {
        assert_eq!(median(vec![3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(vec![4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn renders_union_of_benches_across_files() {
        let a = parse_lines(SAMPLE);
        let b = parse_lines(
            "{\"bench\":\"engine/step/1024\",\"median_ns_per_iter\":1800.0,\"low_ns\":1,\"high_ns\":1,\"elements_per_iter\":1}\n",
        );
        let table = render_markdown(&[("old".into(), a), ("new".into(), b)]);
        // Two medians for engine/step in file "old" fold to their mean.
        assert!(
            table.contains("| `engine/step/1024` | 2.00 µs | 1.80 µs |"),
            "{table}"
        );
        // verify/example1 exists only in "old"; the other cell is a dash.
        assert!(
            table.contains("| `verify/example1` | 2.00 ms | — |"),
            "{table}"
        );
        assert!(
            table.starts_with("| bench | old | new |\n|---|---:|---:|\n"),
            "{table}"
        );
    }

    #[test]
    fn unit_formatting_scales() {
        assert_eq!(format_ns(12.0), "12.0 ns");
        assert_eq!(format_ns(12_340.0), "12.34 µs");
        assert_eq!(format_ns(12_340_000.0), "12.34 ms");
        assert_eq!(format_ns(12_340_000_000.0), "12.340 s");
    }

    #[test]
    fn escaped_quotes_in_bench_ids_survive() {
        let lines = parse_lines("{\"bench\":\"weird\\\"name\",\"median_ns_per_iter\":5.0}\n");
        assert_eq!(lines[0].bench, "weird\"name");
    }
}
