//! Machine-readable performance summary (`experiments --json`).
//!
//! Times the three hot paths this crate cares about — the simulation
//! engine, the exact synchronous classifier, and the exhaustive sweep
//! driver — each against its naive/sequential reference, and emits one
//! JSON object. The committed `BENCH_engine.json` at the repository root
//! is a snapshot of this output and seeds the perf trajectory across PRs.

use std::io::Write as _;
use std::time::Instant;

use stabilization_verify::cache::DEFAULT_BYTE_BUDGET;
use stabilization_verify::{
    explore_product, sweep_byzantine_placements_cached, verify_label_stabilization_naive,
    verify_label_stabilization_with_stats, CacheOutcome, CheckpointPolicy, Limits, SccBackend,
    SymmetryMode, VerdictCache,
};
use stateless_core::checkpoint::CheckpointStore;
use stateless_core::convergence::{
    all_labelings, classify_sync, classify_sync_naive, classify_sync_with, sync_round_complexity,
    sync_round_complexity_par, CycleDetector,
};
use stateless_core::prelude::*;
use stateless_protocols::bfs_tree::{bfs_alphabet, bfs_tree_protocol};
use stateless_protocols::worst_case::worst_case_protocol;

use crate::workloads::{
    is_stable_naive, max_ring, max_ring_naive, rotation_ring, schedule_workload, sticky_or_ring,
    SCHEDULE_KINDS,
};

/// Minimum wall-clock spent per measurement; the reported figure is the
/// best per-iteration time observed (robust to scheduler noise).
const MIN_SAMPLE: f64 = 0.2;

fn best_seconds<F: FnMut()>(mut f: F) -> f64 {
    // Warmup.
    f();
    let mut best = f64::INFINITY;
    let mut spent = 0.0;
    while spent < MIN_SAMPLE {
        let t = Instant::now();
        f();
        let dt = t.elapsed().as_secs_f64();
        best = best.min(dt);
        spent += dt;
    }
    best
}

/// Appends one line to the file named by `CRITERION_JSON` (if set), in the
/// same line-JSON shape the vendored criterion harness writes, so the
/// experiments runner's measurements land in the same trend file as
/// `cargo bench` runs and CI can archive them together.
fn emit_criterion_line(bench: &str, seconds_per_iter: f64, elements_per_iter: u64) {
    let Ok(path) = std::env::var("CRITERION_JSON") else {
        return;
    };
    let Ok(mut file) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    else {
        return;
    };
    let ns = seconds_per_iter * 1e9;
    let _ = writeln!(
        file,
        "{{\"bench\":\"{bench}\",\"median_ns_per_iter\":{ns:.1},\"low_ns\":{ns:.1},\"high_ns\":{ns:.1},\"elements_per_iter\":{elements_per_iter}}}"
    );
}

/// One engine measurement at ring size `n`: activations/s for the naive
/// and buffered paths.
fn engine_entry(n: usize) -> String {
    let rounds = (4_000_000 / n as u64).max(8);
    let activations = rounds as f64 * n as f64;
    let inputs: Vec<u64> = (0..n as u64).collect();

    let p = max_ring(n);
    let mut sim = Simulation::new(&p, &inputs, vec![0u64; n]).unwrap();
    let buffered = best_seconds(|| sim.run(&mut Synchronous, rounds));

    let p_naive = max_ring_naive(n);
    let all: Vec<NodeId> = (0..n).collect();
    let mut sim = Simulation::new(&p_naive, &inputs, vec![0u64; n]).unwrap();
    let naive = best_seconds(|| {
        for _ in 0..rounds {
            sim.step_with_naive(&all);
        }
    });

    emit_criterion_line(&format!("perf/engine/{n}/buffered"), buffered, rounds);
    emit_criterion_line(&format!("perf/engine/{n}/naive"), naive, rounds);
    format!(
        concat!(
            "{{\"n\":{},\"rounds_per_iter\":{},",
            "\"naive_activations_per_s\":{:.0},",
            "\"buffered_activations_per_s\":{:.0},",
            "\"speedup\":{:.2}}}"
        ),
        n,
        rounds,
        activations / naive,
        activations / buffered,
        naive / buffered
    )
}

/// Convergence measurement at n = 1024: run-until-label-stable on the
/// max-propagation ring (≈ n rounds, each with a full stability probe),
/// buffered vs the seed's naive apply() loop.
fn stabilization_entry(n: usize) -> String {
    let inputs: Vec<u64> = (0..n as u64).collect();
    let p = max_ring(n);
    let buffered = best_seconds(|| {
        let mut sim = Simulation::new(&p, &inputs, vec![0u64; n]).unwrap();
        sim.run_until_label_stable(&mut Synchronous, 2 * n as u64)
            .unwrap();
    });
    let p_naive = max_ring_naive(n);
    let all: Vec<NodeId> = (0..n).collect();
    let naive = best_seconds(|| {
        let mut sim = Simulation::new(&p_naive, &inputs, vec![0u64; n]).unwrap();
        while !is_stable_naive(&p_naive, sim.labeling(), &inputs) {
            sim.step_with_naive(&all);
        }
    });
    emit_criterion_line(&format!("perf/stabilization/{n}/buffered"), buffered, 1);
    emit_criterion_line(&format!("perf/stabilization/{n}/naive"), naive, 1);
    format!(
        concat!(
            "{{\"n\":{},\"naive_ms_per_run\":{:.3},",
            "\"buffered_ms_per_run\":{:.3},\"speedup\":{:.2}}}"
        ),
        n,
        naive * 1e3,
        buffered * 1e3,
        naive / buffered
    )
}

/// Classifier measurement at n = 1024 (the worst-case protocol visits
/// exactly n·(q−1)+1 labelings before its fixed point).
fn classify_entry(n: usize) -> String {
    let p = worst_case_protocol(n, 2);
    let inputs = vec![0u64; n];
    let fast = best_seconds(|| {
        classify_sync(&p, &inputs, vec![0u64; n], 10_000).unwrap();
    });
    let naive = best_seconds(|| {
        classify_sync_naive(&p, &inputs, vec![0u64; n], 10_000).unwrap();
    });
    emit_criterion_line(&format!("perf/classify/{n}/fingerprint"), fast, 1);
    emit_criterion_line(&format!("perf/classify/{n}/naive"), naive, 1);
    format!(
        concat!(
            "{{\"n\":{},\"naive_ms_per_run\":{:.3},",
            "\"fingerprint_ms_per_run\":{:.3},\"speedup\":{:.2}}}"
        ),
        n,
        naive * 1e3,
        fast * 1e3,
        naive / fast
    )
}

/// Sweep measurement: all 2^n binary labelings of the sticky-OR n-ring.
/// The entry records the thread count so single-core CI runs (speedup
/// ≈ 1×) are not mistaken for parallel-path regressions.
fn sweep_entry(n: usize) -> String {
    let p = sticky_or_ring(n);
    let inputs: Vec<u64> = (0..n as u64).map(|i| i % 2).collect();
    let seq = best_seconds(|| {
        sync_round_complexity(&p, &inputs, all_labelings(&[false, true], n), 10_000)
            .unwrap()
            .unwrap();
    });
    let par = best_seconds(|| {
        sync_round_complexity_par(&p, &inputs, all_labelings(&[false, true], n), 10_000)
            .unwrap()
            .unwrap();
    });
    emit_criterion_line(&format!("perf/sweep/{n}/sequential"), seq, 1 << n);
    emit_criterion_line(&format!("perf/sweep/{n}/parallel"), par, 1 << n);
    format!(
        concat!(
            "{{\"n\":{},\"labelings\":{},\"threads\":{},\"sequential_ms\":{:.3},",
            "\"parallel_ms\":{:.3},\"speedup\":{:.2}}}"
        ),
        n,
        1u64 << n,
        rayon::current_num_threads(),
        seq * 1e3,
        par * 1e3,
        seq / par
    )
}

/// Exact-verifier measurement on the rotation n-ring (Boolean labels,
/// r = 2): the packed-arena explorer — one row per worker count in
/// `thread_counts` — vs the retained owned-`Vec` reference, on the same
/// product graph. The rotation ring is the canonical non-stabilizing
/// instance — every labeling is on a cycle, so the SCC + witness
/// machinery is fully exercised — and its product graph is ≈ 4ⁿ states,
/// which makes per-state memory the binding constraint exactly as in
/// real verification workloads.
///
/// Each row records `threads`, `packed_states_per_s`, the speedup vs the
/// naive reference, and `scaling_vs_t1` (that row's throughput over the
/// 1-thread row — the explorer's parallel efficiency; ≈ 1.0 on a 1-core
/// CI host, which is why the field is recorded rather than assumed).
/// Verdicts and state ids are bit-identical across rows by construction.
/// The naive owned-`Vec` reference is only run for `n ≤ 8` — beyond
/// that its memory and wall time are the very wall the edge-less
/// verifier tears down — so larger rows report `0` for
/// `naive_states_per_s`/`speedup` (a sentinel the report tooling skips).
///
/// The SCC phase is additionally timed in isolation through the
/// [`explore_product`] handle — the successor-oracle condensation on
/// the live shard arenas, exactly what the verifier runs, with **no**
/// materialized CSR: `scc_ms` is the trim + Forward–Backward engine at
/// that row's thread count, `scc_vs_t1` its parallel efficiency, and
/// `tarjan_scc_ms` (same value on every row of an `n`) the serial
/// oracle-Tarjan reference on the same graph.
///
/// The symmetry quotient ([`SymmetryMode::Auto`]) is measured once per
/// `n` at one worker and stamped onto every row: `sym_states` (states
/// interned under orbit-canonical interning), `quotient_ratio`
/// (full/quotient states — ≈ n on the rotation ring, whose derived
/// group is the full Cₙ), and `sym_states_per_s`. All three report the
/// `0` sentinel when the derived group is trivial.
///
/// `naive_state_bytes` is the per-state footprint of the old
/// representation, counted analytically: the `(Vec<L>, Vec<u8>,
/// Vec<Output>)` tuple (three 24-byte Vec headers + e·|L| + n + 8n heap
/// bytes) stored twice (once in the state table, once cloned as the
/// `HashMap` key) plus ~16 bytes of map entry. The packed figure is the
/// logical payload (packed words × states), read off [`ExploreStats`] —
/// per-shard arena-block slack and the fingerprint index (~16 B/state)
/// sit on top, bounded and amortizing away at the state counts where
/// memory matters. `peak_edge_bytes` (formerly `csr_edge_bytes`) is the
/// peak **transient** edge footprint — per-batch record buffers and the
/// witness-component CSR — the only edge storage left anywhere.
fn verify_scaling_rows(n: usize, thread_counts: &[usize]) -> Vec<String> {
    /// Largest `n` the owned-`Vec` naive reference is still run at.
    const NAIVE_MAX_N: usize = 8;
    let p = rotation_ring(n);
    let inputs = vec![0u64; n];
    let alphabet = [false, true];
    let r = 2u8;
    let limits = |threads: usize| Limits {
        threads,
        ..Limits::default()
    };
    let (_, stats) =
        verify_label_stabilization_with_stats(&p, &inputs, &alphabet, r, limits(1)).unwrap();
    let naive = if n <= NAIVE_MAX_N {
        let naive = best_seconds(|| {
            verify_label_stabilization_naive(&p, &inputs, &alphabet, r, limits(1))
                .unwrap()
                .is_stabilizing();
        });
        emit_criterion_line(
            &format!("perf/verify_scaling/{n}/naive"),
            naive,
            stats.states as u64,
        );
        Some(naive)
    } else {
        None
    };
    // The SCC phase in isolation, against the explored product the
    // verifier actually condenses (held open so each timing re-runs
    // only the oracle condensation, not the exploration): Tarjan once
    // as the serial reference, then the trim+FB engine per worker count.
    let ep = explore_product(&p, &inputs, &alphabet, r, limits(1)).unwrap();
    let tarjan = best_seconds(|| {
        ep.condense(SccBackend::Tarjan, 1);
    });
    emit_criterion_line(
        &format!("perf/verify_scaling/{n}/scc/tarjan"),
        tarjan,
        stats.states as u64,
    );
    // Symmetry-quotient exploration ([`SymmetryMode::Auto`]) at one
    // worker: the rotation ring is node-symmetric, so the derived group
    // is the full Cₙ rotation group and the quotient interns ≈ n× fewer
    // states with the bit-identical verdict. A workload whose derived
    // group were trivial would explore the identical full graph; the
    // columns then carry the `0` sentinel the report tooling skips
    // (exactly like `naive_states_per_s` on large rows).
    let sym_limits = Limits {
        symmetry: SymmetryMode::Auto,
        ..limits(1)
    };
    let (sym_verdict, sym_stats) =
        verify_label_stabilization_with_stats(&p, &inputs, &alphabet, r, sym_limits.clone())
            .unwrap();
    let sym = if sym_stats.states < stats.states {
        assert_eq!(
            std::mem::discriminant(&sym_verdict),
            std::mem::discriminant(
                &verify_label_stabilization_with_stats(&p, &inputs, &alphabet, r, limits(1))
                    .unwrap()
                    .0
            ),
            "quotient exploration must preserve the verdict"
        );
        let secs = best_seconds(|| {
            verify_label_stabilization_with_stats(&p, &inputs, &alphabet, r, sym_limits.clone())
                .unwrap()
                .0
                .is_stabilizing();
        });
        emit_criterion_line(
            &format!("perf/verify_scaling/{n}/sym"),
            secs,
            sym_stats.states as u64,
        );
        Some((sym_stats.states, secs))
    } else {
        None
    };
    let e = p.edge_count();
    let naive_state_bytes = 2 * (3 * 24 + e * std::mem::size_of::<bool>() + n + 8 * n) + 16;
    let packed_state_bytes = stats.state_bytes as f64 / stats.states as f64;
    let mut t1_packed = f64::NAN;
    let mut t1_scc = f64::NAN;
    thread_counts
        .iter()
        .map(|&threads| {
            let packed = best_seconds(|| {
                verify_label_stabilization_with_stats(&p, &inputs, &alphabet, r, limits(threads))
                    .unwrap()
                    .0
                    .is_stabilizing();
            });
            let scc_phase = best_seconds(|| {
                ep.condense(SccBackend::ForwardBackward, threads);
            });
            if threads == 1 {
                t1_packed = packed;
                t1_scc = scc_phase;
            }
            emit_criterion_line(
                &format!("perf/verify_scaling/{n}/packed/t{threads}"),
                packed,
                stats.states as u64,
            );
            emit_criterion_line(
                &format!("perf/verify_scaling/{n}/scc/t{threads}"),
                scc_phase,
                stats.states as u64,
            );
            format!(
                concat!(
                    "{{\"n\":{},\"r\":{},\"threads\":{},\"states\":{},\"edges\":{},",
                    "\"naive_states_per_s\":{:.0},\"packed_states_per_s\":{:.0},",
                    "\"speedup\":{:.2},\"scaling_vs_t1\":{:.2},",
                    "\"scc_ms\":{:.3},\"scc_vs_t1\":{:.2},\"tarjan_scc_ms\":{:.3},",
                    "\"sym_states\":{},\"quotient_ratio\":{:.2},",
                    "\"sym_states_per_s\":{:.0},",
                    "\"naive_state_bytes\":{},\"packed_state_bytes\":{:.2},",
                    "\"state_bytes_ratio\":{:.1},",
                    "\"packed_arena_bytes\":{},\"peak_edge_bytes\":{}}}"
                ),
                n,
                r,
                threads,
                stats.states,
                stats.edges,
                naive.map_or(0.0, |t| stats.states as f64 / t),
                stats.states as f64 / packed,
                naive.map_or(0.0, |t| t / packed),
                t1_packed / packed,
                scc_phase * 1e3,
                t1_scc / scc_phase,
                tarjan * 1e3,
                sym.map_or(0, |(states, _)| states),
                sym.map_or(0.0, |(states, _)| stats.states as f64 / states as f64),
                sym.map_or(0.0, |(states, secs)| states as f64 / secs),
                naive_state_bytes,
                packed_state_bytes,
                naive_state_bytes as f64 / packed_state_bytes,
                stats.state_bytes,
                stats.edge_bytes
            )
        })
        .collect()
}

/// Byzantine-adversary verification throughput: the BFS spanning-tree
/// protocol on small rooted bidirectional rings (root 0, cap = 2,
/// r = 1), fault-free (f = 0) and with one Byzantine node at the root's
/// neighbor (f = 1). Each row records the explored state count of the
/// adversary-branched product graph, states/s, and the exact verdict —
/// on the 4-ring the placement is fatal (`stabilizing: false`), on the
/// 3-ring tolerated, so a fault-semantics drift flips a committed
/// verdict and shows up in the perf diff, not just the test suite.
/// `f0_matches_faultfree` records (and asserts) that an explicit
/// `FaultModel::none()` query returns the same verdict over the same
/// state count as the plain fault-free path — the f = 0 degeneracy the
/// determinism contract promises.
fn byzantine_scaling_rows() -> Vec<String> {
    let cap = 2u64;
    let r = 1u8;
    let mut rows = Vec::new();
    for n in [3usize, 4] {
        let p =
            bfs_tree_protocol(topology::bidirectional_ring(n), 0, cap, FaultModel::none()).unwrap();
        let inputs = vec![0u64; n];
        let alphabet = bfs_alphabet(cap);
        let (plain_verdict, plain_stats) =
            verify_label_stabilization_with_stats(&p, &inputs, &alphabet, r, Limits::default())
                .unwrap();
        for f in [0usize, 1] {
            let faults = if f == 0 {
                FaultModel::none()
            } else {
                FaultModel::byzantine(&[1]).unwrap()
            };
            let limits = Limits {
                faults,
                ..Limits::default()
            };
            let (verdict, stats) =
                verify_label_stabilization_with_stats(&p, &inputs, &alphabet, r, limits.clone())
                    .unwrap();
            let f0_matches = f != 0
                || (stats.states == plain_stats.states
                    && verdict.is_stabilizing() == plain_verdict.is_stabilizing());
            assert!(
                f0_matches,
                "an explicit FaultModel::none() must degenerate to the fault-free run"
            );
            let secs = best_seconds(|| {
                verify_label_stabilization_with_stats(&p, &inputs, &alphabet, r, limits.clone())
                    .unwrap()
                    .0
                    .is_stabilizing();
            });
            emit_criterion_line(
                &format!("perf/byzantine/{n}/f{f}"),
                secs,
                stats.states as u64,
            );
            rows.push(format!(
                concat!(
                    "{{\"n\":{},\"f\":{},\"r\":{},\"states\":{},",
                    "\"states_per_s\":{:.0},\"stabilizing\":{},",
                    "\"f0_matches_faultfree\":{}}}"
                ),
                n,
                f,
                r,
                stats.states,
                stats.states as f64 / secs,
                verdict.is_stabilizing(),
                f0_matches
            ));
        }
    }
    // Mixed-model row: one Byzantine node *and* one crashed node on the
    // 4-ring. The crash side shrinks its node's branching to the single
    // keep-labels choice while the Byzantine side still branches over
    // every label choice, so this row pins the combined fault semantics
    // (a drift in either half moves the state count or flips the
    // verdict).
    {
        let n = 4usize;
        let p =
            bfs_tree_protocol(topology::bidirectional_ring(n), 0, cap, FaultModel::none()).unwrap();
        let inputs = vec![0u64; n];
        let alphabet = bfs_alphabet(cap);
        let limits = Limits {
            faults: FaultModel::new(&[1], &[2]).unwrap(),
            ..Limits::default()
        };
        let (verdict, stats) =
            verify_label_stabilization_with_stats(&p, &inputs, &alphabet, r, limits.clone())
                .unwrap();
        let secs = best_seconds(|| {
            verify_label_stabilization_with_stats(&p, &inputs, &alphabet, r, limits.clone())
                .unwrap()
                .0
                .is_stabilizing();
        });
        emit_criterion_line(
            &format!("perf/byzantine/{n}/byz1crash1"),
            secs,
            stats.states as u64,
        );
        rows.push(format!(
            concat!(
                "{{\"n\":{},\"model\":\"byz1crash1\",\"r\":{},\"states\":{},",
                "\"states_per_s\":{:.0},\"stabilizing\":{}}}"
            ),
            n,
            r,
            stats.states,
            stats.states as f64 / secs,
            verdict.is_stabilizing()
        ));
    }
    rows
}

/// Checkpointing overhead: the f = 1 Byzantine BFS instance of
/// [`byzantine_scaling_rows`], verified plain vs with an
/// every-eighth-of-the-graph [`CheckpointPolicy`] into a scratch
/// directory. Reports both throughputs, the slowdown ratio, the epoch
/// count the policy leaves behind, the newest epoch's file size, and
/// the largest framed segment in it — the transient buffer bound a
/// resume needs, which `bench-report --memgate` charges per state on
/// top of the verifier's resident storage.
fn checkpoint_overhead_entry() -> String {
    let (n, cap, r) = (4usize, 2u64, 1u8);
    let p = bfs_tree_protocol(topology::bidirectional_ring(n), 0, cap, FaultModel::none()).unwrap();
    let inputs = vec![0u64; n];
    let alphabet = bfs_alphabet(cap);
    let plain_limits = Limits {
        faults: FaultModel::byzantine(&[1]).unwrap(),
        ..Limits::default()
    };
    let (_, stats) =
        verify_label_stabilization_with_stats(&p, &inputs, &alphabet, r, plain_limits.clone())
            .unwrap();
    let plain = best_seconds(|| {
        verify_label_stabilization_with_stats(&p, &inputs, &alphabet, r, plain_limits.clone())
            .unwrap()
            .0
            .is_stabilizing();
    });
    let dir = std::env::temp_dir().join(format!("stateless-bench-ckpt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let every = (stats.states / 8).max(1);
    let ckpt_limits = Limits {
        checkpoint: Some(CheckpointPolicy {
            every_states: Some(every),
            ..CheckpointPolicy::new(&dir)
        }),
        ..plain_limits
    };
    let checkpointed = best_seconds(|| {
        verify_label_stabilization_with_stats(&p, &inputs, &alphabet, r, ckpt_limits.clone())
            .unwrap()
            .0
            .is_stabilizing();
    });
    emit_criterion_line(
        &format!("perf/checkpoint/{n}/plain"),
        plain,
        stats.states as u64,
    );
    emit_criterion_line(
        &format!("perf/checkpoint/{n}/checkpointed"),
        checkpointed,
        stats.states as u64,
    );
    let store = CheckpointStore::open(&dir).unwrap();
    let epochs = store.epochs().unwrap_or_default();
    let newest = epochs.last().copied();
    let epoch_bytes = newest
        .and_then(|e| std::fs::metadata(store.epoch_path(e)).ok())
        .map_or(0, |m| m.len());
    let scratch = newest.map_or(0, |e| store.max_segment_bytes(e).unwrap_or(0));
    let _ = std::fs::remove_dir_all(&dir);
    format!(
        concat!(
            "{{\"n\":{},\"f\":1,\"r\":{},\"states\":{},\"every_states\":{},",
            "\"plain_states_per_s\":{:.0},\"checkpointed_states_per_s\":{:.0},",
            "\"overhead\":{:.3},\"epochs\":{},\"epoch_bytes\":{},",
            "\"checkpoint_scratch_bytes\":{},\"scratch_bytes_per_state\":{:.2}}}"
        ),
        n,
        r,
        stats.states,
        every,
        stats.states as f64 / plain,
        stats.states as f64 / checkpointed,
        checkpointed / plain,
        epochs.len(),
        epoch_bytes,
        scratch,
        scratch as f64 / stats.states as f64
    )
}

/// Verdict-cache service throughput: the f = 1 Byzantine placement
/// sweep of [`checkpoint_overhead_entry`]'s BFS instance (biring(4),
/// root 0, cap 2, r = 1 — 4 placements), cold (a fresh
/// [`VerdictCache`] per iteration, every placement a miss) vs warm
/// (one shared prewarmed cache, every placement a hit). One extra
/// previously-unseen fault-free job runs once outside the timed region,
/// so the warm batch models `verifyd` replaying a job file with one new
/// entry: 5 jobs, 4 hits, hit rate 0.8 — and the acceptance gate's
/// "all but one job served from cache" shape. Hit rows are asserted
/// bit-identical to the cold rows before anything is reported.
fn cache_service_entry() -> String {
    let (n, cap, r, f) = (4usize, 2u64, 1u8, 1usize);
    let p = bfs_tree_protocol(topology::bidirectional_ring(n), 0, cap, FaultModel::none()).unwrap();
    let inputs = vec![0u64; n];
    let alphabet = bfs_alphabet(cap);
    let sweep = |cache: &VerdictCache| {
        sweep_byzantine_placements_cached(
            &p,
            &inputs,
            &alphabet,
            r,
            Limits::default(),
            f,
            &[],
            cache,
        )
        .unwrap()
    };
    let cold_rows = sweep(&VerdictCache::in_memory(DEFAULT_BYTE_BUDGET));
    let placements = cold_rows.len();
    let sweep_states: usize = cold_rows.iter().map(|row| row.stats.states).sum();
    let cold = best_seconds(|| {
        let rows = sweep(&VerdictCache::in_memory(DEFAULT_BYTE_BUDGET));
        assert!(rows.iter().all(|row| row.cache == CacheOutcome::Miss));
    });
    let warm_cache = VerdictCache::in_memory(DEFAULT_BYTE_BUDGET);
    let _prewarm = sweep(&warm_cache);
    let warm = best_seconds(|| {
        let rows = sweep(&warm_cache);
        assert!(
            rows.iter().all(|row| row.cache == CacheOutcome::Hit),
            "warm sweep must be served entirely from cache"
        );
    });
    let warm_rows = sweep(&warm_cache);
    for (cold_row, warm_row) in cold_rows.iter().zip(&warm_rows) {
        assert_eq!(cold_row.placement, warm_row.placement);
        assert_eq!(
            cold_row.verdict, warm_row.verdict,
            "a hit must be bit-identical to the cold verdict"
        );
        assert_eq!(cold_row.stats, warm_row.stats);
    }
    // The one previously-unseen job of the warm batch: fault-free over
    // the same protocol (a different fingerprint), computed once.
    let extra = warm_cache
        .verify_label(&p, &inputs, &alphabet, r, &Limits::default())
        .unwrap();
    assert_eq!(extra.outcome, CacheOutcome::Miss);
    let (warm_jobs, warm_hits) = (placements + 1, placements);
    emit_criterion_line(
        &format!("perf/cache_service/{n}/cold"),
        cold,
        sweep_states as u64,
    );
    emit_criterion_line(
        &format!("perf/cache_service/{n}/warm"),
        warm,
        sweep_states as u64,
    );
    format!(
        concat!(
            "{{\"n\":{},\"f\":{},\"r\":{},\"placements\":{},\"sweep_states\":{},",
            "\"cold_states_per_s\":{:.0},\"warm_states_per_s\":{:.0},",
            "\"warm_speedup\":{:.1},\"warm_jobs\":{},\"warm_hits\":{},\"hit_rate\":{:.3}}}"
        ),
        n,
        f,
        r,
        placements,
        sweep_states,
        sweep_states as f64 / cold,
        sweep_states as f64 / warm,
        cold / warm,
        warm_jobs,
        warm_hits,
        warm_hits as f64 / warm_jobs as f64
    )
}

/// Async engine measurement at ring size `n`: steps/s under one schedule
/// family, `Simulation::run` (buffered `activations_into`) vs the
/// allocating one-`Vec`-per-step path every run loop used before the
/// buffered scheduling layer.
fn async_engine_entry(kind: &str, n: usize) -> String {
    let steps = 50_000u64;
    let inputs: Vec<u64> = (0..n as u64).collect();
    let p = max_ring(n);

    let buffered = best_seconds(|| {
        let mut sim = Simulation::new(&p, &inputs, vec![0u64; n]).unwrap();
        let mut sched = schedule_workload(kind, n);
        sim.run(sched.as_mut(), steps);
    });
    let alloc = best_seconds(|| {
        let mut sim = Simulation::new(&p, &inputs, vec![0u64; n]).unwrap();
        let mut sched = schedule_workload(kind, n);
        for _ in 0..steps {
            let active = sched.activations(sim.time() + 1, n);
            sim.step_with(&active);
        }
    });
    emit_criterion_line(
        &format!("perf/async_engine/{kind}/buffered"),
        buffered,
        steps,
    );
    emit_criterion_line(&format!("perf/async_engine/{kind}/alloc"), alloc, steps);
    format!(
        concat!(
            "{{\"schedule\":\"{}\",\"n\":{},\"steps_per_iter\":{},",
            "\"alloc_steps_per_s\":{:.0},",
            "\"buffered_steps_per_s\":{:.0},",
            "\"speedup\":{:.2}}}"
        ),
        kind,
        n,
        steps,
        steps as f64 / alloc,
        steps as f64 / buffered,
        alloc / buffered
    )
}

/// The two [`CycleDetector`] modes on the worst-case protocol at size `n`
/// (transient of exactly n·(q−1) synchronous rounds): throughput plus the
/// estimated peak classifier memory — the arena retains every visited
/// labeling, Brent keeps a constant number of them.
fn classify_detectors_entry(n: usize) -> String {
    let q = 2u64;
    let p = worst_case_protocol(n, q);
    let inputs = vec![0u64; n];
    let arena = best_seconds(|| {
        classify_sync_with(
            &p,
            &inputs,
            vec![0u64; n],
            10_000,
            CycleDetector::ExactArena,
        )
        .unwrap();
    });
    let brent = best_seconds(|| {
        classify_sync_with(&p, &inputs, vec![0u64; n], 10_000, CycleDetector::Brent).unwrap();
    });
    emit_criterion_line(&format!("perf/classify_detectors/{n}/arena"), arena, 1);
    emit_criterion_line(&format!("perf/classify_detectors/{n}/brent"), brent, 1);
    // The transient visits n·(q−1)+1 distinct labelings of n u64 labels.
    let rounds = n as u64 * (q - 1) + 1;
    let label_bytes = std::mem::size_of::<u64>() as u64;
    let arena_bytes = rounds * n as u64 * label_bytes;
    // Brent holds two run cursors plus snapshot/entry/output buffers —
    // a small constant number of labelings.
    let brent_bytes = 4 * n as u64 * label_bytes;
    format!(
        concat!(
            "{{\"n\":{},\"arena_ms_per_run\":{:.3},\"brent_ms_per_run\":{:.3},",
            "\"arena_history_bytes\":{},\"brent_state_bytes\":{},",
            "\"brent_time_overhead\":{:.2}}}"
        ),
        n,
        arena * 1e3,
        brent * 1e3,
        arena_bytes,
        brent_bytes,
        brent / arena
    )
}

/// The worker counts the `verify_scaling` section measures: powers of two
/// from 1 up to `max_threads` (inclusive, plus `max_threads` itself when
/// it is not a power of two); `0` means the machine's available
/// parallelism. A 1-core CI host measures `[1]` only — multi-core hosts
/// pass `--threads 4` to get the 1/2/4 scaling rows.
fn thread_counts(max_threads: usize) -> Vec<usize> {
    let max = if max_threads == 0 {
        rayon::current_num_threads()
    } else {
        max_threads
    }
    .max(1);
    let mut counts = vec![1];
    let mut t = 2;
    while t < max {
        counts.push(t);
        t *= 2;
    }
    if max > 1 {
        counts.push(max);
    }
    counts
}

/// Builds the full JSON summary (pretty-printed, one section per line).
/// `max_threads` caps the `verify_scaling` worker sweep (see
/// [`thread_counts`]; `0` = available parallelism).
pub fn summary_json(max_threads: usize) -> String {
    let threads = rayon::current_num_threads();
    let counts = thread_counts(max_threads);
    let engine: Vec<String> = [100usize, 1024].iter().map(|&n| engine_entry(n)).collect();
    let async_engine: Vec<String> = SCHEDULE_KINDS
        .iter()
        .map(|kind| async_engine_entry(kind, 1024))
        .collect();
    let stabilization = stabilization_entry(1024);
    let classify = classify_entry(1024);
    let detectors = classify_detectors_entry(1024);
    let sweep = sweep_entry(14);
    let verify_scaling: Vec<String> = [6usize, 8, 10]
        .iter()
        .flat_map(|&n| verify_scaling_rows(n, &counts))
        .collect();
    let byzantine = byzantine_scaling_rows();
    let checkpoint = checkpoint_overhead_entry();
    let cache_service = cache_service_entry();
    format!(
        "{{\n  \"suite\": \"stateless-computation perf summary\",\n  \"threads\": {},\n  \"engine_throughput\": [{}],\n  \"async_engine\": [{}],\n  \"label_stabilization\": {},\n  \"classify_sync\": {},\n  \"classify_detectors\": {},\n  \"round_complexity_sweep\": {},\n  \"verify_scaling\": [{}],\n  \"byzantine_scaling\": [{}],\n  \"checkpoint_overhead\": {},\n  \"cache_service\": {}\n}}\n",
        threads,
        engine.join(", "),
        async_engine.join(", "),
        stabilization,
        classify,
        detectors,
        sweep,
        verify_scaling.join(", "),
        byzantine.join(", "),
        checkpoint,
        cache_service
    )
}
