//! Machine-readable performance summary (`experiments --json`).
//!
//! Times the three hot paths this crate cares about — the simulation
//! engine, the exact synchronous classifier, and the exhaustive sweep
//! driver — each against its naive/sequential reference, and emits one
//! JSON object. The committed `BENCH_engine.json` at the repository root
//! is a snapshot of this output and seeds the perf trajectory across PRs.

use std::time::Instant;

use stateless_core::convergence::{
    all_labelings, classify_sync, classify_sync_naive, sync_round_complexity,
    sync_round_complexity_par,
};
use stateless_core::prelude::*;
use stateless_protocols::worst_case::worst_case_protocol;

use crate::workloads::{is_stable_naive, max_ring, max_ring_naive, sticky_or_ring};

/// Minimum wall-clock spent per measurement; the reported figure is the
/// best per-iteration time observed (robust to scheduler noise).
const MIN_SAMPLE: f64 = 0.2;

fn best_seconds<F: FnMut()>(mut f: F) -> f64 {
    // Warmup.
    f();
    let mut best = f64::INFINITY;
    let mut spent = 0.0;
    while spent < MIN_SAMPLE {
        let t = Instant::now();
        f();
        let dt = t.elapsed().as_secs_f64();
        best = best.min(dt);
        spent += dt;
    }
    best
}

/// One engine measurement at ring size `n`: activations/s for the naive
/// and buffered paths.
fn engine_entry(n: usize) -> String {
    let rounds = (4_000_000 / n as u64).max(8);
    let activations = rounds as f64 * n as f64;
    let inputs: Vec<u64> = (0..n as u64).collect();

    let p = max_ring(n);
    let mut sim = Simulation::new(&p, &inputs, vec![0u64; n]).unwrap();
    let buffered = best_seconds(|| sim.run(&mut Synchronous, rounds));

    let p_naive = max_ring_naive(n);
    let all: Vec<NodeId> = (0..n).collect();
    let mut sim = Simulation::new(&p_naive, &inputs, vec![0u64; n]).unwrap();
    let naive = best_seconds(|| {
        for _ in 0..rounds {
            sim.step_with_naive(&all);
        }
    });

    format!(
        concat!(
            "{{\"n\":{},\"rounds_per_iter\":{},",
            "\"naive_activations_per_s\":{:.0},",
            "\"buffered_activations_per_s\":{:.0},",
            "\"speedup\":{:.2}}}"
        ),
        n,
        rounds,
        activations / naive,
        activations / buffered,
        naive / buffered
    )
}

/// Convergence measurement at n = 1024: run-until-label-stable on the
/// max-propagation ring (≈ n rounds, each with a full stability probe),
/// buffered vs the seed's naive apply() loop.
fn stabilization_entry(n: usize) -> String {
    let inputs: Vec<u64> = (0..n as u64).collect();
    let p = max_ring(n);
    let buffered = best_seconds(|| {
        let mut sim = Simulation::new(&p, &inputs, vec![0u64; n]).unwrap();
        sim.run_until_label_stable(&mut Synchronous, 2 * n as u64)
            .unwrap();
    });
    let p_naive = max_ring_naive(n);
    let all: Vec<NodeId> = (0..n).collect();
    let naive = best_seconds(|| {
        let mut sim = Simulation::new(&p_naive, &inputs, vec![0u64; n]).unwrap();
        while !is_stable_naive(&p_naive, sim.labeling(), &inputs) {
            sim.step_with_naive(&all);
        }
    });
    format!(
        concat!(
            "{{\"n\":{},\"naive_ms_per_run\":{:.3},",
            "\"buffered_ms_per_run\":{:.3},\"speedup\":{:.2}}}"
        ),
        n,
        naive * 1e3,
        buffered * 1e3,
        naive / buffered
    )
}

/// Classifier measurement at n = 1024 (the worst-case protocol visits
/// exactly n·(q−1)+1 labelings before its fixed point).
fn classify_entry(n: usize) -> String {
    let p = worst_case_protocol(n, 2);
    let inputs = vec![0u64; n];
    let fast = best_seconds(|| {
        classify_sync(&p, &inputs, vec![0u64; n], 10_000).unwrap();
    });
    let naive = best_seconds(|| {
        classify_sync_naive(&p, &inputs, vec![0u64; n], 10_000).unwrap();
    });
    format!(
        concat!(
            "{{\"n\":{},\"naive_ms_per_run\":{:.3},",
            "\"fingerprint_ms_per_run\":{:.3},\"speedup\":{:.2}}}"
        ),
        n,
        naive * 1e3,
        fast * 1e3,
        naive / fast
    )
}

/// Sweep measurement: all 2^n binary labelings of the sticky-OR n-ring.
fn sweep_entry(n: usize) -> String {
    let p = sticky_or_ring(n);
    let inputs: Vec<u64> = (0..n as u64).map(|i| i % 2).collect();
    let seq = best_seconds(|| {
        sync_round_complexity(&p, &inputs, all_labelings(&[false, true], n), 10_000)
            .unwrap()
            .unwrap();
    });
    let par = best_seconds(|| {
        sync_round_complexity_par(&p, &inputs, all_labelings(&[false, true], n), 10_000)
            .unwrap()
            .unwrap();
    });
    format!(
        concat!(
            "{{\"n\":{},\"labelings\":{},\"sequential_ms\":{:.3},",
            "\"parallel_ms\":{:.3},\"speedup\":{:.2}}}"
        ),
        n,
        1u64 << n,
        seq * 1e3,
        par * 1e3,
        seq / par
    )
}

/// Builds the full JSON summary (pretty-printed, one section per line).
pub fn summary_json() -> String {
    let threads = rayon::current_num_threads();
    let engine: Vec<String> = [100usize, 1024].iter().map(|&n| engine_entry(n)).collect();
    let stabilization = stabilization_entry(1024);
    let classify = classify_entry(1024);
    let sweep = sweep_entry(14);
    format!(
        "{{\n  \"suite\": \"stateless-computation perf summary\",\n  \"threads\": {},\n  \"engine_throughput\": [{}],\n  \"label_stabilization\": {},\n  \"classify_sync\": {},\n  \"round_complexity_sweep\": {}\n}}\n",
        threads,
        engine.join(", "),
        stabilization,
        classify,
        sweep
    )
}
