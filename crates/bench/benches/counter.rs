//! E7/E8: D-counter synchronization cost vs ring size and modulus.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stateless_core::prelude::*;
use stateless_protocols::counter::{counter_protocol, sync_rounds_bound, CounterFields};

fn bench_counter(c: &mut Criterion) {
    let mut group = c.benchmark_group("d_counter");
    for (n, d) in [(5usize, 8u32), (9, 16), (17, 32), (33, 64)] {
        let p = counter_protocol(n, d).unwrap();
        group.bench_with_input(
            BenchmarkId::new("sync", format!("n{n}_D{d}")),
            &n,
            |b, _| {
                b.iter(|| {
                    let mut sim = Simulation::new(
                        &p,
                        &vec![0; n],
                        vec![CounterFields::default(); p.edge_count()],
                    )
                    .unwrap();
                    sim.run(&mut Synchronous, sync_rounds_bound(n));
                    sim.outputs()[0]
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("calibration", format!("n{n}_D{d}")),
            &n,
            |b, _| b.iter(|| counter_protocol(n, d).unwrap().label_bits()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_counter);
criterion_main!(benches);
