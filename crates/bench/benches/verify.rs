//! E4/E6: the exponential cost of exact stabilization verification.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stabilization_verify::{verify_label_stabilization, Limits};
use stateless_protocols::example1::example1_protocol;

fn bench_verify(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_verification");
    group.sample_size(10);
    // The state space is |Σ|^{n(n−1)}·rⁿ: watch it explode with n.
    for n in [3usize, 4] {
        let p = example1_protocol(n);
        group.bench_with_input(BenchmarkId::new("example1_r=n-1", n), &n, |b, _| {
            b.iter(|| {
                verify_label_stabilization(
                    &p,
                    &vec![0; n],
                    &[false, true],
                    (n - 1) as u8,
                    Limits {
                        max_states: 5_000_000,
                    },
                )
                .unwrap()
                .is_stabilizing()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_verify);
criterion_main!(benches);
