//! E4/E6: the exponential cost of exact stabilization verification, and
//! the packed-arena explorer against the owned-`Vec` reference.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stabilization_verify::{verify_label_stabilization, verify_label_stabilization_naive, Limits};
use stateless_bench::workloads::rotation_ring;
use stateless_protocols::example1::example1_protocol;

fn bench_verify(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_verification");
    group.sample_size(10);
    // The state space is |Σ|^{n(n−1)}·rⁿ: watch it explode with n.
    for n in [3usize, 4] {
        let p = example1_protocol(n);
        group.bench_with_input(BenchmarkId::new("example1_r=n-1", n), &n, |b, _| {
            b.iter(|| {
                verify_label_stabilization(
                    &p,
                    &vec![0; n],
                    &[false, true],
                    (n - 1) as u8,
                    Limits {
                        max_states: 5_000_000,
                        ..Limits::default()
                    },
                )
                .unwrap()
                .is_stabilizing()
            })
        });
    }
    group.finish();
}

/// Packed-arena explorer vs the retained naive reference on the rotation
/// ring's ≈4ⁿ-state product graph (the `verify_scaling` perf section
/// measures the same pair at larger sizes, with byte accounting).
fn bench_explorers(c: &mut Criterion) {
    let mut group = c.benchmark_group("verify_explorers");
    group.sample_size(10);
    let n = 6usize;
    let p = rotation_ring(n);
    let inputs = vec![0u64; n];
    group.bench_with_input(BenchmarkId::new("rotation_r=2/packed", n), &n, |b, _| {
        b.iter(|| {
            verify_label_stabilization(&p, &inputs, &[false, true], 2, Limits::default())
                .unwrap()
                .is_stabilizing()
        })
    });
    group.bench_with_input(BenchmarkId::new("rotation_r=2/naive", n), &n, |b, _| {
        b.iter(|| {
            verify_label_stabilization_naive(&p, &inputs, &[false, true], 2, Limits::default())
                .unwrap()
                .is_stabilizing()
        })
    });
    group.finish();
}

/// The parallel explorer across worker counts, on one product graph.
/// Verdicts and state ids are bit-identical across rows (asserted by the
/// differential tests); only throughput may differ — on a 1-core host the
/// extra rows measure the coordination overhead instead.
fn bench_explorer_threads(c: &mut Criterion) {
    let mut group = c.benchmark_group("verify_threads");
    group.sample_size(10);
    let n = 6usize;
    let p = rotation_ring(n);
    let inputs = vec![0u64; n];
    for threads in [1usize, 2, 4] {
        let limits = Limits {
            threads,
            ..Limits::default()
        };
        group.bench_with_input(
            BenchmarkId::new("rotation_r=2", format!("t{threads}")),
            &threads,
            |b, _| {
                b.iter(|| {
                    verify_label_stabilization(&p, &inputs, &[false, true], 2, limits.clone())
                        .unwrap()
                        .is_stabilizing()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_verify,
    bench_explorers,
    bench_explorer_threads
);
criterion_main!(benches);
