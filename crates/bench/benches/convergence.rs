//! E1/E3: generic-protocol convergence time vs graph size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stateless_core::prelude::*;
use stateless_protocols::generic::{generic_protocol, round_bound, GenericLabel};

fn bench_generic(c: &mut Criterion) {
    let mut group = c.benchmark_group("generic_protocol_stabilization");
    for n in [6usize, 10, 16] {
        for (name, graph) in [
            ("uniring", topology::unidirectional_ring(n)),
            ("biring", topology::bidirectional_ring(n)),
            ("clique", topology::clique(n)),
        ] {
            let p = generic_protocol(graph, |x: &[bool]| {
                2 * x.iter().filter(|&&b| b).count() >= x.len()
            })
            .unwrap();
            let inputs: Vec<u64> = (0..n as u64).map(|i| i % 2).collect();
            group.bench_with_input(
                BenchmarkId::new(name, n),
                &n,
                |b, _| {
                    b.iter(|| {
                        let mut sim = Simulation::new(
                            &p,
                            &inputs,
                            vec![GenericLabel::zero(n); p.edge_count()],
                        )
                        .unwrap();
                        sim.run_until_label_stable(&mut Synchronous, round_bound(n) + 1)
                            .unwrap()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_generic);
criterion_main!(benches);
