//! E1/E3: generic-protocol convergence time vs graph size, plus the exact
//! synchronous classifier (fingerprint arena vs the clone-based naive
//! reference) and the parallel sweep driver.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use stateless_bench::workloads::{is_stable_naive, max_ring, max_ring_naive, sticky_or_ring};
use stateless_core::convergence::{
    all_labelings, classify_sync, classify_sync_naive, sync_round_complexity,
    sync_round_complexity_par,
};
use stateless_core::prelude::*;
use stateless_protocols::generic::{generic_protocol, round_bound, GenericLabel};
use stateless_protocols::worst_case::{exact_rounds, worst_case_protocol};

fn bench_generic(c: &mut Criterion) {
    let mut group = c.benchmark_group("generic_protocol_stabilization");
    for n in [6usize, 10, 16] {
        for (name, graph) in [
            ("uniring", topology::unidirectional_ring(n)),
            ("biring", topology::bidirectional_ring(n)),
            ("clique", topology::clique(n)),
        ] {
            let p = generic_protocol(graph, |x: &[bool]| {
                2 * x.iter().filter(|&&b| b).count() >= x.len()
            })
            .unwrap();
            let inputs: Vec<u64> = (0..n as u64).map(|i| i % 2).collect();
            group.bench_with_input(BenchmarkId::new(name, n), &n, |b, _| {
                b.iter(|| {
                    let mut sim =
                        Simulation::new(&p, &inputs, vec![GenericLabel::zero(n); p.edge_count()])
                            .unwrap();
                    sim.run_until_label_stable(&mut Synchronous, round_bound(n) + 1)
                        .unwrap()
                })
            });
        }
    }
    group.finish();
}

/// Convergence measurement at n = 1024: run a max-propagation ring until
/// label-stable (≈ n rounds, each with a full stability probe), buffered
/// vs the seed's naive path (allocating `apply` for both the step and the
/// probe). This is the round-complexity measurement loop every experiment
/// drives, at scale.
fn bench_stabilization(c: &mut Criterion) {
    let n = 1024usize;
    let p = max_ring(n);
    let p_naive = max_ring_naive(n);
    let inputs: Vec<u64> = (0..n as u64).collect();
    let mut group = c.benchmark_group("label_stabilization");
    group.sample_size(10);
    // ~n rounds of n activations, plus a same-sized probe per round.
    group.throughput(Throughput::Elements(2 * (n as u64) * (n as u64)));
    group.bench_with_input(BenchmarkId::new("max_ring_buffered", n), &n, |b, _| {
        b.iter(|| {
            let mut sim = Simulation::new(&p, &inputs, vec![0u64; n]).unwrap();
            sim.run_until_label_stable(&mut Synchronous, 2 * n as u64)
                .unwrap()
        })
    });
    group.bench_with_input(BenchmarkId::new("max_ring_naive", n), &n, |b, _| {
        // The seed implementation: per-round stability probe through the
        // allocating apply() path, then a naive step.
        let all: Vec<NodeId> = (0..n).collect();
        b.iter(|| {
            let mut sim = Simulation::new(&p_naive, &inputs, vec![0u64; n]).unwrap();
            let mut steps = 0u64;
            while !is_stable_naive(&p_naive, sim.labeling(), &inputs) {
                sim.step_with_naive(&all);
                steps += 1;
            }
            steps
        })
    });
    group.finish();
}

/// The classifier at n = 1024: the worst-case protocol takes exactly
/// `n·(q−1)` synchronous rounds to its fixed point, so one classification
/// steps ~n² node-activations and hashes n labelings of n labels.
fn bench_classify(c: &mut Criterion) {
    let n = 1024usize;
    let q = 2u64;
    let p = worst_case_protocol(n, q);
    let inputs = vec![0u64; n];
    let rounds = exact_rounds(n, q);
    let mut group = c.benchmark_group("classify_sync");
    group.sample_size(10);
    group.throughput(Throughput::Elements(rounds * n as u64));
    group.bench_with_input(BenchmarkId::new("worst_case_fingerprint", n), &n, |b, _| {
        b.iter(|| {
            let out = classify_sync(&p, &inputs, vec![0u64; n], 10_000).unwrap();
            assert!(out.is_label_stable());
            out.output_round()
        })
    });
    group.bench_with_input(BenchmarkId::new("worst_case_naive", n), &n, |b, _| {
        b.iter(|| {
            let out = classify_sync_naive(&p, &inputs, vec![0u64; n], 10_000).unwrap();
            assert!(out.is_label_stable());
            out.output_round()
        })
    });
    group.finish();
}

/// The exhaustive sweep driver: all 2¹⁴ binary labelings of the 14-ring,
/// sequential vs parallel.
fn bench_sweep(c: &mut Criterion) {
    let n = 14usize;
    let p = sticky_or_ring(n);
    let inputs: Vec<u64> = (0..n as u64).map(|i| i % 2).collect();
    let mut group = c.benchmark_group("round_complexity_sweep");
    group.sample_size(10);
    group.throughput(Throughput::Elements(1 << n));
    group.bench_function("sequential", |b| {
        b.iter(|| {
            sync_round_complexity(&p, &inputs, all_labelings(&[false, true], n), 10_000)
                .unwrap()
                .unwrap()
        })
    });
    group.bench_function("parallel", |b| {
        b.iter(|| {
            sync_round_complexity_par(&p, &inputs, all_labelings(&[false, true], n), 10_000)
                .unwrap()
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_generic,
    bench_stabilization,
    bench_classify,
    bench_sweep
);
criterion_main!(benches);
