//! E14: best-response application dynamics.

use best_response::bgp;
use criterion::{criterion_group, criterion_main, Criterion};
use stateless_core::convergence::classify_sync;

fn bench_bgp(c: &mut Criterion) {
    let mut group = c.benchmark_group("bgp_gadgets");
    for (name, spp) in [
        ("good", bgp::good_gadget()),
        ("disagree", bgp::disagree_gadget()),
        ("bad", bgp::bad_gadget()),
    ] {
        let p = spp.to_protocol();
        let n = spp.node_count();
        let direct: Vec<bgp::Route> = (0..n as u8)
            .map(|i| if i == 0 { vec![0] } else { vec![i, 0] })
            .collect();
        let init = spp.labeling_from(&direct);
        group.bench_function(name, |b| {
            b.iter(|| {
                classify_sync(&p, &vec![0; n], init.clone(), 1_000_000)
                    .unwrap()
                    .is_label_stable()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bgp);
criterion_main!(benches);
