//! E13: fooling-set verification cost (O(|S|²) evaluations).

use comm_complexity::fooling;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stateless_core::topology;

fn bench_fooling(c: &mut Criterion) {
    let mut group = c.benchmark_group("fooling_sets");
    for n in [8usize, 12, 16] {
        let ring = topology::bidirectional_ring(n);
        group.bench_with_input(BenchmarkId::new("equality_bound", n), &n, |b, &n| {
            b.iter(|| {
                fooling::equality_fooling_set(n)
                    .unwrap()
                    .label_bound(&ring)
                    .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("majority_bound", n), &n, |b, &n| {
            b.iter(|| {
                fooling::majority_fooling_set(n)
                    .unwrap()
                    .label_bound(&ring)
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fooling);
criterion_main!(benches);
