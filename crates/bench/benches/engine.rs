//! E15: raw simulation throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use stateless_core::prelude::*;

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_throughput");
    for n in [100usize, 1000] {
        let p = Protocol::builder(topology::unidirectional_ring(n), 8.0)
            .uniform_reaction(FnReaction::new(|_, inc: &[u64], x| {
                let m = inc[0].max(x);
                (vec![m], m)
            }))
            .build()
            .unwrap();
        let inputs: Vec<u64> = (0..n as u64).collect();
        group.throughput(Throughput::Elements(n as u64 * 10));
        group.bench_with_input(BenchmarkId::new("max_ring_10_rounds", n), &n, |b, _| {
            b.iter(|| {
                let mut sim = Simulation::new(&p, &inputs, vec![0u64; n]).unwrap();
                sim.run(&mut Synchronous, 10);
                sim.outputs()[0]
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
