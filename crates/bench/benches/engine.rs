//! E15: raw simulation throughput — buffered hot path vs the naive
//! allocating reference, at small and large ring sizes. The workloads are
//! shared with `experiments --json` (see `stateless_bench::workloads`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use stateless_bench::workloads::{max_ring, max_ring_naive};
use stateless_core::prelude::*;

const ROUNDS: u64 = 10;

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_throughput");
    for n in [100usize, 1024] {
        let p = max_ring(n);
        let p_naive = max_ring_naive(n);
        let inputs: Vec<u64> = (0..n as u64).collect();
        group.throughput(Throughput::Elements(n as u64 * ROUNDS));
        // Buffered fast path: `run` + Synchronous dispatches to step_sync.
        group.bench_with_input(BenchmarkId::new("max_ring_10_rounds", n), &n, |b, _| {
            b.iter(|| {
                let mut sim = Simulation::new(&p, &inputs, vec![0u64; n]).unwrap();
                sim.run(&mut Synchronous, ROUNDS);
                sim.outputs()[0]
            })
        });
        // Naive reference: allocating apply() path, explicit activation
        // lists, FnReaction closures.
        group.bench_with_input(
            BenchmarkId::new("max_ring_10_rounds_naive", n),
            &n,
            |b, _| {
                let all: Vec<NodeId> = (0..n).collect();
                b.iter(|| {
                    let mut sim = Simulation::new(&p_naive, &inputs, vec![0u64; n]).unwrap();
                    for _ in 0..ROUNDS {
                        sim.step_with_naive(&all);
                    }
                    sim.outputs()[0]
                })
            },
        );
        // Buffered general path (activation lists, but scratch buffers).
        group.bench_with_input(
            BenchmarkId::new("max_ring_10_rounds_step_with", n),
            &n,
            |b, _| {
                let all: Vec<NodeId> = (0..n).collect();
                b.iter(|| {
                    let mut sim = Simulation::new(&p, &inputs, vec![0u64; n]).unwrap();
                    for _ in 0..ROUNDS {
                        sim.step_with(&all);
                    }
                    sim.outputs()[0]
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
