//! The asynchronous scheduling layer: `Simulation::run` (which draws
//! activation sets through the buffered `Schedule::activations_into` into
//! one reused buffer) against the naive path that allocates a fresh
//! activation `Vec` every step, for every built-in schedule family; plus
//! the two `CycleDetector` modes of the classifier (history arena vs
//! O(1)-memory Brent) on a long-transient workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use stateless_bench::workloads::{max_ring, schedule_workload, SCHEDULE_KINDS};
use stateless_core::convergence::{classify_sync_with, CycleDetector};
use stateless_core::prelude::*;
use stateless_protocols::worst_case::worst_case_protocol;

const N: usize = 1024;
const STEPS: u64 = 200;

fn bench_async_engine(c: &mut Criterion) {
    let p = max_ring(N);
    let inputs: Vec<u64> = (0..N as u64).collect();
    let mut group = c.benchmark_group("async_engine");
    group.throughput(Throughput::Elements(STEPS));
    for kind in SCHEDULE_KINDS {
        // Buffered: run() reuses one activation buffer across all steps.
        group.bench_with_input(BenchmarkId::new(kind, "buffered_run"), &kind, |b, kind| {
            b.iter(|| {
                let mut sim = Simulation::new(&p, &inputs, vec![0u64; N]).unwrap();
                let mut sched = schedule_workload(kind, N);
                sim.run(sched.as_mut(), STEPS);
                sim.time()
            })
        });
        // Naive: one fresh Vec per step through the allocating wrapper
        // (the pre-refactor call shape of every run loop).
        group.bench_with_input(
            BenchmarkId::new(kind, "alloc_per_step"),
            &kind,
            |b, kind| {
                b.iter(|| {
                    let mut sim = Simulation::new(&p, &inputs, vec![0u64; N]).unwrap();
                    let mut sched = schedule_workload(kind, N);
                    for _ in 0..STEPS {
                        let active = sched.activations(sim.time() + 1, N);
                        sim.step_with(&active);
                    }
                    sim.time()
                })
            },
        );
    }
    group.finish();
}

/// The two detector modes on the worst-case protocol (transient of exactly
/// n·(q−1) rounds before the fixed point): the arena retains every visited
/// labeling, Brent re-runs the deterministic prefix instead.
fn bench_classify_detectors(c: &mut Criterion) {
    let n = 1024usize;
    let p = worst_case_protocol(n, 2);
    let inputs = vec![0u64; n];
    let mut group = c.benchmark_group("classify_detectors");
    group.sample_size(10);
    group.throughput(Throughput::Elements(n as u64 * n as u64));
    for (name, detector) in [
        ("exact_arena", CycleDetector::ExactArena),
        ("brent", CycleDetector::Brent),
    ] {
        group.bench_with_input(BenchmarkId::new(name, n), &detector, |b, &detector| {
            b.iter(|| {
                let out = classify_sync_with(&p, &inputs, vec![0u64; n], 10_000, detector).unwrap();
                assert!(out.is_label_stable());
                out.output_round()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_async_engine, bench_classify_detectors);
criterion_main!(benches);
