//! E9/E10: TM-on-ring and BP-on-ring round costs.

use branching_program::convert::{
    bp_to_uniring_protocol, output_rounds_bound as bp_bound, BpRingLabel,
};
use branching_program::library as bps;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stateless_core::prelude::*;
use stateless_protocols::tm_ring::{output_rounds_bound, tm_ring_protocol, TmLabel};
use turing_machine::library as machines;

fn bench_uniring(c: &mut Criterion) {
    let mut group = c.benchmark_group("uniring_simulations");
    group.sample_size(10);
    for n in [3usize, 4, 5] {
        let m = machines::parity_machine(n);
        let p = tm_ring_protocol(m.clone());
        let budget = output_rounds_bound(&m);
        let inputs: Vec<u64> = (0..n as u64).map(|i| i % 2).collect();
        group.bench_with_input(BenchmarkId::new("tm_parity", n), &n, |b, _| {
            b.iter(|| {
                let mut sim = Simulation::new(&p, &inputs, vec![TmLabel::reset(&m); n]).unwrap();
                sim.run(&mut Synchronous, budget);
                sim.outputs()[0]
            })
        });
        let bp = bps::majority(n);
        let bp_p = bp_to_uniring_protocol(&bp).unwrap();
        group.bench_with_input(BenchmarkId::new("bp_majority", n), &n, |b, _| {
            b.iter(|| {
                let mut sim =
                    Simulation::new(&bp_p, &inputs, vec![BpRingLabel::default(); n]).unwrap();
                sim.run(&mut Synchronous, bp_bound(&bp));
                sim.outputs()[0]
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_uniring);
criterion_main!(benches);
