//! E11: circuit-on-ring compilation and self-stabilizing evaluation.

use boolean_circuit::library;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stateless_core::prelude::*;
use stateless_protocols::circuit_ring::{compile_circuit, CircuitLabel};

fn bench_circuit_ring(c: &mut Criterion) {
    let mut group = c.benchmark_group("circuit_on_ring");
    group.sample_size(10);
    for (name, circuit) in [
        ("parity3", library::parity(3)),
        ("equality4", library::equality(4)),
        ("majority3", library::majority(3)),
    ] {
        let compiled = compile_circuit(&circuit).unwrap();
        let n = circuit.input_count();
        let x = vec![true; n];
        group.bench_with_input(BenchmarkId::new("stabilize", name), &n, |b, _| {
            b.iter(|| {
                let mut sim = Simulation::new(
                    compiled.protocol(),
                    &compiled.ring_inputs(&x),
                    vec![CircuitLabel::default(); compiled.protocol().edge_count()],
                )
                .unwrap();
                sim.run(&mut Synchronous, compiled.rounds_bound());
                sim.outputs()[0]
            })
        });
        group.bench_with_input(BenchmarkId::new("compile", name), &n, |b, _| {
            b.iter(|| compile_circuit(&circuit).unwrap().ring_size())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_circuit_ring);
criterion_main!(benches);
