//! E5: snake-in-the-box search cost vs dimension.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hypercube_snake::longest_snake;

fn bench_snake(c: &mut Criterion) {
    let mut group = c.benchmark_group("snake_search");
    group.sample_size(10);
    for d in [3u32, 4, 5] {
        group.bench_with_input(BenchmarkId::new("exhaustive", d), &d, |b, &d| {
            b.iter(|| longest_snake(d, None).snake.unwrap().len())
        });
    }
    group.bench_function("budgeted_q6", |b| {
        b.iter(|| longest_snake(6, Some(200_000)).nodes)
    });
    group.finish();
}

criterion_group!(benches, bench_snake);
criterion_main!(benches);
