//! Depth-first search for maximum snakes.
//!
//! The search fixes the start vertex at `0` and canonicalizes dimension
//! order (a new dimension may be used only if it is the smallest unused
//! one), which quotients out the `d!·2^d` automorphisms fixing nothing —
//! enough to search `Q_5` exhaustively in well under a second and `Q_6`
//! with a budget.

use crate::snake::Snake;

/// Result of a snake search.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// The longest induced cycle found (as a validated [`Snake`]), or
    /// `None` if none of length ≥ 4 exists within the budget.
    pub snake: Option<Snake>,
    /// Whether the search space was exhausted (the result is then the true
    /// maximum `s(d)` up to the canonical symmetry).
    pub exhausted: bool,
    /// Search-tree nodes visited.
    pub nodes: u64,
}

/// Searches for the longest snake in `Q_d`, visiting at most `budget`
/// search-tree nodes if given.
///
/// # Panics
///
/// Panics if `d < 2` or `d > 16`.
pub fn longest_snake(d: u32, budget: Option<u64>) -> SearchOutcome {
    assert!((2..=16).contains(&d), "search supports 2 ≤ d ≤ 16");
    let n = 1usize << d;
    let mut used = vec![false; n];
    let mut adj_count = vec![0u8; n];
    let mut path: Vec<u32> = Vec::with_capacity(n);
    let mut best: Vec<u32> = Vec::new();
    let mut nodes = 0u64;
    let mut exhausted = true;

    // Place the start vertex 0.
    used[0] = true;
    for bit in 0..d {
        adj_count[1usize << bit] += 1;
    }
    path.push(0);

    dfs(
        d,
        &mut path,
        &mut used,
        &mut adj_count,
        &mut best,
        &mut nodes,
        budget,
        &mut exhausted,
        0, // no dimension used yet: the first move must flip dimension 0
    );

    let snake = if best.len() >= 4 {
        Some(Snake::new(d, best).expect("search maintains the induced-cycle invariant"))
    } else {
        None
    };
    SearchOutcome {
        snake,
        exhausted,
        nodes,
    }
}

#[allow(clippy::too_many_arguments)]
fn dfs(
    d: u32,
    path: &mut Vec<u32>,
    used: &mut [bool],
    adj_count: &mut [u8],
    best: &mut Vec<u32>,
    nodes: &mut u64,
    budget: Option<u64>,
    exhausted: &mut bool,
    dims_used: u32,
) {
    if !*exhausted {
        return; // budget exhausted somewhere below: cancel the whole search
    }
    *nodes += 1;
    if let Some(b) = budget {
        if *nodes > b {
            *exhausted = false;
            return;
        }
    }
    let last = *path.last().expect("path is never empty");
    // Canonical dimension set: already-used dims plus the next unused one.
    let dim_limit = (dims_used + 1).min(d);
    for bit in 0..dim_limit {
        let w = last ^ (1 << bit);
        let wi = w as usize;
        if used[wi] {
            continue;
        }
        let closes = crate::adjacent(w, 0) && path.len() >= 3;
        match adj_count[wi] {
            1 => {
                if crate::adjacent(w, 0) && path.len() >= 2 {
                    // Adjacent to the start but adj_count 1 means `last`
                    // is not counted… cannot happen except length-1 paths
                    // handled below; skip to stay induced.
                    continue;
                }
                // Interior extension.
                extend(
                    d, path, used, adj_count, best, nodes, budget, exhausted, dims_used, bit, w,
                );
            }
            2 if closes => {
                // `w` is adjacent to exactly `last` and the start: closing
                // it forms an induced cycle. Record, do not extend.
                path.push(w);
                if path.len() > best.len() {
                    *best = path.clone();
                }
                path.pop();
            }
            _ => {}
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn extend(
    d: u32,
    path: &mut Vec<u32>,
    used: &mut [bool],
    adj_count: &mut [u8],
    best: &mut Vec<u32>,
    nodes: &mut u64,
    budget: Option<u64>,
    exhausted: &mut bool,
    dims_used: u32,
    bit: u32,
    w: u32,
) {
    let wi = w as usize;
    used[wi] = true;
    for b2 in 0..d {
        adj_count[(w ^ (1 << b2)) as usize] += 1;
    }
    path.push(w);
    let next_dims = dims_used.max(bit + 1);
    dfs(
        d, path, used, adj_count, best, nodes, budget, exhausted, next_dims,
    );
    path.pop();
    for b2 in 0..d {
        adj_count[(w ^ (1 << b2)) as usize] -= 1;
    }
    used[wi] = false;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exhaustive_small_dimensions_match_known_records() {
        for (d, s_d) in [(2u32, 4usize), (3, 6), (4, 8)] {
            let out = longest_snake(d, None);
            assert!(out.exhausted);
            assert_eq!(out.snake.expect("snake exists").len(), s_d, "s({d})");
        }
    }

    #[test]
    fn exhaustive_q5_finds_record_14() {
        let out = longest_snake(5, None);
        assert!(out.exhausted);
        assert_eq!(out.snake.expect("snake exists").len(), 14);
    }

    #[test]
    fn budget_is_respected() {
        let out = longest_snake(6, Some(10_000));
        assert!(!out.exhausted);
        assert!(out.nodes <= 10_001);
        if let Some(s) = out.snake {
            assert!(s.len() >= 4);
        }
    }
}
