//! Validated snakes (induced cycles) and the orientation function `φ`.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::adjacent;

/// Errors from snake construction.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SnakeError {
    /// Cycles must have at least 4 vertices.
    TooShort {
        /// Supplied length.
        len: usize,
    },
    /// A vertex exceeded `2^d`.
    VertexOutOfRange {
        /// The offending vertex.
        vertex: u32,
    },
    /// A vertex appeared twice.
    Repeated {
        /// The repeated vertex.
        vertex: u32,
    },
    /// Two cyclically consecutive vertices are not cube-adjacent.
    NotACycle {
        /// Position of the first vertex of the bad pair.
        at: usize,
    },
    /// Two non-consecutive vertices are cube-adjacent (cycle not induced).
    NotInduced {
        /// Positions of the chord's endpoints.
        chord: (usize, usize),
    },
    /// No edge of the cube avoids the snake (needed by the Theorem 4.1
    /// normalization); happens only for the full 4-cycle in `Q₂`.
    NoFreeEdge,
}

impl fmt::Display for SnakeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnakeError::TooShort { len } => write!(f, "cycle of length {len} is too short"),
            SnakeError::VertexOutOfRange { vertex } => {
                write!(f, "vertex {vertex} outside the cube")
            }
            SnakeError::Repeated { vertex } => write!(f, "vertex {vertex} repeated"),
            SnakeError::NotACycle { at } => {
                write!(f, "vertices at positions {at} and next are not adjacent")
            }
            SnakeError::NotInduced { chord } => {
                write!(f, "chord between positions {} and {}", chord.0, chord.1)
            }
            SnakeError::NoFreeEdge => write!(f, "no cube edge avoids the snake"),
        }
    }
}

impl Error for SnakeError {}

/// A validated snake-in-the-box: an induced cycle of `Q_d`, stored with a
/// fixed orientation (the cyclic successor order of its vertex list).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snake {
    d: u32,
    vertices: Vec<u32>,
    index: HashMap<u32, usize>,
}

impl Snake {
    /// Validates `vertices` as an induced cycle in `Q_d`.
    ///
    /// # Errors
    ///
    /// Returns the specific [`SnakeError`] describing the violation.
    pub fn new(d: u32, vertices: Vec<u32>) -> Result<Self, SnakeError> {
        if vertices.len() < 4 {
            return Err(SnakeError::TooShort {
                len: vertices.len(),
            });
        }
        let mut index = HashMap::with_capacity(vertices.len());
        for (i, &v) in vertices.iter().enumerate() {
            if d < 32 && v >= 1u32 << d {
                return Err(SnakeError::VertexOutOfRange { vertex: v });
            }
            if index.insert(v, i).is_some() {
                return Err(SnakeError::Repeated { vertex: v });
            }
        }
        let m = vertices.len();
        for i in 0..m {
            if !adjacent(vertices[i], vertices[(i + 1) % m]) {
                return Err(SnakeError::NotACycle { at: i });
            }
        }
        for i in 0..m {
            for j in i + 2..m {
                if i == 0 && j == m - 1 {
                    continue; // the closing edge
                }
                if adjacent(vertices[i], vertices[j]) {
                    return Err(SnakeError::NotInduced { chord: (i, j) });
                }
            }
        }
        Ok(Snake { d, vertices, index })
    }

    /// A verified maximum snake for `2 ≤ d ≤ 6` (lengths 4, 6, 8, 14, 26 —
    /// the known values of `s(d)`); `None` otherwise.
    pub fn known(d: u32) -> Option<Snake> {
        let vertices: Vec<u32> = match d {
            2 => vec![0b00, 0b01, 0b11, 0b10],
            3 => vec![0, 1, 3, 7, 6, 4],
            4 => vec![0, 1, 3, 7, 15, 14, 12, 8],
            // Found by the exhaustive search in `crate::search` and frozen
            // here; `Snake::new` re-verifies them at every construction.
            5 => vec![0, 1, 3, 7, 6, 14, 12, 13, 29, 31, 27, 26, 24, 16],
            6 => vec![
                0, 1, 3, 7, 6, 14, 12, 13, 29, 25, 24, 26, 18, 50, 51, 49, 53, 52, 60, 62, 63, 47,
                43, 42, 40, 32,
            ],
            _ => return None,
        };
        Some(Snake::new(d, vertices).expect("built-in snakes are valid"))
    }

    /// The cube dimension `d`.
    pub fn dimension(&self) -> u32 {
        self.d
    }

    /// Cycle length `|S|`.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// Snakes are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The vertices in cyclic order.
    pub fn vertices(&self) -> &[u32] {
        &self.vertices
    }

    /// Position of `v` on the cycle, if it is a snake vertex.
    pub fn position(&self, v: u32) -> Option<usize> {
        self.index.get(&v).copied()
    }

    /// Whether `v` lies on the snake.
    pub fn contains(&self, v: u32) -> bool {
        self.index.contains_key(&v)
    }

    /// The cyclic successor of a snake vertex.
    pub fn successor(&self, v: u32) -> Option<u32> {
        let i = self.position(v)?;
        Some(self.vertices[(i + 1) % self.vertices.len()])
    }

    /// XOR-translates the snake by `mask` (a cube automorphism), yielding
    /// another valid snake.
    #[must_use]
    pub fn translate(&self, mask: u32) -> Snake {
        let vertices = self.vertices.iter().map(|&v| v ^ mask).collect();
        Snake::new(self.d, vertices).expect("translation preserves snakes")
    }

    /// Applies a coordinate permutation of the cube (bit `k` of each
    /// vertex moves to bit `perm[k]`) — the other generator family of
    /// `Aut(Q_d) = translations ⋊ bit-permutations`, and the same
    /// generators `stateless-core`'s symmetry derivation probes on
    /// hypercube-topology protocols. Yields another valid snake:
    /// adjacency (single-bit difference) and non-adjacency are preserved
    /// by any bijection of the coordinates.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..d`.
    #[must_use]
    pub fn permute_bits(&self, perm: &[u32]) -> Snake {
        assert_eq!(perm.len(), self.d as usize, "perm must cover 0..d");
        let mut seen = vec![false; self.d as usize];
        for &p in perm {
            assert!(
                (p < self.d) && !std::mem::replace(&mut seen[p as usize], true),
                "perm must be a permutation of 0..d"
            );
        }
        let vertices = self
            .vertices
            .iter()
            .map(|&v| {
                perm.iter()
                    .enumerate()
                    .filter(|&(k, _)| v & (1 << k) != 0)
                    .fold(0u32, |acc, (_, &p)| acc | 1 << p)
            })
            .collect();
        Snake::new(self.d, vertices).expect("bit permutation preserves snakes")
    }

    /// Finds a cube edge with both endpoints off the snake.
    ///
    /// The counting argument of Theorem B.4 guarantees one for `d ≥ 3`:
    /// the cube has `d·2^{d−1}` edges and at most `(d−1)·|S| ≤ (d−1)·2^{d−1}`
    /// touch the snake.
    ///
    /// # Errors
    ///
    /// Returns [`SnakeError::NoFreeEdge`] if every edge touches the snake
    /// (only the full 4-cycle in `Q₂`).
    pub fn free_edge(&self) -> Result<(u32, u32), SnakeError> {
        for u in 0..1u32 << self.d {
            if self.contains(u) {
                continue;
            }
            for bit in 0..self.d {
                let v = u ^ (1 << bit);
                if v > u && !self.contains(v) {
                    return Ok((u, v));
                }
            }
        }
        Err(SnakeError::NoFreeEdge)
    }

    /// Normalizes the snake for the Theorem 4.1 reductions: translates it
    /// so that vertex `0` and one of its neighbors `v_j` are both off the
    /// snake (the paper's "w.l.o.g. `vᵢ = 0^{n−2}`"). Returns the
    /// translated snake and `v_j`.
    ///
    /// # Errors
    ///
    /// Returns [`SnakeError::NoFreeEdge`] when no free edge exists.
    pub fn normalized_for_reduction(&self) -> Result<(Snake, u32), SnakeError> {
        let (u, v) = self.free_edge()?;
        let snake = self.translate(u);
        Ok((snake, u ^ v))
    }

    /// A snake in `Q_d` around which **vertex 0 is isolated**: neither 0
    /// nor any neighbor of 0 lies on the snake. Built by embedding the
    /// record snake of `Q_{d−1}` into the bottom half of `Q_d` and
    /// translating so that 0 lands on an off-snake vertex of the top half.
    ///
    /// This is the form the Theorem 4.1 reductions need: maximum snakes
    /// *dominate* the cube, so after the paper's collapse to `0^{d}` the
    /// orientation `φ` could step straight back onto the snake and
    /// manufacture spurious oscillations; with an isolated 0, `φ` fixes
    /// `0^d` and the collapse is absorbing (recorded as a reproduction
    /// note in DESIGN.md / E5). Length is `s(d−1) ≥ λ·2^{d−1}` — still
    /// exponential.
    ///
    /// Returns `None` if `d−1` has no built-in snake (`d ∉ 3..=7`).
    pub fn embedded_isolated(d: u32) -> Option<Snake> {
        let inner = Snake::known(d - 1)?;
        // An off-snake vertex of Q_{d−1}: snakes cover at most half the
        // cube, so one exists.
        let w = (0..1u32 << (d - 1))
            .find(|&v| !inner.contains(v))
            .expect("snakes never cover the whole cube");
        let u = w | 1 << (d - 1); // top-half vertex above w
        let vertices = inner.vertices().iter().map(|&v| v ^ u).collect();
        let snake = Snake::new(d, vertices).expect("embedding preserves snakes");
        debug_assert!(!snake.contains(0));
        debug_assert!((0..d).all(|k| !snake.contains(1 << k)));
        Some(snake)
    }

    /// The orientation function `φ_j` of Theorem B.4: given every state
    /// coordinate **except** dimension `j` (packed in `rest`, whose bit `j`
    /// is ignored), the bit that node `j` should output so that
    ///
    /// * on the snake, the global state walks the oriented cycle (the node
    ///   owning the flipped dimension flips; all others keep their bit);
    /// * a snake vertex is never pulled off the cycle by a node whose
    ///   dimension is not the one being flipped;
    /// * off-snake pairs drift deterministically (toward the 0-side).
    ///
    /// Consistency with both candidate states `rest∣_{j=0}` and
    /// `rest∣_{j=1}` is exactly the induced-cycle property, which
    /// [`Snake::new`] validated.
    pub fn phi(&self, j: u32, rest: u32) -> bool {
        let v0 = rest & !(1u32 << j);
        let v1 = v0 | (1u32 << j);
        match (self.position(v0), self.position(v1)) {
            (Some(_), Some(_)) => {
                // Adjacent snake vertices are cyclically consecutive.
                self.successor(v0) == Some(v1)
            }
            (Some(_), None) => false, // keep the snake vertex's bit (0)
            (None, Some(_)) => true,  // keep the snake vertex's bit (1)
            (None, None) => false,    // free pair: drift toward the 0-side
        }
    }

    /// Applies `φ` at every dimension simultaneously: the synchronous
    /// next state of the bottom-layer dynamics when the top nodes agree.
    pub fn phi_step(&self, state: u32) -> u32 {
        let mut next = 0u32;
        for j in 0..self.d {
            if self.phi(j, state) {
                next |= 1 << j;
            }
        }
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_permutations_preserve_snakes() {
        // Every coordinate permutation of the cube maps snakes to snakes
        // (Snake::new revalidates inside permute_bits); the identity is a
        // fixed point, a rotation composed d times is the identity, and
        // composing with translate commutes up to a translated mask —
        // the semidirect-product law of Aut(Q_d).
        for d in [3u32, 4, 5] {
            let s = Snake::known(d).unwrap();
            let id: Vec<u32> = (0..d).collect();
            assert_eq!(s.permute_bits(&id).vertices(), s.vertices());
            let rot: Vec<u32> = (0..d).map(|k| (k + 1) % d).collect();
            let mut walked = s.clone();
            for _ in 0..d {
                walked = walked.permute_bits(&rot);
                assert_eq!(walked.len(), s.len());
            }
            assert_eq!(walked.vertices(), s.vertices(), "rot^d = id");
            // π(s ^ m) = π(s) ^ π(m): translation conjugates to the
            // permuted mask.
            let mask = 0b101u32 & ((1 << d) - 1);
            let pmask = rot
                .iter()
                .enumerate()
                .filter(|&(k, _)| mask & (1 << k) != 0)
                .fold(0u32, |acc, (_, &p)| acc | 1 << p);
            assert_eq!(
                s.translate(mask).permute_bits(&rot).vertices(),
                s.permute_bits(&rot).translate(pmask).vertices()
            );
        }
    }

    #[test]
    #[should_panic(expected = "perm must be a permutation")]
    fn permute_bits_rejects_non_permutations() {
        let _ = Snake::known(3).unwrap().permute_bits(&[0, 0, 1]);
    }

    #[test]
    fn known_snakes_have_record_lengths() {
        for (d, len) in [(2u32, 4usize), (3, 6), (4, 8), (5, 14), (6, 26)] {
            let s = Snake::known(d).expect("snake exists");
            assert_eq!(s.len(), len, "s({d})");
            assert_eq!(s.dimension(), d);
        }
        assert!(Snake::known(9).is_none());
    }

    #[test]
    fn validation_rejects_chords_and_gaps() {
        // 6-cycle with a chord in Q3: 0-1-3-2-6-4 has chord 0–2 and 0–4…
        let err = Snake::new(3, vec![0, 1, 3, 2, 6, 4]).unwrap_err();
        assert!(matches!(err, SnakeError::NotInduced { .. }));
        let err = Snake::new(3, vec![0, 1, 3, 7]).unwrap_err();
        assert!(matches!(err, SnakeError::NotACycle { .. }));
        let err = Snake::new(3, vec![0, 1, 3]).unwrap_err();
        assert_eq!(err, SnakeError::TooShort { len: 3 });
        let err = Snake::new(2, vec![0, 1, 3, 9]).unwrap_err();
        assert_eq!(err, SnakeError::VertexOutOfRange { vertex: 9 });
    }

    #[test]
    fn successor_walks_the_cycle() {
        let s = Snake::known(3).unwrap();
        let mut v = 0;
        for _ in 0..s.len() {
            v = s.successor(v).unwrap();
        }
        assert_eq!(v, 0, "one full lap");
        assert_eq!(s.successor(2), None, "2 is off this snake");
    }

    #[test]
    fn translation_preserves_validity() {
        let s = Snake::known(4).unwrap();
        let t = s.translate(0b1010);
        assert_eq!(t.len(), s.len());
        assert!(t.contains(0b1010));
    }

    #[test]
    fn q3_max_snake_has_no_free_edge_but_q4_up_do() {
        // The two vertices Q₃'s record snake misses are antipodal, so the
        // counting argument of Theorem B.4 only bites from d = 4 on.
        assert_eq!(
            Snake::known(3).unwrap().free_edge(),
            Err(SnakeError::NoFreeEdge)
        );
    }

    #[test]
    fn normalization_puts_zero_off_snake() {
        for d in 4..=6 {
            let s = Snake::known(d).unwrap();
            let (t, vj) = s.normalized_for_reduction().unwrap();
            assert!(!t.contains(0), "d={d}");
            assert!(!t.contains(vj), "d={d}");
            assert!(adjacent(0, vj));
        }
    }

    #[test]
    fn q2_snake_has_no_free_edge() {
        let s = Snake::known(2).unwrap();
        assert_eq!(s.free_edge(), Err(SnakeError::NoFreeEdge));
    }

    #[test]
    fn phi_step_walks_snake_states_along_the_cycle() {
        for d in [3u32, 4, 5, 6] {
            let s = Snake::known(d).unwrap();
            for (i, &v) in s.vertices().iter().enumerate() {
                let next = s.vertices()[(i + 1) % s.len()];
                assert_eq!(s.phi_step(v), next, "d={d} at position {i}");
            }
        }
    }

    #[test]
    fn embedded_isolated_snakes_isolate_zero() {
        for d in [4u32, 5, 6, 7] {
            let s = Snake::embedded_isolated(d).expect("exists for d in 3..=7");
            assert_eq!(s.dimension(), d);
            assert!(!s.contains(0));
            for k in 0..d {
                assert!(!s.contains(1 << k), "d={d}: e_{k} off the snake");
            }
            // With an isolated 0, phi fixes the all-zero state.
            assert_eq!(s.phi_step(0), 0, "d={d}");
            // Still exponential length: s(d−1) ≥ λ·2^{d−1}, λ = 0.3.
            assert!(
                s.len() as f64 >= 0.3 * f64::from(1u32 << (d - 1)),
                "d={d}: len {}",
                s.len()
            );
        }
        assert!(Snake::embedded_isolated(9).is_none());
    }

    #[test]
    fn phi_keeps_non_flipping_dimensions() {
        let s = Snake::known(4).unwrap();
        let v = s.vertices()[2];
        let next = s.vertices()[3];
        let flip = (v ^ next).trailing_zeros();
        for j in 0..4u32 {
            let bit = s.phi(j, v);
            if j == flip {
                assert_eq!(bit, next >> j & 1 == 1);
            } else {
                assert_eq!(bit, v >> j & 1 == 1, "dimension {j} must hold its bit");
            }
        }
    }
}
