//! # hypercube-snake
//!
//! Snake-in-the-box constructions for the communication-complexity
//! reductions of Theorem 4.1: induced cycles in the hypercube `Q_d`,
//! exhaustive search for small `d`, verified known snakes for larger `d`,
//! and the *orientation function* `φ` that turns a snake into reaction
//! functions for the clique protocols of Appendix B.
//!
//! A **snake-in-the-box** here is an *induced simple cycle* of `Q_d`
//! (Definition B.2): consecutive vertices differ in one coordinate and no
//! two non-consecutive vertices are adjacent in the cube. Abbott and
//! Katchalski proved `s(d) ≥ λ·2^d` with `λ ≥ 0.3` (Theorem B.3), which is
//! the exponential growth the hardness proof rides on.
//!
//! ```
//! use hypercube_snake::Snake;
//!
//! let snake = Snake::known(4).expect("Q4 snake is built in");
//! assert_eq!(snake.len(), 8); // s(4) = 8
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod search;
pub mod snake;

pub use search::longest_snake;
pub use snake::{Snake, SnakeError};

/// The Abbott–Katchalski lower bound `λ·2^d` on the maximum snake length,
/// with `λ = 0.3` (Theorem B.3; valid for `d ≥ 8`, reported for all `d`
/// as the reference curve of experiment E5).
pub fn abbott_katchalski_bound(d: u32) -> f64 {
    0.3 * f64::from(2u32.pow(d.min(31)))
}

/// Number of vertices of `Q_d`.
pub fn vertex_count(d: u32) -> usize {
    1usize << d
}

/// Whether `u` and `v` are adjacent in `Q_d` (differ in exactly one bit).
pub fn adjacent(u: u32, v: u32) -> bool {
    (u ^ v).count_ones() == 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adjacency_is_single_bit_difference() {
        assert!(adjacent(0b000, 0b001));
        assert!(adjacent(0b101, 0b100));
        assert!(!adjacent(0b000, 0b011));
        assert!(!adjacent(0b101, 0b101));
    }

    #[test]
    fn bound_grows_exponentially() {
        assert!((abbott_katchalski_bound(8) - 76.8).abs() < 1e-9);
        assert!(abbott_katchalski_bound(10) > 300.0);
    }
}
