//! Execution traces: compact records of a run for debugging experiments.

use std::fmt;

use crate::engine::Simulation;
use crate::label::Label;
use crate::schedule::Schedule;
use crate::{NodeId, Output};

/// One recorded step of a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceStep {
    /// Time step (1-based).
    pub time: u64,
    /// Activated nodes.
    pub active: Vec<NodeId>,
    /// Outputs after the step.
    pub outputs: Vec<Output>,
    /// Whether the labeling changed during the step.
    pub labeling_changed: bool,
}

/// A bounded trace of a simulation run.
///
/// # Examples
///
/// ```
/// use stateless_core::prelude::*;
/// use stateless_core::trace::Trace;
///
/// let graph = topology::unidirectional_ring(3);
/// let p = Protocol::builder(graph, 8.0)
///     .uniform_reaction(FnReaction::new(|_, inc: &[u64], x| {
///         let m = inc[0].max(x);
///         (vec![m], m)
///     }))
///     .build()?;
/// let mut sim = Simulation::new(&p, &[5, 1, 2], vec![0; 3])?;
/// let trace = Trace::record(&mut sim, &mut Synchronous, 6);
/// assert_eq!(trace.len(), 6);
/// assert!(trace.quiescent_suffix() >= 1, "max protocol settles");
/// # Ok::<(), stateless_core::CoreError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Trace {
    steps: Vec<TraceStep>,
}

impl Trace {
    /// Runs `sim` for `steps` steps under `schedule`, recording each step.
    pub fn record<L: Label>(
        sim: &mut Simulation<'_, L>,
        schedule: &mut dyn Schedule,
        steps: u64,
    ) -> Self {
        let mut trace = Trace {
            steps: Vec::with_capacity(steps as usize),
        };
        // Activation sets are drawn through the buffered schedule path;
        // the only per-step allocations left are the recorded copies.
        let mut active: Vec<NodeId> = Vec::new();
        for _ in 0..steps {
            let before = sim.labeling().to_vec();
            schedule.activations_into(sim.time() + 1, sim.protocol().node_count(), &mut active);
            sim.step_with(&active);
            trace.steps.push(TraceStep {
                time: sim.time(),
                active: active.clone(),
                outputs: sim.outputs().to_vec(),
                labeling_changed: before != sim.labeling(),
            });
        }
        trace
    }

    /// The recorded steps in order.
    pub fn steps(&self) -> &[TraceStep] {
        &self.steps
    }

    /// Number of recorded steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Length of the trailing run of steps in which the labeling did not
    /// change — a quick convergence heuristic.
    pub fn quiescent_suffix(&self) -> usize {
        self.steps
            .iter()
            .rev()
            .take_while(|s| !s.labeling_changed)
            .count()
    }

    /// The per-step output vectors of one node.
    pub fn output_series(&self, node: NodeId) -> Vec<Output> {
        self.steps.iter().map(|s| s.outputs[node]).collect()
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for s in &self.steps {
            writeln!(
                f,
                "t={:<4} active={:?} outputs={:?}{}",
                s.time,
                s.active,
                s.outputs,
                if s.labeling_changed {
                    ""
                } else {
                    "  (labels unchanged)"
                }
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Protocol;
    use crate::reaction::FnReaction;
    use crate::schedule::Synchronous;
    use crate::topology;

    fn max_ring(n: usize) -> Protocol<u64> {
        Protocol::builder(topology::unidirectional_ring(n), 8.0)
            .uniform_reaction(FnReaction::new(|_, inc: &[u64], x| {
                let m = inc[0].max(x);
                (vec![m], m)
            }))
            .build()
            .unwrap()
    }

    #[test]
    fn trace_records_quiescence() {
        let p = max_ring(4);
        let mut sim = Simulation::new(&p, &[7, 0, 0, 0], vec![0; 4]).unwrap();
        let trace = Trace::record(&mut sim, &mut Synchronous, 10);
        assert_eq!(trace.len(), 10);
        assert!(trace.quiescent_suffix() >= 5);
        assert_eq!(*trace.output_series(2).last().unwrap(), 7);
    }

    #[test]
    fn trace_display_mentions_every_step() {
        let p = max_ring(3);
        let mut sim = Simulation::new(&p, &[1, 2, 3], vec![0; 3]).unwrap();
        let trace = Trace::record(&mut sim, &mut Synchronous, 3);
        let text = trace.to_string();
        assert_eq!(text.lines().count(), 3);
        assert!(text.contains("t=1"));
    }

    #[test]
    fn empty_trace() {
        let t = Trace::default();
        assert!(t.is_empty());
        assert_eq!(t.quiescent_suffix(), 0);
    }
}
