//! Error types shared across the crate.

use std::error::Error;
use std::fmt;

use crate::{EdgeId, NodeId};

/// Errors produced while constructing or running stateless protocols.
///
/// # Examples
///
/// ```
/// use stateless_core::CoreError;
///
/// let err = CoreError::NodeOutOfRange { node: 7, node_count: 3 };
/// assert!(err.to_string().contains("node 7"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// A node id was not in `0..node_count`.
    NodeOutOfRange {
        /// The offending node id.
        node: NodeId,
        /// The number of nodes of the graph.
        node_count: usize,
    },
    /// An edge between the given endpoints was inserted twice
    /// (graphs are simple: at most one edge per ordered pair).
    DuplicateEdge {
        /// Source node.
        from: NodeId,
        /// Destination node.
        to: NodeId,
    },
    /// A self-loop was requested; the model has no self-edges
    /// (a node never reads its own outgoing labels — that is what makes
    /// the computation *stateless*).
    SelfLoop {
        /// The node on which the self-loop was requested.
        node: NodeId,
    },
    /// The protocol requires a strongly connected graph but the given one
    /// is not.
    NotStronglyConnected,
    /// A reaction was not supplied for some node before `build()`.
    MissingReaction {
        /// The node lacking a reaction function.
        node: NodeId,
    },
    /// A reaction returned the wrong number of outgoing labels.
    WrongOutgoingArity {
        /// The node whose reaction misbehaved.
        node: NodeId,
        /// Number of labels the reaction returned.
        got: usize,
        /// The node's out-degree.
        expected: usize,
    },
    /// An initial labeling had the wrong length.
    WrongLabelingLength {
        /// Length supplied.
        got: usize,
        /// Edge count of the graph.
        expected: usize,
    },
    /// An input vector had the wrong length.
    WrongInputLength {
        /// Length supplied.
        got: usize,
        /// Node count of the graph.
        expected: usize,
    },
    /// A bounded-horizon run did not converge within the step budget.
    NotConverged {
        /// The number of steps executed before giving up.
        steps: u64,
    },
    /// A parameter was outside its documented domain
    /// (e.g. an even ring size where an odd one is required).
    InvalidParameter {
        /// Human-readable description of the violated requirement.
        what: String,
    },
    /// An edge id was not in `0..edge_count`.
    EdgeOutOfRange {
        /// The offending edge id.
        edge: EdgeId,
        /// The number of edges of the graph.
        edge_count: usize,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::NodeOutOfRange { node, node_count } => {
                write!(
                    f,
                    "node {node} out of range for graph with {node_count} nodes"
                )
            }
            CoreError::DuplicateEdge { from, to } => {
                write!(f, "duplicate edge ({from}, {to}); graphs are simple")
            }
            CoreError::SelfLoop { node } => {
                write!(
                    f,
                    "self-loop on node {node}; stateless nodes have no self-edges"
                )
            }
            CoreError::NotStronglyConnected => {
                write!(f, "graph is not strongly connected")
            }
            CoreError::MissingReaction { node } => {
                write!(f, "no reaction function supplied for node {node}")
            }
            CoreError::WrongOutgoingArity {
                node,
                got,
                expected,
            } => write!(
                f,
                "reaction of node {node} returned {got} outgoing labels, expected {expected}"
            ),
            CoreError::WrongLabelingLength { got, expected } => {
                write!(f, "labeling has length {got}, graph has {expected} edges")
            }
            CoreError::WrongInputLength { got, expected } => {
                write!(
                    f,
                    "input vector has length {got}, graph has {expected} nodes"
                )
            }
            CoreError::NotConverged { steps } => {
                write!(f, "run did not converge within {steps} steps")
            }
            CoreError::InvalidParameter { what } => {
                write!(f, "invalid parameter: {what}")
            }
            CoreError::EdgeOutOfRange { edge, edge_count } => {
                write!(
                    f,
                    "edge {edge} out of range for graph with {edge_count} edges"
                )
            }
        }
    }
}

impl Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let cases = [
            CoreError::NodeOutOfRange {
                node: 1,
                node_count: 1,
            },
            CoreError::DuplicateEdge { from: 0, to: 1 },
            CoreError::SelfLoop { node: 2 },
            CoreError::NotStronglyConnected,
            CoreError::MissingReaction { node: 0 },
            CoreError::WrongOutgoingArity {
                node: 0,
                got: 1,
                expected: 2,
            },
            CoreError::WrongLabelingLength {
                got: 1,
                expected: 2,
            },
            CoreError::WrongInputLength {
                got: 1,
                expected: 2,
            },
            CoreError::NotConverged { steps: 10 },
            CoreError::InvalidParameter {
                what: "n must be odd".into(),
            },
            CoreError::EdgeOutOfRange {
                edge: 9,
                edge_count: 2,
            },
        ];
        for c in cases {
            let s = c.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
