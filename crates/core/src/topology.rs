//! Standard topologies studied in the paper, with documented edge orderings.
//!
//! The paper's constructions depend on knowing *which* incoming label comes
//! from which neighbor. Every constructor here documents the incoming and
//! outgoing edge order it guarantees, and the protocol crates rely on those
//! orders (they are additionally asserted via
//! [`DiGraph::in_neighbor_index`](crate::graph::DiGraph::in_neighbor_index)
//! at protocol-construction time).

use rand::prelude::IndexedRandom;
use rand::{Rng, RngExt};

use crate::graph::DiGraph;
use crate::NodeId;

/// The unidirectional ring `0 → 1 → … → n−1 → 0`.
///
/// Edge `i` is `(i, (i+1) mod n)`. Every node has exactly one incoming and
/// one outgoing edge, so reactions see `incoming[0]` = label from the
/// predecessor and emit `outgoing[0]` = label to the successor.
///
/// # Panics
///
/// Panics if `n < 2` (a ring needs at least two nodes).
pub fn unidirectional_ring(n: usize) -> DiGraph {
    assert!(n >= 2, "a unidirectional ring needs at least 2 nodes");
    let mut g = DiGraph::new(n);
    for i in 0..n {
        g.add_edge(i, (i + 1) % n).expect("ring edges are valid");
    }
    g
}

/// The bidirectional ring on `n` nodes: node `i` is linked with
/// `(i±1) mod n` in both directions.
///
/// Orderings guaranteed for every node `i`:
/// * `incoming[0]` is the label from the counter-clockwise neighbor
///   `(i−1) mod n`, `incoming[1]` from the clockwise neighbor `(i+1) mod n`;
/// * `outgoing[0]` goes clockwise to `(i+1) mod n`, `outgoing[1]` goes
///   counter-clockwise to `(i−1) mod n`.
///
/// # Panics
///
/// Panics if `n < 3` (antiparallel pairs need three distinct nodes to form
/// a simple ring).
pub fn bidirectional_ring(n: usize) -> DiGraph {
    assert!(n >= 3, "a bidirectional ring needs at least 3 nodes");
    let mut g = DiGraph::new(n);
    // First all clockwise edges (i, i+1), then all counter-clockwise ones.
    // For node i: in-edges arrive in order [from i-1 (cw edge), from i+1
    // (ccw edge)] because cw edges are inserted first; out-edges in order
    // [to i+1 (cw), to i-1 (ccw)] for the same reason.
    for i in 0..n {
        g.add_edge(i, (i + 1) % n).expect("cw ring edges are valid");
    }
    for i in 0..n {
        g.add_edge(i, (i + n - 1) % n)
            .expect("ccw ring edges are valid");
    }
    g
}

/// The clique `Kₙ`: every ordered pair is an edge.
///
/// For node `i`, both incoming and outgoing edges are ordered by the other
/// endpoint ascending (i.e. neighbors `0,…,i−1,i+1,…,n−1`).
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn clique(n: usize) -> DiGraph {
    assert!(n >= 2, "a clique needs at least 2 nodes");
    let mut g = DiGraph::new(n);
    for i in 0..n {
        for j in 0..n {
            if i != j {
                g.add_edge(i, j).expect("clique edges are valid");
            }
        }
    }
    g
}

/// The star on `n` nodes with bidirectional spokes: node `0` is the hub.
///
/// The hub's incoming/outgoing edges are ordered by leaf id ascending.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn star(n: usize) -> DiGraph {
    assert!(n >= 2, "a star needs at least 2 nodes");
    let mut g = DiGraph::new(n);
    for leaf in 1..n {
        g.add_edge(0, leaf).expect("spoke is valid");
        g.add_edge(leaf, 0).expect("spoke is valid");
    }
    g
}

/// A bidirectional path `0 — 1 — … — n−1`: each consecutive pair is linked
/// by antiparallel edges, so the graph is strongly connected.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn bidirectional_path(n: usize) -> DiGraph {
    assert!(n >= 2, "a path needs at least 2 nodes");
    let mut g = DiGraph::new(n);
    for i in 0..n - 1 {
        g.add_edge(i, i + 1).expect("path edge is valid");
        g.add_edge(i + 1, i).expect("path edge is valid");
    }
    g
}

/// The hypercube `Q_d` with bidirectional links: nodes are `0..2^d`,
/// adjacent iff their ids differ in exactly one bit.
///
/// # Panics
///
/// Panics if `d == 0` or `d > 20`.
pub fn hypercube(d: u32) -> DiGraph {
    assert!(
        (1..=20).contains(&d),
        "hypercube dimension must be in 1..=20"
    );
    let n = 1usize << d;
    let mut g = DiGraph::new(n);
    for v in 0..n {
        for bit in 0..d {
            let u = v ^ (1 << bit);
            g.add_edge(v, u).expect("hypercube edge is valid");
        }
    }
    g
}

/// The `w × h` torus with bidirectional links (4-neighbor wrap-around grid).
///
/// Node `(r, c)` has id `r*w + c`.
///
/// # Panics
///
/// Panics if `w < 3` or `h < 3` (smaller wrap-arounds create parallel
/// edges, which simple graphs forbid).
pub fn torus(w: usize, h: usize) -> DiGraph {
    assert!(w >= 3 && h >= 3, "torus dimensions must be at least 3×3");
    let mut g = DiGraph::new(w * h);
    let id = |r: usize, c: usize| r * w + c;
    for r in 0..h {
        for c in 0..w {
            let here = id(r, c);
            for (nr, nc) in [
                (r, (c + 1) % w),
                (r, (c + w - 1) % w),
                ((r + 1) % h, c),
                ((r + h - 1) % h, c),
            ] {
                let there = id(nr, nc);
                if !g.has_edge(here, there) {
                    g.add_edge(here, there).expect("torus edge is valid");
                }
            }
        }
    }
    g
}

/// A random strongly connected digraph: a random Hamiltonian cycle plus
/// `extra_edges` additional random non-duplicate edges.
///
/// Deterministic given the RNG state — experiments seed it explicitly.
///
/// # Panics
///
/// Panics if `n < 2` or if `extra_edges` exceeds `n·(n−1) − n` (the number
/// of edges not on the cycle).
pub fn random_strongly_connected<R: Rng>(n: usize, extra_edges: usize, rng: &mut R) -> DiGraph {
    assert!(n >= 2, "need at least 2 nodes");
    assert!(
        extra_edges <= n * (n - 1) - n,
        "extra_edges exceeds available non-cycle edges"
    );
    let mut perm: Vec<NodeId> = (0..n).collect();
    // Fisher-Yates shuffle.
    for i in (1..n).rev() {
        let j = rng.random_range(0..=i);
        perm.swap(i, j);
    }
    let mut g = DiGraph::new(n);
    for i in 0..n {
        g.add_edge(perm[i], perm[(i + 1) % n])
            .expect("cycle edge is valid");
    }
    let mut remaining: Vec<(NodeId, NodeId)> = (0..n)
        .flat_map(|u| (0..n).map(move |v| (u, v)))
        .filter(|&(u, v)| u != v && !g.has_edge(u, v))
        .collect();
    for _ in 0..extra_edges {
        let pick = *remaining.choose(rng).expect("enough edges remain");
        remaining.retain(|&e| e != pick);
        g.add_edge(pick.0, pick.1).expect("edge was free");
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn unidirectional_ring_shape() {
        let g = unidirectional_ring(5);
        assert_eq!(g.edge_count(), 5);
        assert!(g.is_strongly_connected());
        for i in 0..5 {
            assert_eq!(g.in_degree(i), 1);
            assert_eq!(g.out_degree(i), 1);
            assert_eq!(g.out_neighbors(i), vec![(i + 1) % 5]);
        }
        assert_eq!(g.radius(), Some(4));
    }

    #[test]
    fn bidirectional_ring_orderings() {
        let n = 7;
        let g = bidirectional_ring(n);
        assert_eq!(g.edge_count(), 2 * n);
        assert!(g.is_strongly_connected());
        for i in 0..n {
            let ccw = (i + n - 1) % n;
            let cw = (i + 1) % n;
            assert_eq!(
                g.in_neighbor_index(i, ccw),
                Some(0),
                "incoming[0] is from ccw"
            );
            assert_eq!(
                g.in_neighbor_index(i, cw),
                Some(1),
                "incoming[1] is from cw"
            );
            assert_eq!(g.out_neighbor_index(i, cw), Some(0), "outgoing[0] goes cw");
            assert_eq!(
                g.out_neighbor_index(i, ccw),
                Some(1),
                "outgoing[1] goes ccw"
            );
        }
        assert_eq!(g.radius(), Some(n / 2));
    }

    #[test]
    fn clique_neighbor_order_is_ascending() {
        let g = clique(4);
        assert_eq!(g.edge_count(), 12);
        assert_eq!(g.in_neighbors(2), vec![0, 1, 3]);
        assert_eq!(g.out_neighbors(2), vec![0, 1, 3]);
        assert_eq!(g.radius(), Some(1));
        assert_eq!(g.max_degree(), 6);
    }

    #[test]
    fn star_is_strongly_connected_radius_one() {
        let g = star(6);
        assert!(g.is_strongly_connected());
        assert_eq!(g.eccentricity(0), Some(1));
        assert_eq!(g.radius(), Some(1));
        assert_eq!(g.diameter(), Some(2));
    }

    #[test]
    fn hypercube_degrees() {
        let g = hypercube(3);
        assert_eq!(g.node_count(), 8);
        assert_eq!(g.edge_count(), 8 * 3);
        assert!(g.is_strongly_connected());
        for v in 0..8 {
            assert_eq!(g.out_degree(v), 3);
        }
        assert_eq!(g.diameter(), Some(3));
    }

    #[test]
    fn torus_shape() {
        let g = torus(3, 4);
        assert_eq!(g.node_count(), 12);
        assert!(g.is_strongly_connected());
        for v in 0..12 {
            assert_eq!(g.out_degree(v), 4);
        }
    }

    #[test]
    fn bidirectional_path_connected() {
        let g = bidirectional_path(4);
        assert!(g.is_strongly_connected());
        assert_eq!(g.diameter(), Some(3));
    }

    #[test]
    fn random_graph_is_strongly_connected_and_deterministic() {
        let mut rng = StdRng::seed_from_u64(7);
        let g1 = random_strongly_connected(8, 10, &mut rng);
        assert!(g1.is_strongly_connected());
        assert_eq!(g1.edge_count(), 18);
        let mut rng = StdRng::seed_from_u64(7);
        let g2 = random_strongly_connected(8, 10, &mut rng);
        let e1: Vec<_> = g1.edges().collect();
        let e2: Vec<_> = g2.edges().collect();
        assert_eq!(e1, e2, "same seed gives same graph");
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn bidirectional_ring_rejects_n2() {
        bidirectional_ring(2);
    }
}
