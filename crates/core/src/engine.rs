//! The simulation engine: executes `(ℓᵗ, yᵗ) = δ(ℓᵗ⁻¹, x, σ(t))`.

use crate::error::CoreError;
use crate::label::Label;
use crate::protocol::Protocol;
use crate::schedule::Schedule;
use crate::{Input, NodeId, Output};

/// A running instance of a stateless protocol: the current labeling `ℓᵗ`,
/// the last outputs `yᵗ`, and the fixed inputs `x`.
///
/// The engine is faithful to the paper's semantics: all nodes activated at
/// step `t` read the labeling from the *end of step `t−1`* and their writes
/// are committed simultaneously.
///
/// # Performance
///
/// The step loop is allocation-free after warm-up for cheap-to-clone
/// labels: incoming labels are gathered into a reusable scratch buffer
/// (degree-1 nodes borrow straight from the labeling), reactions write
/// through
/// [`Reaction::react_into`](crate::reaction::Reaction::react_into) into a
/// reusable CSR-ordered outgoing buffer, and the deferred scatter swaps
/// labels into place. The synchronous schedule additionally skips the
/// activation list and reuses the outgoing buffer *in place* across
/// rounds, so heap-carrying labels (e.g. `Vec`-backed ones) also recycle
/// their capacity ([`step_sync`](Simulation::step_sync));
/// [`run`](Simulation::run) dispatches to it automatically. Asynchronous
/// runs draw activation sets through the buffered
/// [`Schedule::activations_into`] into a reusable activation buffer
/// ([`step_scheduled`](Simulation::step_scheduled)), so they are
/// allocation-free after warm-up too for all built-in schedules;
/// heap-carrying labels still pay one clone per touched edge per step
/// (the prefill), `Copy`-style labels do not allocate anywhere.
///
/// # Examples
///
/// See the crate-level quickstart.
#[derive(Debug)]
pub struct Simulation<'p, L: Label> {
    protocol: &'p Protocol<L>,
    labeling: Vec<L>,
    outputs: Vec<Output>,
    inputs: Vec<Input>,
    time: u64,
    /// Per-node incoming-label gather buffer (reused across activations).
    in_buf: Vec<L>,
    /// Flat outgoing-label buffer for the whole step, CSR-ordered by
    /// activation: each activated node owns one contiguous span.
    out_buf: Vec<L>,
    /// `(node, start offset into out_buf)` for the deferred scatter.
    out_spans: Vec<(NodeId, usize)>,
    /// Scratch for the stability probe in the run-until loops.
    stable_buf: Vec<L>,
    /// Activation-set buffer for the run loops, filled by
    /// [`Schedule::activations_into`] and reused across steps.
    active_buf: Vec<NodeId>,
}

impl<'p, L: Label> Simulation<'p, L> {
    /// Starts a simulation with the given inputs and initial labeling `ℓ⁰`.
    /// Outputs start at `0` (they are meaningless until a node first
    /// reacts, exactly as in the model, where `yᵢ` is only defined after
    /// `i`'s first activation).
    ///
    /// # Errors
    ///
    /// Returns an error if the labeling or input lengths do not match the
    /// protocol's graph.
    pub fn new(
        protocol: &'p Protocol<L>,
        inputs: &[Input],
        initial_labeling: Vec<L>,
    ) -> Result<Self, CoreError> {
        protocol.check_lengths(&initial_labeling, inputs)?;
        Ok(Simulation {
            protocol,
            labeling: initial_labeling,
            outputs: vec![0; protocol.node_count()],
            inputs: inputs.to_vec(),
            time: 0,
            in_buf: Vec::new(),
            out_buf: Vec::with_capacity(protocol.edge_count()),
            out_spans: Vec::new(),
            stable_buf: Vec::new(),
            active_buf: Vec::new(),
        })
    }

    /// The protocol being run.
    pub fn protocol(&self) -> &'p Protocol<L> {
        self.protocol
    }

    /// The current labeling `ℓᵗ`, indexed by edge id.
    pub fn labeling(&self) -> &[L] {
        &self.labeling
    }

    /// The most recent output of every node.
    pub fn outputs(&self) -> &[Output] {
        &self.outputs
    }

    /// The fixed input vector `x`.
    pub fn inputs(&self) -> &[Input] {
        &self.inputs
    }

    /// The number of steps executed so far.
    pub fn time(&self) -> u64 {
        self.time
    }

    /// Executes one step activating exactly the nodes in `active`
    /// (duplicates are allowed and ignored). All activated nodes observe the
    /// pre-step labeling; their writes are committed together.
    ///
    /// # Panics
    ///
    /// Panics if a reaction function returns the wrong number of outgoing
    /// labels or an activation names a nonexistent node — both are bugs in
    /// the caller's protocol, not runtime conditions.
    pub fn step_with(&mut self, active: &[NodeId]) {
        let graph = self.protocol.graph();
        self.out_buf.clear();
        self.out_spans.clear();
        for &node in active {
            assert!(
                node < self.protocol.node_count(),
                "activation of nonexistent node {node}"
            );
            // Gather the node's incoming labels; every read happens before
            // any write (the scatter below), so simultaneity holds. A
            // single incoming edge borrows straight from the labeling —
            // no copy.
            let in_edges = graph.in_edges(node);
            let incoming: &[L] = if let [e] = *in_edges {
                std::slice::from_ref(&self.labeling[e])
            } else {
                self.in_buf.clear();
                self.in_buf
                    .extend(in_edges.iter().map(|&e| self.labeling[e].clone()));
                &self.in_buf
            };
            // Prefill the node's outgoing span with its current labels
            // (react_into's buffer contract) and react in place.
            let start = self.out_buf.len();
            self.out_buf.extend(
                graph
                    .out_edges(node)
                    .iter()
                    .map(|&e| self.labeling[e].clone()),
            );
            self.outputs[node] = self.protocol.reaction(node).react_into(
                node,
                incoming,
                self.inputs[node],
                &mut self.out_buf[start..],
            );
            self.out_spans.push((node, start));
        }
        // Deferred scatter: commit all writes together. Duplicate
        // activations are harmless — reactions are deterministic, so both
        // spans hold identical labels.
        for &(node, start) in &self.out_spans {
            for (k, &e) in graph.out_edges(node).iter().enumerate() {
                std::mem::swap(&mut self.labeling[e], &mut self.out_buf[start + k]);
            }
        }
        self.time += 1;
    }

    /// Executes one *synchronous* step (every node activated): the fast
    /// path behind [`run`](Simulation::run) with
    /// [`Synchronous`](crate::schedule::Synchronous). Skips the activation
    /// list and the span bookkeeping of
    /// [`step_with`](Simulation::step_with); behaviorally identical to
    /// `step_with(&[0, 1, …, n−1])`.
    pub fn step_sync(&mut self) {
        let graph = self.protocol.graph();
        let n = self.protocol.node_count();
        // Reuse out_buf *in place* across synchronous steps: after a full
        // step it holds exactly edge_count() labels (the previous round's
        // swapped-out values — a legal "unspecified contents" prefill per
        // the react_into contract), so in-place reactions recycle their
        // heap capacity instead of the engine re-cloning every outgoing
        // label each round. Only the first step (or one following a
        // partial step_with) pays the prefill clone.
        let prefilled = self.out_buf.len() == self.protocol.edge_count();
        if !prefilled {
            self.out_buf.clear();
        }
        let mut start = 0;
        for node in 0..n {
            let in_edges = graph.in_edges(node);
            let incoming: &[L] = if let [e] = *in_edges {
                std::slice::from_ref(&self.labeling[e])
            } else {
                self.in_buf.clear();
                self.in_buf
                    .extend(in_edges.iter().map(|&e| self.labeling[e].clone()));
                &self.in_buf
            };
            let deg = graph.out_degree(node);
            if !prefilled {
                self.out_buf.extend(
                    graph
                        .out_edges(node)
                        .iter()
                        .map(|&e| self.labeling[e].clone()),
                );
            }
            self.outputs[node] = self.protocol.reaction(node).react_into(
                node,
                incoming,
                self.inputs[node],
                &mut self.out_buf[start..start + deg],
            );
            start += deg;
        }
        // Scatter: out_buf is CSR-ordered by node, so spans are implicit.
        let mut off = 0;
        for node in 0..n {
            for &e in graph.out_edges(node) {
                std::mem::swap(&mut self.labeling[e], &mut self.out_buf[off]);
                off += 1;
            }
        }
        self.time += 1;
    }

    /// Executes one step like [`step_with`](Simulation::step_with), but
    /// with the nodes marked faulty by `faults` acting adversarially
    /// instead of running their reactions:
    ///
    /// * an activated **Byzantine** node writes the labels recorded for it
    ///   in `choices` onto its outgoing edges (in `out_edges` order) and
    ///   leaves its output untouched;
    /// * an activated **crash** node commits no writes at all (its outgoing
    ///   labels keep their current values) and leaves its output untouched;
    /// * correct nodes react normally, reading the pre-step labeling.
    ///
    /// `choices` holds one `(node, outgoing labels)` entry per *activated
    /// Byzantine* node — exactly the per-step records inside a
    /// `NotStabilizing` witness from `stabilization-verify`, which makes
    /// the witness a concrete adversary strategy replayable here.
    ///
    /// # Panics
    ///
    /// Panics if an activated Byzantine node has no entry in `choices` or
    /// the entry has the wrong arity — the script does not match the
    /// activation set, a caller bug.
    pub fn step_with_adversary(
        &mut self,
        active: &[NodeId],
        faults: crate::fault::FaultModel,
        choices: &[(NodeId, Vec<L>)],
    ) {
        let graph = self.protocol.graph();
        self.out_buf.clear();
        self.out_spans.clear();
        for &node in active {
            assert!(
                node < self.protocol.node_count(),
                "activation of nonexistent node {node}"
            );
            if faults.is_crash(node) {
                continue;
            }
            let start = self.out_buf.len();
            if faults.is_byzantine(node) {
                let (_, labels) = choices
                    .iter()
                    .find(|&&(i, _)| i == node)
                    .unwrap_or_else(|| panic!("no adversary choice recorded for node {node}"));
                assert_eq!(
                    labels.len(),
                    graph.out_degree(node),
                    "adversary choice arity mismatch for node {node}"
                );
                self.out_buf.extend(labels.iter().cloned());
                self.out_spans.push((node, start));
                continue;
            }
            let in_edges = graph.in_edges(node);
            let incoming: &[L] = if let [e] = *in_edges {
                std::slice::from_ref(&self.labeling[e])
            } else {
                self.in_buf.clear();
                self.in_buf
                    .extend(in_edges.iter().map(|&e| self.labeling[e].clone()));
                &self.in_buf
            };
            self.out_buf.extend(
                graph
                    .out_edges(node)
                    .iter()
                    .map(|&e| self.labeling[e].clone()),
            );
            self.outputs[node] = self.protocol.reaction(node).react_into(
                node,
                incoming,
                self.inputs[node],
                &mut self.out_buf[start..],
            );
            self.out_spans.push((node, start));
        }
        for &(node, start) in &self.out_spans {
            for (k, &e) in graph.out_edges(node).iter().enumerate() {
                std::mem::swap(&mut self.labeling[e], &mut self.out_buf[start + k]);
            }
        }
        self.time += 1;
    }

    /// Reference implementation of [`step_with`](Simulation::step_with)
    /// through the allocating [`Protocol::apply`] path. Kept for
    /// differential testing and as the baseline in the `engine` bench; not
    /// used by any hot path.
    #[doc(hidden)]
    pub fn step_with_naive(&mut self, active: &[NodeId]) {
        let mut writes: Vec<(NodeId, Vec<L>, Output)> = Vec::with_capacity(active.len());
        for &node in active {
            assert!(
                node < self.protocol.node_count(),
                "activation of nonexistent node {node}"
            );
            let (outgoing, output) = self
                .protocol
                .apply(node, &self.labeling, self.inputs[node])
                .expect("reaction arity validated by Protocol::apply");
            writes.push((node, outgoing, output));
        }
        for (node, outgoing, output) in writes {
            for (slot, &e) in outgoing
                .into_iter()
                .zip(self.protocol.graph().out_edges(node))
            {
                self.labeling[e] = slot;
            }
            self.outputs[node] = output;
        }
        self.time += 1;
    }

    /// Executes one step with the activation set drawn from `schedule`
    /// through the buffered [`Schedule::activations_into`] path, reusing
    /// the simulation's activation buffer. Together with the scratch-buffer
    /// [`step_with`](Simulation::step_with) this makes asynchronous run
    /// loops allocation-free after warm-up for all built-in schedules.
    pub fn step_scheduled(&mut self, schedule: &mut dyn Schedule) {
        // Temporarily take the buffer so `step_with` can borrow `self`
        // mutably; `take` leaves an empty (non-allocating) Vec behind.
        let mut active = std::mem::take(&mut self.active_buf);
        schedule.activations_into(self.time + 1, self.protocol.node_count(), &mut active);
        self.step_with(&active);
        self.active_buf = active;
    }

    /// Runs `steps` steps under `schedule`. Synchronous schedules are
    /// dispatched to the [`step_sync`](Simulation::step_sync) fast path;
    /// all others go through the buffered
    /// [`step_scheduled`](Simulation::step_scheduled) loop, which reuses
    /// one activation buffer across steps.
    pub fn run(&mut self, schedule: &mut dyn Schedule, steps: u64) {
        if schedule.is_synchronous() {
            for _ in 0..steps {
                self.step_sync();
            }
            return;
        }
        for _ in 0..steps {
            self.step_scheduled(schedule);
        }
    }

    /// Whether the current labeling is a stable labeling (a fixed point of
    /// every reaction function).
    pub fn is_label_stable(&self) -> bool {
        self.protocol
            .is_stable_labeling(&self.labeling, &self.inputs)
            .expect("lengths validated at construction")
    }

    /// Runs under `schedule` until the labeling is stable, up to
    /// `max_steps`. Returns the number of steps taken.
    ///
    /// Note: for *non-synchronous* schedules a stable labeling is the only
    /// sound notion of convergence a bounded observer can certify; the
    /// exact product-graph verification lives in `stabilization-verify`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NotConverged`] if the labeling is still unstable
    /// after `max_steps`.
    pub fn run_until_label_stable(
        &mut self,
        schedule: &mut dyn Schedule,
        max_steps: u64,
    ) -> Result<u64, CoreError> {
        let start = self.time;
        let sync = schedule.is_synchronous();
        for _ in 0..max_steps {
            if self.is_label_stable_buffered() {
                return Ok(self.time - start);
            }
            if sync {
                self.step_sync();
            } else {
                self.step_scheduled(schedule);
            }
        }
        if self.is_label_stable_buffered() {
            Ok(self.time - start)
        } else {
            Err(CoreError::NotConverged { steps: max_steps })
        }
    }

    /// Allocation-free stability probe reusing the simulation's scratch
    /// buffers.
    fn is_label_stable_buffered(&mut self) -> bool {
        self.protocol.is_stable_labeling_buffered(
            &self.labeling,
            &self.inputs,
            &mut self.in_buf,
            &mut self.stable_buf,
        )
    }

    /// Runs under `schedule` until the *outputs* stop changing for
    /// `quiet_steps` consecutive steps, up to `max_steps`. Returns the step
    /// count at the last output change (a practical, not certified,
    /// output-convergence time).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NotConverged`] if outputs kept changing.
    pub fn run_until_outputs_quiesce(
        &mut self,
        schedule: &mut dyn Schedule,
        quiet_steps: u64,
        max_steps: u64,
    ) -> Result<u64, CoreError> {
        let start = self.time;
        let sync = schedule.is_synchronous();
        let mut last_change = 0u64;
        let mut prev = self.outputs.clone();
        for _ in 0..max_steps {
            if sync {
                self.step_sync();
            } else {
                self.step_scheduled(schedule);
            }
            if self.outputs != prev {
                last_change = self.time - start;
                prev = self.outputs.clone();
            } else if (self.time - start) - last_change >= quiet_steps {
                return Ok(last_change);
            }
        }
        Err(CoreError::NotConverged { steps: max_steps })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reaction::FnReaction;
    use crate::schedule::{RoundRobin, Synchronous};
    use crate::topology;

    /// Token-passing on the unidirectional ring: each node forwards its
    /// incoming label; the labeling rotates forever.
    fn rotate_ring(n: usize) -> Protocol<u64> {
        Protocol::builder(topology::unidirectional_ring(n), 8.0)
            .name("rotate")
            .uniform_reaction(FnReaction::new(|_, incoming: &[u64], _| {
                (vec![incoming[0]], incoming[0])
            }))
            .build()
            .unwrap()
    }

    /// Max-propagation on the unidirectional ring: converges to the global
    /// max everywhere.
    fn max_ring(n: usize) -> Protocol<u64> {
        Protocol::builder(topology::unidirectional_ring(n), 8.0)
            .name("max")
            .uniform_reaction(FnReaction::new(|_, incoming: &[u64], input| {
                let m = incoming[0].max(input);
                (vec![m], m)
            }))
            .build()
            .unwrap()
    }

    #[test]
    fn synchronous_rotation_moves_all_labels() {
        let p = rotate_ring(4);
        let mut sim = Simulation::new(&p, &[0; 4], vec![10, 20, 30, 40]).unwrap();
        sim.run(&mut Synchronous, 1);
        // Edge i holds the label previously on edge i-1.
        assert_eq!(sim.labeling(), &[40, 10, 20, 30]);
        sim.run(&mut Synchronous, 3);
        assert_eq!(sim.labeling(), &[10, 20, 30, 40], "period n rotation");
    }

    #[test]
    fn simultaneity_within_a_step() {
        // Two nodes swap labels through a 2-clique; simultaneous activation
        // must read the *old* labels on both sides.
        let p = Protocol::builder(topology::clique(2), 8.0)
            .uniform_reaction(FnReaction::new(|_, incoming: &[u64], _| {
                (vec![incoming[0]], incoming[0])
            }))
            .build()
            .unwrap();
        let mut sim = Simulation::new(&p, &[0, 0], vec![1, 2]).unwrap();
        sim.step_with(&[0, 1]);
        assert_eq!(sim.labeling(), &[2, 1], "labels swapped, not clobbered");
        sim.step_with(&[0, 1]);
        assert_eq!(sim.labeling(), &[1, 2]);
    }

    #[test]
    fn max_ring_label_stabilizes_within_n_rounds() {
        let p = max_ring(5);
        let mut sim = Simulation::new(&p, &[3, 1, 4, 1, 5], vec![0; 5]).unwrap();
        let steps = sim.run_until_label_stable(&mut Synchronous, 100).unwrap();
        assert!(steps <= 5, "took {steps} rounds");
        assert!(sim.is_label_stable());
        assert_eq!(sim.outputs(), &[5; 5]);
    }

    #[test]
    fn round_robin_also_converges() {
        let p = max_ring(5);
        let mut sim = Simulation::new(&p, &[3, 1, 4, 1, 5], vec![0; 5]).unwrap();
        let mut sched = RoundRobin::new(1);
        sim.run_until_label_stable(&mut sched, 200).unwrap();
        assert_eq!(sim.outputs().iter().filter(|&&y| y == 5).count(), 5);
    }

    #[test]
    fn rotation_never_label_stabilizes() {
        let p = rotate_ring(3);
        let mut sim = Simulation::new(&p, &[0; 3], vec![1, 2, 3]).unwrap();
        let err = sim
            .run_until_label_stable(&mut Synchronous, 50)
            .unwrap_err();
        assert_eq!(err, CoreError::NotConverged { steps: 50 });
    }

    #[test]
    fn outputs_quiesce_on_max_ring() {
        let p = max_ring(4);
        let mut sim = Simulation::new(&p, &[9, 2, 2, 2], vec![0; 4]).unwrap();
        let last_change = sim
            .run_until_outputs_quiesce(&mut Synchronous, 10, 1000)
            .unwrap();
        assert!(last_change <= 4);
        assert_eq!(sim.outputs(), &[9; 4]);
    }

    #[test]
    fn new_validates_lengths() {
        let p = max_ring(3);
        assert!(Simulation::new(&p, &[0, 0], vec![0, 0, 0]).is_err());
        assert!(Simulation::new(&p, &[0, 0, 0], vec![0, 0]).is_err());
    }

    #[test]
    fn time_advances_per_step() {
        let p = max_ring(3);
        let mut sim = Simulation::new(&p, &[0, 0, 0], vec![0, 0, 0]).unwrap();
        assert_eq!(sim.time(), 0);
        sim.run(&mut Synchronous, 7);
        assert_eq!(sim.time(), 7);
    }

    #[test]
    fn adversary_step_overrides_byzantine_and_freezes_crash() {
        use crate::fault::FaultModel;
        // Max-propagation ring; node 1 byzantine, node 2 crashed.
        let p = max_ring(4);
        let faults = FaultModel::new(&[1], &[2]).unwrap();
        let mut sim = Simulation::new(&p, &[0; 4], vec![5, 6, 7, 8]).unwrap();
        sim.step_with_adversary(&[0, 1, 2, 3], faults, &[(1, vec![99])]);
        // Node 0 reacted normally (reads edge 3→0, i.e. label 8): writes 8.
        // Node 1's out-edge carries the adversary's 99; node 2's keeps 7.
        // Node 3 reacted normally: max(incoming 7, input 0) = 7.
        assert_eq!(sim.labeling(), &[8, 99, 7, 7]);
        // Faulty nodes' outputs never move off their initial 0.
        assert_eq!(sim.outputs(), &[8, 0, 0, 7]);
        assert_eq!(sim.time(), 1);
    }

    #[test]
    #[should_panic(expected = "no adversary choice recorded")]
    fn adversary_step_requires_a_choice_per_byzantine_activation() {
        use crate::fault::FaultModel;
        let p = max_ring(3);
        let faults = FaultModel::byzantine(&[1]).unwrap();
        let mut sim = Simulation::new(&p, &[0; 3], vec![0; 3]).unwrap();
        sim.step_with_adversary(&[1], faults, &[]);
    }

    #[test]
    #[should_panic(expected = "nonexistent node")]
    fn activating_missing_node_panics() {
        let p = max_ring(3);
        let mut sim = Simulation::new(&p, &[0, 0, 0], vec![0, 0, 0]).unwrap();
        sim.step_with(&[5]);
    }
}
