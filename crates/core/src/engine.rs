//! The simulation engine: executes `(ℓᵗ, yᵗ) = δ(ℓᵗ⁻¹, x, σ(t))`.

use crate::error::CoreError;
use crate::label::Label;
use crate::protocol::Protocol;
use crate::schedule::Schedule;
use crate::{Input, NodeId, Output};

/// A running instance of a stateless protocol: the current labeling `ℓᵗ`,
/// the last outputs `yᵗ`, and the fixed inputs `x`.
///
/// The engine is faithful to the paper's semantics: all nodes activated at
/// step `t` read the labeling from the *end of step `t−1`* and their writes
/// are committed simultaneously.
///
/// # Examples
///
/// See the crate-level quickstart.
#[derive(Debug)]
pub struct Simulation<'p, L: Label> {
    protocol: &'p Protocol<L>,
    labeling: Vec<L>,
    outputs: Vec<Output>,
    inputs: Vec<Input>,
    time: u64,
}

impl<'p, L: Label> Simulation<'p, L> {
    /// Starts a simulation with the given inputs and initial labeling `ℓ⁰`.
    /// Outputs start at `0` (they are meaningless until a node first
    /// reacts, exactly as in the model, where `yᵢ` is only defined after
    /// `i`'s first activation).
    ///
    /// # Errors
    ///
    /// Returns an error if the labeling or input lengths do not match the
    /// protocol's graph.
    pub fn new(
        protocol: &'p Protocol<L>,
        inputs: &[Input],
        initial_labeling: Vec<L>,
    ) -> Result<Self, CoreError> {
        protocol.check_lengths(&initial_labeling, inputs)?;
        Ok(Simulation {
            protocol,
            labeling: initial_labeling,
            outputs: vec![0; protocol.node_count()],
            inputs: inputs.to_vec(),
            time: 0,
        })
    }

    /// The protocol being run.
    pub fn protocol(&self) -> &'p Protocol<L> {
        self.protocol
    }

    /// The current labeling `ℓᵗ`, indexed by edge id.
    pub fn labeling(&self) -> &[L] {
        &self.labeling
    }

    /// The most recent output of every node.
    pub fn outputs(&self) -> &[Output] {
        &self.outputs
    }

    /// The fixed input vector `x`.
    pub fn inputs(&self) -> &[Input] {
        &self.inputs
    }

    /// The number of steps executed so far.
    pub fn time(&self) -> u64 {
        self.time
    }

    /// Executes one step activating exactly the nodes in `active`
    /// (duplicates are allowed and ignored). All activated nodes observe the
    /// pre-step labeling; their writes are committed together.
    ///
    /// # Panics
    ///
    /// Panics if a reaction function returns the wrong number of outgoing
    /// labels or an activation names a nonexistent node — both are bugs in
    /// the caller's protocol, not runtime conditions.
    pub fn step_with(&mut self, active: &[NodeId]) {
        let mut writes: Vec<(NodeId, Vec<L>, Output)> = Vec::with_capacity(active.len());
        for &node in active {
            assert!(
                node < self.protocol.node_count(),
                "activation of nonexistent node {node}"
            );
            let (outgoing, output) = self
                .protocol
                .apply(node, &self.labeling, self.inputs[node])
                .expect("reaction arity validated by Protocol::apply");
            writes.push((node, outgoing, output));
        }
        for (node, outgoing, output) in writes {
            for (slot, &e) in outgoing.into_iter().zip(self.protocol.graph().out_edges(node)) {
                self.labeling[e] = slot;
            }
            self.outputs[node] = output;
        }
        self.time += 1;
    }

    /// Runs `steps` steps under `schedule`.
    pub fn run(&mut self, schedule: &mut dyn Schedule, steps: u64) {
        for _ in 0..steps {
            let active = schedule.activations(self.time + 1, self.protocol.node_count());
            self.step_with(&active);
        }
    }

    /// Whether the current labeling is a stable labeling (a fixed point of
    /// every reaction function).
    pub fn is_label_stable(&self) -> bool {
        self.protocol
            .is_stable_labeling(&self.labeling, &self.inputs)
            .expect("lengths validated at construction")
    }

    /// Runs under `schedule` until the labeling is stable, up to
    /// `max_steps`. Returns the number of steps taken.
    ///
    /// Note: for *non-synchronous* schedules a stable labeling is the only
    /// sound notion of convergence a bounded observer can certify; the
    /// exact product-graph verification lives in `stabilization-verify`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NotConverged`] if the labeling is still unstable
    /// after `max_steps`.
    pub fn run_until_label_stable(
        &mut self,
        schedule: &mut dyn Schedule,
        max_steps: u64,
    ) -> Result<u64, CoreError> {
        let start = self.time;
        for _ in 0..max_steps {
            if self.is_label_stable() {
                return Ok(self.time - start);
            }
            let active = schedule.activations(self.time + 1, self.protocol.node_count());
            self.step_with(&active);
        }
        if self.is_label_stable() {
            Ok(self.time - start)
        } else {
            Err(CoreError::NotConverged { steps: max_steps })
        }
    }

    /// Runs under `schedule` until the *outputs* stop changing for
    /// `quiet_steps` consecutive steps, up to `max_steps`. Returns the step
    /// count at the last output change (a practical, not certified,
    /// output-convergence time).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NotConverged`] if outputs kept changing.
    pub fn run_until_outputs_quiesce(
        &mut self,
        schedule: &mut dyn Schedule,
        quiet_steps: u64,
        max_steps: u64,
    ) -> Result<u64, CoreError> {
        let start = self.time;
        let mut last_change = 0u64;
        let mut prev = self.outputs.clone();
        for _ in 0..max_steps {
            let active = schedule.activations(self.time + 1, self.protocol.node_count());
            self.step_with(&active);
            if self.outputs != prev {
                last_change = self.time - start;
                prev = self.outputs.clone();
            } else if (self.time - start) - last_change >= quiet_steps {
                return Ok(last_change);
            }
        }
        Err(CoreError::NotConverged { steps: max_steps })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reaction::FnReaction;
    use crate::schedule::{RoundRobin, Synchronous};
    use crate::topology;

    /// Token-passing on the unidirectional ring: each node forwards its
    /// incoming label; the labeling rotates forever.
    fn rotate_ring(n: usize) -> Protocol<u64> {
        Protocol::builder(topology::unidirectional_ring(n), 8.0)
            .name("rotate")
            .uniform_reaction(FnReaction::new(|_, incoming: &[u64], _| {
                (vec![incoming[0]], incoming[0])
            }))
            .build()
            .unwrap()
    }

    /// Max-propagation on the unidirectional ring: converges to the global
    /// max everywhere.
    fn max_ring(n: usize) -> Protocol<u64> {
        Protocol::builder(topology::unidirectional_ring(n), 8.0)
            .name("max")
            .uniform_reaction(FnReaction::new(|_, incoming: &[u64], input| {
                let m = incoming[0].max(input);
                (vec![m], m)
            }))
            .build()
            .unwrap()
    }

    #[test]
    fn synchronous_rotation_moves_all_labels() {
        let p = rotate_ring(4);
        let mut sim = Simulation::new(&p, &[0; 4], vec![10, 20, 30, 40]).unwrap();
        sim.run(&mut Synchronous, 1);
        // Edge i holds the label previously on edge i-1.
        assert_eq!(sim.labeling(), &[40, 10, 20, 30]);
        sim.run(&mut Synchronous, 3);
        assert_eq!(sim.labeling(), &[10, 20, 30, 40], "period n rotation");
    }

    #[test]
    fn simultaneity_within_a_step() {
        // Two nodes swap labels through a 2-clique; simultaneous activation
        // must read the *old* labels on both sides.
        let p = Protocol::builder(topology::clique(2), 8.0)
            .uniform_reaction(FnReaction::new(|_, incoming: &[u64], _| {
                (vec![incoming[0]], incoming[0])
            }))
            .build()
            .unwrap();
        let mut sim = Simulation::new(&p, &[0, 0], vec![1, 2]).unwrap();
        sim.step_with(&[0, 1]);
        assert_eq!(sim.labeling(), &[2, 1], "labels swapped, not clobbered");
        sim.step_with(&[0, 1]);
        assert_eq!(sim.labeling(), &[1, 2]);
    }

    #[test]
    fn max_ring_label_stabilizes_within_n_rounds() {
        let p = max_ring(5);
        let mut sim = Simulation::new(&p, &[3, 1, 4, 1, 5], vec![0; 5]).unwrap();
        let steps = sim.run_until_label_stable(&mut Synchronous, 100).unwrap();
        assert!(steps <= 5, "took {steps} rounds");
        assert!(sim.is_label_stable());
        assert_eq!(sim.outputs(), &[5; 5]);
    }

    #[test]
    fn round_robin_also_converges() {
        let p = max_ring(5);
        let mut sim = Simulation::new(&p, &[3, 1, 4, 1, 5], vec![0; 5]).unwrap();
        let mut sched = RoundRobin::new(1);
        sim.run_until_label_stable(&mut sched, 200).unwrap();
        assert_eq!(sim.outputs().iter().filter(|&&y| y == 5).count(), 5);
    }

    #[test]
    fn rotation_never_label_stabilizes() {
        let p = rotate_ring(3);
        let mut sim = Simulation::new(&p, &[0; 3], vec![1, 2, 3]).unwrap();
        let err = sim.run_until_label_stable(&mut Synchronous, 50).unwrap_err();
        assert_eq!(err, CoreError::NotConverged { steps: 50 });
    }

    #[test]
    fn outputs_quiesce_on_max_ring() {
        let p = max_ring(4);
        let mut sim = Simulation::new(&p, &[9, 2, 2, 2], vec![0; 4]).unwrap();
        let last_change = sim
            .run_until_outputs_quiesce(&mut Synchronous, 10, 1000)
            .unwrap();
        assert!(last_change <= 4);
        assert_eq!(sim.outputs(), &[9; 4]);
    }

    #[test]
    fn new_validates_lengths() {
        let p = max_ring(3);
        assert!(Simulation::new(&p, &[0, 0], vec![0, 0, 0]).is_err());
        assert!(Simulation::new(&p, &[0, 0, 0], vec![0, 0]).is_err());
    }

    #[test]
    fn time_advances_per_step() {
        let p = max_ring(3);
        let mut sim = Simulation::new(&p, &[0, 0, 0], vec![0, 0, 0]).unwrap();
        assert_eq!(sim.time(), 0);
        sim.run(&mut Synchronous, 7);
        assert_eq!(sim.time(), 7);
    }

    #[test]
    #[should_panic(expected = "nonexistent node")]
    fn activating_missing_node_panics() {
        let p = max_ring(3);
        let mut sim = Simulation::new(&p, &[0, 0, 0], vec![0, 0, 0]).unwrap();
        sim.step_with(&[5]);
    }
}
