//! Fault models: Byzantine and crash nodes for adversarial verification.
//!
//! A [`FaultModel`] marks a subset of nodes as *faulty*. Faulty nodes keep
//! their place in the topology and the schedule (they are still activated
//! under the r-fair discipline), but their reactions are replaced:
//!
//! * **Byzantine** nodes are controlled by a demonic adversary. At every
//!   activation the adversary writes *any* label from the alphabet onto
//!   each outgoing edge, independently per edge — the full `|Σ|^out-deg`
//!   choice set. Their tracked output is forced to `0`.
//! * **Crash** nodes are the degenerate single-choice case: an activation
//!   commits no writes (outgoing labels keep their current values) and the
//!   tracked output is forced to `0`.
//!
//! The verifier in `stabilization-verify` quantifies universally over both
//! the scheduler *and* the adversary's choices, so a `Stabilizing` verdict
//! means "stabilizes from every initial state under every adversary
//! strategy", and a `NotStabilizing` witness carries a concrete replayable
//! strategy (see `Simulation::step_with_adversary`).
//!
//! The model is a pair of node-id bitmasks, so it is `Copy` and fits in
//! `Limits` without breaking the verifier's pass-by-value idiom.

use crate::error::CoreError;
use crate::NodeId;

/// Which nodes are faulty, and how. See the [module docs](self).
///
/// Construct with [`FaultModel::none`], [`FaultModel::byzantine`],
/// [`FaultModel::crash`], or [`FaultModel::new`]; node ids above
/// [`FaultModel::MAX_NODES`] are rejected at construction time.
/// [`validate`](FaultModel::validate) checks the model against a concrete
/// graph size (ids in range, at least one correct node).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct FaultModel {
    /// Bitmask of Byzantine node ids.
    byzantine: u64,
    /// Bitmask of crash-faulty node ids (disjoint from `byzantine`).
    crash: u64,
}

impl FaultModel {
    /// The largest node id representable by the bitmask encoding.
    pub const MAX_NODES: usize = 64;

    /// The fault-free model: every node runs its program faithfully.
    pub fn none() -> Self {
        FaultModel::default()
    }

    /// Marks exactly `ids` as Byzantine (duplicates are ignored).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if any id is ≥
    /// [`FaultModel::MAX_NODES`].
    pub fn byzantine(ids: &[NodeId]) -> Result<Self, CoreError> {
        FaultModel::new(ids, &[])
    }

    /// Marks exactly `ids` as crash-faulty (duplicates are ignored).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if any id is ≥
    /// [`FaultModel::MAX_NODES`].
    pub fn crash(ids: &[NodeId]) -> Result<Self, CoreError> {
        FaultModel::new(&[], ids)
    }

    /// Builds a mixed model with the given Byzantine and crash node sets.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if any id is ≥
    /// [`FaultModel::MAX_NODES`] or a node appears in both sets.
    pub fn new(byzantine_ids: &[NodeId], crash_ids: &[NodeId]) -> Result<Self, CoreError> {
        let mask = |ids: &[NodeId], kind: &str| -> Result<u64, CoreError> {
            let mut m = 0u64;
            for &id in ids {
                if id >= Self::MAX_NODES {
                    return Err(CoreError::InvalidParameter {
                        what: format!(
                            "{kind} node id {id} exceeds the fault-model limit of {} nodes",
                            Self::MAX_NODES
                        ),
                    });
                }
                m |= 1u64 << id;
            }
            Ok(m)
        };
        let byzantine = mask(byzantine_ids, "byzantine")?;
        let crash = mask(crash_ids, "crash")?;
        if byzantine & crash != 0 {
            let id = (byzantine & crash).trailing_zeros();
            return Err(CoreError::InvalidParameter {
                what: format!("node {id} is listed as both byzantine and crash-faulty"),
            });
        }
        Ok(FaultModel { byzantine, crash })
    }

    /// Whether `node` is Byzantine.
    pub fn is_byzantine(&self, node: NodeId) -> bool {
        node < Self::MAX_NODES && self.byzantine >> node & 1 == 1
    }

    /// Whether `node` is crash-faulty.
    pub fn is_crash(&self, node: NodeId) -> bool {
        node < Self::MAX_NODES && self.crash >> node & 1 == 1
    }

    /// Whether `node` is faulty in either way.
    pub fn is_faulty(&self, node: NodeId) -> bool {
        self.is_byzantine(node) || self.is_crash(node)
    }

    /// Whether the model marks any node faulty at all.
    pub fn has_faults(&self) -> bool {
        self.byzantine | self.crash != 0
    }

    /// The number of faulty nodes `f`.
    pub fn fault_count(&self) -> usize {
        (self.byzantine | self.crash).count_ones() as usize
    }

    /// The number of Byzantine nodes.
    pub fn byzantine_count(&self) -> usize {
        self.byzantine.count_ones() as usize
    }

    /// Byzantine node ids in ascending order.
    pub fn byzantine_nodes(&self) -> impl Iterator<Item = NodeId> {
        let mask = self.byzantine;
        (0..Self::MAX_NODES).filter(move |&i| mask >> i & 1 == 1)
    }

    /// All faulty node ids (Byzantine and crash) in ascending order.
    pub fn faulty_nodes(&self) -> impl Iterator<Item = NodeId> {
        let mask = self.byzantine | self.crash;
        (0..Self::MAX_NODES).filter(move |&i| mask >> i & 1 == 1)
    }

    /// Checks the model against a concrete graph of `node_count` nodes:
    /// every faulty id must name an existing node, and at least one node
    /// must remain correct (`f < n` — an all-faulty system has no
    /// correct-node property left to verify).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] describing the violation.
    pub fn validate(&self, node_count: usize) -> Result<(), CoreError> {
        if let Some(bad) = self.faulty_nodes().find(|&id| id >= node_count) {
            return Err(CoreError::InvalidParameter {
                what: format!(
                    "faulty node id {bad} out of range for a graph with {node_count} nodes"
                ),
            });
        }
        if node_count > 0 && self.fault_count() >= node_count {
            return Err(CoreError::InvalidParameter {
                what: format!(
                    "fault count f = {} must be below the node count n = {node_count} \
                     (no correct node left to verify)",
                    self.fault_count()
                ),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_fault_free() {
        let fm = FaultModel::none();
        assert!(!fm.has_faults());
        assert_eq!(fm.fault_count(), 0);
        assert!(fm.validate(1).is_ok());
        assert_eq!(fm, FaultModel::default());
    }

    #[test]
    fn byzantine_and_crash_queries() {
        let fm = FaultModel::new(&[1, 3], &[0]).unwrap();
        assert!(fm.is_byzantine(1) && fm.is_byzantine(3));
        assert!(fm.is_crash(0) && !fm.is_crash(1));
        assert!(fm.is_faulty(0) && fm.is_faulty(3) && !fm.is_faulty(2));
        assert_eq!(fm.fault_count(), 3);
        assert_eq!(fm.byzantine_count(), 2);
        assert_eq!(fm.byzantine_nodes().collect::<Vec<_>>(), vec![1, 3]);
        assert_eq!(fm.faulty_nodes().collect::<Vec<_>>(), vec![0, 1, 3]);
        assert!(!fm.is_faulty(usize::MAX), "out-of-mask ids are not faulty");
    }

    #[test]
    fn construction_rejects_oversized_and_overlapping_ids() {
        assert!(matches!(
            FaultModel::byzantine(&[64]),
            Err(CoreError::InvalidParameter { .. })
        ));
        assert!(matches!(
            FaultModel::new(&[2], &[2]),
            Err(CoreError::InvalidParameter { .. })
        ));
        assert!(FaultModel::byzantine(&[63]).is_ok());
    }

    #[test]
    fn validate_checks_range_and_fault_budget() {
        let fm = FaultModel::byzantine(&[3]).unwrap();
        assert!(fm.validate(4).is_ok());
        let err = fm.validate(3).unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
        let all = FaultModel::byzantine(&[0, 1, 2]).unwrap();
        let err = all.validate(3).unwrap_err();
        assert!(err.to_string().contains("f = 3"), "{err}");
    }

    #[test]
    fn duplicates_are_ignored() {
        let fm = FaultModel::byzantine(&[2, 2, 2]).unwrap();
        assert_eq!(fm.fault_count(), 1);
    }
}
