//! Strongly connected components of flat CSR digraphs.
//!
//! The exact verifier in `stabilization-verify` stores its product graph
//! as compressed sparse rows (`offsets`/`targets`); this module computes
//! the SCC condensation of any such graph, on borrowed slices, so the
//! verifier, the graph layer ([`crate::graph::DiGraph`]), and future
//! explorers share one implementation:
//!
//! * [`condense`] — the production engine: a parallel **trim** pass
//!   (repeatedly peel states of live in- or out-degree 0; each is its own
//!   trivial SCC, and exhaustive peeling is confluent, so the peeled set
//!   never depends on scheduling) followed by **Forward–Backward**
//!   decomposition of the remainder (pick a pivot, mark its forward and
//!   backward reachable sets; the intersection is one SCC, and the three
//!   difference slices recurse as independent tasks on a shared work
//!   queue). Slices a single worker can settle alone finish with one
//!   slice-local Tarjan pass — the classic FB/Tarjan hybrid that keeps
//!   chains of small SCCs from turning FB quadratic, while different
//!   workers still settle different slices in parallel; the cutoff
//!   scales with the per-worker share (a lone worker skips FB rounds
//!   entirely — they exist to split work, not to speed a single
//!   traversal). Runs on an explicit number of workers.
//! * [`tarjan`] — the serial iterative Tarjan reference the verifier
//!   shipped with through PR 4, kept `#[doc(hidden)]` for differential
//!   testing and as the `SccBackend::Tarjan` escape hatch.
//!
//! # Determinism
//!
//! Both functions return the **canonical** component numbering:
//! components are numbered by the smallest state id they contain, in
//! increasing order of that id (equivalently: by first occurrence when
//! scanning states `0, 1, 2, …`). That numbering depends only on the
//! component *partition* — a property of the graph, not of any
//! algorithm — so [`condense`]'s output is bit-identical for every
//! worker count, identical to [`tarjan`]'s, and unaffected by internal
//! scheduling choices (wave order in the trim, task interleaving, the
//! thread-scaled FB→Tarjan slice cutoff). Within the FB pass each task
//! additionally pivots on the **minimum state id** of its slice, making
//! the recursion itself reproducible at a fixed cutoff. Thread count is
//! purely a throughput knob, exactly like the verifier's parallel
//! explorer — `tests/scc.rs` asserts the cross-thread, cross-backend,
//! and cross-cutoff equalities against the Tarjan oracle.
//!
//! # Memory
//!
//! [`condense`] materializes the reverse CSR (needed for backward
//! reachability and live in-degrees) plus five flat per-state word/byte
//! arrays — about 17 bytes per state and 12 per edge transiently, freed
//! on return. [`tarjan`] never builds the reverse graph (~13 bytes per
//! state) — on memory-starved graphs it remains the cheaper fallback.
//!
//! Unlike [`crate::graph::DiGraph`], CSR graphs may contain self-loops
//! (the verifier's product graph does); a self-loop keeps its state
//! un-trimmed and the state forms (or joins) a regular SCC.

use std::sync::atomic::{AtomicU32, AtomicU8, AtomicUsize, Ordering};
use std::sync::Mutex;

/// `comp` value of a state not yet assigned to any component.
const UNASSIGNED: u32 = u32::MAX;
/// Transient claim marker of the trim pass: a worker won the
/// compare-exchange and is about to store the real component id.
const CLAIMED: u32 = u32::MAX - 1;
/// Forward-reachable mark bit of the FB pass.
const F: u8 = 1;
/// Backward-reachable mark bit of the FB pass.
const B: u8 = 2;
/// Trim frontiers below this many states are peeled inline: the vendored
/// rayon stand-in spawns OS threads per scope (no persistent pool), which
/// only amortize over enough work. A scheduling heuristic only — the
/// peeled set is confluent, so the result is identical either way.
const PARALLEL_MIN_FRONTIER: usize = 1 << 10;
/// FB slices at or below this many states are settled by one
/// slice-local Tarjan pass instead of further FB rounds (the classic
/// FB/Tarjan hybrid): FB pays up to one full slice rescan per emitted
/// component, which a chain of small SCCs turns quadratic. Like every
/// other constant here this never affects the output — the SCC
/// partition is a graph property and the numbering is canonicalized —
/// only how fast a slice is settled.
const FB_SERIAL_CUTOFF: usize = 1 << 13;

/// One pending Forward–Backward task: a slice id (the `slice_of` value of
/// exactly this task's states) and its member states in ascending id
/// order — so `members[0]` *is* the deterministic minimum-id pivot.
struct FbTask {
    sid: u32,
    members: Vec<u32>,
}

/// Computes the SCC condensation of the CSR digraph
/// (`offsets.len() - 1` states, edges of state `u` in
/// `targets[offsets[u]..offsets[u + 1]]`) on up to `threads` workers
/// (`0` = all available cores) and returns the component id of every
/// state in the canonical numbering (components ordered by their minimum
/// state id — see the [module docs](self)). The result is bit-identical
/// for every thread count.
///
/// # Panics
///
/// Panics if `offsets` is not a monotone CSR offset array covering
/// `targets`, or if a target id is out of range.
pub fn condense(offsets: &[usize], targets: &[u32], threads: usize) -> Vec<u32> {
    let threads = resolve_threads(threads);
    // FB rounds exist to *split* the graph across workers: a lone worker
    // gains nothing from them (slice-local Tarjan settles any slice it
    // would have to walk anyway, in one pass), and w workers only need
    // slices fine enough to balance — so the cutoff scales with the
    // per-worker share. Any cutoff yields the same output (the partition
    // is a graph property and the numbering is canonicalized; pinned by
    // `tests/scc.rs` forcing pure FB via [`condense_with`]).
    let n = offsets.len().saturating_sub(1);
    let cutoff = if threads <= 1 {
        usize::MAX
    } else {
        FB_SERIAL_CUTOFF.max(n / (4 * threads))
    };
    condense_with(offsets, targets, threads, cutoff)
}

/// Resolves a thread-count knob: `0` means all available cores.
fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        rayon::current_num_threads()
    } else {
        threads
    }
    .max(1)
}

/// [`condense`] with an explicit FB→Tarjan slice cutoff. The cutoff is
/// a pure scheduling knob — every value yields the same output — but
/// the differential suite (`tests/scc.rs`) pins that claim by forcing
/// `0` (pure Forward–Backward, no slice-local Tarjan) on graphs far
/// below the production [`FB_SERIAL_CUTOFF`].
#[doc(hidden)]
pub fn condense_with(
    offsets: &[usize],
    targets: &[u32],
    threads: usize,
    serial_cutoff: usize,
) -> Vec<u32> {
    let n = offsets
        .len()
        .checked_sub(1)
        .expect("offsets holds n + 1 entries");
    assert_eq!(offsets[n], targets.len(), "offsets must cover targets");
    if n == 0 {
        return Vec::new();
    }
    let threads = resolve_threads(threads);
    let (rev_offsets, rev_targets) = reverse_csr(n, offsets, targets);
    let comp: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(UNASSIGNED)).collect();
    let next_comp = AtomicU32::new(0);
    trim(
        offsets,
        targets,
        &rev_offsets,
        &rev_targets,
        &comp,
        &next_comp,
        threads,
    );
    forward_backward(
        offsets,
        targets,
        &rev_offsets,
        &rev_targets,
        &comp,
        &next_comp,
        threads,
        serial_cutoff,
    );
    let mut raw: Vec<u32> = comp.into_iter().map(AtomicU32::into_inner).collect();
    canonicalize(&mut raw, next_comp.into_inner());
    raw
}

/// Serial iterative Tarjan over the same CSR arrays, in the same
/// canonical numbering as [`condense`] — the trusted oracle of the
/// differential suite (`tests/scc.rs`) and the `SccBackend::Tarjan`
/// reference path of the verifier. Never materializes the reverse graph.
#[doc(hidden)]
pub fn tarjan(offsets: &[usize], targets: &[u32]) -> Vec<u32> {
    let n = offsets
        .len()
        .checked_sub(1)
        .expect("offsets holds n + 1 entries");
    assert_eq!(offsets[n], targets.len(), "offsets must cover targets");
    let mut comp = vec![UNASSIGNED; n];
    // Discovery indices, offset by one so 0 means "unvisited".
    let mut order = vec![0u32; n];
    let mut low = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut call: Vec<(u32, usize)> = Vec::new();
    let mut next_order: u32 = 1;
    let mut comp_count: u32 = 0;
    for root in 0..n {
        if order[root] != 0 {
            continue;
        }
        order[root] = next_order;
        low[root] = next_order;
        next_order += 1;
        stack.push(root as u32);
        on_stack[root] = true;
        call.push((root as u32, offsets[root]));
        while let Some(&mut (v, ref mut cursor)) = call.last_mut() {
            let vu = v as usize;
            if *cursor < offsets[vu + 1] {
                let w = targets[*cursor] as usize;
                *cursor += 1;
                if order[w] == 0 {
                    order[w] = next_order;
                    low[w] = next_order;
                    next_order += 1;
                    stack.push(w as u32);
                    on_stack[w] = true;
                    call.push((w as u32, offsets[w]));
                } else if on_stack[w] {
                    low[vu] = low[vu].min(order[w]);
                }
            } else {
                if low[vu] == order[vu] {
                    loop {
                        let w = stack.pop().expect("Tarjan stack holds v");
                        on_stack[w as usize] = false;
                        comp[w as usize] = comp_count;
                        if w == v {
                            break;
                        }
                    }
                    comp_count += 1;
                }
                call.pop();
                if let Some(&mut (parent, _)) = call.last_mut() {
                    let pu = parent as usize;
                    low[pu] = low[pu].min(low[vu]);
                }
            }
        }
    }
    canonicalize(&mut comp, comp_count);
    comp
}

/// Renumbers raw component ids (each `< raw_count`) into the canonical
/// numbering: components in increasing order of their minimum state id.
fn canonicalize(comp: &mut [u32], raw_count: u32) {
    let mut remap = vec![UNASSIGNED; raw_count as usize];
    let mut next = 0u32;
    for c in comp.iter_mut() {
        debug_assert!(*c < raw_count, "every state is assigned");
        let slot = &mut remap[*c as usize];
        if *slot == UNASSIGNED {
            *slot = next;
            next += 1;
        }
        *c = *slot;
    }
}

/// Builds the reverse CSR (`rev_offsets`/`rev_targets`) in two serial
/// O(|E|) passes — memory-bound and a small fraction of the traversal
/// work, so it is not worth a deterministic parallel scatter.
fn reverse_csr(n: usize, offsets: &[usize], targets: &[u32]) -> (Vec<usize>, Vec<u32>) {
    let mut rev_offsets = vec![0usize; n + 1];
    for &t in targets {
        rev_offsets[t as usize + 1] += 1;
    }
    for i in 0..n {
        rev_offsets[i + 1] += rev_offsets[i];
    }
    let mut cursor = rev_offsets[..n].to_vec();
    let mut rev_targets = vec![0u32; targets.len()];
    for u in 0..n {
        for &v in &targets[offsets[u]..offsets[u + 1]] {
            rev_targets[cursor[v as usize]] = u as u32;
            cursor[v as usize] += 1;
        }
    }
    (rev_offsets, rev_targets)
}

/// Tries to claim `v` as a freshly peeled trivial SCC; returns whether
/// this caller won. Claiming is a two-step compare-exchange (`UNASSIGNED
/// → CLAIMED → id`) so component ids stay contiguous — both of a state's
/// degree counters can hit zero concurrently, and exactly one worker may
/// own the state.
fn try_claim(comp: &AtomicU32, next_comp: &AtomicU32) -> bool {
    if comp
        .compare_exchange(UNASSIGNED, CLAIMED, Ordering::Relaxed, Ordering::Relaxed)
        .is_ok()
    {
        comp.store(next_comp.fetch_add(1, Ordering::Relaxed), Ordering::Relaxed);
        true
    } else {
        false
    }
}

/// The trim pass: repeatedly peels every state whose live in-degree or
/// out-degree is zero (no such state lies on a cycle, so each is its own
/// trivial SCC), decrementing the live degrees of its neighbors and
/// peeling in waves until the frontier empties. Waves run in parallel
/// over `threads` workers; exhaustive peeling is confluent — the peeled
/// set is the complement of the unique maximal subgraph with all live
/// degrees ≥ 1 — so scheduling never changes the outcome.
fn trim(
    offsets: &[usize],
    targets: &[u32],
    rev_offsets: &[usize],
    rev_targets: &[u32],
    comp: &[AtomicU32],
    next_comp: &AtomicU32,
    threads: usize,
) {
    let n = comp.len();
    let outdeg: Vec<AtomicU32> = (0..n)
        .map(|u| AtomicU32::new((offsets[u + 1] - offsets[u]) as u32))
        .collect();
    let indeg: Vec<AtomicU32> = (0..n)
        .map(|u| AtomicU32::new((rev_offsets[u + 1] - rev_offsets[u]) as u32))
        .collect();
    let mut frontier: Vec<u32> = (0..n)
        .filter(|&u| {
            (indeg[u].load(Ordering::Relaxed) == 0 || outdeg[u].load(Ordering::Relaxed) == 0)
                && try_claim(&comp[u], next_comp)
        })
        .map(|u| u as u32)
        .collect();
    // Peels one state: removing it decrements the live in-degree of its
    // successors and the live out-degree of its predecessors; a counter
    // hitting zero peels that neighbor too (into the worker-local next
    // wave). Counters of already-claimed states may keep decrementing
    // harmlessly — a claim happens at most once per state.
    let peel = |u: u32, next: &mut Vec<u32>| {
        let u = u as usize;
        for &v in &targets[offsets[u]..offsets[u + 1]] {
            if indeg[v as usize].fetch_sub(1, Ordering::Relaxed) == 1
                && try_claim(&comp[v as usize], next_comp)
            {
                next.push(v);
            }
        }
        for &w in &rev_targets[rev_offsets[u]..rev_offsets[u + 1]] {
            if outdeg[w as usize].fetch_sub(1, Ordering::Relaxed) == 1
                && try_claim(&comp[w as usize], next_comp)
            {
                next.push(w);
            }
        }
    };
    while !frontier.is_empty() {
        if threads <= 1 || frontier.len() < PARALLEL_MIN_FRONTIER {
            let mut next = Vec::new();
            for &u in &frontier {
                peel(u, &mut next);
            }
            frontier = next;
        } else {
            let chunk = frontier.len().div_ceil(threads);
            let mut next = Vec::new();
            rayon::scope(|scope| {
                let workers: Vec<_> = frontier
                    .chunks(chunk)
                    .map(|slice| {
                        let peel = &peel;
                        scope.spawn(move || {
                            let mut local = Vec::new();
                            for &u in slice {
                                peel(u, &mut local);
                            }
                            local
                        })
                    })
                    .collect();
                for w in workers {
                    next.extend(w.join().expect("trim worker panicked"));
                }
            });
            frontier = next;
        }
    }
}

/// Iterative Tarjan restricted to one FB slice: states are the ascending
/// `members`, edges are the global CSR edges whose targets still carry
/// this slice's id. `local_idx` maps a member's global id to its
/// position in `members` — a shared array, but each live slice owns its
/// states exclusively, so filling it here never races. Raw component
/// ids come from the shared counter; the final canonical renumbering
/// makes the result indistinguishable from settling the slice by more
/// FB rounds.
#[allow(clippy::too_many_arguments)]
fn tarjan_slice(
    offsets: &[usize],
    targets: &[u32],
    slice_of: &[AtomicU32],
    local_idx: &[AtomicU32],
    sid: u32,
    members: &[u32],
    comp: &[AtomicU32],
    next_comp: &AtomicU32,
) {
    let m = members.len();
    for (i, &v) in members.iter().enumerate() {
        local_idx[v as usize].store(i as u32, Ordering::Relaxed);
    }
    let local = |v: u32| -> usize { local_idx[v as usize].load(Ordering::Relaxed) as usize };
    // Discovery indices, offset by one so 0 means "unvisited".
    let mut order = vec![0u32; m];
    let mut low = vec![0u32; m];
    let mut on_stack = vec![false; m];
    let mut stack: Vec<u32> = Vec::new();
    // Call frames: (local id, cursor into the *global* edge range).
    let mut call: Vec<(u32, usize)> = Vec::new();
    let mut next_order: u32 = 1;
    for root in 0..m {
        if order[root] != 0 {
            continue;
        }
        order[root] = next_order;
        low[root] = next_order;
        next_order += 1;
        stack.push(root as u32);
        on_stack[root] = true;
        call.push((root as u32, offsets[members[root] as usize]));
        while let Some(&mut (v, ref mut cursor)) = call.last_mut() {
            let vl = v as usize;
            let vg = members[vl] as usize;
            if *cursor < offsets[vg + 1] {
                let wg = targets[*cursor];
                *cursor += 1;
                if slice_of[wg as usize].load(Ordering::Relaxed) != sid {
                    continue; // edge leaves the slice
                }
                let w = local(wg);
                if order[w] == 0 {
                    order[w] = next_order;
                    low[w] = next_order;
                    next_order += 1;
                    stack.push(w as u32);
                    on_stack[w] = true;
                    call.push((w as u32, offsets[wg as usize]));
                } else if on_stack[w] {
                    low[vl] = low[vl].min(order[w]);
                }
            } else {
                if low[vl] == order[vl] {
                    let comp_id = next_comp.fetch_add(1, Ordering::Relaxed);
                    loop {
                        let w = stack.pop().expect("Tarjan stack holds v");
                        on_stack[w as usize] = false;
                        comp[members[w as usize] as usize].store(comp_id, Ordering::Relaxed);
                        if w == v {
                            break;
                        }
                    }
                }
                call.pop();
                if let Some(&mut (parent, _)) = call.last_mut() {
                    let pl = parent as usize;
                    low[pl] = low[pl].min(low[vl]);
                }
            }
        }
    }
}

/// The Forward–Backward decomposition of everything the trim pass left
/// unassigned. Tasks (slices of states) sit on a shared work queue;
/// every task picks its **minimum state id** as pivot, marks the
/// pivot's forward- and backward-reachable sets within the slice, emits
/// the intersection as one SCC, and requeues the three difference
/// sub-slices. Each state belongs to exactly one live slice
/// (`slice_of`), so marks and component stores never race.
#[allow(clippy::too_many_arguments)]
fn forward_backward(
    offsets: &[usize],
    targets: &[u32],
    rev_offsets: &[usize],
    rev_targets: &[u32],
    comp: &[AtomicU32],
    next_comp: &AtomicU32,
    threads: usize,
    serial_cutoff: usize,
) {
    let n = comp.len();
    let live: Vec<u32> = (0..n as u32)
        .filter(|&u| comp[u as usize].load(Ordering::Relaxed) == UNASSIGNED)
        .collect();
    if live.is_empty() {
        return;
    }
    let slice_of: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
    for &u in &live {
        slice_of[u as usize].store(1, Ordering::Relaxed);
    }
    let mark: Vec<AtomicU8> = (0..n).map(|_| AtomicU8::new(0)).collect();
    // Member-position scratch for the slice-local Tarjan passes; slices
    // are disjoint, so tasks only ever touch their own entries.
    let local_idx: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
    let queue: Mutex<Vec<FbTask>> = Mutex::new(vec![FbTask {
        sid: 1,
        members: live,
    }]);
    let pending = AtomicUsize::new(1);
    let next_slice = AtomicU32::new(2);

    // Marks the `bit`-reachable set of `pivot` within slice `sid`,
    // walking `offsets`/`targets` (forward) or the reverse arrays. The
    // mark bytes are shared across tasks but each task owns its slice's
    // states exclusively, so plain load + store (no read-modify-write
    // cycles on the hot edge loop) is race-free.
    let reach = |off: &[usize], tgt: &[u32], sid: u32, pivot: u32, bit: u8| {
        let mut stack = vec![pivot];
        let p = mark[pivot as usize].load(Ordering::Relaxed);
        mark[pivot as usize].store(p | bit, Ordering::Relaxed);
        while let Some(v) = stack.pop() {
            let v = v as usize;
            for &w in &tgt[off[v]..off[v + 1]] {
                let wu = w as usize;
                if slice_of[wu].load(Ordering::Relaxed) != sid {
                    continue;
                }
                let m = mark[wu].load(Ordering::Relaxed);
                if m & bit == 0 {
                    mark[wu].store(m | bit, Ordering::Relaxed);
                    stack.push(w);
                }
            }
        }
    };
    let worker = || loop {
        let task = queue.lock().expect("FB queue").pop();
        let Some(FbTask { sid, members }) = task else {
            if pending.load(Ordering::Relaxed) == 0 {
                break;
            }
            std::thread::yield_now();
            continue;
        };
        // Small slices finish with slice-local Tarjan instead of more FB
        // rounds: a chain of small SCCs would otherwise requeue its
        // "rest" slice once per component (quadratic in the chain
        // length), while one serial pass settles the whole slice in
        // O(slice). Different workers still take different slices, so
        // the cutoff costs no parallelism at scale — and the partition
        // is the same either way, so (with canonical renumbering) the
        // output stays bit-identical.
        if members.len() <= serial_cutoff.max(1) {
            tarjan_slice(
                offsets, targets, &slice_of, &local_idx, sid, &members, comp, next_comp,
            );
            pending.fetch_sub(1, Ordering::Relaxed);
            continue;
        }
        let comp_id = next_comp.fetch_add(1, Ordering::Relaxed);
        // Members are ascending, so members[0] is the deterministic
        // minimum-id pivot (the rule the cross-thread contract rests on).
        let pivot = members[0];
        reach(offsets, targets, sid, pivot, F);
        reach(rev_offsets, rev_targets, sid, pivot, B);
        let mut fwd: Vec<u32> = Vec::new();
        let mut bwd: Vec<u32> = Vec::new();
        let mut rest: Vec<u32> = Vec::new();
        for &v in &members {
            let vu = v as usize;
            match mark[vu].load(Ordering::Relaxed) & (F | B) {
                m if m == F | B => comp[vu].store(comp_id, Ordering::Relaxed),
                m if m == F => fwd.push(v),
                m if m == B => bwd.push(v),
                _ => rest.push(v),
            }
        }
        for sub in [fwd, bwd, rest] {
            if sub.is_empty() {
                continue;
            }
            let nsid = next_slice.fetch_add(1, Ordering::Relaxed);
            for &v in &sub {
                slice_of[v as usize].store(nsid, Ordering::Relaxed);
                mark[v as usize].store(0, Ordering::Relaxed);
            }
            pending.fetch_add(1, Ordering::Relaxed);
            queue.lock().expect("FB queue").push(FbTask {
                sid: nsid,
                members: sub,
            });
        }
        pending.fetch_sub(1, Ordering::Relaxed);
    };
    if threads <= 1 {
        worker();
    } else {
        rayon::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(worker);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// CSR arrays from an explicit edge list (n states).
    fn csr(n: usize, edges: &[(u32, u32)]) -> (Vec<usize>, Vec<u32>) {
        let mut offsets = vec![0usize; n + 1];
        for &(u, _) in edges {
            offsets[u as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut cursor = offsets[..n].to_vec();
        let mut targets = vec![0u32; edges.len()];
        for &(u, v) in edges {
            targets[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
        }
        (offsets, targets)
    }

    fn all_agree(n: usize, edges: &[(u32, u32)]) -> Vec<u32> {
        let (offsets, targets) = csr(n, edges);
        let reference = tarjan(&offsets, &targets);
        for threads in [1, 2, 4] {
            assert_eq!(
                condense(&offsets, &targets, threads),
                reference,
                "threads = {threads}"
            );
            // Cutoff 0 forces pure Forward–Backward (no slice-local
            // Tarjan), which must settle on the same answer.
            assert_eq!(
                condense_with(&offsets, &targets, threads, 0),
                reference,
                "pure FB, threads = {threads}"
            );
        }
        reference
    }

    #[test]
    fn empty_graph_has_no_components() {
        assert_eq!(condense(&[0], &[], 1), Vec::<u32>::new());
        assert_eq!(tarjan(&[0], &[]), Vec::<u32>::new());
    }

    #[test]
    fn isolated_states_are_singletons_in_id_order() {
        let comp = all_agree(4, &[]);
        assert_eq!(comp, vec![0, 1, 2, 3]);
    }

    #[test]
    fn self_loop_is_a_singleton_component() {
        let comp = all_agree(3, &[(0, 1), (1, 1), (1, 2)]);
        assert_eq!(comp, vec![0, 1, 2]);
    }

    #[test]
    fn cycle_is_one_component() {
        let comp = all_agree(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        assert_eq!(comp, vec![0; 5]);
    }

    #[test]
    fn two_cycles_bridged_are_two_components() {
        let comp = all_agree(4, &[(0, 1), (1, 0), (1, 2), (2, 3), (3, 2)]);
        assert_eq!(comp, vec![0, 0, 1, 1]);
    }

    #[test]
    fn dag_numbering_is_identity() {
        // Canonical numbering orders components by minimum state id, so a
        // DAG of singletons numbers as the identity.
        let comp = all_agree(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        assert_eq!(comp, vec![0, 1, 2, 3]);
    }

    #[test]
    fn trim_tail_into_cycle() {
        // 0 → 1 → {2 ⇄ 3} → 4: ends trim away, the 2-cycle survives.
        let comp = all_agree(5, &[(0, 1), (1, 2), (2, 3), (3, 2), (3, 4)]);
        assert_eq!(comp, vec![0, 1, 2, 2, 3]);
    }

    #[test]
    fn dag_of_cliques() {
        // Two 3-cliques (strongly connected) joined by one-way edges.
        let mut edges = Vec::new();
        for a in 0..3u32 {
            for b in 0..3u32 {
                if a != b {
                    edges.push((a, b));
                    edges.push((a + 3, b + 3));
                }
            }
        }
        edges.push((2, 3));
        edges.push((0, 4));
        let comp = all_agree(6, &edges);
        assert_eq!(comp, vec![0, 0, 0, 1, 1, 1]);
    }

    #[test]
    fn zero_threads_means_available_parallelism() {
        let (offsets, targets) = csr(3, &[(0, 1), (1, 2), (2, 0)]);
        assert_eq!(condense(&offsets, &targets, 0), vec![0, 0, 0]);
    }
}
