//! Strongly connected components of implicit digraphs behind a
//! **successor oracle**.
//!
//! The exact verifier in `stabilization-verify` no longer stores its
//! product graph at all: successors are regenerated on demand from the
//! interned packed state words. This module therefore computes SCC
//! condensations against a [`SuccessorOracle`] — anything that can
//! answer "how many states?" and "overwrite this buffer with the
//! successors of `u`" — so the verifier, the graph layer
//! ([`crate::graph::DiGraph`]), and plain CSR arrays share one
//! implementation:
//!
//! * [`condense_oracle`] — the production engine: a **trim** pass
//!   (peel states of live in- or out-degree 0; each is its own trivial
//!   SCC) followed by **Forward–Backward** decomposition of the
//!   remainder (pick a pivot, mark its forward- and backward-reachable
//!   sets; the intersection is one SCC, and the three difference slices
//!   recurse as independent tasks on a shared work queue). Slices a
//!   single worker can settle alone finish with one slice-local Tarjan
//!   pass — the classic FB/Tarjan hybrid. Runs on an explicit number of
//!   workers; graphs below [`PARALLEL_MIN_STATES`] run single-worker
//!   regardless (the vendored rayon stand-in spawns OS threads per
//!   scope, which small graphs cannot amortize).
//! * [`tarjan_oracle`] — the serial iterative Tarjan reference, kept
//!   `#[doc(hidden)]` for differential testing and as the
//!   `SccBackend::Tarjan` escape hatch.
//! * [`condense`] / [`condense_with`] / [`tarjan`] — thin borrowed-CSR
//!   adapters over the oracle entry points, so existing CSR callers and
//!   the `tests/scc.rs` graph-oracle suite keep working unchanged.
//!
//! # The oracle model
//!
//! With only *forward* successors available, the two classically
//! reverse-CSR-backed steps are restated forward-only:
//!
//! * **Trim** seeds in-degrees with one full forward sweep, then peels
//!   in-degree-0 waves by decrementing the in-degrees of a peeled
//!   state's regenerated successors. Out-degree-0 peeling cannot cascade
//!   backwards without predecessors, so it runs as a bounded number
//!   ([`TRIM_OUT_PASSES`]) of recompute sweeps over the remaining live
//!   states ("are all my successors dead yet?"). The cap is
//!   partition-safe: anything trim leaves behind is still settled
//!   exactly by the FB/Tarjan phase — trim only ever removes states
//!   provably not on any cycle, so every real SCC survives intact.
//! * **Backward reachability** inside an FB slice runs as a monotone
//!   fixpoint over the slice's unresolved members: a member joins the
//!   pivot's backward set as soon as one of its regenerated successors
//!   is already in it, sweeping until a pass adds nothing. Pass count is
//!   bounded by the longest successor chain into the pivot — small on
//!   the dense, low-diameter product graphs this engine serves, and
//!   slices at or below the cutoff skip it entirely in favor of the
//!   slice-local Tarjan pass.
//!
//! # Determinism
//!
//! All entry points return the **canonical** component numbering:
//! components are numbered by the smallest state id they contain, in
//! increasing order of that id (equivalently: by first occurrence when
//! scanning states `0, 1, 2, …`). That numbering depends only on the
//! component *partition* — a property of the graph, not of any
//! algorithm — so [`condense_oracle`]'s output is bit-identical for
//! every worker count, identical to [`tarjan_oracle`]'s, and unaffected
//! by internal scheduling choices (wave order in the trim, the capped
//! out-degree sweeps, task interleaving, the thread-scaled FB→Tarjan
//! slice cutoff). Within the FB pass each task additionally pivots on
//! the **minimum state id** of its slice, making the recursion itself
//! reproducible at a fixed cutoff. Thread count is purely a throughput
//! knob — `tests/scc.rs` asserts the cross-thread, cross-backend,
//! cross-cutoff, and oracle-vs-CSR equalities against the Tarjan
//! oracle.
//!
//! # Memory
//!
//! Nothing here materializes a forward or reverse CSR. The working set
//! is O(states): flat per-state word/byte arrays (component ids, marks,
//! degrees, slice ids — about 17 bytes per state) plus per-worker
//! successor buffers bounded by the maximum out-degree (and, for the
//! Tarjan passes, by the sum of out-degrees along one DFS path). Edge
//! storage is whatever the oracle itself holds — for [`CsrOracle`] the
//! borrowed arrays, for the verifier nothing beyond the packed states.
//!
//! Unlike [`crate::graph::DiGraph`], oracle graphs may contain
//! self-loops (the verifier's product graph does); a self-loop keeps
//! its state un-trimmed and the state forms (or joins) a regular SCC.

use std::sync::atomic::{AtomicU32, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// `comp` value of a state not yet assigned to any component.
const UNASSIGNED: u32 = u32::MAX;
/// Transient claim marker of the trim pass: a worker won the
/// compare-exchange and is about to store the real component id.
const CLAIMED: u32 = u32::MAX - 1;
/// Forward-reachable mark bit of the FB pass.
const F: u8 = 1;
/// Backward-reachable mark bit of the FB pass.
const B: u8 = 2;
/// Trim frontiers below this many states are peeled inline: the vendored
/// rayon stand-in spawns OS threads per scope (no persistent pool), which
/// only amortize over enough work. A scheduling heuristic only — the
/// peeled set is confluent, so the result is identical either way.
const PARALLEL_MIN_FRONTIER: usize = 1 << 10;
/// FB slices at or below this many states are settled by one
/// slice-local Tarjan pass instead of further FB rounds (the classic
/// FB/Tarjan hybrid): FB pays up to one full slice rescan per emitted
/// component, which a chain of small SCCs turns quadratic. Like every
/// other constant here this never affects the output — the SCC
/// partition is a graph property and the numbering is canonicalized —
/// only how fast a slice is settled.
const FB_SERIAL_CUTOFF: usize = 1 << 13;
/// Graphs below this many states run [`condense_oracle`] single-worker
/// no matter what `threads` asks for: on the vendored rayon stand-in
/// every scope spawns OS threads, and the whole condensation of a small
/// graph costs less than spawning them (the `scc_vs_t1 < 1` regression
/// in `verify_scaling`). Purely a scheduling default — the explicit
/// [`condense_oracle_with`] entry point still honors the requested
/// worker count, and the output is bit-identical either way.
#[doc(hidden)]
pub const PARALLEL_MIN_STATES: usize = 1 << 15;
/// Upper bound on out-degree-0 recompute sweeps in the trim pass. With
/// only forward successors, "did my last live successor just die?"
/// cannot cascade backwards edge-by-edge; each sweep re-derives it from
/// scratch, so a dead chain of length k needs k sweeps. Capping the
/// sweeps is partition-safe (see the module docs) — deeper out-tails
/// simply fall through to the FB/Tarjan phase, which settles them in
/// linear time anyway.
const TRIM_OUT_PASSES: usize = 4;

/// An implicit digraph: `state_count()` states addressed `0..n`, edges
/// answered one source state at a time.
///
/// `successors` must **replace** the contents of `out` with the
/// successor list of `u` (clear, then fill). Duplicate targets and
/// self-loops are allowed; target ids must be `< state_count()`. The
/// successor list of a given state must be identical on every call —
/// the engine regenerates edges freely and the determinism contract
/// rests on the graph not shifting under it. `Sync` is required because
/// parallel workers share one oracle reference.
pub trait SuccessorOracle: Sync {
    /// Number of states; ids run `0..state_count()`.
    fn state_count(&self) -> usize;
    /// Overwrites `out` with the successors of `u`.
    fn successors(&self, u: u32, out: &mut Vec<u32>);
}

/// Borrowed-CSR adapter: the oracle view of flat `offsets`/`targets`
/// arrays (edges of state `u` in `targets[offsets[u]..offsets[u + 1]]`).
pub struct CsrOracle<'a> {
    offsets: &'a [usize],
    targets: &'a [u32],
}

impl<'a> CsrOracle<'a> {
    /// Wraps borrowed CSR arrays.
    ///
    /// # Panics
    ///
    /// Panics if `offsets` is not a monotone CSR offset array covering
    /// `targets`.
    pub fn new(offsets: &'a [usize], targets: &'a [u32]) -> Self {
        let n = offsets
            .len()
            .checked_sub(1)
            .expect("offsets holds n + 1 entries");
        assert_eq!(offsets[n], targets.len(), "offsets must cover targets");
        Self { offsets, targets }
    }
}

impl SuccessorOracle for CsrOracle<'_> {
    fn state_count(&self) -> usize {
        self.offsets.len() - 1
    }

    fn successors(&self, u: u32, out: &mut Vec<u32>) {
        let u = u as usize;
        out.clear();
        out.extend_from_slice(&self.targets[self.offsets[u]..self.offsets[u + 1]]);
    }
}

/// Closure-backed oracle from [`from_fn`].
pub struct FnOracle<F> {
    n: usize,
    f: F,
}

/// Wraps a closure `f(u, &mut out)` (same overwrite contract as
/// [`SuccessorOracle::successors`]) over `n` states as an oracle — the
/// lightest way to condense a graph that exists only as a function.
pub fn from_fn<F: Fn(u32, &mut Vec<u32>) + Sync>(n: usize, f: F) -> FnOracle<F> {
    FnOracle { n, f }
}

impl<F: Fn(u32, &mut Vec<u32>) + Sync> SuccessorOracle for FnOracle<F> {
    fn state_count(&self) -> usize {
        self.n
    }

    fn successors(&self, u: u32, out: &mut Vec<u32>) {
        (self.f)(u, out)
    }
}

/// One pending Forward–Backward task: a slice id (the `slice_of` value of
/// exactly this task's states) and its member states in ascending id
/// order — so `members[0]` *is* the deterministic minimum-id pivot.
struct FbTask {
    sid: u32,
    members: Vec<u32>,
}

/// Computes the SCC condensation of the CSR digraph
/// (`offsets.len() - 1` states, edges of state `u` in
/// `targets[offsets[u]..offsets[u + 1]]`) on up to `threads` workers
/// (`0` = all available cores) and returns the component id of every
/// state in the canonical numbering (components ordered by their minimum
/// state id — see the [module docs](self)). The result is bit-identical
/// for every thread count. A thin adapter over [`condense_oracle`].
///
/// # Panics
///
/// Panics if `offsets` is not a monotone CSR offset array covering
/// `targets`, or if a target id is out of range.
pub fn condense(offsets: &[usize], targets: &[u32], threads: usize) -> Vec<u32> {
    condense_oracle(&CsrOracle::new(offsets, targets), threads)
}

/// Computes the SCC condensation of an implicit digraph on up to
/// `threads` workers (`0` = all available cores; graphs below
/// [`PARALLEL_MIN_STATES`] run single-worker regardless) and returns the
/// component id of every state in the canonical numbering (components
/// ordered by their minimum state id — see the [module docs](self)).
/// The result is bit-identical for every thread count.
pub fn condense_oracle<O: SuccessorOracle + ?Sized>(oracle: &O, threads: usize) -> Vec<u32> {
    let n = oracle.state_count();
    let threads = effective_workers(n, threads);
    // FB rounds exist to *split* the graph across workers: a lone worker
    // gains nothing from them (slice-local Tarjan settles any slice it
    // would have to walk anyway, in one pass), and w workers only need
    // slices fine enough to balance — so the cutoff scales with the
    // per-worker share. Any cutoff yields the same output (the partition
    // is a graph property and the numbering is canonicalized; pinned by
    // `tests/scc.rs` forcing pure FB via [`condense_with`]).
    let cutoff = if threads <= 1 {
        usize::MAX
    } else {
        FB_SERIAL_CUTOFF.max(n / (4 * threads))
    };
    condense_oracle_with(oracle, threads, cutoff)
}

/// The worker count [`condense_oracle`] actually runs at for a graph of
/// `n_states` when asked for `threads`: `0` resolves to all cores,
/// requests beyond the machine's available parallelism are clamped to
/// it, and graphs below [`PARALLEL_MIN_STATES`] are forced
/// single-worker (spawn overhead exceeds the whole condensation there).
/// The clamp matters beyond scheduling overhead: extra workers flip the
/// FB→Tarjan cutoff toward more Forward–Backward rounds, and through a
/// successor *oracle* (regeneration on every touch, no stored CSR)
/// those rounds do real extra work — on a host with fewer cores than
/// the request there is no parallelism to pay for it, which is exactly
/// the `scc_vs_t1 ≈ 0.25` oracle-bench regression. Exposed for the
/// bench suite's scheduling assertions.
#[doc(hidden)]
pub fn effective_workers(n_states: usize, threads: usize) -> usize {
    let threads = resolve_threads(threads)
        .min(rayon::current_num_threads())
        .max(1);
    if n_states < PARALLEL_MIN_STATES {
        1
    } else {
        threads
    }
}

/// Resolves a thread-count knob: `0` means all available cores.
fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        rayon::current_num_threads()
    } else {
        threads
    }
    .max(1)
}

/// [`condense`] with an explicit FB→Tarjan slice cutoff; a thin CSR
/// adapter over [`condense_oracle_with`]. The cutoff is a pure
/// scheduling knob — every value yields the same output — but the
/// differential suite (`tests/scc.rs`) pins that claim by forcing `0`
/// (pure Forward–Backward, no slice-local Tarjan) on graphs far below
/// the production [`FB_SERIAL_CUTOFF`].
#[doc(hidden)]
pub fn condense_with(
    offsets: &[usize],
    targets: &[u32],
    threads: usize,
    serial_cutoff: usize,
) -> Vec<u32> {
    condense_oracle_with(&CsrOracle::new(offsets, targets), threads, serial_cutoff)
}

/// [`condense_oracle`] with an explicit worker count (honored as given —
/// no small-graph override) and FB→Tarjan slice cutoff. Both knobs are
/// pure scheduling: every combination yields the same output.
#[doc(hidden)]
pub fn condense_oracle_with<O: SuccessorOracle + ?Sized>(
    oracle: &O,
    threads: usize,
    serial_cutoff: usize,
) -> Vec<u32> {
    let n = oracle.state_count();
    if n == 0 {
        return Vec::new();
    }
    let threads = resolve_threads(threads);
    let comp: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(UNASSIGNED)).collect();
    let next_comp = AtomicU32::new(0);
    trim(oracle, &comp, &next_comp, threads);
    forward_backward(oracle, &comp, &next_comp, threads, serial_cutoff);
    let mut raw: Vec<u32> = comp.into_iter().map(AtomicU32::into_inner).collect();
    canonicalize(&mut raw, next_comp.into_inner());
    raw
}

/// Serial iterative Tarjan over the same CSR arrays, in the same
/// canonical numbering as [`condense`] — a thin adapter over
/// [`tarjan_oracle`], kept for the differential suite (`tests/scc.rs`)
/// and existing CSR callers.
#[doc(hidden)]
pub fn tarjan(offsets: &[usize], targets: &[u32]) -> Vec<u32> {
    tarjan_oracle(&CsrOracle::new(offsets, targets))
}

/// Serial iterative Tarjan against the oracle, in the same canonical
/// numbering as [`condense_oracle`] — the trusted reference of the
/// differential suite and the `SccBackend::Tarjan` path of the
/// verifier. Call frames own their materialized successor buffers
/// (generated once when the frame is pushed, recycled through a spare
/// pool), so transient memory is bounded by the sum of out-degrees
/// along one DFS path.
#[doc(hidden)]
pub fn tarjan_oracle<O: SuccessorOracle + ?Sized>(oracle: &O) -> Vec<u32> {
    let n = oracle.state_count();
    let mut comp = vec![UNASSIGNED; n];
    // Discovery indices, offset by one so 0 means "unvisited".
    let mut order = vec![0u32; n];
    let mut low = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    // Call frames: (state, successor buffer, cursor into it).
    let mut call: Vec<(u32, Vec<u32>, usize)> = Vec::new();
    let mut spare: Vec<Vec<u32>> = Vec::new();
    let mut next_order: u32 = 1;
    let mut comp_count: u32 = 0;
    for root in 0..n as u32 {
        if order[root as usize] != 0 {
            continue;
        }
        order[root as usize] = next_order;
        low[root as usize] = next_order;
        next_order += 1;
        stack.push(root);
        on_stack[root as usize] = true;
        let mut succs = spare.pop().unwrap_or_default();
        oracle.successors(root, &mut succs);
        call.push((root, succs, 0));
        while let Some(&mut (v, ref succs, ref mut cursor)) = call.last_mut() {
            let vu = v as usize;
            if *cursor < succs.len() {
                let w = succs[*cursor] as usize;
                *cursor += 1;
                if order[w] == 0 {
                    order[w] = next_order;
                    low[w] = next_order;
                    next_order += 1;
                    stack.push(w as u32);
                    on_stack[w] = true;
                    let mut succs = spare.pop().unwrap_or_default();
                    oracle.successors(w as u32, &mut succs);
                    call.push((w as u32, succs, 0));
                } else if on_stack[w] {
                    low[vu] = low[vu].min(order[w]);
                }
            } else {
                if low[vu] == order[vu] {
                    loop {
                        let w = stack.pop().expect("Tarjan stack holds v");
                        on_stack[w as usize] = false;
                        comp[w as usize] = comp_count;
                        if w == v {
                            break;
                        }
                    }
                    comp_count += 1;
                }
                let (_, buf, _) = call.pop().expect("frame present");
                spare.push(buf);
                if let Some(&mut (parent, _, _)) = call.last_mut() {
                    let pu = parent as usize;
                    low[pu] = low[pu].min(low[vu]);
                }
            }
        }
    }
    canonicalize(&mut comp, comp_count);
    comp
}

/// Renumbers raw component ids (each `< raw_count`) into the canonical
/// numbering: components in increasing order of their minimum state id.
fn canonicalize(comp: &mut [u32], raw_count: u32) {
    let mut remap = vec![UNASSIGNED; raw_count as usize];
    let mut next = 0u32;
    for c in comp.iter_mut() {
        debug_assert!(*c < raw_count, "every state is assigned");
        let slot = &mut remap[*c as usize];
        if *slot == UNASSIGNED {
            *slot = next;
            next += 1;
        }
        *c = *slot;
    }
}

/// Tries to claim `v` as a freshly peeled trivial SCC; returns whether
/// this caller won. Claiming is a two-step compare-exchange (`UNASSIGNED
/// → CLAIMED → id`) so component ids stay contiguous — both of a state's
/// degree counters can hit zero concurrently, and exactly one worker may
/// own the state.
fn try_claim(comp: &AtomicU32, next_comp: &AtomicU32) -> bool {
    if comp
        .compare_exchange(UNASSIGNED, CLAIMED, Ordering::Relaxed, Ordering::Relaxed)
        .is_ok()
    {
        comp.store(next_comp.fetch_add(1, Ordering::Relaxed), Ordering::Relaxed);
        true
    } else {
        false
    }
}

/// The trim pass, forward-only (see the module docs): one degree-seeding
/// sweep, then in-degree-0 wave peeling (a peeled state's regenerated
/// successors lose one live in-degree each), then up to
/// [`TRIM_OUT_PASSES`] out-degree recompute sweeps that peel any live
/// state whose successors are all dead. Every peeled state is provably
/// off every cycle, so each is its own trivial SCC and the un-peeled
/// remainder still contains every real SCC intact — the cap on the out
/// sweeps costs completeness of the *trim*, never correctness of the
/// condensation.
fn trim<O: SuccessorOracle + ?Sized>(
    oracle: &O,
    comp: &[AtomicU32],
    next_comp: &AtomicU32,
    threads: usize,
) {
    let n = comp.len();
    let outdeg: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
    let indeg: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
    // Degree-seeding sweep: one successor regeneration per state.
    let seed_chunk = |range: std::ops::Range<usize>, buf: &mut Vec<u32>| {
        for u in range {
            oracle.successors(u as u32, buf);
            outdeg[u].store(buf.len() as u32, Ordering::Relaxed);
            for &v in buf.iter() {
                indeg[v as usize].fetch_add(1, Ordering::Relaxed);
            }
        }
    };
    if threads <= 1 || n < PARALLEL_MIN_FRONTIER {
        seed_chunk(0..n, &mut Vec::new());
    } else {
        let chunk = n.div_ceil(threads);
        rayon::scope(|scope| {
            let mut start = 0;
            while start < n {
                let end = (start + chunk).min(n);
                let seed_chunk = &seed_chunk;
                scope.spawn(move || seed_chunk(start..end, &mut Vec::new()));
                start = end;
            }
        });
    }
    let mut frontier: Vec<u32> = (0..n)
        .filter(|&u| {
            (indeg[u].load(Ordering::Relaxed) == 0 || outdeg[u].load(Ordering::Relaxed) == 0)
                && try_claim(&comp[u], next_comp)
        })
        .map(|u| u as u32)
        .collect();
    // Peels one state: removing it decrements the live in-degree of its
    // regenerated successors; a counter hitting zero peels that neighbor
    // too (into the worker-local next wave). Counters of already-claimed
    // states may keep decrementing harmlessly — a claim happens at most
    // once per state.
    let peel = |u: u32, next: &mut Vec<u32>, buf: &mut Vec<u32>| {
        oracle.successors(u, buf);
        for &v in buf.iter() {
            if indeg[v as usize].fetch_sub(1, Ordering::Relaxed) == 1
                && try_claim(&comp[v as usize], next_comp)
            {
                next.push(v);
            }
        }
    };
    while !frontier.is_empty() {
        if threads <= 1 || frontier.len() < PARALLEL_MIN_FRONTIER {
            let mut next = Vec::new();
            let mut buf = Vec::new();
            for &u in &frontier {
                peel(u, &mut next, &mut buf);
            }
            frontier = next;
        } else {
            let chunk = frontier.len().div_ceil(threads);
            let mut next = Vec::new();
            rayon::scope(|scope| {
                let workers: Vec<_> = frontier
                    .chunks(chunk)
                    .map(|slice| {
                        let peel = &peel;
                        scope.spawn(move || {
                            let mut local = Vec::new();
                            let mut buf = Vec::new();
                            for &u in slice {
                                peel(u, &mut local, &mut buf);
                            }
                            local
                        })
                    })
                    .collect();
                for w in workers {
                    next.extend(w.join().expect("trim worker panicked"));
                }
            });
            frontier = next;
        }
    }
    // Out-degree recompute sweeps: a live state whose regenerated
    // successors are all claimed lies on no cycle and peels. Its
    // successors are all dead, so peeling it never enables an in-degree
    // peel — only further out sweeps. A state kept alive by a racing
    // claim is simply caught one sweep later (or by FB), so chunked
    // parallel sweeps stay partition-correct.
    let mut live: Vec<u32> = (0..n as u32)
        .filter(|&u| comp[u as usize].load(Ordering::Relaxed) == UNASSIGNED)
        .collect();
    let out_dead = |u: u32, buf: &mut Vec<u32>| -> bool {
        oracle.successors(u, buf);
        buf.iter()
            .all(|&v| comp[v as usize].load(Ordering::Relaxed) != UNASSIGNED)
            && try_claim(&comp[u as usize], next_comp)
    };
    for _ in 0..TRIM_OUT_PASSES {
        if live.is_empty() {
            break;
        }
        let before = live.len();
        if threads <= 1 || live.len() < PARALLEL_MIN_FRONTIER {
            let mut buf = Vec::new();
            live.retain(|&u| !out_dead(u, &mut buf));
        } else {
            let chunk = live.len().div_ceil(threads);
            let mut kept = Vec::new();
            rayon::scope(|scope| {
                let workers: Vec<_> = live
                    .chunks(chunk)
                    .map(|slice| {
                        let out_dead = &out_dead;
                        scope.spawn(move || {
                            let mut buf = Vec::new();
                            slice
                                .iter()
                                .copied()
                                .filter(|&u| !out_dead(u, &mut buf))
                                .collect::<Vec<u32>>()
                        })
                    })
                    .collect();
                for w in workers {
                    kept.extend(w.join().expect("trim worker panicked"));
                }
            });
            live = kept;
        }
        if live.len() == before {
            break;
        }
    }
}

/// Iterative Tarjan restricted to one FB slice: states are the ascending
/// `members`, edges are the regenerated successors whose targets still
/// carry this slice's id. `local_idx` maps a member's global id to its
/// position in `members` — a shared array, but each live slice owns its
/// states exclusively, so filling it here never races. Call frames own
/// their slice-filtered successor buffers (filled once per push,
/// recycled through a spare pool). Raw component ids come from the
/// shared counter; the final canonical renumbering makes the result
/// indistinguishable from settling the slice by more FB rounds.
#[allow(clippy::too_many_arguments)]
fn tarjan_slice<O: SuccessorOracle + ?Sized>(
    oracle: &O,
    slice_of: &[AtomicU32],
    local_idx: &[AtomicU32],
    sid: u32,
    members: &[u32],
    comp: &[AtomicU32],
    next_comp: &AtomicU32,
) {
    let m = members.len();
    for (i, &v) in members.iter().enumerate() {
        local_idx[v as usize].store(i as u32, Ordering::Relaxed);
    }
    let local = |v: u32| -> usize { local_idx[v as usize].load(Ordering::Relaxed) as usize };
    // Discovery indices, offset by one so 0 means "unvisited".
    let mut order = vec![0u32; m];
    let mut low = vec![0u32; m];
    let mut on_stack = vec![false; m];
    let mut stack: Vec<u32> = Vec::new();
    // Call frames: (local id, slice-local successor buffer, cursor).
    let mut call: Vec<(u32, Vec<u32>, usize)> = Vec::new();
    let mut spare: Vec<Vec<u32>> = Vec::new();
    let mut raw: Vec<u32> = Vec::new();
    // Fills a frame buffer with the *local* ids of the in-slice
    // successors of global state `vg`.
    let fill = |vg: u32, raw: &mut Vec<u32>, spare: &mut Vec<Vec<u32>>| -> Vec<u32> {
        oracle.successors(vg, raw);
        let mut buf = spare.pop().unwrap_or_default();
        buf.clear();
        buf.extend(
            raw.iter()
                .filter(|&&wg| slice_of[wg as usize].load(Ordering::Relaxed) == sid)
                .map(|&wg| local(wg) as u32),
        );
        buf
    };
    let mut next_order: u32 = 1;
    for root in 0..m {
        if order[root] != 0 {
            continue;
        }
        order[root] = next_order;
        low[root] = next_order;
        next_order += 1;
        stack.push(root as u32);
        on_stack[root] = true;
        let succs = fill(members[root], &mut raw, &mut spare);
        call.push((root as u32, succs, 0));
        while let Some(&mut (v, ref succs, ref mut cursor)) = call.last_mut() {
            let vl = v as usize;
            if *cursor < succs.len() {
                let w = succs[*cursor] as usize;
                *cursor += 1;
                if order[w] == 0 {
                    order[w] = next_order;
                    low[w] = next_order;
                    next_order += 1;
                    stack.push(w as u32);
                    on_stack[w] = true;
                    let succs = fill(members[w], &mut raw, &mut spare);
                    call.push((w as u32, succs, 0));
                } else if on_stack[w] {
                    low[vl] = low[vl].min(order[w]);
                }
            } else {
                if low[vl] == order[vl] {
                    let comp_id = next_comp.fetch_add(1, Ordering::Relaxed);
                    loop {
                        let w = stack.pop().expect("Tarjan stack holds v");
                        on_stack[w as usize] = false;
                        comp[members[w as usize] as usize].store(comp_id, Ordering::Relaxed);
                        if w == v {
                            break;
                        }
                    }
                }
                let (_, buf, _) = call.pop().expect("frame present");
                spare.push(buf);
                if let Some(&mut (parent, _, _)) = call.last_mut() {
                    let pl = parent as usize;
                    low[pl] = low[pl].min(low[vl]);
                }
            }
        }
    }
}

/// The Forward–Backward decomposition of everything the trim pass left
/// unassigned. Tasks (slices of states) sit on a shared work queue;
/// every task picks its **minimum state id** as pivot, marks the
/// pivot's forward- and backward-reachable sets within the slice, emits
/// the intersection as one SCC, and requeues the three difference
/// sub-slices. Each state belongs to exactly one live slice
/// (`slice_of`), so marks and component stores never race. Forward
/// reachability is a plain DFS over regenerated successors; backward
/// reachability is the monotone fixpoint described in the module docs.
fn forward_backward<O: SuccessorOracle + ?Sized>(
    oracle: &O,
    comp: &[AtomicU32],
    next_comp: &AtomicU32,
    threads: usize,
    serial_cutoff: usize,
) {
    let n = comp.len();
    let live: Vec<u32> = (0..n as u32)
        .filter(|&u| comp[u as usize].load(Ordering::Relaxed) == UNASSIGNED)
        .collect();
    if live.is_empty() {
        return;
    }
    let slice_of: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
    for &u in &live {
        slice_of[u as usize].store(1, Ordering::Relaxed);
    }
    let mark: Vec<AtomicU8> = (0..n).map(|_| AtomicU8::new(0)).collect();
    // Member-position scratch for the slice-local Tarjan passes; slices
    // are disjoint, so tasks only ever touch their own entries.
    let local_idx: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
    let queue: Mutex<Vec<FbTask>> = Mutex::new(vec![FbTask {
        sid: 1,
        members: live,
    }]);
    // Idle workers **block** on this condvar instead of spin-polling the
    // queue: with more workers than cores (or one giant early slice and
    // many workers), a yield-loop burns the very CPU the busy worker
    // needs — the `scc_vs_t1 ≈ 0.25` oracle-bench regression. Waiters
    // are woken on every task push and on the final pending-count
    // decrement.
    let idle = Condvar::new();
    let pending = AtomicUsize::new(1);
    let next_slice = AtomicU32::new(2);

    // Marks the forward-reachable set of `pivot` within slice `sid` with
    // `F`: DFS over regenerated successors. The mark bytes are shared
    // across tasks but each task owns its slice's states exclusively, so
    // plain load + store (no read-modify-write cycles on the hot edge
    // loop) is race-free.
    let reach_fwd = |sid: u32, pivot: u32, dfs: &mut Vec<u32>, buf: &mut Vec<u32>| {
        dfs.clear();
        dfs.push(pivot);
        let p = mark[pivot as usize].load(Ordering::Relaxed);
        mark[pivot as usize].store(p | F, Ordering::Relaxed);
        while let Some(v) = dfs.pop() {
            oracle.successors(v, buf);
            for &w in buf.iter() {
                let wu = w as usize;
                if slice_of[wu].load(Ordering::Relaxed) != sid {
                    continue;
                }
                let m = mark[wu].load(Ordering::Relaxed);
                if m & F == 0 {
                    mark[wu].store(m | F, Ordering::Relaxed);
                    dfs.push(w);
                }
            }
        }
    };
    // Marks the backward-reachable set of the pivot (already marked `B`)
    // within slice `sid`: monotone fixpoint over the slice's unresolved
    // members — a member joins B as soon as one regenerated successor is
    // in B — sweeping until a pass adds nothing. Marks set early in a
    // pass are visible later in the same pass; the fixpoint is the same
    // either way.
    let reach_bwd =
        |sid: u32, pivot: u32, members: &[u32], pool: &mut Vec<u32>, buf: &mut Vec<u32>| {
            let p = mark[pivot as usize].load(Ordering::Relaxed);
            mark[pivot as usize].store(p | B, Ordering::Relaxed);
            pool.clear();
            pool.extend(members.iter().copied().filter(|&v| v != pivot));
            loop {
                let before = pool.len();
                pool.retain(|&v| {
                    oracle.successors(v, buf);
                    let hits = buf.iter().any(|&w| {
                        slice_of[w as usize].load(Ordering::Relaxed) == sid
                            && mark[w as usize].load(Ordering::Relaxed) & B != 0
                    });
                    if hits {
                        let m = mark[v as usize].load(Ordering::Relaxed);
                        mark[v as usize].store(m | B, Ordering::Relaxed);
                    }
                    !hits
                });
                if pool.len() == before {
                    break;
                }
            }
        };
    let worker = || {
        let mut dfs: Vec<u32> = Vec::new();
        let mut buf: Vec<u32> = Vec::new();
        let mut pool: Vec<u32> = Vec::new();
        loop {
            let task = {
                let mut q = queue.lock().expect("FB queue");
                loop {
                    if let Some(t) = q.pop() {
                        break Some(t);
                    }
                    if pending.load(Ordering::Relaxed) == 0 {
                        break None;
                    }
                    q = idle.wait(q).expect("FB queue");
                }
            };
            let Some(FbTask { sid, members }) = task else {
                // Every in-flight task has completed and the queue is
                // drained; wake the remaining sleepers so they observe the
                // same and exit.
                idle.notify_all();
                break;
            };
            // Small slices finish with slice-local Tarjan instead of more
            // FB rounds: a chain of small SCCs would otherwise requeue its
            // "rest" slice once per component (quadratic in the chain
            // length), while one serial pass settles the whole slice in
            // O(slice). Different workers still take different slices, so
            // the cutoff costs no parallelism at scale — and the partition
            // is the same either way, so (with canonical renumbering) the
            // output stays bit-identical.
            if members.len() <= serial_cutoff.max(1) {
                tarjan_slice(
                    oracle, &slice_of, &local_idx, sid, &members, comp, next_comp,
                );
                if pending.fetch_sub(1, Ordering::Relaxed) == 1 {
                    // Last task done. Take the lock before notifying so a
                    // waiter is either not yet waiting (and will see
                    // pending == 0 under the lock) or already parked (and
                    // receives this wakeup) — no lost-wakeup window.
                    let _q = queue.lock().expect("FB queue");
                    idle.notify_all();
                }
                continue;
            }
            let comp_id = next_comp.fetch_add(1, Ordering::Relaxed);
            // Members are ascending, so members[0] is the deterministic
            // minimum-id pivot (the rule the cross-thread contract rests
            // on).
            let pivot = members[0];
            reach_fwd(sid, pivot, &mut dfs, &mut buf);
            reach_bwd(sid, pivot, &members, &mut pool, &mut buf);
            let mut fwd: Vec<u32> = Vec::new();
            let mut bwd: Vec<u32> = Vec::new();
            let mut rest: Vec<u32> = Vec::new();
            for &v in &members {
                let vu = v as usize;
                match mark[vu].load(Ordering::Relaxed) & (F | B) {
                    m if m == F | B => comp[vu].store(comp_id, Ordering::Relaxed),
                    m if m == F => fwd.push(v),
                    m if m == B => bwd.push(v),
                    _ => rest.push(v),
                }
            }
            let mut spawned: Vec<FbTask> = Vec::with_capacity(3);
            for sub in [fwd, bwd, rest] {
                if sub.is_empty() {
                    continue;
                }
                let nsid = next_slice.fetch_add(1, Ordering::Relaxed);
                for &v in &sub {
                    slice_of[v as usize].store(nsid, Ordering::Relaxed);
                    mark[v as usize].store(0, Ordering::Relaxed);
                }
                pending.fetch_add(1, Ordering::Relaxed);
                spawned.push(FbTask {
                    sid: nsid,
                    members: sub,
                });
            }
            if !spawned.is_empty() {
                queue.lock().expect("FB queue").extend(spawned);
                idle.notify_all();
            }
            if pending.fetch_sub(1, Ordering::Relaxed) == 1 {
                let _q = queue.lock().expect("FB queue");
                idle.notify_all();
            }
        }
    };
    if threads <= 1 {
        worker();
    } else {
        rayon::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(worker);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// CSR arrays from an explicit edge list (n states).
    fn csr(n: usize, edges: &[(u32, u32)]) -> (Vec<usize>, Vec<u32>) {
        let mut offsets = vec![0usize; n + 1];
        for &(u, _) in edges {
            offsets[u as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut cursor = offsets[..n].to_vec();
        let mut targets = vec![0u32; edges.len()];
        for &(u, v) in edges {
            targets[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
        }
        (offsets, targets)
    }

    fn all_agree(n: usize, edges: &[(u32, u32)]) -> Vec<u32> {
        let (offsets, targets) = csr(n, edges);
        let reference = tarjan(&offsets, &targets);
        // A closure-backed oracle over the same graph: the CSR adapters
        // and the implicit-graph path must be indistinguishable.
        let adj: Vec<Vec<u32>> = (0..n)
            .map(|u| targets[offsets[u]..offsets[u + 1]].to_vec())
            .collect();
        let implicit = from_fn(n, |u, out: &mut Vec<u32>| {
            out.clear();
            out.extend_from_slice(&adj[u as usize]);
        });
        assert_eq!(tarjan_oracle(&implicit), reference, "oracle Tarjan");
        for threads in [1, 2, 4] {
            assert_eq!(
                condense(&offsets, &targets, threads),
                reference,
                "threads = {threads}"
            );
            assert_eq!(
                condense_oracle_with(&implicit, threads, usize::MAX),
                reference,
                "implicit oracle, threads = {threads}"
            );
            // Cutoff 0 forces pure Forward–Backward (no slice-local
            // Tarjan), which must settle on the same answer.
            assert_eq!(
                condense_with(&offsets, &targets, threads, 0),
                reference,
                "pure FB, threads = {threads}"
            );
        }
        reference
    }

    #[test]
    fn empty_graph_has_no_components() {
        assert_eq!(condense(&[0], &[], 1), Vec::<u32>::new());
        assert_eq!(tarjan(&[0], &[]), Vec::<u32>::new());
    }

    #[test]
    fn isolated_states_are_singletons_in_id_order() {
        let comp = all_agree(4, &[]);
        assert_eq!(comp, vec![0, 1, 2, 3]);
    }

    #[test]
    fn self_loop_is_a_singleton_component() {
        let comp = all_agree(3, &[(0, 1), (1, 1), (1, 2)]);
        assert_eq!(comp, vec![0, 1, 2]);
    }

    #[test]
    fn cycle_is_one_component() {
        let comp = all_agree(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        assert_eq!(comp, vec![0; 5]);
    }

    #[test]
    fn two_cycles_bridged_are_two_components() {
        let comp = all_agree(4, &[(0, 1), (1, 0), (1, 2), (2, 3), (3, 2)]);
        assert_eq!(comp, vec![0, 0, 1, 1]);
    }

    #[test]
    fn dag_numbering_is_identity() {
        // Canonical numbering orders components by minimum state id, so a
        // DAG of singletons numbers as the identity.
        let comp = all_agree(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        assert_eq!(comp, vec![0, 1, 2, 3]);
    }

    #[test]
    fn trim_tail_into_cycle() {
        // 0 → 1 → {2 ⇄ 3} → 4: ends trim away, the 2-cycle survives.
        let comp = all_agree(5, &[(0, 1), (1, 2), (2, 3), (3, 2), (3, 4)]);
        assert_eq!(comp, vec![0, 1, 2, 2, 3]);
    }

    #[test]
    fn dag_of_cliques() {
        // Two 3-cliques (strongly connected) joined by one-way edges.
        let mut edges = Vec::new();
        for a in 0..3u32 {
            for b in 0..3u32 {
                if a != b {
                    edges.push((a, b));
                    edges.push((a + 3, b + 3));
                }
            }
        }
        edges.push((2, 3));
        edges.push((0, 4));
        let comp = all_agree(6, &edges);
        assert_eq!(comp, vec![0, 0, 0, 1, 1, 1]);
    }

    #[test]
    fn long_dead_out_tail_exceeding_the_sweep_cap() {
        // A 2-cycle feeding a long one-way tail: every tail state has
        // in-degree 1 (never in-peels) and the tail dies back one state
        // per out sweep — far more states than TRIM_OUT_PASSES, so the
        // capped trim must hand the leftovers to FB/Tarjan intact.
        let mut edges = vec![(0u32, 1u32), (1, 0), (1, 2)];
        edges.extend((2..40u32).map(|u| (u, u + 1)));
        let comp = all_agree(41, &edges);
        assert_eq!(comp[0], 0);
        assert_eq!(comp[1], 0);
        let expected: Vec<u32> = (1..40).collect();
        assert_eq!(&comp[2..], &expected[..]);
    }

    #[test]
    fn small_graphs_run_single_worker() {
        assert_eq!(effective_workers(PARALLEL_MIN_STATES - 1, 4), 1);
        assert_eq!(effective_workers(PARALLEL_MIN_STATES - 1, 0), 1);
        // Large graphs honor the request up to the machine's available
        // parallelism — never beyond it (oversubscription does extra FB
        // work with no cores to run it on).
        let cores = rayon::current_num_threads();
        assert_eq!(effective_workers(PARALLEL_MIN_STATES, 4), 4.min(cores));
        assert_eq!(effective_workers(PARALLEL_MIN_STATES, cores), cores);
        assert_eq!(effective_workers(PARALLEL_MIN_STATES, 0), cores);
    }

    #[test]
    fn zero_threads_means_available_parallelism() {
        let (offsets, targets) = csr(3, &[(0, 1), (1, 2), (2, 0)]);
        assert_eq!(condense(&offsets, &targets, 0), vec![0, 0, 0]);
    }
}
