//! Reaction functions `δᵢ : Σ⁻ⁱ × X → Σ⁺ⁱ × Y`.
//!
//! A reaction is a *pure* function: it borrows itself immutably, so the type
//! system enforces the statelessness restriction of the model — a node can
//! react only to what it currently sees on its incoming edges, never to
//! anything it remembers.

use crate::label::Label;
use crate::{Input, NodeId, Output};

/// A node's reaction function.
///
/// `incoming` is ordered like
/// [`DiGraph::in_edges`](crate::graph::DiGraph::in_edges) for the node, and
/// the returned outgoing vector must be ordered like
/// [`DiGraph::out_edges`](crate::graph::DiGraph::out_edges) and have exactly
/// the node's out-degree (the engine validates this).
///
/// Implementations must be deterministic: the model's global transition
/// `(ℓᵗ, yᵗ) = δ(ℓᵗ⁻¹, x, σ(t))` is a function, and the exact verification
/// algorithms in `stabilization-verify` rely on it.
///
/// # Examples
///
/// ```
/// use stateless_core::reaction::{FnReaction, Reaction};
///
/// // A relay node on a unidirectional ring: forward the incoming label,
/// // output its value.
/// let relay = FnReaction::new(|_node, incoming: &[u64], _input| {
///     (vec![incoming[0]], incoming[0])
/// });
/// let (out, y) = relay.react(3, &[42], 0);
/// assert_eq!(out, vec![42]);
/// assert_eq!(y, 42);
/// ```
pub trait Reaction<L: Label>: Send + Sync {
    /// Maps the node's incoming labels and private input to outgoing labels
    /// and an output value.
    fn react(&self, node: NodeId, incoming: &[L], input: Input) -> (Vec<L>, Output);

    /// Allocation-free variant of [`react`](Reaction::react): writes the
    /// outgoing labels into `outgoing` (a buffer of exactly the node's
    /// out-degree) instead of returning a fresh `Vec`.
    ///
    /// This is the entry point the simulation hot paths call. The
    /// buffer's initial contents are **unspecified** — the engine may
    /// hand over the node's current outgoing labels or a recycled buffer
    /// from an earlier round (whose heap capacity in-place
    /// implementations can reuse) — so implementations must write every
    /// slot.
    ///
    /// The default implementation delegates to `react`, so existing
    /// reactions keep working unchanged; hot reactions override it (or use
    /// [`FnBufReaction`]) to avoid the per-activation `Vec` allocation.
    ///
    /// # Panics
    ///
    /// The default implementation panics if `react` returns a number of
    /// labels different from `outgoing.len()` — a bug in the reaction, the
    /// buffered analogue of
    /// [`CoreError::WrongOutgoingArity`](crate::CoreError::WrongOutgoingArity).
    fn react_into(&self, node: NodeId, incoming: &[L], input: Input, outgoing: &mut [L]) -> Output {
        let (out, y) = self.react(node, incoming, input);
        assert_eq!(
            out.len(),
            outgoing.len(),
            "reaction of node {node} returned {} outgoing labels, expected {}",
            out.len(),
            outgoing.len()
        );
        for (slot, v) in outgoing.iter_mut().zip(out) {
            *slot = v;
        }
        y
    }
}

/// Adapts a closure into a [`Reaction`].
///
/// This is the workhorse for building protocols; see the crate-level
/// example. The wrapped closure must be deterministic.
pub struct FnReaction<F> {
    f: F,
}

impl<F> FnReaction<F> {
    /// Wraps `f` as a reaction function.
    pub fn new(f: F) -> Self {
        FnReaction { f }
    }
}

impl<F> std::fmt::Debug for FnReaction<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnReaction").finish_non_exhaustive()
    }
}

impl<L, F> Reaction<L> for FnReaction<F>
where
    L: Label,
    F: Fn(NodeId, &[L], Input) -> (Vec<L>, Output) + Send + Sync,
{
    fn react(&self, node: NodeId, incoming: &[L], input: Input) -> (Vec<L>, Output) {
        (self.f)(node, incoming, input)
    }
}

/// A reaction that repeats one constant label on all outgoing edges and
/// outputs a constant — useful as a placeholder and in tests.
#[derive(Debug, Clone)]
pub struct ConstReaction<L> {
    label: L,
    output: Output,
    out_degree: usize,
}

impl<L: Label> ConstReaction<L> {
    /// Creates a reaction that always emits `label` on each of the node's
    /// `out_degree` outgoing edges and outputs `output`.
    pub fn new(label: L, output: Output, out_degree: usize) -> Self {
        ConstReaction {
            label,
            output,
            out_degree,
        }
    }
}

impl<L: Label> Reaction<L> for ConstReaction<L> {
    fn react(&self, _node: NodeId, _incoming: &[L], _input: Input) -> (Vec<L>, Output) {
        (vec![self.label.clone(); self.out_degree], self.output)
    }

    fn react_into(
        &self,
        _node: NodeId,
        _incoming: &[L],
        _input: Input,
        outgoing: &mut [L],
    ) -> Output {
        // Same hard arity check as the allocating path (which returns
        // WrongOutgoingArity): a declared-degree mismatch must not pass
        // silently on the buffered path.
        assert_eq!(
            outgoing.len(),
            self.out_degree,
            "ConstReaction of node {_node} declared out-degree {}, node has out-degree {}",
            self.out_degree,
            outgoing.len()
        );
        outgoing.fill(self.label.clone());
        self.output
    }
}

/// Adapts a *buffer-writing* closure into a [`Reaction`] — the
/// zero-allocation counterpart of [`FnReaction`].
///
/// The closure receives the outgoing-label buffer as `&mut [L]` (exactly
/// the node's out-degree, ordered like
/// [`DiGraph::out_edges`](crate::graph::DiGraph::out_edges)) and must
/// write **every** slot; it returns only the output value. `template` is
/// the buffer the legacy [`react`](Reaction::react) path starts from (any
/// labeling of the right arity works — its values are fully overwritten by
/// a conforming closure) and doubles as the arity declaration.
///
/// # Examples
///
/// ```
/// use stateless_core::reaction::{FnBufReaction, Reaction};
///
/// // A relay node on a unidirectional ring, allocation-free.
/// let relay = FnBufReaction::new(vec![0u64], |_node, incoming: &[u64], _x, out: &mut [u64]| {
///     out[0] = incoming[0];
///     incoming[0]
/// });
/// let mut buf = [0u64];
/// let y = relay.react_into(3, &[42], 0, &mut buf);
/// assert_eq!(buf, [42]);
/// assert_eq!(y, 42);
/// // The legacy allocating path delegates to the same closure.
/// assert_eq!(relay.react(3, &[7], 0), (vec![7], 7));
/// ```
pub struct FnBufReaction<L, F> {
    template: Vec<L>,
    f: F,
}

impl<L: Label, F> FnBufReaction<L, F> {
    /// Wraps `f` as a buffered reaction of arity `template.len()`.
    pub fn new(template: Vec<L>, f: F) -> Self {
        FnBufReaction { template, f }
    }
}

impl<L, F> std::fmt::Debug for FnBufReaction<L, F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnBufReaction")
            .field("out_degree", &self.template.len())
            .finish_non_exhaustive()
    }
}

impl<L, F> Reaction<L> for FnBufReaction<L, F>
where
    L: Label,
    F: Fn(NodeId, &[L], Input, &mut [L]) -> Output + Send + Sync,
{
    fn react(&self, node: NodeId, incoming: &[L], input: Input) -> (Vec<L>, Output) {
        let mut outgoing = self.template.clone();
        let y = (self.f)(node, incoming, input, &mut outgoing);
        (outgoing, y)
    }

    fn react_into(&self, node: NodeId, incoming: &[L], input: Input, outgoing: &mut [L]) -> Output {
        // Hard check (the allocating path validates arity on every call
        // too): a template/out-degree mismatch is a protocol construction
        // bug that would otherwise silently leave edges unwritten.
        assert_eq!(
            outgoing.len(),
            self.template.len(),
            "FnBufReaction of node {node} declared arity {}, node has out-degree {}",
            self.template.len(),
            outgoing.len()
        );
        (self.f)(node, incoming, input, outgoing)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_reaction_passes_node_and_input_through() {
        let r = FnReaction::new(|node, incoming: &[u64], input| {
            (vec![input + node as u64], incoming.len() as u64)
        });
        let (out, y) = r.react(2, &[9, 9, 9], 40);
        assert_eq!(out, vec![42]);
        assert_eq!(y, 3);
    }

    #[test]
    fn const_reaction_ignores_everything() {
        let r = ConstReaction::new(true, 1, 3);
        let (out, y) = r.react(0, &[false, false], 99);
        assert_eq!(out, vec![true, true, true]);
        assert_eq!(y, 1);
    }

    #[test]
    fn reactions_are_object_safe() {
        let boxed: Box<dyn Reaction<bool>> = Box::new(ConstReaction::new(false, 0, 1));
        let (out, _) = boxed.react(0, &[], 0);
        assert_eq!(out, vec![false]);
    }

    #[test]
    fn default_react_into_delegates_to_react() {
        let r = FnReaction::new(|_, incoming: &[u64], input| {
            (vec![input, incoming[0]], incoming[0] + input)
        });
        let mut buf = [99u64, 99];
        let y = r.react_into(0, &[5], 7, &mut buf);
        assert_eq!(buf, [7, 5]);
        assert_eq!(y, 12);
    }

    #[test]
    #[should_panic(expected = "returned 1 outgoing labels, expected 2")]
    fn default_react_into_panics_on_wrong_arity() {
        let r = FnReaction::new(|_, _: &[u64], _| (vec![1], 0));
        let mut buf = [0u64, 0];
        r.react_into(0, &[], 0, &mut buf);
    }

    #[test]
    fn const_react_into_fills_buffer() {
        let r = ConstReaction::new(true, 9, 3);
        let mut buf = [false; 3];
        let y = r.react_into(0, &[], 0, &mut buf);
        assert_eq!(buf, [true; 3]);
        assert_eq!(y, 9);
    }

    #[test]
    fn buffered_and_allocating_paths_agree() {
        let buffered =
            FnBufReaction::new(vec![false; 2], |_, inc: &[bool], x, out: &mut [bool]| {
                let b = x == 1 || inc.iter().any(|&v| v);
                out.fill(b);
                u64::from(b)
            });
        let (out, y) = buffered.react(1, &[false, true], 0);
        assert_eq!(out, vec![true, true]);
        assert_eq!(y, 1);
        let mut buf = [false; 2];
        let y2 = buffered.react_into(1, &[false, true], 0, &mut buf);
        assert_eq!((buf.to_vec(), y2), (out, y));
    }
}
