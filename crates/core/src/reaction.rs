//! Reaction functions `δᵢ : Σ⁻ⁱ × X → Σ⁺ⁱ × Y`.
//!
//! A reaction is a *pure* function: it borrows itself immutably, so the type
//! system enforces the statelessness restriction of the model — a node can
//! react only to what it currently sees on its incoming edges, never to
//! anything it remembers.

use crate::label::Label;
use crate::{Input, NodeId, Output};

/// A node's reaction function.
///
/// `incoming` is ordered like
/// [`DiGraph::in_edges`](crate::graph::DiGraph::in_edges) for the node, and
/// the returned outgoing vector must be ordered like
/// [`DiGraph::out_edges`](crate::graph::DiGraph::out_edges) and have exactly
/// the node's out-degree (the engine validates this).
///
/// Implementations must be deterministic: the model's global transition
/// `(ℓᵗ, yᵗ) = δ(ℓᵗ⁻¹, x, σ(t))` is a function, and the exact verification
/// algorithms in `stabilization-verify` rely on it.
///
/// # Examples
///
/// ```
/// use stateless_core::reaction::{FnReaction, Reaction};
///
/// // A relay node on a unidirectional ring: forward the incoming label,
/// // output its value.
/// let relay = FnReaction::new(|_node, incoming: &[u64], _input| {
///     (vec![incoming[0]], incoming[0])
/// });
/// let (out, y) = relay.react(3, &[42], 0);
/// assert_eq!(out, vec![42]);
/// assert_eq!(y, 42);
/// ```
pub trait Reaction<L: Label>: Send + Sync {
    /// Maps the node's incoming labels and private input to outgoing labels
    /// and an output value.
    fn react(&self, node: NodeId, incoming: &[L], input: Input) -> (Vec<L>, Output);
}

/// Adapts a closure into a [`Reaction`].
///
/// This is the workhorse for building protocols; see the crate-level
/// example. The wrapped closure must be deterministic.
pub struct FnReaction<F> {
    f: F,
}

impl<F> FnReaction<F> {
    /// Wraps `f` as a reaction function.
    pub fn new(f: F) -> Self {
        FnReaction { f }
    }
}

impl<F> std::fmt::Debug for FnReaction<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnReaction").finish_non_exhaustive()
    }
}

impl<L, F> Reaction<L> for FnReaction<F>
where
    L: Label,
    F: Fn(NodeId, &[L], Input) -> (Vec<L>, Output) + Send + Sync,
{
    fn react(&self, node: NodeId, incoming: &[L], input: Input) -> (Vec<L>, Output) {
        (self.f)(node, incoming, input)
    }
}

/// A reaction that repeats one constant label on all outgoing edges and
/// outputs a constant — useful as a placeholder and in tests.
#[derive(Debug, Clone)]
pub struct ConstReaction<L> {
    label: L,
    output: Output,
    out_degree: usize,
}

impl<L: Label> ConstReaction<L> {
    /// Creates a reaction that always emits `label` on each of the node's
    /// `out_degree` outgoing edges and outputs `output`.
    pub fn new(label: L, output: Output, out_degree: usize) -> Self {
        ConstReaction { label, output, out_degree }
    }
}

impl<L: Label> Reaction<L> for ConstReaction<L> {
    fn react(&self, _node: NodeId, _incoming: &[L], _input: Input) -> (Vec<L>, Output) {
        (vec![self.label.clone(); self.out_degree], self.output)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_reaction_passes_node_and_input_through() {
        let r = FnReaction::new(|node, incoming: &[u64], input| {
            (vec![input + node as u64], incoming.len() as u64)
        });
        let (out, y) = r.react(2, &[9, 9, 9], 40);
        assert_eq!(out, vec![42]);
        assert_eq!(y, 3);
    }

    #[test]
    fn const_reaction_ignores_everything() {
        let r = ConstReaction::new(true, 1, 3);
        let (out, y) = r.react(0, &[false, false], 99);
        assert_eq!(out, vec![true, true, true]);
        assert_eq!(y, 1);
    }

    #[test]
    fn reactions_are_object_safe() {
        let boxed: Box<dyn Reaction<bool>> = Box::new(ConstReaction::new(false, 0, 1));
        let (out, _) = boxed.react(0, &[], 0);
        assert_eq!(out, vec![false]);
    }
}
