//! Crash-safe checkpoint storage: checksummed segment files with epoch
//! rotation and an atomically-renamed manifest.
//!
//! A [`CheckpointStore`] owns one directory of numbered *epoch* files
//! (`epoch-<k>.ckpt`), each a sequence of framed segments:
//!
//! ```text
//! [tag: u32 LE][payload len: u64 LE][checksum: u64 LE][payload bytes]
//! ```
//!
//! The checksum is a seeded 64-bit [`FxHasher`] digest over the payload
//! (seeded with the tag and length, so a truncated or zero-padded
//! payload never checks out). Epoch files are written to a `.tmp` path
//! and atomically renamed on [`commit`](CheckpointStore::commit), and
//! the `MANIFEST` listing committed epochs is itself checksummed and
//! written tmp-then-rename — so a torn write at *any* point leaves
//! either the previous manifest or a manifest whose newest epoch fails
//! validation, and [`latest_valid_epoch`](CheckpointStore::latest_valid_epoch)
//! falls back to the newest epoch whose every segment still verifies.
//!
//! The store is deliberately dumb about payload *meaning*: segment tags
//! and their contents belong to the caller (the product-graph explorer
//! in `stabilization-verify` streams its shard arenas through here).
//! What the store guarantees is framing: a reader either gets back the
//! exact bytes that were committed, or a typed
//! [`CheckpointError::Corrupt`] — never silently wrong data.

use std::fmt;
use std::fs::{self, File};
use std::hash::Hasher;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use crate::intern::FxHasher;

/// Errors from checkpoint storage.
#[derive(Debug)]
pub enum CheckpointError {
    /// An underlying filesystem operation failed.
    Io {
        /// The failed operation and path, with the OS error.
        what: String,
    },
    /// A segment or manifest failed its checksum / framing validation.
    Corrupt {
        /// What failed to validate, and where.
        what: String,
    },
    /// A required file or epoch does not exist.
    Missing {
        /// What was looked for.
        what: String,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io { what } => write!(f, "checkpoint I/O failed: {what}"),
            CheckpointError::Corrupt { what } => write!(f, "checkpoint corrupt: {what}"),
            CheckpointError::Missing { what } => write!(f, "checkpoint missing: {what}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Wraps an [`std::io::Error`] with the operation and path it hit.
fn io_err(op: &str, path: &Path, e: std::io::Error) -> CheckpointError {
    CheckpointError::Io {
        what: format!("{op} {}: {e}", path.display()),
    }
}

/// The segment checksum: a seeded [`FxHasher`] digest of the payload,
/// seeded with the tag and payload length so frames are not
/// interchangeable and truncation never checks out.
fn segment_checksum(tag: u32, payload: &[u8]) -> u64 {
    let mut h = FxHasher::seeded((u64::from(tag) << 32) ^ payload.len() as u64);
    h.write(payload);
    h.finish()
}

/// Largest payload a single segment may carry; a corrupt length field
/// past this is rejected before any allocation is attempted.
const MAX_SEGMENT_BYTES: u64 = 1 << 31;

/// First line of a manifest / magic guard of both file formats.
const MANIFEST_MAGIC: &str = "stateless-checkpoint v1";

/// A directory of checkpoint epochs. See the [module docs](self).
#[derive(Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
}

impl CheckpointStore {
    /// Opens (creating if needed) the checkpoint directory `dir`.
    ///
    /// Stale `*.tmp` files — an epoch or manifest whose writer died
    /// between [`begin_epoch`](CheckpointStore::begin_epoch) and the
    /// atomic rename in [`commit`](CheckpointStore::commit) — are swept
    /// on open: they were never published (commit renames before the
    /// manifest mentions them), so removing them loses nothing, and
    /// leaving them would accumulate orphans across crashes. Only this
    /// store's own naming patterns (`epoch-*.ckpt.tmp`, `MANIFEST.tmp`)
    /// are touched; removal is best-effort (a file another process just
    /// renamed away is not an error).
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] if the directory cannot be created or
    /// listed.
    pub fn open(dir: &Path) -> Result<Self, CheckpointError> {
        fs::create_dir_all(dir).map_err(|e| io_err("create dir", dir, e))?;
        let entries = fs::read_dir(dir).map_err(|e| io_err("read dir", dir, e))?;
        for entry in entries {
            let entry = entry.map_err(|e| io_err("read dir", dir, e))?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            let orphaned_epoch = name.starts_with("epoch-") && name.ends_with(".ckpt.tmp");
            if orphaned_epoch || name == "MANIFEST.tmp" {
                let _ = fs::remove_file(entry.path());
            }
        }
        Ok(CheckpointStore {
            dir: dir.to_path_buf(),
        })
    }

    /// The directory this store writes into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The path of epoch `epoch`'s file (whether or not it exists).
    pub fn epoch_path(&self, epoch: u64) -> PathBuf {
        self.dir.join(format!("epoch-{epoch}.ckpt"))
    }

    /// Starts writing epoch `epoch` (to a `.tmp` path; nothing is
    /// visible until [`commit`](CheckpointStore::commit)).
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] if the temp file cannot be created.
    pub fn begin_epoch(&self, epoch: u64) -> Result<SegmentWriter, CheckpointError> {
        let dest = self.epoch_path(epoch);
        let tmp = self.dir.join(format!("epoch-{epoch}.ckpt.tmp"));
        let file = File::create(&tmp).map_err(|e| io_err("create", &tmp, e))?;
        Ok(SegmentWriter {
            file: BufWriter::new(file),
            tmp,
            dest,
            epoch,
            buf: Vec::new(),
            open_tag: None,
        })
    }

    /// Commits a finished epoch: flushes and atomically renames its
    /// file into place, rewrites the manifest (tmp-then-rename), and
    /// prunes all but the newest `retain` epochs.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] on any filesystem failure; the previous
    /// manifest and epochs are untouched in that case.
    pub fn commit(&self, writer: SegmentWriter, retain: usize) -> Result<(), CheckpointError> {
        let epoch = writer.epoch;
        let (tmp, dest) = (writer.tmp.clone(), writer.dest.clone());
        writer.finish()?;
        fs::rename(&tmp, &dest).map_err(|e| io_err("rename", &dest, e))?;
        let mut epochs = self.epochs()?;
        if !epochs.contains(&epoch) {
            epochs.push(epoch);
            epochs.sort_unstable();
        }
        // Prune: drop the oldest epochs past the retention count, then
        // publish the manifest naming the survivors.
        let retain = retain.max(1);
        while epochs.len() > retain {
            let old = epochs.remove(0);
            let path = self.epoch_path(old);
            fs::remove_file(&path).map_err(|e| io_err("remove", &path, e))?;
        }
        self.write_manifest(&epochs)
    }

    /// The committed epochs, ascending. Read from the checksummed
    /// manifest; if the manifest is missing or fails validation (a torn
    /// write), falls back to scanning the directory for epoch files —
    /// each epoch still validates independently, so the fallback can
    /// list but never *load* a bad epoch.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] if the directory cannot be read.
    pub fn epochs(&self) -> Result<Vec<u64>, CheckpointError> {
        if let Some(listed) = self.manifest_epochs() {
            return Ok(listed);
        }
        let mut found = Vec::new();
        let entries = fs::read_dir(&self.dir).map_err(|e| io_err("read dir", &self.dir, e))?;
        for entry in entries {
            let entry = entry.map_err(|e| io_err("read dir", &self.dir, e))?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(num) = name
                .strip_prefix("epoch-")
                .and_then(|s| s.strip_suffix(".ckpt"))
            {
                if let Ok(epoch) = num.parse::<u64>() {
                    found.push(epoch);
                }
            }
        }
        found.sort_unstable();
        Ok(found)
    }

    /// The newest epoch whose file fully validates (every segment's
    /// framing and checksum), or `None` if no epoch does. This is the
    /// torn-write recovery path: a corrupted newest epoch is skipped
    /// and the previous one wins.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] if the directory cannot be listed.
    pub fn latest_valid_epoch(&self) -> Result<Option<u64>, CheckpointError> {
        for &epoch in self.epochs()?.iter().rev() {
            if self.validate_epoch(epoch).is_ok() {
                return Ok(Some(epoch));
            }
        }
        Ok(None)
    }

    /// Validates every segment of epoch `epoch`.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Missing`] if the file does not exist,
    /// [`CheckpointError::Corrupt`] naming the first bad segment.
    pub fn validate_epoch(&self, epoch: u64) -> Result<(), CheckpointError> {
        let mut reader = self.open_epoch(epoch)?;
        while reader.next_segment()?.is_some() {}
        Ok(())
    }

    /// Opens epoch `epoch` for segment-by-segment reading.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Missing`] if the epoch file does not exist,
    /// [`CheckpointError::Io`] on open failure.
    pub fn open_epoch(&self, epoch: u64) -> Result<SegmentReader, CheckpointError> {
        let path = self.epoch_path(epoch);
        if !path.exists() {
            return Err(CheckpointError::Missing {
                what: format!("epoch file {}", path.display()),
            });
        }
        let file = File::open(&path).map_err(|e| io_err("open", &path, e))?;
        let len = file.metadata().map_err(|e| io_err("stat", &path, e))?.len();
        Ok(SegmentReader {
            file: BufReader::new(file),
            path,
            remaining: len,
        })
    }

    /// The largest segment payload (bytes) in epoch `epoch` — the
    /// transient buffer a writer or loader of this epoch needs; the
    /// bench harness reports it as the checkpoint scratch figure.
    ///
    /// # Errors
    ///
    /// As for [`open_epoch`](CheckpointStore::open_epoch), plus
    /// [`CheckpointError::Corrupt`] if any segment fails validation.
    pub fn max_segment_bytes(&self, epoch: u64) -> Result<usize, CheckpointError> {
        let mut reader = self.open_epoch(epoch)?;
        let mut max = 0usize;
        while let Some(seg) = reader.next_segment()? {
            max = max.max(seg.payload.len());
        }
        Ok(max)
    }

    fn manifest_path(&self) -> PathBuf {
        self.dir.join("MANIFEST")
    }

    /// Parses the manifest; `None` when missing or failing validation
    /// (callers fall back to the directory scan).
    fn manifest_epochs(&self) -> Option<Vec<u64>> {
        let text = fs::read_to_string(self.manifest_path()).ok()?;
        let (body, checksum_line) = text.trim_end().rsplit_once('\n')?;
        let stated = checksum_line.strip_prefix("checksum ")?;
        let actual = segment_checksum(0, body.as_bytes());
        if stated != format!("{actual:016x}") {
            return None;
        }
        let mut lines = body.lines();
        if lines.next() != Some(MANIFEST_MAGIC) {
            return None;
        }
        let mut epochs = Vec::new();
        for line in lines {
            epochs.push(line.strip_prefix("epoch ")?.parse().ok()?);
        }
        epochs.sort_unstable();
        Some(epochs)
    }

    fn write_manifest(&self, epochs: &[u64]) -> Result<(), CheckpointError> {
        let mut body = String::from(MANIFEST_MAGIC);
        for &e in epochs {
            body.push_str(&format!("\nepoch {e}"));
        }
        let checksum = segment_checksum(0, body.as_bytes());
        let text = format!("{body}\nchecksum {checksum:016x}\n");
        let tmp = self.dir.join("MANIFEST.tmp");
        fs::write(&tmp, text).map_err(|e| io_err("write", &tmp, e))?;
        let dest = self.manifest_path();
        fs::rename(&tmp, &dest).map_err(|e| io_err("rename", &dest, e))
    }
}

/// Writes framed segments into one (uncommitted) epoch file. Payloads
/// are accumulated per segment in a reusable buffer, framed with the
/// tag, length, and checksum on [`end_segment`](SegmentWriter::end_segment),
/// and streamed through a [`BufWriter`] — the peak transient is one
/// segment's payload, never the whole epoch.
#[derive(Debug)]
pub struct SegmentWriter {
    file: BufWriter<File>,
    tmp: PathBuf,
    dest: PathBuf,
    epoch: u64,
    buf: Vec<u8>,
    open_tag: Option<u32>,
}

impl SegmentWriter {
    /// The epoch this writer is producing.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Starts a segment with the given tag.
    ///
    /// # Panics
    ///
    /// Panics if a segment is already open.
    pub fn begin_segment(&mut self, tag: u32) {
        assert!(self.open_tag.is_none(), "segment already open");
        self.open_tag = Some(tag);
        self.buf.clear();
    }

    /// Appends one little-endian `u64` to the open segment.
    pub fn put_u64(&mut self, v: u64) {
        debug_assert!(self.open_tag.is_some(), "no open segment");
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a slice of little-endian `u64`s to the open segment.
    pub fn put_u64s(&mut self, vs: &[u64]) {
        debug_assert!(self.open_tag.is_some(), "no open segment");
        self.buf.reserve(vs.len() * 8);
        for &v in vs {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Appends a slice of little-endian `u32`s to the open segment.
    pub fn put_u32s(&mut self, vs: &[u32]) {
        debug_assert!(self.open_tag.is_some(), "no open segment");
        self.buf.reserve(vs.len() * 4);
        for &v in vs {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Frames and writes the open segment.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] on write failure.
    ///
    /// # Panics
    ///
    /// Panics if no segment is open.
    pub fn end_segment(&mut self) -> Result<(), CheckpointError> {
        let tag = self.open_tag.take().expect("no open segment");
        let checksum = segment_checksum(tag, &self.buf);
        let mut write = |bytes: &[u8]| {
            self.file
                .write_all(bytes)
                .map_err(|e| io_err("write", &self.tmp, e))
        };
        write(&tag.to_le_bytes())?;
        write(&(self.buf.len() as u64).to_le_bytes())?;
        write(&checksum.to_le_bytes())?;
        write(&self.buf)?;
        self.buf.clear();
        Ok(())
    }

    /// Flushes and durably syncs the temp file (commit renames it).
    fn finish(self) -> Result<(), CheckpointError> {
        assert!(self.open_tag.is_none(), "unfinished segment at commit");
        let tmp = self.tmp;
        let file = self
            .file
            .into_inner()
            .map_err(|e| io_err("flush", &tmp, e.into_error()))?;
        file.sync_all().map_err(|e| io_err("sync", &tmp, e))
    }

    /// The final (post-rename) path of this epoch file.
    pub fn dest(&self) -> &Path {
        &self.dest
    }
}

/// Reads framed segments back from an epoch file, validating every
/// frame and checksum.
#[derive(Debug)]
pub struct SegmentReader {
    file: BufReader<File>,
    path: PathBuf,
    /// Bytes left in the file — a corrupt length field larger than this
    /// is rejected before allocating.
    remaining: u64,
}

impl SegmentReader {
    /// Reads the next segment, or `None` at a clean end of file.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Corrupt`] on a truncated frame, an oversized
    /// length, or a checksum mismatch; [`CheckpointError::Io`] on read
    /// failure.
    pub fn next_segment(&mut self) -> Result<Option<Segment>, CheckpointError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        if self.remaining < 20 {
            return Err(self.corrupt("truncated segment header"));
        }
        let mut header = [0u8; 20];
        self.read_exact(&mut header)?;
        let tag = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
        let len = u64::from_le_bytes(header[4..12].try_into().expect("8 bytes"));
        let stated = u64::from_le_bytes(header[12..20].try_into().expect("8 bytes"));
        if len > MAX_SEGMENT_BYTES || len > self.remaining {
            return Err(self.corrupt(&format!("segment length {len} exceeds file")));
        }
        let mut payload = vec![0u8; len as usize];
        self.read_exact(&mut payload)?;
        if segment_checksum(tag, &payload) != stated {
            return Err(self.corrupt(&format!("checksum mismatch in segment tag {tag}")));
        }
        Ok(Some(Segment {
            tag,
            payload,
            cursor: 0,
        }))
    }

    fn read_exact(&mut self, buf: &mut [u8]) -> Result<(), CheckpointError> {
        self.file
            .read_exact(buf)
            .map_err(|e| io_err("read", &self.path, e))?;
        self.remaining -= buf.len() as u64;
        Ok(())
    }

    fn corrupt(&self, what: &str) -> CheckpointError {
        CheckpointError::Corrupt {
            what: format!("{what} in {}", self.path.display()),
        }
    }
}

/// One validated segment: its tag and payload, with cursor-based
/// little-endian decoding helpers.
#[derive(Debug)]
pub struct Segment {
    /// The caller-assigned segment tag.
    pub tag: u32,
    payload: Vec<u8>,
    cursor: usize,
}

impl Segment {
    /// Payload bytes not yet consumed by the decoding cursor.
    pub fn remaining(&self) -> usize {
        self.payload.len() - self.cursor
    }

    /// Decodes the next little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Corrupt`] if fewer than 8 bytes remain.
    pub fn take_u64(&mut self) -> Result<u64, CheckpointError> {
        if self.remaining() < 8 {
            return Err(self.short("u64"));
        }
        let v = u64::from_le_bytes(
            self.payload[self.cursor..self.cursor + 8]
                .try_into()
                .expect("8 bytes"),
        );
        self.cursor += 8;
        Ok(v)
    }

    /// Decodes the next `count` little-endian `u64`s into `out`.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Corrupt`] if the payload is too short.
    pub fn take_u64s(&mut self, count: usize, out: &mut Vec<u64>) -> Result<(), CheckpointError> {
        if self.remaining() < count * 8 {
            return Err(self.short("u64 run"));
        }
        out.reserve(count);
        for _ in 0..count {
            out.push(self.take_u64()?);
        }
        Ok(())
    }

    /// Decodes the next `count` little-endian `u32`s into `out`.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Corrupt`] if the payload is too short.
    pub fn take_u32s(&mut self, count: usize, out: &mut Vec<u32>) -> Result<(), CheckpointError> {
        if self.remaining() < count * 4 {
            return Err(self.short("u32 run"));
        }
        out.reserve(count);
        for _ in 0..count {
            let v = u32::from_le_bytes(
                self.payload[self.cursor..self.cursor + 4]
                    .try_into()
                    .expect("4 bytes"),
            );
            self.cursor += 4;
            out.push(v);
        }
        Ok(())
    }

    fn short(&self, what: &str) -> CheckpointError {
        CheckpointError::Corrupt {
            what: format!(
                "segment tag {} too short decoding {what} ({} bytes remain)",
                self.tag,
                self.remaining()
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("stateless-ckpt-test-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn write_epoch(store: &CheckpointStore, epoch: u64, words: &[u64], retain: usize) {
        let mut w = store.begin_epoch(epoch).unwrap();
        w.begin_segment(7);
        w.put_u64(words.len() as u64);
        w.end_segment().unwrap();
        w.begin_segment(8);
        w.put_u64s(words);
        w.end_segment().unwrap();
        store.commit(w, retain).unwrap();
    }

    #[test]
    fn segments_round_trip() {
        let dir = temp_dir("roundtrip");
        let store = CheckpointStore::open(&dir).unwrap();
        let words: Vec<u64> = (0..1000).map(|i| i * 31 + 7).collect();
        write_epoch(&store, 1, &words, 4);
        let mut r = store.open_epoch(1).unwrap();
        let mut head = r.next_segment().unwrap().unwrap();
        assert_eq!(head.tag, 7);
        assert_eq!(head.take_u64().unwrap(), 1000);
        assert_eq!(head.remaining(), 0);
        let mut body = r.next_segment().unwrap().unwrap();
        assert_eq!(body.tag, 8);
        let mut got = Vec::new();
        body.take_u64s(1000, &mut got).unwrap();
        assert_eq!(got, words);
        assert!(r.next_segment().unwrap().is_none());
        assert_eq!(store.latest_valid_epoch().unwrap(), Some(1));
        assert_eq!(store.max_segment_bytes(1).unwrap(), 8000);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_epoch_is_rejected_and_previous_wins() {
        let dir = temp_dir("corrupt");
        let store = CheckpointStore::open(&dir).unwrap();
        write_epoch(&store, 1, &[1, 2, 3], 4);
        write_epoch(&store, 2, &[4, 5, 6], 4);
        // Flip one payload byte of the newest epoch.
        let path = store.epoch_path(2);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() - 5;
        bytes[mid] ^= 0x40;
        fs::write(&path, bytes).unwrap();
        assert!(matches!(
            store.validate_epoch(2),
            Err(CheckpointError::Corrupt { .. })
        ));
        assert_eq!(store.latest_valid_epoch().unwrap(), Some(1));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_epoch_is_rejected() {
        let dir = temp_dir("truncate");
        let store = CheckpointStore::open(&dir).unwrap();
        write_epoch(&store, 5, &[9; 64], 4);
        let path = store.epoch_path(5);
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 11]).unwrap();
        assert!(matches!(
            store.validate_epoch(5),
            Err(CheckpointError::Corrupt { .. })
        ));
        assert_eq!(store.latest_valid_epoch().unwrap(), None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn retention_prunes_oldest_epochs() {
        let dir = temp_dir("retain");
        let store = CheckpointStore::open(&dir).unwrap();
        for epoch in 1..=5 {
            write_epoch(&store, epoch, &[epoch], 2);
        }
        assert_eq!(store.epochs().unwrap(), vec![4, 5]);
        assert!(!store.epoch_path(3).exists());
        assert!(store.epoch_path(4).exists() && store.epoch_path(5).exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_manifest_falls_back_to_directory_scan() {
        let dir = temp_dir("manifest");
        let store = CheckpointStore::open(&dir).unwrap();
        write_epoch(&store, 1, &[1], 4);
        write_epoch(&store, 2, &[2], 4);
        // Tear the manifest; the directory scan still finds both epochs.
        fs::write(dir.join("MANIFEST"), "stateless-checkpoint v1\nepoch 2\n").unwrap();
        assert_eq!(store.epochs().unwrap(), vec![1, 2]);
        assert_eq!(store.latest_valid_epoch().unwrap(), Some(2));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_sweeps_orphaned_tmp_files() {
        let dir = temp_dir("tmp-sweep");
        let store = CheckpointStore::open(&dir).unwrap();
        write_epoch(&store, 1, &[1, 2, 3], 4);
        // Simulate a crash between begin_epoch and commit: the writer's
        // tmp file survives the process.
        let mut w = store.begin_epoch(2).unwrap();
        w.begin_segment(7);
        w.put_u64(99);
        w.end_segment().unwrap();
        drop(w);
        // And a torn manifest rewrite.
        fs::write(dir.join("MANIFEST.tmp"), "half a manifest").unwrap();
        let tmp = dir.join("epoch-2.ckpt.tmp");
        assert!(tmp.exists());
        // A fresh open removes both orphans; committed state is intact,
        // and an unrelated file is not touched.
        fs::write(dir.join("notes.txt"), "keep me").unwrap();
        let store = CheckpointStore::open(&dir).unwrap();
        assert!(!tmp.exists());
        assert!(!dir.join("MANIFEST.tmp").exists());
        assert!(dir.join("notes.txt").exists());
        assert_eq!(store.epochs().unwrap(), vec![1]);
        assert_eq!(store.latest_valid_epoch().unwrap(), Some(1));
        // Epoch 2 can be rewritten cleanly after the sweep.
        write_epoch(&store, 2, &[4, 5], 4);
        assert_eq!(store.latest_valid_epoch().unwrap(), Some(2));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_epoch_is_typed() {
        let dir = temp_dir("missing");
        let store = CheckpointStore::open(&dir).unwrap();
        assert!(matches!(
            store.open_epoch(9),
            Err(CheckpointError::Missing { .. })
        ));
        assert_eq!(store.latest_valid_epoch().unwrap(), None);
        let _ = fs::remove_dir_all(&dir);
    }
}
