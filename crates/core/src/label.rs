//! The label space `Σ`.
//!
//! A label is any cloneable, hashable value type; structured protocol labels
//! (counter fields, Turing-machine configurations, …) are ordinary structs
//! implementing [`Label`] via the blanket impl. Label *complexity* — the
//! paper's `Lₙ = log₂|Σ|` — is declared per protocol (see
//! [`Protocol::label_bits`](crate::protocol::Protocol::label_bits)) because
//! the Rust representation may be wider than the information-theoretic
//! label length.

use std::fmt::Debug;
use std::hash::Hash;

/// A value usable as an edge label.
///
/// Blanket-implemented for every `Clone + Eq + Hash + Debug + Send + Sync +
/// 'static` type; you never implement it manually.
///
/// # Examples
///
/// ```
/// use stateless_core::label::Label;
///
/// fn assert_label<L: Label>() {}
/// assert_label::<bool>();
/// assert_label::<u64>();
/// assert_label::<(u8, u8, bool)>();
/// ```
pub trait Label: Clone + Eq + Hash + Debug + Send + Sync + 'static {}

impl<T: Clone + Eq + Hash + Debug + Send + Sync + 'static> Label for T {}

/// Number of bits needed to address a space of `cardinality` labels:
/// `⌈log₂ cardinality⌉`, the paper's `Lₙ` for a concrete finite `Σ`.
///
/// Returns `0.0` for cardinalities `0` and `1` (a single label carries no
/// information).
///
/// # Examples
///
/// ```
/// use stateless_core::label::bits_for_cardinality;
///
/// assert_eq!(bits_for_cardinality(2), 1.0);
/// assert_eq!(bits_for_cardinality(8), 3.0);
/// assert_eq!(bits_for_cardinality(9), 4.0);
/// assert_eq!(bits_for_cardinality(1), 0.0);
/// ```
pub fn bits_for_cardinality(cardinality: u128) -> f64 {
    if cardinality <= 1 {
        return 0.0;
    }
    let exact = 128 - (cardinality - 1).leading_zeros();
    f64::from(exact)
}

/// Exact `log₂` of a cardinality, for reporting fractional label
/// complexities (e.g. lower bounds like `(n−2)/8` bits).
///
/// # Examples
///
/// ```
/// use stateless_core::label::log2_cardinality;
///
/// assert!((log2_cardinality(8) - 3.0).abs() < 1e-12);
/// assert!((log2_cardinality(6) - 2.585).abs() < 1e-3);
/// ```
pub fn log2_cardinality(cardinality: u128) -> f64 {
    if cardinality <= 1 {
        return 0.0;
    }
    (cardinality as f64).log2()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_rounds_up() {
        assert_eq!(bits_for_cardinality(0), 0.0);
        assert_eq!(bits_for_cardinality(1), 0.0);
        assert_eq!(bits_for_cardinality(2), 1.0);
        assert_eq!(bits_for_cardinality(3), 2.0);
        assert_eq!(bits_for_cardinality(4), 2.0);
        assert_eq!(bits_for_cardinality(1 << 20), 20.0);
        assert_eq!(bits_for_cardinality((1 << 20) + 1), 21.0);
    }

    #[test]
    fn log2_is_exact_on_powers() {
        for k in 0..30u32 {
            assert!((log2_cardinality(1u128 << k) - f64::from(k)).abs() < 1e-9);
        }
    }
}
