//! Directed graphs `G = ([n], E)` on which stateless protocols run.
//!
//! Graphs are *simple* (no parallel edges, no self-loops) and directed; a
//! bidirectional link is a pair of antiparallel edges. Edge ids are assigned
//! in insertion order, which the topology constructors in [`crate::topology`]
//! exploit to give protocols a predictable incoming/outgoing ordering.

use std::collections::HashMap;
use std::fmt;

use crate::error::CoreError;
use crate::{EdgeId, NodeId};

/// A simple directed graph with stable node and edge ids.
///
/// # Examples
///
/// ```
/// use stateless_core::graph::DiGraph;
///
/// let mut g = DiGraph::new(3);
/// g.add_edge(0, 1)?;
/// g.add_edge(1, 2)?;
/// g.add_edge(2, 0)?;
/// assert!(g.is_strongly_connected());
/// assert_eq!(g.out_degree(0), 1);
/// # Ok::<(), stateless_core::CoreError>(())
/// ```
#[derive(Clone)]
pub struct DiGraph {
    node_count: usize,
    edges: Vec<(NodeId, NodeId)>,
    out_edges: Vec<Vec<EdgeId>>,
    in_edges: Vec<Vec<EdgeId>>,
    index: HashMap<(NodeId, NodeId), EdgeId>,
}

impl DiGraph {
    /// Creates a graph with `node_count` nodes and no edges.
    pub fn new(node_count: usize) -> Self {
        DiGraph {
            node_count,
            edges: Vec::new(),
            out_edges: vec![Vec::new(); node_count],
            in_edges: vec![Vec::new(); node_count],
            index: HashMap::new(),
        }
    }

    /// Adds the directed edge `(from, to)` and returns its id.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NodeOutOfRange`] if an endpoint does not exist,
    /// [`CoreError::SelfLoop`] if `from == to`, and
    /// [`CoreError::DuplicateEdge`] if the edge already exists.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId) -> Result<EdgeId, CoreError> {
        for node in [from, to] {
            if node >= self.node_count {
                return Err(CoreError::NodeOutOfRange {
                    node,
                    node_count: self.node_count,
                });
            }
        }
        if from == to {
            return Err(CoreError::SelfLoop { node: from });
        }
        if self.index.contains_key(&(from, to)) {
            return Err(CoreError::DuplicateEdge { from, to });
        }
        let id = self.edges.len();
        self.edges.push((from, to));
        self.out_edges[from].push(id);
        self.in_edges[to].push(id);
        self.index.insert((from, to), id);
        Ok(id)
    }

    /// Number of nodes `n`.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of edges `|E|`.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Iterates over node ids `0..n`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..self.node_count
    }

    /// The `(from, to)` endpoints of edge `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    pub fn endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        self.edges[e]
    }

    /// All edges as `(edge_id, from, to)` triples in id order.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, NodeId, NodeId)> + '_ {
        self.edges
            .iter()
            .enumerate()
            .map(|(id, &(u, v))| (id, u, v))
    }

    /// The edge id of `(from, to)`, if present.
    pub fn edge(&self, from: NodeId, to: NodeId) -> Option<EdgeId> {
        self.index.get(&(from, to)).copied()
    }

    /// Whether the edge `(from, to)` exists.
    pub fn has_edge(&self, from: NodeId, to: NodeId) -> bool {
        self.index.contains_key(&(from, to))
    }

    /// Outgoing edge ids of `node`, in insertion order. This is the order in
    /// which a [`crate::reaction::Reaction`] must emit outgoing labels.
    pub fn out_edges(&self, node: NodeId) -> &[EdgeId] {
        &self.out_edges[node]
    }

    /// Incoming edge ids of `node`, in insertion order. This is the order in
    /// which a [`crate::reaction::Reaction`] receives incoming labels.
    pub fn in_edges(&self, node: NodeId) -> &[EdgeId] {
        &self.in_edges[node]
    }

    /// Out-degree of `node`.
    pub fn out_degree(&self, node: NodeId) -> usize {
        self.out_edges[node].len()
    }

    /// In-degree of `node`.
    pub fn in_degree(&self, node: NodeId) -> usize {
        self.in_edges[node].len()
    }

    /// Maximum total degree `Δ(G) = max_i (in(i) + out(i))`, the `k` of
    /// Theorem 5.10.
    pub fn max_degree(&self) -> usize {
        (0..self.node_count)
            .map(|i| self.in_degree(i) + self.out_degree(i))
            .max()
            .unwrap_or(0)
    }

    /// Position of the edge from `from` among `node`'s incoming edges, i.e.
    /// the index at which a reaction of `node` sees `from`'s label.
    pub fn in_neighbor_index(&self, node: NodeId, from: NodeId) -> Option<usize> {
        let e = self.edge(from, node)?;
        self.in_edges[node].iter().position(|&x| x == e)
    }

    /// Position of the edge to `to` among `node`'s outgoing edges, i.e. the
    /// index at which a reaction of `node` must emit the label for `to`.
    pub fn out_neighbor_index(&self, node: NodeId, to: NodeId) -> Option<usize> {
        let e = self.edge(node, to)?;
        self.out_edges[node].iter().position(|&x| x == e)
    }

    /// In-neighbors of `node` in incoming-edge order.
    pub fn in_neighbors(&self, node: NodeId) -> Vec<NodeId> {
        self.in_edges[node]
            .iter()
            .map(|&e| self.edges[e].0)
            .collect()
    }

    /// Out-neighbors of `node` in outgoing-edge order.
    pub fn out_neighbors(&self, node: NodeId) -> Vec<NodeId> {
        self.out_edges[node]
            .iter()
            .map(|&e| self.edges[e].1)
            .collect()
    }

    /// Directed BFS distances from `src`; unreachable nodes get `None`.
    pub fn bfs_distances(&self, src: NodeId) -> Vec<Option<usize>> {
        let mut dist = vec![None; self.node_count];
        let mut queue = std::collections::VecDeque::new();
        dist[src] = Some(0);
        queue.push_back(src);
        while let Some(u) = queue.pop_front() {
            let du = dist[u].expect("queued nodes have distances");
            for &e in &self.out_edges[u] {
                let v = self.edges[e].1;
                if dist[v].is_none() {
                    dist[v] = Some(du + 1);
                    queue.push_back(v);
                }
            }
        }
        dist
    }

    /// The graph's adjacency as flat CSR arrays (`offsets`/`targets`,
    /// out-edges in insertion order) — the input shape of [`crate::scc`].
    pub fn to_csr(&self) -> (Vec<usize>, Vec<u32>) {
        let mut offsets = Vec::with_capacity(self.node_count + 1);
        offsets.push(0);
        let mut targets = Vec::with_capacity(self.edges.len());
        for u in 0..self.node_count {
            for &e in &self.out_edges[u] {
                targets.push(self.edges[e].1 as u32);
            }
            offsets.push(targets.len());
        }
        (offsets, targets)
    }

    /// Whether every node reaches every other node — i.e. the graph is
    /// one strongly connected component ([`crate::scc::tarjan_oracle`]
    /// over the adjacency lists directly; no CSR is materialized).
    pub fn is_strongly_connected(&self) -> bool {
        if self.node_count == 0 {
            return true;
        }
        let oracle = crate::scc::from_fn(self.node_count, |u, out| {
            out.clear();
            out.extend(
                self.out_edges[u as usize]
                    .iter()
                    .map(|&e| self.edges[e].1 as u32),
            );
        });
        // Canonical numbering: strongly connected ⇔ every component id
        // is the component of node 0, which numbers 0.
        crate::scc::tarjan_oracle(&oracle).iter().all(|&c| c == 0)
    }

    /// Eccentricity of `node`: the maximum BFS distance to any node.
    ///
    /// Returns `None` if some node is unreachable from `node`.
    pub fn eccentricity(&self, node: NodeId) -> Option<usize> {
        self.bfs_distances(node)
            .into_iter()
            .try_fold(0, |acc, d| d.map(|d| acc.max(d)))
    }

    /// The directed radius `min_v ecc(v)` (the `r` of Proposition 2.1).
    ///
    /// Returns `None` for graphs that are not strongly connected.
    pub fn radius(&self) -> Option<usize> {
        (0..self.node_count)
            .filter_map(|v| self.eccentricity(v))
            .min()
    }

    /// The directed diameter `max_v ecc(v)`.
    ///
    /// Returns `None` for graphs that are not strongly connected.
    pub fn diameter(&self) -> Option<usize> {
        let mut best = 0;
        for v in 0..self.node_count {
            best = best.max(self.eccentricity(v)?);
        }
        Some(best)
    }

    /// A spanning out-arborescence rooted at `root`: for every node `i ≠ root`
    /// there is a directed path `root → … → i` along parent edges.
    ///
    /// Returns `parent[i] = Some(edge from parent(i) to i)` with
    /// `parent[root] = None` — the tree `T₁` of Proposition 2.3.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NotStronglyConnected`] if some node is
    /// unreachable from `root`.
    pub fn out_arborescence(&self, root: NodeId) -> Result<Vec<Option<EdgeId>>, CoreError> {
        let mut parent = vec![None; self.node_count];
        let mut seen = vec![false; self.node_count];
        seen[root] = true;
        let mut queue = std::collections::VecDeque::from([root]);
        while let Some(u) = queue.pop_front() {
            for &e in &self.out_edges[u] {
                let v = self.edges[e].1;
                if !seen[v] {
                    seen[v] = true;
                    parent[v] = Some(e);
                    queue.push_back(v);
                }
            }
        }
        if seen.iter().all(|&b| b) {
            Ok(parent)
        } else {
            Err(CoreError::NotStronglyConnected)
        }
    }

    /// A spanning in-arborescence rooted at `root`: for every node `i ≠ root`
    /// there is a directed path `i → … → root` along parent edges.
    ///
    /// Returns `parent[i] = Some(edge from i towards root)` with
    /// `parent[root] = None` — the tree `T₂` of Proposition 2.3.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NotStronglyConnected`] if `root` is unreachable
    /// from some node.
    pub fn in_arborescence(&self, root: NodeId) -> Result<Vec<Option<EdgeId>>, CoreError> {
        let mut parent = vec![None; self.node_count];
        let mut seen = vec![false; self.node_count];
        seen[root] = true;
        let mut queue = std::collections::VecDeque::from([root]);
        while let Some(u) = queue.pop_front() {
            for &e in &self.in_edges[u] {
                let v = self.edges[e].0;
                if !seen[v] {
                    seen[v] = true;
                    parent[v] = Some(e);
                    queue.push_back(v);
                }
            }
        }
        if seen.iter().all(|&b| b) {
            Ok(parent)
        } else {
            Err(CoreError::NotStronglyConnected)
        }
    }
}

impl fmt::Debug for DiGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DiGraph")
            .field("nodes", &self.node_count)
            .field("edges", &self.edges)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> DiGraph {
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1).unwrap();
        g.add_edge(1, 2).unwrap();
        g.add_edge(2, 0).unwrap();
        g
    }

    #[test]
    fn add_edge_assigns_sequential_ids() {
        let g = triangle();
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.endpoints(0), (0, 1));
        assert_eq!(g.endpoints(2), (2, 0));
        assert_eq!(g.edge(1, 2), Some(1));
        assert_eq!(g.edge(2, 1), None);
    }

    #[test]
    fn rejects_self_loops_and_duplicates_and_bad_nodes() {
        let mut g = DiGraph::new(2);
        assert_eq!(g.add_edge(0, 0), Err(CoreError::SelfLoop { node: 0 }));
        g.add_edge(0, 1).unwrap();
        assert_eq!(
            g.add_edge(0, 1),
            Err(CoreError::DuplicateEdge { from: 0, to: 1 })
        );
        assert_eq!(
            g.add_edge(0, 5),
            Err(CoreError::NodeOutOfRange {
                node: 5,
                node_count: 2
            })
        );
    }

    #[test]
    fn strongly_connected_detection() {
        assert!(triangle().is_strongly_connected());
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1).unwrap();
        g.add_edge(1, 2).unwrap();
        assert!(!g.is_strongly_connected());
        // Reaches all from 0, but 0 unreachable.
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1).unwrap();
        g.add_edge(0, 2).unwrap();
        g.add_edge(1, 2).unwrap();
        assert!(!g.is_strongly_connected());
    }

    #[test]
    fn radius_and_diameter_of_directed_cycle() {
        let g = triangle();
        assert_eq!(g.radius(), Some(2));
        assert_eq!(g.diameter(), Some(2));
        assert_eq!(g.eccentricity(0), Some(2));
    }

    #[test]
    fn neighbor_index_lookup() {
        let g = triangle();
        assert_eq!(g.in_neighbor_index(1, 0), Some(0));
        assert_eq!(g.out_neighbor_index(0, 1), Some(0));
        assert_eq!(g.in_neighbor_index(1, 2), None);
        assert_eq!(g.in_neighbors(1), vec![0]);
        assert_eq!(g.out_neighbors(1), vec![2]);
    }

    #[test]
    fn arborescences_cover_all_nodes() {
        let g = triangle();
        let out = g.out_arborescence(0).unwrap();
        assert_eq!(out[0], None);
        assert!(out[1].is_some() && out[2].is_some());
        let inn = g.in_arborescence(0).unwrap();
        assert_eq!(inn[0], None);
        // In a directed 3-cycle, node 1's path to 0 goes through edge (1,2).
        assert_eq!(g.endpoints(inn[1].unwrap()).0, 1);
    }

    #[test]
    fn arborescence_fails_on_disconnected() {
        let mut g = DiGraph::new(2);
        g.add_edge(0, 1).unwrap();
        assert!(g.out_arborescence(1).is_err());
        assert!(g.in_arborescence(0).is_err());
    }

    #[test]
    fn max_degree_counts_both_directions() {
        let g = triangle();
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn empty_graph_is_trivially_strongly_connected() {
        assert!(DiGraph::new(0).is_strongly_connected());
        assert_eq!(DiGraph::new(0).radius(), None);
    }
}
