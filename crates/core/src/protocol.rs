//! Stateless protocols `A = (Σ, δ)`: a graph plus one reaction per node.

use std::fmt;
use std::sync::Arc;

use crate::error::CoreError;
use crate::graph::DiGraph;
use crate::label::Label;
use crate::reaction::Reaction;
use crate::{Input, NodeId, Output};

/// A stateless protocol: the label space `Σ` (implicit in `L` plus the
/// declared [`label_bits`](Protocol::label_bits)) and the reaction vector
/// `δ = (δ₁, …, δₙ)` on a fixed directed graph.
///
/// Construct with [`Protocol::builder`]. Protocols are immutable once built
/// and cheap to share (`reactions` are `Arc`ed), so one protocol can drive
/// many concurrent simulations.
pub struct Protocol<L: Label> {
    graph: DiGraph,
    reactions: Vec<Arc<dyn Reaction<L>>>,
    label_bits: f64,
    name: String,
}

impl<L: Label> Protocol<L> {
    /// Starts building a protocol on `graph`, declaring a label complexity
    /// of `label_bits = log₂|Σ|` bits (the paper's `Lₙ`).
    pub fn builder(graph: DiGraph, label_bits: f64) -> ProtocolBuilder<L> {
        ProtocolBuilder {
            graph,
            reactions: Vec::new(),
            label_bits,
            name: String::from("unnamed"),
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &DiGraph {
        &self.graph
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Number of edges (the length of a labeling).
    pub fn edge_count(&self) -> usize {
        self.graph.edge_count()
    }

    /// Declared label complexity `Lₙ = log₂|Σ|` in bits.
    pub fn label_bits(&self) -> f64 {
        self.label_bits
    }

    /// Human-readable protocol name (used in experiment reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Applies node `i`'s reaction to the global labeling, returning its new
    /// outgoing labels (ordered like `graph().out_edges(i)`) and output.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::WrongOutgoingArity`] if the reaction returns the
    /// wrong number of labels — a bug in the reaction function.
    ///
    /// # Panics
    ///
    /// Panics if `labeling` is shorter than the edge count.
    pub fn apply(
        &self,
        node: NodeId,
        labeling: &[L],
        input: Input,
    ) -> Result<(Vec<L>, Output), CoreError> {
        let incoming: Vec<L> = self
            .graph
            .in_edges(node)
            .iter()
            .map(|&e| labeling[e].clone())
            .collect();
        let (outgoing, output) = self.reactions[node].react(node, &incoming, input);
        if outgoing.len() != self.graph.out_degree(node) {
            return Err(CoreError::WrongOutgoingArity {
                node,
                got: outgoing.len(),
                expected: self.graph.out_degree(node),
            });
        }
        Ok((outgoing, output))
    }

    /// Node `i`'s reaction function (the engine's buffered hot paths call
    /// it directly, bypassing [`apply`](Protocol::apply)).
    pub(crate) fn reaction(&self, node: NodeId) -> &dyn Reaction<L> {
        &*self.reactions[node]
    }

    /// Allocation-free [`apply`](Protocol::apply): gathers node `i`'s
    /// incoming labels into `in_buf`, runs its reaction through
    /// [`Reaction::react_into`] with `out_buf` as the outgoing buffer
    /// (cleared and prefilled with the node's current outgoing labels),
    /// and returns the output. On return, `out_buf` holds the new outgoing
    /// labels ordered like [`DiGraph::out_edges`](crate::graph::DiGraph::out_edges);
    /// the caller commits them. Both buffers are plain scratch — pass the
    /// same two `Vec`s across calls and no allocation happens after
    /// warm-up.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range, `labeling` is shorter than the
    /// edge count, or the reaction misbehaves on the buffered path.
    pub fn apply_buffered(
        &self,
        node: NodeId,
        labeling: &[L],
        input: Input,
        in_buf: &mut Vec<L>,
        out_buf: &mut Vec<L>,
    ) -> Output {
        in_buf.clear();
        in_buf.extend(
            self.graph
                .in_edges(node)
                .iter()
                .map(|&e| labeling[e].clone()),
        );
        out_buf.clear();
        out_buf.extend(
            self.graph
                .out_edges(node)
                .iter()
                .map(|&e| labeling[e].clone()),
        );
        self.reactions[node].react_into(node, in_buf, input, out_buf)
    }

    /// Whether `labeling` is a *stable labeling*: a fixed point of every
    /// reaction function under inputs `x` (Section 3).
    ///
    /// # Errors
    ///
    /// Validates the labeling/input lengths. A reaction that misbehaves on
    /// the buffered path panics (see
    /// [`Reaction::react_into`](crate::reaction::Reaction::react_into)).
    pub fn is_stable_labeling(&self, labeling: &[L], inputs: &[Input]) -> Result<bool, CoreError> {
        self.check_lengths(labeling, inputs)?;
        let mut in_buf = Vec::new();
        let mut out_buf = Vec::new();
        Ok(self.is_stable_labeling_buffered(labeling, inputs, &mut in_buf, &mut out_buf))
    }

    /// [`is_stable_labeling`](Protocol::is_stable_labeling) with
    /// caller-provided scratch buffers, for allocation-free convergence
    /// and sweep loops: pass the same two `Vec`s across calls and no
    /// allocation happens after warm-up.
    ///
    /// The labeling/input lengths must already be validated (e.g. once
    /// per sweep via [`check_lengths`](Protocol::is_stable_labeling) —
    /// this probe skips that work).
    ///
    /// # Panics
    ///
    /// May panic on out-of-range indices if `labeling` or `inputs` are
    /// shorter than the graph requires.
    pub fn is_stable_labeling_buffered(
        &self,
        labeling: &[L],
        inputs: &[Input],
        in_buf: &mut Vec<L>,
        out_buf: &mut Vec<L>,
    ) -> bool {
        for node in self.graph.nodes() {
            let in_edges = self.graph.in_edges(node);
            let incoming: &[L] = if let [e] = *in_edges {
                std::slice::from_ref(&labeling[e])
            } else {
                in_buf.clear();
                in_buf.extend(in_edges.iter().map(|&e| labeling[e].clone()));
                in_buf.as_slice()
            };
            out_buf.clear();
            out_buf.extend(
                self.graph
                    .out_edges(node)
                    .iter()
                    .map(|&e| labeling[e].clone()),
            );
            self.reactions[node].react_into(node, incoming, inputs[node], out_buf);
            for (slot, &e) in out_buf.iter().zip(self.graph.out_edges(node)) {
                if *slot != labeling[e] {
                    return false;
                }
            }
        }
        true
    }

    pub(crate) fn check_lengths(&self, labeling: &[L], inputs: &[Input]) -> Result<(), CoreError> {
        if labeling.len() != self.edge_count() {
            return Err(CoreError::WrongLabelingLength {
                got: labeling.len(),
                expected: self.edge_count(),
            });
        }
        if inputs.len() != self.node_count() {
            return Err(CoreError::WrongInputLength {
                got: inputs.len(),
                expected: self.node_count(),
            });
        }
        Ok(())
    }
}

impl<L: Label> Clone for Protocol<L> {
    fn clone(&self) -> Self {
        Protocol {
            graph: self.graph.clone(),
            reactions: self.reactions.clone(),
            label_bits: self.label_bits,
            name: self.name.clone(),
        }
    }
}

impl<L: Label> fmt::Debug for Protocol<L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Protocol")
            .field("name", &self.name)
            .field("nodes", &self.node_count())
            .field("edges", &self.edge_count())
            .field("label_bits", &self.label_bits)
            .finish()
    }
}

/// Incrementally builds a [`Protocol`]; see [`Protocol::builder`].
pub struct ProtocolBuilder<L: Label> {
    graph: DiGraph,
    reactions: Vec<(NodeId, Arc<dyn Reaction<L>>)>,
    label_bits: f64,
    name: String,
}

impl<L: Label> ProtocolBuilder<L> {
    /// Names the protocol (for reports and `Debug` output).
    #[must_use]
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Sets the reaction function of `node`. The last call per node wins.
    #[must_use]
    pub fn reaction(mut self, node: NodeId, reaction: impl Reaction<L> + 'static) -> Self {
        self.reactions.push((node, Arc::new(reaction)));
        self
    }

    /// Sets the same reaction function (shared) for every node.
    #[must_use]
    pub fn uniform_reaction(mut self, reaction: impl Reaction<L> + 'static) -> Self {
        let shared: Arc<dyn Reaction<L>> = Arc::new(reaction);
        for node in 0..self.graph.node_count() {
            self.reactions.push((node, Arc::clone(&shared)));
        }
        self
    }

    /// Finalizes the protocol.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::MissingReaction`] if some node has no reaction.
    pub fn build(self) -> Result<Protocol<L>, CoreError> {
        let n = self.graph.node_count();
        let mut slots: Vec<Option<Arc<dyn Reaction<L>>>> = vec![None; n];
        for (node, r) in self.reactions {
            if node >= n {
                return Err(CoreError::NodeOutOfRange {
                    node,
                    node_count: n,
                });
            }
            slots[node] = Some(r);
        }
        let mut reactions = Vec::with_capacity(n);
        for (node, slot) in slots.into_iter().enumerate() {
            reactions.push(slot.ok_or(CoreError::MissingReaction { node })?);
        }
        Ok(Protocol {
            graph: self.graph,
            reactions,
            label_bits: self.label_bits,
            name: self.name,
        })
    }
}

impl<L: Label> fmt::Debug for ProtocolBuilder<L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProtocolBuilder")
            .field("name", &self.name)
            .field("nodes", &self.graph.node_count())
            .field("reactions_set", &self.reactions.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reaction::{ConstReaction, FnReaction};
    use crate::topology;

    fn or_clique(n: usize) -> Protocol<bool> {
        let graph = topology::clique(n);
        let deg = n - 1;
        Protocol::builder(graph, 1.0)
            .name("or")
            .uniform_reaction(FnReaction::new(move |_, incoming: &[bool], input| {
                let bit = input == 1 || incoming.iter().any(|&b| b);
                (vec![bit; deg], u64::from(bit))
            }))
            .build()
            .unwrap()
    }

    #[test]
    fn build_requires_all_reactions() {
        let graph = topology::unidirectional_ring(3);
        let err = Protocol::<bool>::builder(graph, 1.0)
            .reaction(0, ConstReaction::new(false, 0, 1))
            .build()
            .unwrap_err();
        assert_eq!(err, CoreError::MissingReaction { node: 1 });
    }

    #[test]
    fn build_rejects_out_of_range_node() {
        let graph = topology::unidirectional_ring(3);
        let err = Protocol::<bool>::builder(graph, 1.0)
            .uniform_reaction(ConstReaction::new(false, 0, 1))
            .reaction(9, ConstReaction::new(false, 0, 1))
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            CoreError::NodeOutOfRange {
                node: 9,
                node_count: 3
            }
        );
    }

    #[test]
    fn apply_validates_arity() {
        let graph = topology::clique(3);
        let p = Protocol::builder(graph, 1.0)
            .uniform_reaction(FnReaction::new(|_, _: &[bool], _| (vec![true], 0)))
            .build()
            .unwrap();
        let labeling = vec![false; 6];
        let err = p.apply(0, &labeling, 0).unwrap_err();
        assert_eq!(
            err,
            CoreError::WrongOutgoingArity {
                node: 0,
                got: 1,
                expected: 2
            }
        );
    }

    #[test]
    fn stable_labeling_detection() {
        let p = or_clique(3);
        // With all inputs 0: the all-false labeling is stable, all-true too
        // (OR of trues stays true).
        assert!(p.is_stable_labeling(&[false; 6], &[0, 0, 0]).unwrap());
        assert!(p.is_stable_labeling(&[true; 6], &[0, 0, 0]).unwrap());
        // With input x₀=1 the all-false labeling is not stable.
        assert!(!p.is_stable_labeling(&[false; 6], &[1, 0, 0]).unwrap());
    }

    #[test]
    fn stable_labeling_validates_lengths() {
        let p = or_clique(3);
        assert!(matches!(
            p.is_stable_labeling(&[false; 5], &[0, 0, 0]),
            Err(CoreError::WrongLabelingLength {
                got: 5,
                expected: 6
            })
        ));
        assert!(matches!(
            p.is_stable_labeling(&[false; 6], &[0, 0]),
            Err(CoreError::WrongInputLength {
                got: 2,
                expected: 3
            })
        ));
    }

    #[test]
    fn protocol_is_cloneable_and_debuggable() {
        let p = or_clique(3);
        let q = p.clone();
        assert_eq!(format!("{p:?}"), format!("{q:?}"));
        assert!(format!("{p:?}").contains("\"or\""));
    }
}
