//! Exact classification of synchronous runs.
//!
//! Under the synchronous (1-fair) schedule the global transition is a
//! deterministic function of the labeling alone, so every run eventually
//! enters a cycle; detecting that cycle classifies the run exactly:
//!
//! * cycle of period 1 → the run **label-stabilizes**, and the round at
//!   which it first reached the fixed point is its label-convergence time;
//! * period > 1 with constant outputs along the cycle → the run
//!   **output-stabilizes** but not label-stabilizes (the labels oscillate
//!   forever while outputs stay put);
//! * otherwise the run oscillates in outputs too.
//!
//! This is the measurement used for the paper's round complexity `Rₙ`
//! (Section 2.3), which is defined for synchronous interaction.

use std::collections::HashMap;

use crate::error::CoreError;
use crate::label::Label;
use crate::protocol::Protocol;
use crate::{Input, Output};

/// The exact outcome of a synchronous run from one initial labeling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SyncOutcome<L> {
    /// The labeling reached a fixed point.
    LabelStable {
        /// First round at which the stable labeling held.
        round: u64,
        /// The stable labeling.
        labeling: Vec<L>,
        /// Node outputs at (and forever after) stabilization.
        outputs: Vec<Output>,
    },
    /// The labeling entered a cycle of period ≥ 2.
    Oscillating {
        /// First round of the recurring segment.
        cycle_start: u64,
        /// Cycle period (≥ 2).
        period: u64,
        /// If outputs are constant along the cycle: the round after which
        /// outputs never change again, and their final values.
        outputs_stable: Option<(u64, Vec<Output>)>,
    },
}

impl<L> SyncOutcome<L> {
    /// Whether the run label-stabilized.
    pub fn is_label_stable(&self) -> bool {
        matches!(self, SyncOutcome::LabelStable { .. })
    }

    /// Whether the run output-stabilized (label stability implies it).
    pub fn is_output_stable(&self) -> bool {
        match self {
            SyncOutcome::LabelStable { .. } => true,
            SyncOutcome::Oscillating { outputs_stable, .. } => outputs_stable.is_some(),
        }
    }

    /// The converged outputs, if the run output-stabilized.
    pub fn final_outputs(&self) -> Option<&[Output]> {
        match self {
            SyncOutcome::LabelStable { outputs, .. } => Some(outputs),
            SyncOutcome::Oscillating { outputs_stable, .. } => {
                outputs_stable.as_ref().map(|(_, o)| o.as_slice())
            }
        }
    }

    /// The output-convergence round: the earliest round after which outputs
    /// never change, if the run output-stabilized.
    pub fn output_round(&self) -> Option<u64> {
        match self {
            SyncOutcome::LabelStable { round, .. } => Some(*round),
            SyncOutcome::Oscillating { outputs_stable, .. } => {
                outputs_stable.as_ref().map(|&(r, _)| r)
            }
        }
    }
}

/// Runs `protocol` synchronously from `initial` and classifies the run by
/// exact cycle detection (hashing every visited labeling).
///
/// Memory is proportional to the number of distinct labelings visited,
/// which is at most `|Σ|^|E|` — use only where that is acceptable; the cap
/// `max_states` aborts earlier.
///
/// # Errors
///
/// Returns [`CoreError::NotConverged`] if more than `max_states` distinct
/// labelings were visited without closing a cycle, and validation errors
/// for mismatched lengths.
pub fn classify_sync<L: Label>(
    protocol: &Protocol<L>,
    inputs: &[Input],
    initial: Vec<L>,
    max_states: usize,
) -> Result<SyncOutcome<L>, CoreError> {
    protocol.check_lengths(&initial, inputs)?;
    let n = protocol.node_count();
    let mut seen: HashMap<Vec<L>, u64> = HashMap::new();
    // history[t] = labeling at round t; outputs_history[t] = outputs
    // produced by the step from round t-1 to t (outputs_history[0] is the
    // pre-run placeholder and never inspected).
    let mut history: Vec<Vec<L>> = vec![initial.clone()];
    let mut outputs_history: Vec<Vec<Output>> = vec![vec![0; n]];
    let mut current = initial;
    seen.insert(current.clone(), 0);

    for t in 1..=(max_states as u64) {
        let mut next = current.clone();
        let mut outs = vec![0; n];
        for node in 0..n {
            let (outgoing, output) = protocol.apply(node, &current, inputs[node])?;
            for (slot, &e) in outgoing.into_iter().zip(protocol.graph().out_edges(node)) {
                next[e] = slot;
            }
            outs[node] = output;
        }
        if let Some(&s) = seen.get(&next) {
            let period = t - s;
            if period == 1 && next == current {
                // Fixed point: find the first round the labeling equaled it.
                let round = history
                    .iter()
                    .position(|l| *l == next)
                    .expect("fixed point was visited") as u64;
                // Outputs after stabilization: produced by stepping from the
                // stable labeling.
                return Ok(SyncOutcome::LabelStable { round, labeling: next, outputs: outs });
            }
            history.push(next.clone());
            outputs_history.push(outs);
            // Outputs along the cycle are outputs_history[s+1 ..= t]; they
            // are the recurring output vectors (the step out of round s
            // produced outputs_history[s+1], and the cycle repeats).
            let cycle_outputs = &outputs_history[(s + 1) as usize..=t as usize];
            let constant = cycle_outputs.windows(2).all(|w| w[0] == w[1]);
            let outputs_stable = if constant {
                let final_outputs = cycle_outputs[0].clone();
                // Earliest round after which outputs never changed: walk
                // back from the end of recorded history.
                let mut round = s + 1;
                for back in (1..=t).rev() {
                    if outputs_history[back as usize] != final_outputs {
                        round = back + 1;
                        break;
                    }
                    round = back;
                }
                Some((round, final_outputs))
            } else {
                None
            };
            return Ok(SyncOutcome::Oscillating { cycle_start: s, period, outputs_stable });
        }
        seen.insert(next.clone(), t);
        history.push(next.clone());
        outputs_history.push(outs);
        current = next;
    }
    Err(CoreError::NotConverged { steps: max_states as u64 })
}

/// Measures the synchronous round complexity of `protocol` over a set of
/// initial labelings and one input: the maximum label-stabilization round,
/// or `None` if some run oscillates.
///
/// # Errors
///
/// Propagates [`classify_sync`] errors.
pub fn sync_round_complexity<L: Label>(
    protocol: &Protocol<L>,
    inputs: &[Input],
    initials: impl IntoIterator<Item = Vec<L>>,
    max_states: usize,
) -> Result<Option<u64>, CoreError> {
    let mut worst = 0;
    for initial in initials {
        match classify_sync(protocol, inputs, initial, max_states)? {
            SyncOutcome::LabelStable { round, .. } => worst = worst.max(round),
            SyncOutcome::Oscillating { .. } => return Ok(None),
        }
    }
    Ok(Some(worst))
}

/// Enumerates all labelings of a graph with `edges` edges over the label
/// alphabet `alphabet` (cartesian power). Intended for exhaustive sweeps on
/// tiny instances; the iterator yields `|alphabet|^edges` items.
pub fn all_labelings<L: Label>(alphabet: &[L], edges: usize) -> AllLabelings<L> {
    AllLabelings { alphabet: alphabet.to_vec(), counters: vec![0; edges], done: alphabet.is_empty() && edges > 0 }
}

/// Iterator over all labelings; see [`all_labelings`].
#[derive(Debug, Clone)]
pub struct AllLabelings<L> {
    alphabet: Vec<L>,
    counters: Vec<usize>,
    done: bool,
}

impl<L: Label> Iterator for AllLabelings<L> {
    type Item = Vec<L>;

    fn next(&mut self) -> Option<Vec<L>> {
        if self.done {
            return None;
        }
        let item: Vec<L> =
            self.counters.iter().map(|&c| self.alphabet[c].clone()).collect();
        // Increment odometer.
        let mut i = 0;
        loop {
            if i == self.counters.len() {
                self.done = true;
                break;
            }
            self.counters[i] += 1;
            if self.counters[i] == self.alphabet.len() {
                self.counters[i] = 0;
                i += 1;
            } else {
                break;
            }
        }
        Some(item)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reaction::FnReaction;
    use crate::topology;

    fn max_ring(n: usize) -> Protocol<u64> {
        Protocol::builder(topology::unidirectional_ring(n), 8.0)
            .uniform_reaction(FnReaction::new(|_, incoming: &[u64], input| {
                let m = incoming[0].max(input);
                (vec![m], m)
            }))
            .build()
            .unwrap()
    }

    fn rotate_ring(n: usize) -> Protocol<u64> {
        Protocol::builder(topology::unidirectional_ring(n), 8.0)
            .uniform_reaction(FnReaction::new(|_, incoming: &[u64], _| {
                (vec![incoming[0]], incoming[0])
            }))
            .build()
            .unwrap()
    }

    #[test]
    fn classify_detects_fixed_point_and_round() {
        let p = max_ring(4);
        let outcome = classify_sync(&p, &[1, 2, 3, 4], vec![0; 4], 10_000).unwrap();
        match outcome {
            SyncOutcome::LabelStable { round, labeling, outputs } => {
                assert!(round <= 4);
                assert_eq!(labeling, vec![4; 4]);
                assert_eq!(outputs, vec![4; 4]);
            }
            other => panic!("expected label stability, got {other:?}"),
        }
    }

    #[test]
    fn classify_detects_oscillation_with_period() {
        let p = rotate_ring(3);
        let outcome = classify_sync(&p, &[0; 3], vec![7, 8, 9], 10_000).unwrap();
        match outcome {
            SyncOutcome::Oscillating { cycle_start, period, outputs_stable } => {
                assert_eq!(cycle_start, 0);
                assert_eq!(period, 3);
                assert!(outputs_stable.is_none(), "rotating distinct outputs");
            }
            other => panic!("expected oscillation, got {other:?}"),
        }
    }

    #[test]
    fn output_stable_label_oscillation() {
        // Rotating identical labels but constant outputs: rotate labels,
        // output a constant.
        let p = Protocol::builder(topology::unidirectional_ring(3), 8.0)
            .uniform_reaction(FnReaction::new(|_, incoming: &[u64], _| {
                (vec![incoming[0].wrapping_add(1) % 2], 42)
            }))
            .build()
            .unwrap();
        // Labels cycle (parity flip through ring of odd size → period 2).
        let outcome = classify_sync(&p, &[0; 3], vec![0, 1, 0], 10_000).unwrap();
        match outcome {
            SyncOutcome::Oscillating { outputs_stable, .. } => {
                let (round, outs) = outputs_stable.expect("outputs constant");
                assert_eq!(outs, vec![42; 3]);
                assert!(round <= 1);
            }
            SyncOutcome::LabelStable { .. } => panic!("labels should oscillate"),
        }
    }

    #[test]
    fn round_complexity_over_all_initials() {
        let p = max_ring(3);
        let initials = all_labelings(&[0u64, 1, 2], 3);
        let r = sync_round_complexity(&p, &[0, 1, 2], initials, 10_000)
            .unwrap()
            .expect("max protocol always stabilizes");
        // Labels ≥ inputs are absorbed within n rounds.
        assert!(r <= 3, "got {r}");
    }

    #[test]
    fn round_complexity_none_on_oscillators() {
        let p = rotate_ring(3);
        let initials = vec![vec![0u64, 1, 2]];
        assert_eq!(sync_round_complexity(&p, &[0; 3], initials, 1000).unwrap(), None);
    }

    #[test]
    fn all_labelings_enumerates_cartesian_power() {
        let all: Vec<Vec<bool>> = all_labelings(&[false, true], 3).collect();
        assert_eq!(all.len(), 8);
        assert_eq!(all[0], vec![false, false, false]);
        assert!(all.contains(&vec![true, false, true]));
        let dedup: std::collections::HashSet<_> = all.iter().cloned().collect();
        assert_eq!(dedup.len(), 8);
    }

    #[test]
    fn all_labelings_zero_edges_is_single_empty() {
        let all: Vec<Vec<bool>> = all_labelings(&[false, true], 0).collect();
        assert_eq!(all, vec![Vec::<bool>::new()]);
    }

    #[test]
    fn classify_respects_state_cap() {
        let p = Protocol::builder(topology::unidirectional_ring(2), 64.0)
            .uniform_reaction(FnReaction::new(|_, incoming: &[u64], _| {
                (vec![incoming[0] + 1], 0)
            }))
            .build()
            .unwrap();
        // Counter grows unboundedly; must hit the cap.
        let err = classify_sync(&p, &[0, 0], vec![0, 0], 100).unwrap_err();
        assert_eq!(err, CoreError::NotConverged { steps: 100 });
    }
}
