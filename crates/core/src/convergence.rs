//! Exact classification of deterministic runs by cycle detection.
//!
//! Under the synchronous (1-fair) schedule the global transition is a
//! deterministic function of the labeling alone, so every run eventually
//! enters a cycle; detecting that cycle classifies the run exactly:
//!
//! * cycle of period 1 → the run **label-stabilizes**, and the round at
//!   which it first reached the fixed point is its label-convergence time;
//! * period > 1 with constant outputs along the cycle → the run
//!   **output-stabilizes** but not label-stabilizes (the labels oscillate
//!   forever while outputs stay put);
//! * otherwise the run oscillates in outputs too.
//!
//! This is the measurement used for the paper's round complexity `Rₙ`
//! (Section 2.3), which is defined for synchronous interaction.
//!
//! The same machinery extends to **any periodic schedule** (the scripted
//! adversaries of the paper's proofs, round-robin, …): the pair
//! `(labeling, schedule phase)` evolves deterministically, so
//! [`classify_scheduled`] detects cycles in that product state and turns
//! e.g. the Example 1 oscillation into a machine-checked verdict. Both
//! entry points take a pluggable [`CycleDetector`]:
//! [`CycleDetector::ExactArena`] (fingerprint table + flat history arena,
//! memory proportional to the rounds visited) or [`CycleDetector::Brent`]
//! (Brent's teleporting-tortoise algorithm, O(1) state memory at the cost
//! of re-running the deterministic prefix a few times).

use std::collections::HashMap;
use std::hash::Hasher;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::engine::Simulation;
use crate::error::CoreError;
use crate::intern::{ChunkedArena, FingerprintIndex, FxHasher};
use crate::label::Label;
use crate::protocol::Protocol;
use crate::schedule::{PeriodicSchedule, Schedule, Synchronous};
use crate::{Input, Output};

/// The exact outcome of a classified run from one initial labeling.
///
/// Produced by [`classify_sync`] (synchronous runs, where "step" and
/// "round" coincide) and [`classify_scheduled`] (any periodic schedule,
/// where the counts are in *steps* of that schedule and stability is
/// relative to it — a labeling no activated node ever rewrites is stable
/// under that schedule even if an unscheduled node could move it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SyncOutcome<L> {
    /// The labeling reached a fixed point.
    LabelStable {
        /// First round at which the stable labeling held (earliest round
        /// after which the labeling never changed again).
        round: u64,
        /// The stable labeling.
        labeling: Vec<L>,
        /// Node outputs at (and forever after) the close of the detected
        /// cycle. Under partial schedules a node's output settles at its
        /// first activation after label stabilization.
        outputs: Vec<Output>,
    },
    /// The labeling entered a cycle of period ≥ 2 (for scheduled runs: a
    /// cycle of the (labeling, phase) product along which the labeling is
    /// not constant).
    Oscillating {
        /// First round of the recurring segment.
        cycle_start: u64,
        /// Cycle period (≥ 2; for scheduled runs, a period of the product
        /// state — always a multiple of the labeling's own period).
        period: u64,
        /// If outputs are constant along the cycle: the round after which
        /// outputs never change again, and their final values.
        outputs_stable: Option<(u64, Vec<Output>)>,
    },
}

impl<L> SyncOutcome<L> {
    /// Whether the run label-stabilized.
    pub fn is_label_stable(&self) -> bool {
        matches!(self, SyncOutcome::LabelStable { .. })
    }

    /// Whether the run output-stabilized (label stability implies it).
    pub fn is_output_stable(&self) -> bool {
        match self {
            SyncOutcome::LabelStable { .. } => true,
            SyncOutcome::Oscillating { outputs_stable, .. } => outputs_stable.is_some(),
        }
    }

    /// The converged outputs, if the run output-stabilized.
    pub fn final_outputs(&self) -> Option<&[Output]> {
        match self {
            SyncOutcome::LabelStable { outputs, .. } => Some(outputs),
            SyncOutcome::Oscillating { outputs_stable, .. } => {
                outputs_stable.as_ref().map(|(_, o)| o.as_slice())
            }
        }
    }

    /// The output-convergence round: the earliest round after which outputs
    /// never change, if the run output-stabilized.
    pub fn output_round(&self) -> Option<u64> {
        match self {
            SyncOutcome::LabelStable { round, .. } => Some(*round),
            SyncOutcome::Oscillating { outputs_stable, .. } => {
                outputs_stable.as_ref().map(|&(r, _)| r)
            }
        }
    }
}

/// The cycle-detection engine behind [`classify_sync_with`] and
/// [`classify_scheduled`]. Both modes are exact on verdicts, periods, and
/// rounds; they trade memory against (re)computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CycleDetector {
    /// Fingerprint table + flat history arena: every visited labeling is
    /// retained, the cycle is recognized the first time a state repeats,
    /// and all round numbers fall out of the recorded history. Memory is
    /// proportional to `rounds visited × |E|`; `max_states` caps the
    /// number of *distinct product states* visited.
    #[default]
    ExactArena,
    /// Brent's cycle detection: O(1) state memory (two run cursors plus a
    /// handful of snapshots), at the cost of re-running the deterministic
    /// prefix a few times to recover the exact cycle start and the exact
    /// convergence rounds. `max_states` caps the number of *steps* of the
    /// main search (the recovery passes are bounded by the cycle found).
    /// Use when the history arena would not fit — e.g. runs whose
    /// transient is millions of wide labelings.
    Brent,
}

/// Seeded 64-bit fingerprint of a (labeling, schedule-phase) product state
/// ([`FxHasher`] over every label's `Hash` image, then the phase).
/// Fingerprints index the visited-state table; exact equality against the
/// history arena confirms every hit, so collisions cost a comparison but
/// never an incorrect classification.
fn fingerprint<L: Label>(labeling: &[L], phase: u64) -> u64 {
    let mut h = FxHasher::seeded(labeling.len() as u64);
    for l in labeling {
        l.hash(&mut h);
    }
    h.write_u64(phase);
    h.finish()
}

/// Advances the run one step: the synchronous fast path when the schedule
/// declares itself synchronous, the buffered scheduled step otherwise.
fn advance<L: Label>(sim: &mut Simulation<'_, L>, schedule: &mut dyn Schedule, sync: bool) {
    if sync {
        sim.step_sync();
    } else {
        sim.step_scheduled(schedule);
    }
}

/// Runs `protocol` synchronously from `initial` and classifies the run by
/// exact cycle detection with the default [`CycleDetector::ExactArena`].
///
/// The hot loop runs through the engine's allocation-free
/// [`step_sync`](Simulation::step_sync) path; visited labelings are
/// indexed by 64-bit [fingerprints](fingerprint) into a flat history
/// arena (one contiguous `Vec<L>`), with exact equality confirmation on
/// every fingerprint hit — classification stays exact, but no per-round
/// `HashMap<Vec<L>, _>` key clones are made.
///
/// Memory is proportional to the number of distinct labelings visited,
/// which is at most `|Σ|^|E|` — use only where that is acceptable; the cap
/// `max_states` aborts earlier. When the history would not fit, use
/// [`classify_sync_with`] and [`CycleDetector::Brent`].
///
/// # Errors
///
/// Returns [`CoreError::NotConverged`] if more than `max_states` distinct
/// labelings were visited without closing a cycle, and validation errors
/// for mismatched lengths.
pub fn classify_sync<L: Label>(
    protocol: &Protocol<L>,
    inputs: &[Input],
    initial: Vec<L>,
    max_states: usize,
) -> Result<SyncOutcome<L>, CoreError> {
    classify_sync_with(
        protocol,
        inputs,
        initial,
        max_states,
        CycleDetector::ExactArena,
    )
}

/// [`classify_sync`] with an explicit [`CycleDetector`]. Both detectors
/// return identical outcomes; they differ in memory (arena: O(rounds·|E|),
/// Brent: O(|E|)) and in how `max_states` is interpreted (distinct states
/// vs. search steps — see [`CycleDetector`]).
///
/// # Errors
///
/// As for [`classify_sync`].
pub fn classify_sync_with<L: Label>(
    protocol: &Protocol<L>,
    inputs: &[Input],
    initial: Vec<L>,
    max_states: usize,
    detector: CycleDetector,
) -> Result<SyncOutcome<L>, CoreError> {
    classify_scheduled(
        protocol,
        inputs,
        initial,
        &Synchronous,
        max_states,
        detector,
    )
}

/// Classifies the run of `protocol` from `initial` under any *periodic*
/// schedule, exactly, by cycle detection in the `(labeling, phase)`
/// product state.
///
/// The schedule is cloned (classification never advances the caller's
/// copy) and replayed from its current phase. Because the product state
/// determines the entire future, a repeated product state is a hard
/// cycle, so the verdict is exact — e.g. the paper's Example 1 protocol
/// under its adversarial schedule
/// (`stateless_protocols::example1::oscillation_schedule`) is *proven* to
/// oscillate, not merely observed to keep moving for a while:
///
/// * labeling constant along the product cycle → **label-stable under
///   this schedule** (`round` = earliest step after which the labeling
///   never changed). Note this is schedule-relative: a node the schedule
///   never activates cannot veto stability.
/// * otherwise **oscillating**, with the product-cycle start and period,
///   and the output-convergence step when outputs are constant along the
///   cycle.
///
/// # Errors
///
/// Returns [`CoreError::NotConverged`] if the `max_states` budget is
/// exhausted (distinct product states for
/// [`CycleDetector::ExactArena`], search steps for
/// [`CycleDetector::Brent`]), and validation errors for mismatched
/// lengths.
pub fn classify_scheduled<L, S>(
    protocol: &Protocol<L>,
    inputs: &[Input],
    initial: Vec<L>,
    schedule: &S,
    max_states: usize,
    detector: CycleDetector,
) -> Result<SyncOutcome<L>, CoreError>
where
    L: Label,
    S: PeriodicSchedule + Clone,
{
    match detector {
        CycleDetector::ExactArena => {
            classify_scheduled_arena(protocol, inputs, initial, schedule, max_states)
        }
        CycleDetector::Brent => {
            classify_scheduled_brent(protocol, inputs, initial, schedule, max_states)
        }
    }
}

/// The arena-backed product-state classifier behind
/// [`CycleDetector::ExactArena`].
fn classify_scheduled_arena<L, S>(
    protocol: &Protocol<L>,
    inputs: &[Input],
    initial: Vec<L>,
    schedule: &S,
    max_states: usize,
) -> Result<SyncOutcome<L>, CoreError>
where
    L: Label,
    S: PeriodicSchedule + Clone,
{
    let n = protocol.node_count();
    let e = protocol.edge_count();
    let sync = schedule.is_synchronous();
    let mut sched = schedule.clone();
    let mut sim = Simulation::new(protocol, inputs, initial)?;
    // Block-chunked arenas (fixed ~1 MiB blocks, so million-round
    // transients never realloc-and-copy their history): the labeling of
    // step t is arena.row(t), the outputs produced by the step into step t
    // are out_arena.row(t) (step 0 holds the pre-run placeholder and is
    // never inspected), and the schedule phase at step t is phases[t].
    let mut arena: ChunkedArena<L> = ChunkedArena::new(e);
    let mut out_arena: ChunkedArena<Output> = ChunkedArena::new(n);
    let mut phases: Vec<u64> = Vec::with_capacity(64.min(max_states + 1));
    // fingerprint → first step whose product state hashed to it; every hit
    // is confirmed by exact equality against the arena (see
    // [`FingerprintIndex`]), so no owned labeling key is ever stored.
    let mut seen = FingerprintIndex::new();
    arena.push_row(sim.labeling());
    out_arena.push_row(&vec![0; n]);
    phases.push(sched.phase(n));
    let fp0 = fingerprint(sim.labeling(), sched.phase(n));
    let miss = seen.probe(fp0, 0, |_| false);
    debug_assert!(miss.is_none());

    for t in 1..=(max_states as u64) {
        advance(&mut sim, &mut sched, sync);
        let phase = sched.phase(n);
        let current = sim.labeling();
        let fp = fingerprint(current, phase);
        let row = |s: u64| arena.row(s as usize);
        let hit = seen.probe(fp, t, |s| phases[s as usize] == phase && row(s) == current);
        let Some(s) = hit else {
            arena.push_row(current);
            out_arena.push_row(sim.outputs());
            phases.push(phase);
            continue;
        };
        let period = t - s;
        // The product state at step t equals the one at step s, so the run
        // repeats steps s..t forever. If the labeling is constant along
        // that cycle, the run is label-stable under this schedule.
        if (s..t).all(|r| row(r) == current) {
            // Earliest step after which the labeling never changed: walk
            // back through the recorded (pairwise-distinct-as-products,
            // but possibly label-equal) history.
            let mut round = s;
            for back in (0..s).rev() {
                if row(back) != current {
                    break;
                }
                round = back;
            }
            return Ok(SyncOutcome::LabelStable {
                round,
                labeling: current.to_vec(),
                outputs: sim.outputs().to_vec(),
            });
        }
        out_arena.push_row(sim.outputs());
        // Outputs along the cycle are steps s+1 ..= t (the step out of
        // step s produced step s+1's outputs, and the cycle repeats).
        let outs_of = |r: u64| out_arena.row(r as usize);
        let constant = (s + 1..t).all(|r| outs_of(r) == outs_of(r + 1));
        let outputs_stable = if constant {
            let final_outputs = outs_of(s + 1).to_vec();
            // Earliest step after which outputs never changed: walk back
            // from the end of recorded history.
            let mut round = s + 1;
            for back in (1..=t).rev() {
                if outs_of(back) != final_outputs {
                    round = back + 1;
                    break;
                }
                round = back;
            }
            Some((round, final_outputs))
        } else {
            None
        };
        return Ok(SyncOutcome::Oscillating {
            cycle_start: s,
            period,
            outputs_stable,
        });
    }
    Err(CoreError::NotConverged {
        steps: max_states as u64,
    })
}

/// The O(1)-memory classifier behind [`CycleDetector::Brent`].
///
/// Brent's algorithm finds the cycle period λ with a teleporting tortoise
/// (the hare runs ahead; the tortoise jumps to the hare at powers of two),
/// then the cycle start µ by running two cursors λ apart. Two more
/// deterministic replays recover the exact label/output convergence steps
/// that the arena detector reads off its history — so both detectors
/// return identical outcomes.
fn classify_scheduled_brent<L, S>(
    protocol: &Protocol<L>,
    inputs: &[Input],
    initial: Vec<L>,
    schedule: &S,
    max_states: usize,
) -> Result<SyncOutcome<L>, CoreError>
where
    L: Label,
    S: PeriodicSchedule + Clone,
{
    let n = protocol.node_count();
    let sync = schedule.is_synchronous();
    let budget = max_states as u64;
    let overrun = || CoreError::NotConverged { steps: budget };
    let fresh = || -> Result<_, CoreError> {
        Ok((
            Simulation::new(protocol, inputs, initial.clone())?,
            schedule.clone(),
        ))
    };

    // Phase 1 — the period λ.
    let (mut hare, mut hare_sched) = fresh()?;
    let mut tort_labeling: Vec<L> = hare.labeling().to_vec();
    let mut tort_phase = hare_sched.phase(n);
    advance(&mut hare, &mut hare_sched, sync);
    let mut steps = 1u64;
    let mut power = 1u64;
    let mut lam = 1u64;
    while hare_sched.phase(n) != tort_phase || hare.labeling() != &tort_labeling[..] {
        if power == lam {
            // Teleport: the tortoise adopts the hare's position.
            tort_labeling.clear();
            tort_labeling.extend_from_slice(hare.labeling());
            tort_phase = hare_sched.phase(n);
            power *= 2;
            lam = 0;
        }
        advance(&mut hare, &mut hare_sched, sync);
        lam += 1;
        steps += 1;
        if steps > budget {
            return Err(overrun());
        }
    }

    // Phase 2 — the cycle start µ: two cursors λ apart walk until they
    // coincide.
    let (mut front, mut front_sched) = fresh()?;
    for _ in 0..lam {
        advance(&mut front, &mut front_sched, sync);
    }
    let (mut back, mut back_sched) = fresh()?;
    let mut mu = 0u64;
    while front_sched.phase(n) != back_sched.phase(n) || front.labeling() != back.labeling() {
        advance(&mut front, &mut front_sched, sync);
        advance(&mut back, &mut back_sched, sync);
        mu += 1;
        if mu > budget {
            return Err(overrun());
        }
    }
    // `back` now sits at step µ, the cycle entry.
    let close = mu + lam;

    // Phase 3 — walk the cycle once: is the labeling constant? Are the
    // outputs?
    let entry: Vec<L> = back.labeling().to_vec();
    let mut labels_constant = true;
    let mut outs_constant = true;
    let mut cycle_outs: Vec<Output> = Vec::new();
    for j in 0..lam {
        advance(&mut back, &mut back_sched, sync);
        if back.labeling() != &entry[..] {
            labels_constant = false;
        }
        if j == 0 {
            cycle_outs.extend_from_slice(back.outputs());
        } else if back.outputs() != &cycle_outs[..] {
            outs_constant = false;
        }
    }
    // `back` is at step µ+λ: the cycle close, where the arena detector
    // reads its final outputs.
    let final_outputs = back.outputs().to_vec();

    if labels_constant {
        // Phase 4a — earliest step after which the labeling never changed:
        // one replay over the transient, tracking the last step whose
        // labeling differed from the stable one.
        let (mut probe, mut probe_sched) = fresh()?;
        let mut round = u64::from(probe.labeling() != &entry[..]);
        for t in 1..close {
            advance(&mut probe, &mut probe_sched, sync);
            if probe.labeling() != &entry[..] {
                round = t + 1;
            }
        }
        return Ok(SyncOutcome::LabelStable {
            round,
            labeling: entry,
            outputs: final_outputs,
        });
    }

    let outputs_stable = if outs_constant {
        // Phase 4b — earliest step after which outputs never changed:
        // one replay tracking the last step whose outputs differed from
        // the final ones (steps 1..=close, matching the arena walk-back).
        let (mut probe, mut probe_sched) = fresh()?;
        let mut round = 1u64;
        for t in 1..=close {
            advance(&mut probe, &mut probe_sched, sync);
            if probe.outputs() != &final_outputs[..] {
                round = t + 1;
            }
        }
        Some((round, final_outputs))
    } else {
        None
    };
    Ok(SyncOutcome::Oscillating {
        cycle_start: mu,
        period: lam,
        outputs_stable,
    })
}

/// Reference implementation of [`classify_sync`]: the original
/// clone-per-round `HashMap<Vec<L>, u64>` cycle detector stepping through
/// the allocating [`Protocol::apply`] path. Kept for differential testing
/// and as the baseline in the `convergence` bench; the two must agree on
/// every input.
///
/// # Errors
///
/// As for [`classify_sync`].
#[doc(hidden)]
pub fn classify_sync_naive<L: Label>(
    protocol: &Protocol<L>,
    inputs: &[Input],
    initial: Vec<L>,
    max_states: usize,
) -> Result<SyncOutcome<L>, CoreError> {
    protocol.check_lengths(&initial, inputs)?;
    let n = protocol.node_count();
    let mut seen: HashMap<Vec<L>, u64> = HashMap::new();
    // history[t] = labeling at round t; outputs_history[t] = outputs
    // produced by the step from round t-1 to t (outputs_history[0] is the
    // pre-run placeholder and never inspected).
    let mut history: Vec<Vec<L>> = vec![initial.clone()];
    let mut outputs_history: Vec<Vec<Output>> = vec![vec![0; n]];
    let mut current = initial;
    seen.insert(current.clone(), 0);

    for t in 1..=(max_states as u64) {
        let mut next = current.clone();
        let mut outs = vec![0; n];
        for node in 0..n {
            let (outgoing, output) = protocol.apply(node, &current, inputs[node])?;
            for (slot, &e) in outgoing.into_iter().zip(protocol.graph().out_edges(node)) {
                next[e] = slot;
            }
            outs[node] = output;
        }
        if let Some(&s) = seen.get(&next) {
            let period = t - s;
            if period == 1 && next == current {
                // Fixed point: find the first round the labeling equaled it.
                let round = history
                    .iter()
                    .position(|l| *l == next)
                    .expect("fixed point was visited") as u64;
                // Outputs after stabilization: produced by stepping from the
                // stable labeling.
                return Ok(SyncOutcome::LabelStable {
                    round,
                    labeling: next,
                    outputs: outs,
                });
            }
            history.push(next.clone());
            outputs_history.push(outs);
            // Outputs along the cycle are outputs_history[s+1 ..= t]; they
            // are the recurring output vectors (the step out of round s
            // produced outputs_history[s+1], and the cycle repeats).
            let cycle_outputs = &outputs_history[(s + 1) as usize..=t as usize];
            let constant = cycle_outputs.windows(2).all(|w| w[0] == w[1]);
            let outputs_stable = if constant {
                let final_outputs = cycle_outputs[0].clone();
                // Earliest round after which outputs never changed: walk
                // back from the end of recorded history.
                let mut round = s + 1;
                for back in (1..=t).rev() {
                    if outputs_history[back as usize] != final_outputs {
                        round = back + 1;
                        break;
                    }
                    round = back;
                }
                Some((round, final_outputs))
            } else {
                None
            };
            return Ok(SyncOutcome::Oscillating {
                cycle_start: s,
                period,
                outputs_stable,
            });
        }
        seen.insert(next.clone(), t);
        history.push(next.clone());
        outputs_history.push(outs);
        current = next;
    }
    Err(CoreError::NotConverged {
        steps: max_states as u64,
    })
}

/// Measures the synchronous round complexity of `protocol` over a set of
/// initial labelings and one input: the maximum label-stabilization round,
/// or `None` if some run oscillates.
///
/// # Errors
///
/// Propagates [`classify_sync`] errors.
pub fn sync_round_complexity<L: Label>(
    protocol: &Protocol<L>,
    inputs: &[Input],
    initials: impl IntoIterator<Item = Vec<L>>,
    max_states: usize,
) -> Result<Option<u64>, CoreError> {
    sync_round_complexity_with(
        protocol,
        inputs,
        initials,
        max_states,
        CycleDetector::ExactArena,
    )
}

/// [`sync_round_complexity`] with an explicit [`CycleDetector`] — use
/// [`CycleDetector::Brent`] when individual runs have transients too long
/// to keep in the arena.
///
/// # Errors
///
/// Propagates [`classify_sync_with`] errors.
pub fn sync_round_complexity_with<L: Label>(
    protocol: &Protocol<L>,
    inputs: &[Input],
    initials: impl IntoIterator<Item = Vec<L>>,
    max_states: usize,
    detector: CycleDetector,
) -> Result<Option<u64>, CoreError> {
    let mut worst = 0;
    for initial in initials {
        match classify_sync_with(protocol, inputs, initial, max_states, detector)? {
            SyncOutcome::LabelStable { round, .. } => worst = worst.max(round),
            SyncOutcome::Oscillating { .. } => return Ok(None),
        }
    }
    Ok(Some(worst))
}

/// Work-batch size for the parallel sweep drivers: large enough to
/// amortize the chunk-claim (one atomic fetch-add per batch), small enough
/// to balance uneven per-initial classification costs.
const PAR_BATCH: usize = 64;

/// Applies `f` to every initial labeling, in parallel across all available
/// cores, and returns the results **in input order**.
///
/// Work is distributed by an atomic chunked counter: workers claim
/// [`PAR_BATCH`]-sized index ranges with one `fetch_add` each (no shared
/// lock on the hot path) and regenerate their items from a per-worker
/// clone of the iterator, which must therefore be `Clone +
/// ExactSizeIterator` — cheap for lazy generators like [`all_labelings`]
/// (which jumps its odometer in O(|E|) per skip) and for `Vec` inputs.
/// The full sweep is never materialized at once. `Protocol` is
/// `Send + Sync` (reactions are `Arc`ed), so `f` can capture one and
/// drive per-worker simulations.
///
/// # Examples
///
/// ```
/// use stateless_core::convergence::{all_labelings, par_sweep};
///
/// let ones = par_sweep(all_labelings(&[false, true], 8), |l| {
///     l.iter().filter(|&&b| b).count()
/// });
/// assert_eq!(ones.len(), 256);
/// assert_eq!(ones.iter().sum::<usize>(), 8 * 128);
/// ```
pub fn par_sweep<L, T, I, F>(initials: I, f: F) -> Vec<T>
where
    L: Label,
    T: Send,
    I: IntoIterator<Item = Vec<L>>,
    I::IntoIter: Send + Clone + ExactSizeIterator,
    F: Fn(Vec<L>) -> T + Sync,
{
    par_sweep_init_with_workers(rayon::current_num_threads(), || (), initials, |(), l| f(l))
}

/// [`par_sweep`] with per-worker scratch state: `init` builds one `S` per
/// worker and `f` receives it mutably alongside each labeling, so sweep
/// bodies can reuse buffers across items instead of allocating per probe
/// (e.g. the scratch pair of
/// [`Protocol::is_stable_labeling_buffered`]).
pub fn par_sweep_init<L, T, S, I, FI, F>(init: FI, initials: I, f: F) -> Vec<T>
where
    L: Label,
    T: Send,
    I: IntoIterator<Item = Vec<L>>,
    I::IntoIter: Send + Clone + ExactSizeIterator,
    FI: Fn() -> S + Sync,
    F: Fn(&mut S, Vec<L>) -> T + Sync,
{
    par_sweep_init_with_workers(rayon::current_num_threads(), init, initials, f)
}

/// [`par_sweep_init`] with an explicit worker count (tests exercise the
/// threaded path regardless of the host's core count).
fn par_sweep_init_with_workers<L, T, S, I, FI, F>(
    workers: usize,
    init: FI,
    initials: I,
    f: F,
) -> Vec<T>
where
    L: Label,
    T: Send,
    I: IntoIterator<Item = Vec<L>>,
    I::IntoIter: Send + Clone + ExactSizeIterator,
    FI: Fn() -> S + Sync,
    F: Fn(&mut S, Vec<L>) -> T + Sync,
{
    let source = initials.into_iter();
    let total = source.len();
    if workers <= 1 || total <= PAR_BATCH {
        // No parallelism available (or nothing to balance): skip the
        // worker machinery entirely.
        let mut state = init();
        return source.map(|l| f(&mut state, l)).collect();
    }
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(total));
    rayon::scope(|s| {
        for _ in 0..workers {
            // Each worker owns a clone of the source iterator and advances
            // it monotonically to whatever chunk it claims; claims cost one
            // atomic fetch-add, results are merged once per worker.
            let mut it = source.clone();
            let (next, results, init, f) = (&next, &results, &init, &f);
            s.spawn(move || {
                let mut state = init();
                let mut pos = 0usize;
                let mut local: Vec<(usize, T)> = Vec::new();
                loop {
                    let start = next.fetch_add(PAR_BATCH, Ordering::Relaxed);
                    if start >= total {
                        break;
                    }
                    let end = (start + PAR_BATCH).min(total);
                    if start > pos {
                        it.nth(start - pos - 1);
                        pos = start;
                    }
                    for i in start..end {
                        let item = it.next().expect("iterator shorter than its len()");
                        pos += 1;
                        local.push((i, f(&mut state, item)));
                    }
                }
                if !local.is_empty() {
                    results
                        .lock()
                        .expect("sweep results lock")
                        .append(&mut local);
                }
            });
        }
    });
    let mut results = results.into_inner().expect("sweep workers joined");
    results.sort_unstable_by_key(|&(i, _)| i);
    results.into_iter().map(|(_, t)| t).collect()
}

/// Parallel [`sync_round_complexity`]: classifies every initial labeling
/// concurrently (chunk-claimed over all cores) and folds the worst
/// stabilization round. Stops early as soon as any run oscillates.
///
/// When every run classifies cleanly the result is identical to the
/// sequential driver. When the sweep contains both an oscillating run and
/// a failing one, an oscillation verdict (`Ok(None)`) deterministically
/// wins here — it is a conclusive statement about the protocol regardless
/// of the budget failure — whereas the sequential driver returns
/// whichever it encounters first in iteration order. (Consequently a
/// classification error stops nothing: the sweep runs to completion —
/// or to the first oscillation — before the error is reported.) When
/// several runs fail and none oscillates, which error is reported is
/// nondeterministic.
///
/// # Errors
///
/// Propagates [`classify_sync`] errors.
pub fn sync_round_complexity_par<L, I>(
    protocol: &Protocol<L>,
    inputs: &[Input],
    initials: I,
    max_states: usize,
) -> Result<Option<u64>, CoreError>
where
    L: Label,
    I: IntoIterator<Item = Vec<L>>,
    I::IntoIter: Send + Clone + ExactSizeIterator,
{
    sync_round_complexity_par_with(
        protocol,
        inputs,
        initials,
        max_states,
        CycleDetector::ExactArena,
    )
}

/// [`sync_round_complexity_par`] with an explicit [`CycleDetector`].
///
/// # Errors
///
/// As for [`sync_round_complexity_par`].
pub fn sync_round_complexity_par_with<L, I>(
    protocol: &Protocol<L>,
    inputs: &[Input],
    initials: I,
    max_states: usize,
    detector: CycleDetector,
) -> Result<Option<u64>, CoreError>
where
    L: Label,
    I: IntoIterator<Item = Vec<L>>,
    I::IntoIter: Send + Clone + ExactSizeIterator,
{
    sync_round_complexity_par_with_workers(
        rayon::current_num_threads(),
        protocol,
        inputs,
        initials,
        max_states,
        detector,
    )
}

/// [`sync_round_complexity_par_with`] with an explicit worker count.
fn sync_round_complexity_par_with_workers<L, I>(
    workers: usize,
    protocol: &Protocol<L>,
    inputs: &[Input],
    initials: I,
    max_states: usize,
    detector: CycleDetector,
) -> Result<Option<u64>, CoreError>
where
    L: Label,
    I: IntoIterator<Item = Vec<L>>,
    I::IntoIter: Send + Clone + ExactSizeIterator,
{
    let source = initials.into_iter();
    let total = source.len();
    if workers <= 1 || total <= PAR_BATCH {
        return sync_round_complexity_with(protocol, inputs, source, max_states, detector);
    }
    let next = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    let oscillating = AtomicBool::new(false);
    let worst = AtomicU64::new(0);
    let error: Mutex<Option<CoreError>> = Mutex::new(None);
    rayon::scope(|s| {
        for _ in 0..workers {
            let mut it = source.clone();
            let (next, stop, oscillating, worst, error) =
                (&next, &stop, &oscillating, &worst, &error);
            s.spawn(move || {
                let mut pos = 0usize;
                'claims: while !stop.load(Ordering::Relaxed) {
                    let start = next.fetch_add(PAR_BATCH, Ordering::Relaxed);
                    if start >= total {
                        break;
                    }
                    let end = (start + PAR_BATCH).min(total);
                    if start > pos {
                        it.nth(start - pos - 1);
                        pos = start;
                    }
                    for _ in start..end {
                        let Some(initial) = it.next() else {
                            break 'claims;
                        };
                        pos += 1;
                        if stop.load(Ordering::Relaxed) {
                            break 'claims;
                        }
                        match classify_sync_with(protocol, inputs, initial, max_states, detector) {
                            Ok(SyncOutcome::LabelStable { round, .. }) => {
                                worst.fetch_max(round, Ordering::Relaxed);
                            }
                            Ok(SyncOutcome::Oscillating { .. }) => {
                                oscillating.store(true, Ordering::Relaxed);
                                stop.store(true, Ordering::Relaxed);
                            }
                            Err(e) => {
                                // Record the error but keep sweeping: a
                                // later oscillation verdict overrides it
                                // (setting `stop` here would starve that
                                // check and break the documented
                                // precedence).
                                let mut slot = error.lock().expect("sweep error lock");
                                slot.get_or_insert(e);
                            }
                        }
                    }
                }
            });
        }
    });
    // Oscillation is checked before errors: it is a final verdict about
    // the protocol, while an error only says some *other* run blew its
    // classification budget (see the doc above).
    if oscillating.load(Ordering::Relaxed) {
        return Ok(None);
    }
    if let Some(e) = error.into_inner().expect("sweep workers joined") {
        return Err(e);
    }
    Ok(Some(worst.load(Ordering::Relaxed)))
}

/// Enumerates all labelings of a graph with `edges` edges over the label
/// alphabet `alphabet` (cartesian power). Intended for exhaustive sweeps
/// on tiny instances; the iterator yields `|alphabet|^edges` items and
/// knows its exact length (saturating at `usize::MAX` for sweep sizes
/// that could never be enumerated anyway). Skipping via
/// [`Iterator::nth`] jumps the internal odometer directly instead of
/// materializing the skipped labelings — this is what lets the parallel
/// sweep drivers fan chunks out without a shared iterator lock.
pub fn all_labelings<L: Label>(alphabet: &[L], edges: usize) -> AllLabelings<L> {
    let remaining = u32::try_from(edges)
        .ok()
        .and_then(|e| alphabet.len().checked_pow(e))
        .unwrap_or(usize::MAX);
    AllLabelings {
        alphabet: alphabet.to_vec(),
        counters: vec![0; edges],
        remaining,
    }
}

/// Iterator over all labelings; see [`all_labelings`].
#[derive(Debug, Clone)]
pub struct AllLabelings<L> {
    alphabet: Vec<L>,
    /// Little-endian base-`alphabet.len()` odometer of the next item.
    counters: Vec<usize>,
    remaining: usize,
}

impl<L: Label> Iterator for AllLabelings<L> {
    type Item = Vec<L>;

    fn next(&mut self) -> Option<Vec<L>> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let item: Vec<L> = self
            .counters
            .iter()
            .map(|&c| self.alphabet[c].clone())
            .collect();
        // Increment odometer (wrap-around past the last item is harmless:
        // `remaining` is the source of truth for termination).
        for c in self.counters.iter_mut() {
            *c += 1;
            if *c == self.alphabet.len() {
                *c = 0;
            } else {
                break;
            }
        }
        Some(item)
    }

    fn nth(&mut self, k: usize) -> Option<Vec<L>> {
        if k >= self.remaining {
            self.remaining = 0;
            return None;
        }
        // Jump the odometer k positions forward in O(edges) without
        // materializing the skipped labelings.
        let base = self.alphabet.len();
        if base > 1 {
            let mut carry = k;
            for c in self.counters.iter_mut() {
                if carry == 0 {
                    break;
                }
                let digit = *c + carry % base;
                *c = digit % base;
                carry = carry / base + digit / base;
            }
        }
        self.remaining -= k;
        self.next()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl<L: Label> ExactSizeIterator for AllLabelings<L> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reaction::FnReaction;
    use crate::schedule::{RoundRobin, Scripted};
    use crate::topology;

    fn max_ring(n: usize) -> Protocol<u64> {
        Protocol::builder(topology::unidirectional_ring(n), 8.0)
            .uniform_reaction(FnReaction::new(|_, incoming: &[u64], input| {
                let m = incoming[0].max(input);
                (vec![m], m)
            }))
            .build()
            .unwrap()
    }

    fn rotate_ring(n: usize) -> Protocol<u64> {
        Protocol::builder(topology::unidirectional_ring(n), 8.0)
            .uniform_reaction(FnReaction::new(|_, incoming: &[u64], _| {
                (vec![incoming[0]], incoming[0])
            }))
            .build()
            .unwrap()
    }

    #[test]
    fn classify_detects_fixed_point_and_round() {
        let p = max_ring(4);
        for detector in [CycleDetector::ExactArena, CycleDetector::Brent] {
            let outcome =
                classify_sync_with(&p, &[1, 2, 3, 4], vec![0; 4], 10_000, detector).unwrap();
            match outcome {
                SyncOutcome::LabelStable {
                    round,
                    labeling,
                    outputs,
                } => {
                    assert!(round <= 4);
                    assert_eq!(labeling, vec![4; 4]);
                    assert_eq!(outputs, vec![4; 4]);
                }
                other => panic!("expected label stability, got {other:?}"),
            }
        }
    }

    #[test]
    fn classify_detects_oscillation_with_period() {
        let p = rotate_ring(3);
        for detector in [CycleDetector::ExactArena, CycleDetector::Brent] {
            let outcome = classify_sync_with(&p, &[0; 3], vec![7, 8, 9], 10_000, detector).unwrap();
            match outcome {
                SyncOutcome::Oscillating {
                    cycle_start,
                    period,
                    outputs_stable,
                } => {
                    assert_eq!(cycle_start, 0);
                    assert_eq!(period, 3);
                    assert!(outputs_stable.is_none(), "rotating distinct outputs");
                }
                other => panic!("expected oscillation, got {other:?}"),
            }
        }
    }

    #[test]
    fn output_stable_label_oscillation() {
        // Rotating identical labels but constant outputs: rotate labels,
        // output a constant.
        let p = Protocol::builder(topology::unidirectional_ring(3), 8.0)
            .uniform_reaction(FnReaction::new(|_, incoming: &[u64], _| {
                (vec![incoming[0].wrapping_add(1) % 2], 42)
            }))
            .build()
            .unwrap();
        // Labels cycle (parity flip through ring of odd size → period 2).
        for detector in [CycleDetector::ExactArena, CycleDetector::Brent] {
            let outcome = classify_sync_with(&p, &[0; 3], vec![0, 1, 0], 10_000, detector).unwrap();
            match outcome {
                SyncOutcome::Oscillating { outputs_stable, .. } => {
                    let (round, outs) = outputs_stable.expect("outputs constant");
                    assert_eq!(outs, vec![42; 3]);
                    assert!(round <= 1);
                }
                SyncOutcome::LabelStable { .. } => panic!("labels should oscillate"),
            }
        }
    }

    #[test]
    fn brent_agrees_with_arena_on_every_field() {
        let cases: Vec<(Protocol<u64>, Vec<Input>, Vec<u64>)> = vec![
            (max_ring(4), vec![1, 2, 3, 4], vec![0; 4]),
            (max_ring(3), vec![0, 0, 0], vec![9, 1, 5]),
            (rotate_ring(3), vec![0; 3], vec![7, 8, 9]),
            (rotate_ring(4), vec![0; 4], vec![1, 1, 2, 2]),
            (rotate_ring(5), vec![0; 5], vec![1, 1, 1, 1, 1]),
        ];
        for (p, inputs, init) in cases {
            let arena =
                classify_sync_with(&p, &inputs, init.clone(), 10_000, CycleDetector::ExactArena)
                    .unwrap();
            let brent =
                classify_sync_with(&p, &inputs, init, 10_000, CycleDetector::Brent).unwrap();
            assert_eq!(arena, brent);
        }
    }

    #[test]
    fn classify_scheduled_sees_oscillation_under_round_robin() {
        // Negation on an odd ring has no fixed point a sequential schedule
        // can reach (e₀ = ¬e₂, e₁ = ¬e₀, e₂ = ¬e₁ is contradictory), so
        // the product run must close a non-constant cycle.
        let p = Protocol::builder(topology::unidirectional_ring(3), 1.0)
            .uniform_reaction(FnReaction::new(|_, incoming: &[bool], _| {
                (vec![!incoming[0]], u64::from(!incoming[0]))
            }))
            .build()
            .unwrap();
        let sched = RoundRobin::new(1);
        for detector in [CycleDetector::ExactArena, CycleDetector::Brent] {
            let outcome = classify_scheduled(
                &p,
                &[0; 3],
                vec![false, false, false],
                &sched,
                10_000,
                detector,
            )
            .unwrap();
            let SyncOutcome::Oscillating { period, .. } = outcome else {
                panic!("negation ring oscillates under round-robin, got {outcome:?}");
            };
            assert!(period >= 2, "period {period}");
        }
        // And both detectors agree exactly.
        let arena = classify_scheduled(
            &p,
            &[0; 3],
            vec![false, true, false],
            &RoundRobin::new(1),
            10_000,
            CycleDetector::ExactArena,
        )
        .unwrap();
        let brent = classify_scheduled(
            &p,
            &[0; 3],
            vec![false, true, false],
            &RoundRobin::new(1),
            10_000,
            CycleDetector::Brent,
        )
        .unwrap();
        assert_eq!(arena, brent);
    }

    #[test]
    fn classify_scheduled_label_stable_under_partial_schedule() {
        // Max-propagation from an already-stable labeling: any schedule
        // keeps it put, and the verdict is LabelStable at step 0.
        let p = max_ring(3);
        let sched = Scripted::cycle(vec![vec![0], vec![1, 2]]);
        for detector in [CycleDetector::ExactArena, CycleDetector::Brent] {
            let outcome =
                classify_scheduled(&p, &[0; 3], vec![5, 5, 5], &sched, 10_000, detector).unwrap();
            match outcome {
                SyncOutcome::LabelStable {
                    round, labeling, ..
                } => {
                    assert_eq!(round, 0);
                    assert_eq!(labeling, vec![5, 5, 5]);
                }
                other => panic!("expected stability, got {other:?}"),
            }
        }
    }

    #[test]
    fn classify_scheduled_converges_then_reports_round() {
        // Round-robin max-propagation: converges after a transient; both
        // detectors must agree on the exact convergence step.
        let p = max_ring(4);
        let sched = RoundRobin::new(1);
        let arena = classify_scheduled(
            &p,
            &[7, 0, 0, 0],
            vec![0; 4],
            &sched,
            10_000,
            CycleDetector::ExactArena,
        )
        .unwrap();
        let brent = classify_scheduled(
            &p,
            &[7, 0, 0, 0],
            vec![0; 4],
            &sched,
            10_000,
            CycleDetector::Brent,
        )
        .unwrap();
        assert_eq!(arena, brent);
        assert!(arena.is_label_stable());
        let SyncOutcome::LabelStable { round, outputs, .. } = arena else {
            unreachable!()
        };
        assert!(round >= 1, "a real transient was crossed");
        assert_eq!(outputs, vec![7; 4]);
    }

    #[test]
    fn classify_scheduled_respects_initial_phase() {
        // Advancing the schedule before classification must shift which
        // activation comes first (phase is part of the product state).
        let p = max_ring(3);
        let mut shifted = Scripted::cycle(vec![vec![0], vec![1], vec![2]]);
        let mut buf = Vec::new();
        shifted.activations_into(1, 3, &mut buf); // now at phase 1
        let fresh = Scripted::cycle(vec![vec![0], vec![1], vec![2]]);
        let a = classify_scheduled(
            &p,
            &[0, 0, 9],
            vec![0; 3],
            &shifted,
            10_000,
            CycleDetector::ExactArena,
        )
        .unwrap();
        let b = classify_scheduled(
            &p,
            &[0, 0, 9],
            vec![0; 3],
            &fresh,
            10_000,
            CycleDetector::ExactArena,
        )
        .unwrap();
        // Both stabilize to all-9, but along different trajectories.
        assert!(a.is_label_stable() && b.is_label_stable());
        assert_ne!(a.output_round(), b.output_round());
    }

    #[test]
    fn round_complexity_over_all_initials() {
        let p = max_ring(3);
        let initials = all_labelings(&[0u64, 1, 2], 3);
        let r = sync_round_complexity(&p, &[0, 1, 2], initials, 10_000)
            .unwrap()
            .expect("max protocol always stabilizes");
        // Labels ≥ inputs are absorbed within n rounds.
        assert!(r <= 3, "got {r}");
    }

    #[test]
    fn round_complexity_agrees_across_detectors() {
        let p = max_ring(3);
        let exact = sync_round_complexity_with(
            &p,
            &[0, 1, 2],
            all_labelings(&[0u64, 1, 2], 3),
            10_000,
            CycleDetector::ExactArena,
        )
        .unwrap();
        let brent = sync_round_complexity_with(
            &p,
            &[0, 1, 2],
            all_labelings(&[0u64, 1, 2], 3),
            10_000,
            CycleDetector::Brent,
        )
        .unwrap();
        assert_eq!(exact, brent);
    }

    #[test]
    fn round_complexity_none_on_oscillators() {
        let p = rotate_ring(3);
        let initials = vec![vec![0u64, 1, 2]];
        assert_eq!(
            sync_round_complexity(&p, &[0; 3], initials, 1000).unwrap(),
            None
        );
    }

    #[test]
    fn all_labelings_enumerates_cartesian_power() {
        let all: Vec<Vec<bool>> = all_labelings(&[false, true], 3).collect();
        assert_eq!(all.len(), 8);
        assert_eq!(all[0], vec![false, false, false]);
        assert!(all.contains(&vec![true, false, true]));
        let dedup: std::collections::HashSet<_> = all.iter().cloned().collect();
        assert_eq!(dedup.len(), 8);
    }

    #[test]
    fn all_labelings_zero_edges_is_single_empty() {
        let all: Vec<Vec<bool>> = all_labelings(&[false, true], 0).collect();
        assert_eq!(all, vec![Vec::<bool>::new()]);
    }

    #[test]
    fn all_labelings_len_is_exact() {
        assert_eq!(all_labelings(&[0u64, 1, 2], 4).len(), 81);
        assert_eq!(all_labelings(&[0u64], 5).len(), 1);
        assert_eq!(all_labelings(&[] as &[u64], 3).len(), 0);
        let mut it = all_labelings(&[false, true], 3);
        it.next();
        assert_eq!(it.len(), 7);
    }

    #[test]
    fn all_labelings_nth_jumps_the_odometer() {
        for k in 0..16 {
            let direct = all_labelings(&[0u64, 1], 4).nth(k);
            let stepped: Option<Vec<u64>> = {
                let mut it = all_labelings(&[0u64, 1], 4);
                let mut item = None;
                for _ in 0..=k {
                    item = it.next();
                }
                item
            };
            assert_eq!(direct, stepped, "k = {k}");
        }
        // Jumping past the end terminates cleanly.
        assert_eq!(all_labelings(&[0u64, 1], 4).nth(16), None);
        let mut it = all_labelings(&[0u64, 1], 4);
        it.nth(20);
        assert_eq!(it.len(), 0);
        // And chained jumps compose: nth(10) consumes items 0..=10, so a
        // following nth(5) yields absolute index 16.
        let mut it = all_labelings(&[0u64, 1, 2], 4);
        it.nth(10);
        let a = it.nth(5);
        let b = all_labelings(&[0u64, 1, 2], 4).nth(16);
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_round_complexity_matches_sequential() {
        let p = max_ring(3);
        let initials: Vec<Vec<u64>> = all_labelings(&[0u64, 1, 2], 3).collect();
        let seq = sync_round_complexity(&p, &[0, 1, 2], initials.clone(), 10_000).unwrap();
        // Exercise the threaded path explicitly (the public entry point
        // may fall back to sequential on single-core hosts) and the
        // fallback.
        for workers in [1, 4] {
            for detector in [CycleDetector::ExactArena, CycleDetector::Brent] {
                let par = sync_round_complexity_par_with_workers(
                    workers,
                    &p,
                    &[0, 1, 2],
                    initials.clone(),
                    10_000,
                    detector,
                )
                .unwrap();
                assert_eq!(seq, par, "workers = {workers}, {detector:?}");
                assert!(par.is_some());
            }
        }
        let public = sync_round_complexity_par(&p, &[0, 1, 2], initials, 10_000).unwrap();
        assert_eq!(seq, public);
    }

    #[test]
    fn parallel_round_complexity_detects_oscillation() {
        let p = rotate_ring(3);
        for workers in [1, 4] {
            let initials = all_labelings(&[0u64, 1], 3);
            assert_eq!(
                sync_round_complexity_par_with_workers(
                    workers,
                    &p,
                    &[0; 3],
                    initials,
                    1000,
                    CycleDetector::ExactArena,
                )
                .unwrap(),
                None,
                "workers = {workers}"
            );
        }
    }

    #[test]
    fn parallel_round_complexity_propagates_errors() {
        let p = Protocol::builder(topology::unidirectional_ring(2), 64.0)
            .uniform_reaction(FnReaction::new(|_, incoming: &[u64], _| {
                (vec![incoming[0] + 1], 0)
            }))
            .build()
            .unwrap();
        for workers in [1, 4] {
            let err = sync_round_complexity_par_with_workers(
                workers,
                &p,
                &[0, 0],
                vec![vec![0u64, 0]],
                100,
                CycleDetector::ExactArena,
            )
            .unwrap_err();
            assert_eq!(
                err,
                CoreError::NotConverged { steps: 100 },
                "workers = {workers}"
            );
        }
    }

    #[test]
    fn par_sweep_preserves_input_order() {
        for workers in [1, 4] {
            let initials: Vec<Vec<u64>> = (0..500).map(|i| vec![i]).collect();
            let doubled = par_sweep_init_with_workers(workers, || (), initials, |(), l| l[0] * 2);
            assert_eq!(doubled.len(), 500);
            for (i, v) in doubled.into_iter().enumerate() {
                assert_eq!(v, 2 * i as u64, "workers = {workers}");
            }
        }
    }

    #[test]
    fn par_sweep_with_more_workers_than_items() {
        // 3 items on 8 workers: the atomic-counter chunk claiming must
        // neither panic on empty claims nor drop or duplicate items. A
        // sub-batch total exercises the sequential fallback; a total one
        // past PAR_BATCH engages the threaded path with six of the eight
        // workers claiming beyond-the-end (empty) chunks.
        for total in [3usize, PAR_BATCH + 1] {
            let initials: Vec<Vec<u64>> = (0..total as u64).map(|i| vec![i]).collect();
            let got = par_sweep_init_with_workers(8, || (), initials, |(), l| l[0] + 1);
            assert_eq!(
                got,
                (1..=total as u64).collect::<Vec<_>>(),
                "total = {total}"
            );
        }
        // Same guard for the round-complexity driver.
        let p = max_ring(3);
        let initials: Vec<Vec<u64>> = all_labelings(&[0u64, 1, 2], 3).take(3).collect();
        let seq = sync_round_complexity(&p, &[0, 1, 2], initials.clone(), 10_000).unwrap();
        let par = sync_round_complexity_par_with_workers(
            8,
            &p,
            &[0, 1, 2],
            initials,
            10_000,
            CycleDetector::ExactArena,
        )
        .unwrap();
        assert_eq!(seq, par);
    }

    #[test]
    fn par_sweep_over_lazy_generator_preserves_order() {
        // The chunk-claiming path regenerates items from per-worker
        // iterator clones; the odometer jumps must land on the right
        // labelings in the right order.
        let expected: Vec<Vec<u64>> = all_labelings(&[0u64, 1, 2], 5).collect();
        for workers in [2, 4] {
            let got = par_sweep_init_with_workers(
                workers,
                || (),
                all_labelings(&[0u64, 1, 2], 5),
                |(), l| l,
            );
            assert_eq!(got, expected, "workers = {workers}");
        }
    }

    #[test]
    fn par_sweep_init_reuses_worker_state() {
        for workers in [1, 4] {
            let initials: Vec<Vec<u64>> = (0..300).map(|i| vec![i]).collect();
            // Each worker counts its own items in its scratch state; the
            // returned running counts prove states persist across items.
            let counts = par_sweep_init_with_workers(
                workers,
                || 0u64,
                initials,
                |count, _l| {
                    *count += 1;
                    *count
                },
            );
            assert_eq!(counts.len(), 300);
            let max_seen = counts.iter().max().copied().unwrap();
            assert!(max_seen > 1, "workers = {workers}: state was not reused");
            // One count-1 entry per worker that got items (a fast worker
            // may drain every batch, so only a lower/upper bound holds).
            let fresh = counts.iter().filter(|&&c| c == 1).count();
            assert!(
                (1..=workers).contains(&fresh),
                "workers = {workers}: {fresh} fresh states"
            );
        }
    }

    #[test]
    fn parallel_oscillation_verdict_beats_budget_error() {
        // One initial blows the classification budget (counter grows
        // unboundedly), another oscillates. The documented precedence:
        // the oscillation verdict (Ok(None)) must win, even when the
        // failing run is classified first.
        let p = Protocol::builder(topology::unidirectional_ring(2), 64.0)
            .uniform_reaction(FnReaction::new(|_, incoming: &[u64], _| {
                // Labels below 1000 grow forever (budget blower); labels
                // at 1000/1001 swap forever (oscillator).
                let next = match incoming[0] {
                    1000 => 1001,
                    1001 => 1000,
                    v => v + 1,
                };
                (vec![next], 0)
            }))
            .build()
            .unwrap();
        // The sweep needs more items than one PAR_BATCH so the threaded
        // path engages: many budget blowers, one oscillator in the middle.
        let mut initials: Vec<Vec<u64>> =
            (0..2 * PAR_BATCH as u64).map(|k| vec![k % 50, 0]).collect();
        initials.insert(PAR_BATCH, vec![1000, 1000]);
        for workers in [1, 4] {
            let got = sync_round_complexity_par_with_workers(
                workers,
                &p,
                &[0, 0],
                initials.clone(),
                50,
                CycleDetector::ExactArena,
            );
            if workers == 1 {
                // Sequential fallback hits a failing run first.
                assert_eq!(got.unwrap_err(), CoreError::NotConverged { steps: 50 });
            } else {
                assert_eq!(got.unwrap(), None, "oscillation wins over the error");
            }
        }
    }

    #[test]
    fn classify_respects_state_cap() {
        let p = Protocol::builder(topology::unidirectional_ring(2), 64.0)
            .uniform_reaction(FnReaction::new(|_, incoming: &[u64], _| {
                (vec![incoming[0] + 1], 0)
            }))
            .build()
            .unwrap();
        // Counter grows unboundedly; must hit the cap in both modes.
        for detector in [CycleDetector::ExactArena, CycleDetector::Brent] {
            let err = classify_sync_with(&p, &[0, 0], vec![0, 0], 100, detector).unwrap_err();
            assert_eq!(err, CoreError::NotConverged { steps: 100 });
        }
    }
}
