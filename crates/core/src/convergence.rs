//! Exact classification of synchronous runs.
//!
//! Under the synchronous (1-fair) schedule the global transition is a
//! deterministic function of the labeling alone, so every run eventually
//! enters a cycle; detecting that cycle classifies the run exactly:
//!
//! * cycle of period 1 → the run **label-stabilizes**, and the round at
//!   which it first reached the fixed point is its label-convergence time;
//! * period > 1 with constant outputs along the cycle → the run
//!   **output-stabilizes** but not label-stabilizes (the labels oscillate
//!   forever while outputs stay put);
//! * otherwise the run oscillates in outputs too.
//!
//! This is the measurement used for the paper's round complexity `Rₙ`
//! (Section 2.3), which is defined for synchronous interaction.

use std::collections::HashMap;
use std::hash::Hasher;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use crate::engine::Simulation;
use crate::error::CoreError;
use crate::label::Label;
use crate::protocol::Protocol;
use crate::{Input, Output};

/// The exact outcome of a synchronous run from one initial labeling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SyncOutcome<L> {
    /// The labeling reached a fixed point.
    LabelStable {
        /// First round at which the stable labeling held.
        round: u64,
        /// The stable labeling.
        labeling: Vec<L>,
        /// Node outputs at (and forever after) stabilization.
        outputs: Vec<Output>,
    },
    /// The labeling entered a cycle of period ≥ 2.
    Oscillating {
        /// First round of the recurring segment.
        cycle_start: u64,
        /// Cycle period (≥ 2).
        period: u64,
        /// If outputs are constant along the cycle: the round after which
        /// outputs never change again, and their final values.
        outputs_stable: Option<(u64, Vec<Output>)>,
    },
}

impl<L> SyncOutcome<L> {
    /// Whether the run label-stabilized.
    pub fn is_label_stable(&self) -> bool {
        matches!(self, SyncOutcome::LabelStable { .. })
    }

    /// Whether the run output-stabilized (label stability implies it).
    pub fn is_output_stable(&self) -> bool {
        match self {
            SyncOutcome::LabelStable { .. } => true,
            SyncOutcome::Oscillating { outputs_stable, .. } => outputs_stable.is_some(),
        }
    }

    /// The converged outputs, if the run output-stabilized.
    pub fn final_outputs(&self) -> Option<&[Output]> {
        match self {
            SyncOutcome::LabelStable { outputs, .. } => Some(outputs),
            SyncOutcome::Oscillating { outputs_stable, .. } => {
                outputs_stable.as_ref().map(|(_, o)| o.as_slice())
            }
        }
    }

    /// The output-convergence round: the earliest round after which outputs
    /// never change, if the run output-stabilized.
    pub fn output_round(&self) -> Option<u64> {
        match self {
            SyncOutcome::LabelStable { round, .. } => Some(*round),
            SyncOutcome::Oscillating { outputs_stable, .. } => {
                outputs_stable.as_ref().map(|&(r, _)| r)
            }
        }
    }
}

/// An FxHash-style multiplicative [`Hasher`] with a fixed seed: one
/// rotate-xor-multiply per 8-byte word, ~4× faster than SipHash on the
/// wide labelings the classifier fingerprints. Not collision-resistant
/// against adversaries — which is fine, because every fingerprint hit is
/// confirmed by exact equality against the history arena.
#[derive(Default)]
struct FxHasher {
    hash: u64,
}

/// The golden-ratio multiplier used by rustc's FxHash.
const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    fn finish(&self) -> u64 {
        self.hash
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(buf));
        }
    }

    fn write_u8(&mut self, i: u8) {
        self.add(u64::from(i));
    }

    fn write_u32(&mut self, i: u32) {
        self.add(u64::from(i));
    }

    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }
}

/// Seeded 64-bit fingerprint of a labeling ([`FxHasher`] over every
/// label's `Hash` image). Fingerprints index the visited-state table;
/// exact equality against the history arena confirms every hit, so
/// collisions cost a comparison but never an incorrect classification.
fn fingerprint<L: Label>(labeling: &[L]) -> u64 {
    let mut h = FxHasher {
        hash: labeling.len() as u64,
    };
    for l in labeling {
        l.hash(&mut h);
    }
    h.finish()
}

/// Runs `protocol` synchronously from `initial` and classifies the run by
/// exact cycle detection.
///
/// The hot loop runs through the engine's allocation-free
/// [`step_sync`](Simulation::step_sync) path; visited labelings are
/// indexed by 64-bit [fingerprints](fingerprint) into a flat history
/// arena (one contiguous `Vec<L>`), with exact equality confirmation on
/// every fingerprint hit — classification stays exact, but no per-round
/// `HashMap<Vec<L>, _>` key clones are made.
///
/// Memory is proportional to the number of distinct labelings visited,
/// which is at most `|Σ|^|E|` — use only where that is acceptable; the cap
/// `max_states` aborts earlier.
///
/// # Errors
///
/// Returns [`CoreError::NotConverged`] if more than `max_states` distinct
/// labelings were visited without closing a cycle, and validation errors
/// for mismatched lengths.
pub fn classify_sync<L: Label>(
    protocol: &Protocol<L>,
    inputs: &[Input],
    initial: Vec<L>,
    max_states: usize,
) -> Result<SyncOutcome<L>, CoreError> {
    let n = protocol.node_count();
    let e = protocol.edge_count();
    let mut sim = Simulation::new(protocol, inputs, initial)?;
    // Flat arenas: labeling of round t lives at arena[t*e..(t+1)*e], the
    // outputs produced by the step into round t at out_arena[t*n..(t+1)*n]
    // (round 0 holds the pre-run placeholder and is never inspected).
    let mut arena: Vec<L> = Vec::with_capacity(e * 64.min(max_states + 1));
    let mut out_arena: Vec<Output> = Vec::with_capacity(n * 64.min(max_states + 1));
    // fingerprint → first round whose labeling hashed to it. The map is
    // keyed through FxHasher (fingerprints are already well-mixed 64-bit
    // words — SipHashing them again would waste the FxHash fast path) and
    // stores a bare round index; the rare extra rounds on a genuine
    // 64-bit collision go to the `collisions` side list, so no per-entry
    // heap allocation happens on the common path.
    let mut seen: HashMap<u64, u64, std::hash::BuildHasherDefault<FxHasher>> = HashMap::default();
    let mut collisions: Vec<(u64, u64)> = Vec::new();
    arena.extend_from_slice(sim.labeling());
    out_arena.extend(std::iter::repeat_n(0, n));
    seen.insert(fingerprint(sim.labeling()), 0);

    for t in 1..=(max_states as u64) {
        sim.step_sync();
        let current = sim.labeling();
        let fp = fingerprint(current);
        let confirmed = |s: u64| &arena[s as usize * e..(s as usize + 1) * e] == current;
        let hit = match seen.entry(fp) {
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(t);
                None
            }
            std::collections::hash_map::Entry::Occupied(o) => {
                let first = *o.get();
                if confirmed(first) {
                    Some(first)
                } else {
                    // 64-bit collision: consult (and extend) the side list.
                    let extra = collisions
                        .iter()
                        .filter(|&&(f, _)| f == fp)
                        .map(|&(_, s)| s)
                        .find(|&s| confirmed(s));
                    if extra.is_none() {
                        collisions.push((fp, t));
                    }
                    extra
                }
            }
        };
        let Some(s) = hit else {
            arena.extend_from_slice(current);
            out_arena.extend_from_slice(sim.outputs());
            continue;
        };
        let period = t - s;
        if period == 1 {
            // Fixed point. Visited labelings before it are pairwise
            // distinct (a repeat would have closed a cycle earlier), so the
            // first round the stable labeling held is `s` itself; the
            // outputs of the step out of it are the post-stabilization
            // outputs.
            return Ok(SyncOutcome::LabelStable {
                round: s,
                labeling: current.to_vec(),
                outputs: sim.outputs().to_vec(),
            });
        }
        out_arena.extend_from_slice(sim.outputs());
        // Outputs along the cycle are rounds s+1 ..= t (the step out of
        // round s produced round s+1's outputs, and the cycle repeats).
        let outs_of = |r: u64| &out_arena[r as usize * n..(r as usize + 1) * n];
        let constant = (s + 1..t).all(|r| outs_of(r) == outs_of(r + 1));
        let outputs_stable = if constant {
            let final_outputs = outs_of(s + 1).to_vec();
            // Earliest round after which outputs never changed: walk back
            // from the end of recorded history.
            let mut round = s + 1;
            for back in (1..=t).rev() {
                if outs_of(back) != final_outputs {
                    round = back + 1;
                    break;
                }
                round = back;
            }
            Some((round, final_outputs))
        } else {
            None
        };
        return Ok(SyncOutcome::Oscillating {
            cycle_start: s,
            period,
            outputs_stable,
        });
    }
    Err(CoreError::NotConverged {
        steps: max_states as u64,
    })
}

/// Reference implementation of [`classify_sync`]: the original
/// clone-per-round `HashMap<Vec<L>, u64>` cycle detector stepping through
/// the allocating [`Protocol::apply`] path. Kept for differential testing
/// and as the baseline in the `convergence` bench; the two must agree on
/// every input.
///
/// # Errors
///
/// As for [`classify_sync`].
#[doc(hidden)]
pub fn classify_sync_naive<L: Label>(
    protocol: &Protocol<L>,
    inputs: &[Input],
    initial: Vec<L>,
    max_states: usize,
) -> Result<SyncOutcome<L>, CoreError> {
    protocol.check_lengths(&initial, inputs)?;
    let n = protocol.node_count();
    let mut seen: HashMap<Vec<L>, u64> = HashMap::new();
    // history[t] = labeling at round t; outputs_history[t] = outputs
    // produced by the step from round t-1 to t (outputs_history[0] is the
    // pre-run placeholder and never inspected).
    let mut history: Vec<Vec<L>> = vec![initial.clone()];
    let mut outputs_history: Vec<Vec<Output>> = vec![vec![0; n]];
    let mut current = initial;
    seen.insert(current.clone(), 0);

    for t in 1..=(max_states as u64) {
        let mut next = current.clone();
        let mut outs = vec![0; n];
        for node in 0..n {
            let (outgoing, output) = protocol.apply(node, &current, inputs[node])?;
            for (slot, &e) in outgoing.into_iter().zip(protocol.graph().out_edges(node)) {
                next[e] = slot;
            }
            outs[node] = output;
        }
        if let Some(&s) = seen.get(&next) {
            let period = t - s;
            if period == 1 && next == current {
                // Fixed point: find the first round the labeling equaled it.
                let round = history
                    .iter()
                    .position(|l| *l == next)
                    .expect("fixed point was visited") as u64;
                // Outputs after stabilization: produced by stepping from the
                // stable labeling.
                return Ok(SyncOutcome::LabelStable {
                    round,
                    labeling: next,
                    outputs: outs,
                });
            }
            history.push(next.clone());
            outputs_history.push(outs);
            // Outputs along the cycle are outputs_history[s+1 ..= t]; they
            // are the recurring output vectors (the step out of round s
            // produced outputs_history[s+1], and the cycle repeats).
            let cycle_outputs = &outputs_history[(s + 1) as usize..=t as usize];
            let constant = cycle_outputs.windows(2).all(|w| w[0] == w[1]);
            let outputs_stable = if constant {
                let final_outputs = cycle_outputs[0].clone();
                // Earliest round after which outputs never changed: walk
                // back from the end of recorded history.
                let mut round = s + 1;
                for back in (1..=t).rev() {
                    if outputs_history[back as usize] != final_outputs {
                        round = back + 1;
                        break;
                    }
                    round = back;
                }
                Some((round, final_outputs))
            } else {
                None
            };
            return Ok(SyncOutcome::Oscillating {
                cycle_start: s,
                period,
                outputs_stable,
            });
        }
        seen.insert(next.clone(), t);
        history.push(next.clone());
        outputs_history.push(outs);
        current = next;
    }
    Err(CoreError::NotConverged {
        steps: max_states as u64,
    })
}

/// Measures the synchronous round complexity of `protocol` over a set of
/// initial labelings and one input: the maximum label-stabilization round,
/// or `None` if some run oscillates.
///
/// # Errors
///
/// Propagates [`classify_sync`] errors.
pub fn sync_round_complexity<L: Label>(
    protocol: &Protocol<L>,
    inputs: &[Input],
    initials: impl IntoIterator<Item = Vec<L>>,
    max_states: usize,
) -> Result<Option<u64>, CoreError> {
    let mut worst = 0;
    for initial in initials {
        match classify_sync(protocol, inputs, initial, max_states)? {
            SyncOutcome::LabelStable { round, .. } => worst = worst.max(round),
            SyncOutcome::Oscillating { .. } => return Ok(None),
        }
    }
    Ok(Some(worst))
}

/// Work-batch size for the parallel sweep drivers: large enough to
/// amortize the shared-iterator lock, small enough to balance uneven
/// per-initial classification costs.
const PAR_BATCH: usize = 64;

/// Applies `f` to every initial labeling, in parallel across all available
/// cores, and returns the results **in input order**.
///
/// Workers pull batches of [`PAR_BATCH`] labelings from the shared
/// iterator (so `initials` may be a lazy generator like
/// [`all_labelings`] — the full sweep is never materialized at once) and
/// run `f` on each. `Protocol` is `Send + Sync` (reactions are `Arc`ed),
/// so `f` can capture one and drive per-worker simulations.
///
/// # Examples
///
/// ```
/// use stateless_core::convergence::{all_labelings, par_sweep};
///
/// let ones = par_sweep(all_labelings(&[false, true], 8), |l| {
///     l.iter().filter(|&&b| b).count()
/// });
/// assert_eq!(ones.len(), 256);
/// assert_eq!(ones.iter().sum::<usize>(), 8 * 128);
/// ```
pub fn par_sweep<L, T, I, F>(initials: I, f: F) -> Vec<T>
where
    L: Label,
    T: Send,
    I: IntoIterator<Item = Vec<L>>,
    I::IntoIter: Send,
    F: Fn(Vec<L>) -> T + Sync,
{
    par_sweep_init_with_workers(rayon::current_num_threads(), || (), initials, |(), l| f(l))
}

/// [`par_sweep`] with per-worker scratch state: `init` builds one `S` per
/// worker and `f` receives it mutably alongside each labeling, so sweep
/// bodies can reuse buffers across items instead of allocating per probe
/// (e.g. the scratch pair of
/// [`Protocol::is_stable_labeling_buffered`]).
pub fn par_sweep_init<L, T, S, I, FI, F>(init: FI, initials: I, f: F) -> Vec<T>
where
    L: Label,
    T: Send,
    I: IntoIterator<Item = Vec<L>>,
    I::IntoIter: Send,
    FI: Fn() -> S + Sync,
    F: Fn(&mut S, Vec<L>) -> T + Sync,
{
    par_sweep_init_with_workers(rayon::current_num_threads(), init, initials, f)
}

/// [`par_sweep_init`] with an explicit worker count (tests exercise the
/// threaded path regardless of the host's core count).
fn par_sweep_init_with_workers<L, T, S, I, FI, F>(
    workers: usize,
    init: FI,
    initials: I,
    f: F,
) -> Vec<T>
where
    L: Label,
    T: Send,
    I: IntoIterator<Item = Vec<L>>,
    I::IntoIter: Send,
    FI: Fn() -> S + Sync,
    F: Fn(&mut S, Vec<L>) -> T + Sync,
{
    if workers <= 1 {
        // No parallelism available: skip the worker machinery entirely.
        let mut state = init();
        return initials.into_iter().map(|l| f(&mut state, l)).collect();
    }
    let iter = Mutex::new(initials.into_iter().enumerate());
    let results: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::new());
    rayon::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| {
                let mut state = init();
                let mut batch: Vec<(usize, Vec<L>)> = Vec::with_capacity(PAR_BATCH);
                loop {
                    {
                        let mut it = iter.lock().expect("sweep iterator lock");
                        batch.extend(it.by_ref().take(PAR_BATCH));
                    }
                    if batch.is_empty() {
                        break;
                    }
                    let mut local: Vec<(usize, T)> = batch
                        .drain(..)
                        .map(|(i, l)| (i, f(&mut state, l)))
                        .collect();
                    results
                        .lock()
                        .expect("sweep results lock")
                        .append(&mut local);
                }
            });
        }
    });
    let mut results = results.into_inner().expect("sweep workers joined");
    results.sort_unstable_by_key(|&(i, _)| i);
    results.into_iter().map(|(_, t)| t).collect()
}

/// Parallel [`sync_round_complexity`]: classifies every initial labeling
/// concurrently (batched over all cores) and folds the worst
/// stabilization round. Stops early as soon as any run oscillates.
///
/// When every run classifies cleanly the result is identical to the
/// sequential driver. When the sweep contains both an oscillating run and
/// a failing one, an oscillation verdict (`Ok(None)`) deterministically
/// wins here — it is a conclusive statement about the protocol regardless
/// of the budget failure — whereas the sequential driver returns
/// whichever it encounters first in iteration order. (Consequently a
/// classification error stops nothing: the sweep runs to completion —
/// or to the first oscillation — before the error is reported.) When
/// several runs fail and none oscillates, which error is reported is
/// nondeterministic.
///
/// # Errors
///
/// Propagates [`classify_sync`] errors.
pub fn sync_round_complexity_par<L, I>(
    protocol: &Protocol<L>,
    inputs: &[Input],
    initials: I,
    max_states: usize,
) -> Result<Option<u64>, CoreError>
where
    L: Label,
    I: IntoIterator<Item = Vec<L>>,
    I::IntoIter: Send,
{
    sync_round_complexity_par_with_workers(
        rayon::current_num_threads(),
        protocol,
        inputs,
        initials,
        max_states,
    )
}

/// [`sync_round_complexity_par`] with an explicit worker count.
fn sync_round_complexity_par_with_workers<L, I>(
    workers: usize,
    protocol: &Protocol<L>,
    inputs: &[Input],
    initials: I,
    max_states: usize,
) -> Result<Option<u64>, CoreError>
where
    L: Label,
    I: IntoIterator<Item = Vec<L>>,
    I::IntoIter: Send,
{
    if workers <= 1 {
        return sync_round_complexity(protocol, inputs, initials, max_states);
    }
    let iter = Mutex::new(initials.into_iter());
    let stop = AtomicBool::new(false);
    let oscillating = AtomicBool::new(false);
    let worst = AtomicU64::new(0);
    let error: Mutex<Option<CoreError>> = Mutex::new(None);
    rayon::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| {
                let mut batch: Vec<Vec<L>> = Vec::with_capacity(PAR_BATCH);
                while !stop.load(Ordering::Relaxed) {
                    {
                        let mut it = iter.lock().expect("sweep iterator lock");
                        batch.extend(it.by_ref().take(PAR_BATCH));
                    }
                    if batch.is_empty() {
                        break;
                    }
                    for initial in batch.drain(..) {
                        if stop.load(Ordering::Relaxed) {
                            continue;
                        }
                        match classify_sync(protocol, inputs, initial, max_states) {
                            Ok(SyncOutcome::LabelStable { round, .. }) => {
                                worst.fetch_max(round, Ordering::Relaxed);
                            }
                            Ok(SyncOutcome::Oscillating { .. }) => {
                                oscillating.store(true, Ordering::Relaxed);
                                stop.store(true, Ordering::Relaxed);
                            }
                            Err(e) => {
                                // Record the error but keep sweeping: a
                                // later oscillation verdict overrides it
                                // (setting `stop` here would starve that
                                // check and break the documented
                                // precedence).
                                let mut slot = error.lock().expect("sweep error lock");
                                slot.get_or_insert(e);
                            }
                        }
                    }
                }
            });
        }
    });
    // Oscillation is checked before errors: it is a final verdict about
    // the protocol, while an error only says some *other* run blew its
    // classification budget (see the doc above).
    if oscillating.load(Ordering::Relaxed) {
        return Ok(None);
    }
    if let Some(e) = error.into_inner().expect("sweep workers joined") {
        return Err(e);
    }
    Ok(Some(worst.load(Ordering::Relaxed)))
}

/// Enumerates all labelings of a graph with `edges` edges over the label
/// alphabet `alphabet` (cartesian power). Intended for exhaustive sweeps on
/// tiny instances; the iterator yields `|alphabet|^edges` items.
pub fn all_labelings<L: Label>(alphabet: &[L], edges: usize) -> AllLabelings<L> {
    AllLabelings {
        alphabet: alphabet.to_vec(),
        counters: vec![0; edges],
        done: alphabet.is_empty() && edges > 0,
    }
}

/// Iterator over all labelings; see [`all_labelings`].
#[derive(Debug, Clone)]
pub struct AllLabelings<L> {
    alphabet: Vec<L>,
    counters: Vec<usize>,
    done: bool,
}

impl<L: Label> Iterator for AllLabelings<L> {
    type Item = Vec<L>;

    fn next(&mut self) -> Option<Vec<L>> {
        if self.done {
            return None;
        }
        let item: Vec<L> = self
            .counters
            .iter()
            .map(|&c| self.alphabet[c].clone())
            .collect();
        // Increment odometer.
        let mut i = 0;
        loop {
            if i == self.counters.len() {
                self.done = true;
                break;
            }
            self.counters[i] += 1;
            if self.counters[i] == self.alphabet.len() {
                self.counters[i] = 0;
                i += 1;
            } else {
                break;
            }
        }
        Some(item)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reaction::FnReaction;
    use crate::topology;

    fn max_ring(n: usize) -> Protocol<u64> {
        Protocol::builder(topology::unidirectional_ring(n), 8.0)
            .uniform_reaction(FnReaction::new(|_, incoming: &[u64], input| {
                let m = incoming[0].max(input);
                (vec![m], m)
            }))
            .build()
            .unwrap()
    }

    fn rotate_ring(n: usize) -> Protocol<u64> {
        Protocol::builder(topology::unidirectional_ring(n), 8.0)
            .uniform_reaction(FnReaction::new(|_, incoming: &[u64], _| {
                (vec![incoming[0]], incoming[0])
            }))
            .build()
            .unwrap()
    }

    #[test]
    fn classify_detects_fixed_point_and_round() {
        let p = max_ring(4);
        let outcome = classify_sync(&p, &[1, 2, 3, 4], vec![0; 4], 10_000).unwrap();
        match outcome {
            SyncOutcome::LabelStable {
                round,
                labeling,
                outputs,
            } => {
                assert!(round <= 4);
                assert_eq!(labeling, vec![4; 4]);
                assert_eq!(outputs, vec![4; 4]);
            }
            other => panic!("expected label stability, got {other:?}"),
        }
    }

    #[test]
    fn classify_detects_oscillation_with_period() {
        let p = rotate_ring(3);
        let outcome = classify_sync(&p, &[0; 3], vec![7, 8, 9], 10_000).unwrap();
        match outcome {
            SyncOutcome::Oscillating {
                cycle_start,
                period,
                outputs_stable,
            } => {
                assert_eq!(cycle_start, 0);
                assert_eq!(period, 3);
                assert!(outputs_stable.is_none(), "rotating distinct outputs");
            }
            other => panic!("expected oscillation, got {other:?}"),
        }
    }

    #[test]
    fn output_stable_label_oscillation() {
        // Rotating identical labels but constant outputs: rotate labels,
        // output a constant.
        let p = Protocol::builder(topology::unidirectional_ring(3), 8.0)
            .uniform_reaction(FnReaction::new(|_, incoming: &[u64], _| {
                (vec![incoming[0].wrapping_add(1) % 2], 42)
            }))
            .build()
            .unwrap();
        // Labels cycle (parity flip through ring of odd size → period 2).
        let outcome = classify_sync(&p, &[0; 3], vec![0, 1, 0], 10_000).unwrap();
        match outcome {
            SyncOutcome::Oscillating { outputs_stable, .. } => {
                let (round, outs) = outputs_stable.expect("outputs constant");
                assert_eq!(outs, vec![42; 3]);
                assert!(round <= 1);
            }
            SyncOutcome::LabelStable { .. } => panic!("labels should oscillate"),
        }
    }

    #[test]
    fn round_complexity_over_all_initials() {
        let p = max_ring(3);
        let initials = all_labelings(&[0u64, 1, 2], 3);
        let r = sync_round_complexity(&p, &[0, 1, 2], initials, 10_000)
            .unwrap()
            .expect("max protocol always stabilizes");
        // Labels ≥ inputs are absorbed within n rounds.
        assert!(r <= 3, "got {r}");
    }

    #[test]
    fn round_complexity_none_on_oscillators() {
        let p = rotate_ring(3);
        let initials = vec![vec![0u64, 1, 2]];
        assert_eq!(
            sync_round_complexity(&p, &[0; 3], initials, 1000).unwrap(),
            None
        );
    }

    #[test]
    fn all_labelings_enumerates_cartesian_power() {
        let all: Vec<Vec<bool>> = all_labelings(&[false, true], 3).collect();
        assert_eq!(all.len(), 8);
        assert_eq!(all[0], vec![false, false, false]);
        assert!(all.contains(&vec![true, false, true]));
        let dedup: std::collections::HashSet<_> = all.iter().cloned().collect();
        assert_eq!(dedup.len(), 8);
    }

    #[test]
    fn all_labelings_zero_edges_is_single_empty() {
        let all: Vec<Vec<bool>> = all_labelings(&[false, true], 0).collect();
        assert_eq!(all, vec![Vec::<bool>::new()]);
    }

    #[test]
    fn fingerprint_classifier_agrees_with_naive_reference() {
        // Stabilizing, oscillating, and output-stable-only runs must be
        // classified identically by both implementations.
        let cases: Vec<(Protocol<u64>, Vec<Input>, Vec<u64>)> = vec![
            (max_ring(4), vec![1, 2, 3, 4], vec![0; 4]),
            (max_ring(3), vec![0, 0, 0], vec![9, 1, 5]),
            (rotate_ring(3), vec![0; 3], vec![7, 8, 9]),
            (rotate_ring(4), vec![0; 4], vec![1, 1, 2, 2]),
        ];
        for (p, inputs, init) in cases {
            let fast = classify_sync(&p, &inputs, init.clone(), 10_000).unwrap();
            let naive = classify_sync_naive(&p, &inputs, init, 10_000).unwrap();
            assert_eq!(fast, naive);
        }
        // The constant-outputs oscillator exercises the outputs_stable arm.
        let p = Protocol::builder(topology::unidirectional_ring(3), 8.0)
            .uniform_reaction(FnReaction::new(|_, incoming: &[u64], _| {
                (vec![incoming[0].wrapping_add(1) % 2], 42)
            }))
            .build()
            .unwrap();
        let fast = classify_sync(&p, &[0; 3], vec![0, 1, 0], 10_000).unwrap();
        let naive = classify_sync_naive(&p, &[0; 3], vec![0, 1, 0], 10_000).unwrap();
        assert_eq!(fast, naive);
    }

    #[test]
    fn parallel_round_complexity_matches_sequential() {
        let p = max_ring(3);
        let initials: Vec<Vec<u64>> = all_labelings(&[0u64, 1, 2], 3).collect();
        let seq = sync_round_complexity(&p, &[0, 1, 2], initials.clone(), 10_000).unwrap();
        // Exercise the threaded path explicitly (the public entry point
        // may fall back to sequential on single-core hosts) and the
        // fallback.
        for workers in [1, 4] {
            let par = sync_round_complexity_par_with_workers(
                workers,
                &p,
                &[0, 1, 2],
                initials.clone(),
                10_000,
            )
            .unwrap();
            assert_eq!(seq, par, "workers = {workers}");
            assert!(par.is_some());
        }
        let public = sync_round_complexity_par(&p, &[0, 1, 2], initials, 10_000).unwrap();
        assert_eq!(seq, public);
    }

    #[test]
    fn parallel_round_complexity_detects_oscillation() {
        let p = rotate_ring(3);
        for workers in [1, 4] {
            let initials = all_labelings(&[0u64, 1], 3);
            assert_eq!(
                sync_round_complexity_par_with_workers(workers, &p, &[0; 3], initials, 1000)
                    .unwrap(),
                None,
                "workers = {workers}"
            );
        }
    }

    #[test]
    fn parallel_round_complexity_propagates_errors() {
        let p = Protocol::builder(topology::unidirectional_ring(2), 64.0)
            .uniform_reaction(FnReaction::new(|_, incoming: &[u64], _| {
                (vec![incoming[0] + 1], 0)
            }))
            .build()
            .unwrap();
        for workers in [1, 4] {
            let err = sync_round_complexity_par_with_workers(
                workers,
                &p,
                &[0, 0],
                vec![vec![0u64, 0]],
                100,
            )
            .unwrap_err();
            assert_eq!(
                err,
                CoreError::NotConverged { steps: 100 },
                "workers = {workers}"
            );
        }
    }

    #[test]
    fn par_sweep_preserves_input_order() {
        for workers in [1, 4] {
            let initials: Vec<Vec<u64>> = (0..500).map(|i| vec![i]).collect();
            let doubled = par_sweep_init_with_workers(workers, || (), initials, |(), l| l[0] * 2);
            assert_eq!(doubled.len(), 500);
            for (i, v) in doubled.into_iter().enumerate() {
                assert_eq!(v, 2 * i as u64, "workers = {workers}");
            }
        }
    }

    #[test]
    fn par_sweep_init_reuses_worker_state() {
        for workers in [1, 4] {
            let initials: Vec<Vec<u64>> = (0..300).map(|i| vec![i]).collect();
            // Each worker counts its own items in its scratch state; the
            // returned running counts prove states persist across items.
            let counts = par_sweep_init_with_workers(
                workers,
                || 0u64,
                initials,
                |count, _l| {
                    *count += 1;
                    *count
                },
            );
            assert_eq!(counts.len(), 300);
            let max_seen = counts.iter().max().copied().unwrap();
            assert!(max_seen > 1, "workers = {workers}: state was not reused");
            // One count-1 entry per worker that got items (a fast worker
            // may drain every batch, so only a lower/upper bound holds).
            let fresh = counts.iter().filter(|&&c| c == 1).count();
            assert!(
                (1..=workers).contains(&fresh),
                "workers = {workers}: {fresh} fresh states"
            );
        }
    }

    #[test]
    fn parallel_oscillation_verdict_beats_budget_error() {
        // One initial blows the classification budget (counter grows
        // unboundedly), another oscillates. The documented precedence:
        // the oscillation verdict (Ok(None)) must win, even when the
        // failing run is classified first.
        let p = Protocol::builder(topology::unidirectional_ring(2), 64.0)
            .uniform_reaction(FnReaction::new(|_, incoming: &[u64], _| {
                // Labels below 1000 grow forever (budget blower); labels
                // at 1000/1001 swap forever (oscillator).
                let next = match incoming[0] {
                    1000 => 1001,
                    1001 => 1000,
                    v => v + 1,
                };
                (vec![next], 0)
            }))
            .build()
            .unwrap();
        // [1000, 1000] ↔ [1001, 1001] is a period-2 cycle; [0, 0] grows
        // past the 50-state budget.
        let initials = vec![vec![0u64, 0], vec![1000u64, 1000]];
        for workers in [1, 4] {
            let got =
                sync_round_complexity_par_with_workers(workers, &p, &[0, 0], initials.clone(), 50);
            if workers == 1 {
                // Sequential fallback hits the failing run first.
                assert_eq!(got.unwrap_err(), CoreError::NotConverged { steps: 50 });
            } else {
                assert_eq!(got.unwrap(), None, "oscillation wins over the error");
            }
        }
    }

    #[test]
    fn classify_respects_state_cap() {
        let p = Protocol::builder(topology::unidirectional_ring(2), 64.0)
            .uniform_reaction(FnReaction::new(|_, incoming: &[u64], _| {
                (vec![incoming[0] + 1], 0)
            }))
            .build()
            .unwrap();
        // Counter grows unboundedly; must hit the cap.
        let err = classify_sync(&p, &[0, 0], vec![0, 0], 100).unwrap_err();
        assert_eq!(err, CoreError::NotConverged { steps: 100 });
    }
}
