//! Schedules `σ : N⁺ → 2^[n]` and fairness.
//!
//! A schedule decides which nodes are activated at each time step. The paper
//! distinguishes *fair* schedules (every node activated infinitely often)
//! and *r-fair* schedules (every node activated at least once in every `r`
//! consecutive steps); the synchronous case is `r = 1`.
//!
//! # Buffered activations
//!
//! The hot entry point is [`Schedule::activations_into`], which writes the
//! activation set into a caller-owned buffer so run loops reuse one
//! allocation across steps (see
//! [`Simulation::run`](crate::engine::Simulation::run)); the allocating
//! [`Schedule::activations`] is a convenience wrapper around it. Every
//! built-in schedule implements `activations_into` allocation-free.
//!
//! ## Migration note for `Schedule` implementors
//!
//! Prior to the buffered API, `activations` was the one required method.
//! Both methods now have default bodies that delegate to each other, so
//! existing implementors keep compiling unchanged — but you **must**
//! override at least one of the two (overriding neither recurses forever).
//! New implementations should override `activations_into`; it is the only
//! method the engine calls.

use std::error::Error;
use std::fmt;

use rand::{Rng, RngExt};

use crate::NodeId;

/// Errors produced while building or validating schedules.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ScheduleError {
    /// A scripted schedule had no steps.
    EmptyScript,
    /// A scripted activation set was empty (a schedule maps every step to a
    /// *nonempty* subset of the nodes).
    EmptyActivationSet {
        /// Zero-based index of the offending script step.
        step: usize,
    },
    /// A script named a node outside `0..n` for the graph it is driving.
    NodeOutOfRange {
        /// Zero-based index of the offending script step.
        step: usize,
        /// The offending node id.
        node: NodeId,
        /// The node count the schedule was asked to drive.
        node_count: usize,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::EmptyScript => {
                write!(f, "scripted schedule needs at least one step")
            }
            ScheduleError::EmptyActivationSet { step } => {
                write!(f, "activation set of script step {step} is empty")
            }
            ScheduleError::NodeOutOfRange {
                step,
                node,
                node_count,
            } => write!(
                f,
                "script step {step} activates node {node}, but the graph has {node_count} nodes"
            ),
        }
    }
}

impl Error for ScheduleError {}

/// A source of activation sets.
///
/// `activations_into(t, n, out)` writes the set `σ(t)` for time step
/// `t ≥ 1` on a graph with `n` nodes into `out`. Implementations may be
/// stateful (e.g. random schedules track deadlines) but must produce a
/// nonempty subset of `0..n`.
///
/// See the [module docs](self) for the buffered-API migration note:
/// implementors must override at least one of
/// [`activations_into`](Schedule::activations_into) /
/// [`activations`](Schedule::activations).
pub trait Schedule {
    /// Writes the activation set for time step `t` (1-based) on `n` nodes
    /// into `out`, replacing its contents. The buffer's capacity is reused
    /// across calls — every built-in schedule is allocation-free here after
    /// warm-up.
    fn activations_into(&mut self, t: u64, n: usize, out: &mut Vec<NodeId>) {
        out.clear();
        out.append(&mut self.activations(t, n));
    }

    /// The activation set for time step `t` (1-based) on `n` nodes, as a
    /// fresh `Vec`. Convenience wrapper around
    /// [`activations_into`](Schedule::activations_into); prefer the
    /// buffered method in loops.
    fn activations(&mut self, t: u64, n: usize) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.activations_into(t, n, &mut out);
        out
    }

    /// Whether this schedule activates **every** node at **every** step
    /// and is stateless, i.e. `activations(t, n) = [0, …, n−1]` for all
    /// `t`. The engine uses this to dispatch to its allocation-free
    /// synchronous fast path
    /// ([`Simulation::step_sync`](crate::engine::Simulation::step_sync))
    /// without calling `activations_into` at all. Only override to return
    /// `true` if both conditions hold exactly.
    fn is_synchronous(&self) -> bool {
        false
    }
}

/// A schedule whose future activation sets are fully determined by a
/// bounded *phase*: `σ(t + P) = σ(t)` for the period `P = period_on(n)`.
///
/// This is what makes exact cycle classification possible beyond the
/// synchronous case: the pair `(labeling, phase)` evolves deterministically,
/// so [`classify_scheduled`](crate::convergence::classify_scheduled) can
/// detect cycles in that product state. The adversarial scripts of the
/// paper's proofs (Example 1, Claim B.8) are all periodic.
pub trait PeriodicSchedule: Schedule {
    /// The schedule's period on `n` nodes (an upper bound is allowed: the
    /// activation sequence must satisfy `σ(t + period_on(n)) = σ(t)`).
    fn period_on(&self, n: usize) -> usize;

    /// The current phase. Two instances with equal phases (and equal
    /// parameters) produce identical activation sequences forever; the
    /// phase advances deterministically with each `activations_into` call
    /// and takes at most [`period_on`](PeriodicSchedule::period_on)
    /// distinct values.
    fn phase(&self, n: usize) -> u64;
}

/// The synchronous schedule: every node is activated at every step
/// (1-fair). This is the setting of the paper's Part II.
#[derive(Debug, Clone, Copy, Default)]
pub struct Synchronous;

impl Schedule for Synchronous {
    fn activations_into(&mut self, _t: u64, n: usize, out: &mut Vec<NodeId>) {
        out.clear();
        out.extend(0..n);
    }

    fn is_synchronous(&self) -> bool {
        true
    }
}

impl PeriodicSchedule for Synchronous {
    fn period_on(&self, _n: usize) -> usize {
        1
    }

    fn phase(&self, _n: usize) -> u64 {
        0
    }
}

/// Round-robin: activates `k` consecutive nodes per step, wrapping around.
/// With `k = 1` this is the canonical n-fair sequential schedule.
#[derive(Debug, Clone)]
pub struct RoundRobin {
    k: usize,
    next: usize,
}

impl RoundRobin {
    /// A round-robin schedule activating `k ≥ 1` nodes per step.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(
            k >= 1,
            "round-robin must activate at least one node per step"
        );
        RoundRobin { k, next: 0 }
    }
}

impl Schedule for RoundRobin {
    fn activations_into(&mut self, _t: u64, n: usize, out: &mut Vec<NodeId>) {
        out.clear();
        for i in 0..self.k.min(n) {
            out.push((self.next + i) % n);
        }
        self.next = (self.next + self.k) % n.max(1);
        out.sort_unstable();
        out.dedup();
    }
}

impl PeriodicSchedule for RoundRobin {
    fn period_on(&self, n: usize) -> usize {
        // `next` advances by k (mod n) per step, so the start offset — and
        // with it the activation set — repeats after n / gcd(k, n) steps.
        if n == 0 {
            return 1;
        }
        let mut a = n;
        let mut b = self.k % n;
        while b != 0 {
            (a, b) = (b, a % b);
        }
        n / a
    }

    fn phase(&self, _n: usize) -> u64 {
        self.next as u64
    }
}

/// A scripted schedule: replays a fixed sequence of activation sets,
/// cycling when it reaches the end. This is how the adversarial schedules
/// from the paper's proofs (e.g. the Example 1 oscillation and the
/// Theorem B.8 set-disjointness schedule) are expressed.
#[derive(Debug, Clone)]
pub struct Scripted {
    steps: Vec<Vec<NodeId>>,
    pos: usize,
}

impl Scripted {
    /// Builds a scripted schedule from `steps`; after the last entry the
    /// script repeats from the beginning.
    ///
    /// # Errors
    ///
    /// [`ScheduleError::EmptyScript`] if `steps` is empty and
    /// [`ScheduleError::EmptyActivationSet`] if any step activates nothing.
    /// Node ids are validated against the graph at use time (see
    /// [`validate`](Scripted::validate)), since the script does not know
    /// the node count yet.
    pub fn try_cycle(steps: Vec<Vec<NodeId>>) -> Result<Self, ScheduleError> {
        if steps.is_empty() {
            return Err(ScheduleError::EmptyScript);
        }
        if let Some(step) = steps.iter().position(|s| s.is_empty()) {
            return Err(ScheduleError::EmptyActivationSet { step });
        }
        Ok(Scripted { steps, pos: 0 })
    }

    /// Builds a scripted schedule from `steps`; after the last entry the
    /// script repeats from the beginning.
    ///
    /// # Panics
    ///
    /// Panics if `steps` is empty or contains an empty activation set (the
    /// fallible constructor is [`try_cycle`](Scripted::try_cycle)).
    pub fn cycle(steps: Vec<Vec<NodeId>>) -> Self {
        match Self::try_cycle(steps) {
            Ok(s) => s,
            Err(ScheduleError::EmptyScript) => {
                panic!("scripted schedule needs at least one step")
            }
            Err(e) => panic!("activation sets must be nonempty: {e}"),
        }
    }

    /// The script length before repetition.
    pub fn period(&self) -> usize {
        self.steps.len()
    }

    /// Checks that every scripted activation targets a node in `0..n`.
    ///
    /// Activation sets are also validated on every
    /// [`activations_into`](Schedule::activations_into) call (a script
    /// naming a node `≥ n` used to flow straight into the engine); call
    /// this up front to get the error as a value instead of a panic.
    ///
    /// # Errors
    ///
    /// [`ScheduleError::NodeOutOfRange`] naming the first offending step.
    pub fn validate(&self, n: usize) -> Result<(), ScheduleError> {
        for (step, set) in self.steps.iter().enumerate() {
            if let Some(&node) = set.iter().find(|&&node| node >= n) {
                return Err(ScheduleError::NodeOutOfRange {
                    step,
                    node,
                    node_count: n,
                });
            }
        }
        Ok(())
    }

    /// The largest gap between consecutive activations of any node over one
    /// period (considering the cyclic repetition): the smallest `r` for
    /// which this schedule is r-fair.
    ///
    /// Returns `None` if some node in `0..n` never appears (the schedule is
    /// not even fair for that node).
    pub fn fairness(&self, n: usize) -> Option<usize> {
        let period = self.steps.len();
        let mut worst = 0usize;
        for node in 0..n {
            let hits: Vec<usize> = (0..period)
                .filter(|&i| self.steps[i].contains(&node))
                .collect();
            if hits.is_empty() {
                return None;
            }
            for (k, &h) in hits.iter().enumerate() {
                let prev = if k == 0 {
                    hits[hits.len() - 1] as isize - period as isize
                } else {
                    hits[k - 1] as isize
                };
                let gap = (h as isize - prev) as usize;
                worst = worst.max(gap);
            }
        }
        Some(worst)
    }
}

impl Schedule for Scripted {
    fn activations_into(&mut self, _t: u64, n: usize, out: &mut Vec<NodeId>) {
        let set = &self.steps[self.pos];
        if let Some(&node) = set.iter().find(|&&node| node >= n) {
            let err = ScheduleError::NodeOutOfRange {
                step: self.pos,
                node,
                node_count: n,
            };
            panic!("invalid scripted schedule: {err}");
        }
        out.clear();
        out.extend_from_slice(set);
        self.pos = (self.pos + 1) % self.steps.len();
    }
}

impl PeriodicSchedule for Scripted {
    fn period_on(&self, _n: usize) -> usize {
        self.steps.len()
    }

    fn phase(&self, _n: usize) -> u64 {
        self.pos as u64
    }
}

/// A randomized r-fair schedule: each step activates each node
/// independently with probability `p`, then force-includes every node whose
/// activation deadline (r steps since last activation) has arrived, so the
/// produced schedule is r-fair **by construction**.
///
/// The hot path is a single read-mostly sweep. Deadline forcing reads a
/// per-node absolute deadline (`last activation + r`) instead of
/// incrementing a per-node wait counter, so nodes that do nothing this
/// step cost a load and a compare, not a store. Random inclusions are
/// drawn by the cheapest sampler for `p` (see [`InclusionSampler`]):
/// *geometric gap sampling* for sparse `p` — jump straight to the next
/// included node with `⌊ln U / ln(1−p)⌋`-distributed gaps, about `p·n + 1`
/// RNG draws per step instead of `n` — and a raw 64-bit integer threshold
/// compare for dense `p` (no float math per node at all). The per-node
/// inclusion law is unchanged up to ~2⁻⁵² quantization (each node is
/// included independently with probability `p`, forced inclusions on
/// top); only the RNG value *stream* differs from the old per-node
/// formulation, which no consumer may rely on across versions —
/// determinism is promised per seed, not across code changes.
#[derive(Debug)]
pub struct RandomRFair<R> {
    r: usize,
    p: f64,
    rng: R,
    /// Internal step counter (the schedule ignores the engine's `t`, which
    /// restarts across simulations).
    step: u64,
    /// `deadline[node]` = first step at which the node is deadline-forced
    /// (its last activation + r).
    deadline: Vec<u64>,
    sampler: InclusionSampler,
}

/// How [`RandomRFair`] draws its random inclusions, picked once from `p`.
///
/// Gap sampling does `p·n` logarithms per step where the threshold
/// sampler does `n` RNG draws, so the gap form wins only while `p` is
/// small; the crossover with [`fast_ln_unit`] is around p ≈ 0.25.
#[derive(Debug, Clone, Copy)]
enum InclusionSampler {
    /// `p = 0`: deadline forcing only.
    Never,
    /// `p = 1`: every node, every step.
    Always,
    /// Sparse `p`: geometric gaps of `1 / ln(1 − p)` scale.
    Gap { inv_ln_q: f64 },
    /// Dense `p`: include node iff `next_u64() < bits` (`bits = p·2⁶⁴`).
    Threshold { bits: u64 },
}

/// Largest `p` the gap sampler is used for (see [`InclusionSampler`]).
const GAP_SAMPLER_MAX_P: f64 = 0.25;

/// `ln x` for `x ∈ (0, 1]`, via exponent extraction and a 4-term
/// atanh-series polynomial on the mantissa — ~3× faster than libm's `ln`
/// and within 2·10⁻⁵ absolute on this range, which perturbs a sampled
/// geometric gap by well under one part in a thousand. Only the gap
/// sampler uses it; nothing verdict-bearing does.
fn fast_ln_unit(x: f64) -> f64 {
    let bits = x.to_bits();
    let e = ((bits >> 52) as i64 - 1023) as f64;
    // Mantissa scaled into [1, 2).
    let m = f64::from_bits((bits & 0x000F_FFFF_FFFF_FFFF) | 0x3FF0_0000_0000_0000);
    // ln m = 2 atanh t with t = (m−1)/(m+1) ∈ [0, 1/3).
    let t = (m - 1.0) / (m + 1.0);
    let t2 = t * t;
    let ln_m = 2.0 * t * (1.0 + t2 * (1.0 / 3.0 + t2 * (1.0 / 5.0 + t2 * (1.0 / 7.0))));
    e * std::f64::consts::LN_2 + ln_m
}

/// A geometric gap: how many nodes to skip before the next randomly
/// included one (0 = the very next node is included). `⌊ln U / ln(1−p)⌋`
/// with `U` uniform on `(0, 1]`; the `U = 0` endpoint is excluded so `ln`
/// never sees zero, and an overflowing gap saturates (Rust float casts
/// clamp), which just means "past the end of the node range".
fn geometric_gap<R: Rng>(rng: &mut R, inv_ln_q: f64) -> usize {
    // 53 uniform mantissa bits shifted into (0, 1]: never exactly 0.
    let unit = ((rng.next_u64() >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64);
    (fast_ln_unit(unit) * inv_ln_q) as usize
}

impl<R: Rng> RandomRFair<R> {
    /// Creates an r-fair random schedule with per-node inclusion probability
    /// `p` (forced inclusions are added on top).
    ///
    /// # Panics
    ///
    /// Panics if `r == 0` or `p` is not in `[0, 1]`.
    pub fn new(r: usize, p: f64, rng: R) -> Self {
        assert!(r >= 1, "fairness parameter r must be at least 1");
        assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
        let sampler = if p <= 0.0 {
            InclusionSampler::Never
        } else if p >= 1.0 {
            InclusionSampler::Always
        } else if p <= GAP_SAMPLER_MAX_P {
            InclusionSampler::Gap {
                inv_ln_q: 1.0 / (1.0 - p).ln(),
            }
        } else {
            InclusionSampler::Threshold {
                // p·2⁶⁴, saturating; exact for every p that is a multiple
                // of 2⁻⁵².
                bits: (p * (u64::MAX as f64 + 1.0)) as u64,
            }
        };
        RandomRFair {
            r,
            p,
            rng,
            step: 0,
            deadline: Vec::new(),
            sampler,
        }
    }

    /// The fairness parameter `r`.
    pub fn r(&self) -> usize {
        self.r
    }

    /// The per-node inclusion probability `p`.
    pub fn p(&self) -> f64 {
        self.p
    }
}

impl<R: Rng> Schedule for RandomRFair<R> {
    fn activations_into(&mut self, _t: u64, n: usize, out: &mut Vec<NodeId>) {
        out.clear();
        if n == 0 {
            // No nodes, no activations; in particular the nonemptiness
            // fallback below must not sample from an empty range.
            return;
        }
        self.step += 1;
        let t = self.step;
        let r = self.r as u64;
        // Preserve existing deadlines when the node count changes; nodes
        // beyond the old count start fresh, i.e. as if last activated on
        // the previous step. Rebuilding from scratch would both allocate
        // and forget how long existing nodes have waited.
        if self.deadline.len() != n {
            self.deadline.resize(n, t - 1 + r);
        }
        // One merged sweep, 64 nodes at a time, emits forced and sampled
        // nodes in node order — the output is sorted and duplicate-free by
        // construction. The activation decisions are collected into a
        // *bitmask* first (branch-free, auto-vectorizable deadline
        // compares) and only the set bits are walked; with ~15% of nodes
        // firing per step, per-node `if included` branches mispredict
        // constantly and dominated both this path and the old per-node
        // Bernoulli formulation.
        let mut next_rand = match self.sampler {
            InclusionSampler::Gap { inv_ln_q } => geometric_gap(&mut self.rng, inv_ln_q),
            _ => usize::MAX,
        };
        for base in (0..n).step_by(64) {
            let limit = (n - base).min(64);
            // Deadline-forced bits, branch-free.
            let mut mask: u64 = 0;
            for (j, &deadline) in self.deadline[base..base + limit].iter().enumerate() {
                mask |= u64::from(t >= deadline) << j;
            }
            match self.sampler {
                InclusionSampler::Never => {}
                InclusionSampler::Always => {
                    mask = if limit == 64 {
                        u64::MAX
                    } else {
                        (1 << limit) - 1
                    };
                }
                InclusionSampler::Gap { inv_ln_q } => {
                    while next_rand < base + limit {
                        mask |= 1 << (next_rand - base);
                        next_rand =
                            (next_rand + 1).saturating_add(geometric_gap(&mut self.rng, inv_ln_q));
                    }
                }
                InclusionSampler::Threshold { bits } => {
                    for j in 0..limit {
                        mask |= u64::from(self.rng.next_u64() < bits) << j;
                    }
                }
            }
            while mask != 0 {
                let node = base + mask.trailing_zeros() as usize;
                mask &= mask - 1;
                out.push(node);
                self.deadline[node] = t + r;
            }
        }
        if out.is_empty() {
            // A schedule maps to a *nonempty* subset; activate one random
            // node so the step is well-formed.
            let node = self.rng.random_range(0..n);
            out.push(node);
            self.deadline[node] = t + r;
        }
    }
}

/// Wraps a schedule and records the observed fairness: the largest gap any
/// node has gone without activation. Useful to *check* that an allegedly
/// r-fair schedule really is one.
#[derive(Debug)]
pub struct FairnessMonitor<S> {
    inner: S,
    since: Vec<usize>,
    worst_gap: usize,
}

impl<S: Schedule> FairnessMonitor<S> {
    /// Wraps `inner`.
    pub fn new(inner: S) -> Self {
        FairnessMonitor {
            inner,
            since: Vec::new(),
            worst_gap: 0,
        }
    }

    /// The largest observed activation gap so far (a lower bound on the
    /// schedule's true fairness parameter `r`).
    pub fn worst_gap(&self) -> usize {
        self.worst_gap
    }

    /// Consumes the monitor, returning the wrapped schedule.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: Schedule> Schedule for FairnessMonitor<S> {
    fn activations_into(&mut self, t: u64, n: usize, out: &mut Vec<NodeId>) {
        self.since.resize(n, 0);
        self.inner.activations_into(t, n, out);
        for node in 0..n {
            self.since[node] += 1;
        }
        for &node in out.iter() {
            self.worst_gap = self.worst_gap.max(self.since[node]);
            self.since[node] = 0;
        }
    }

    // Note: is_synchronous stays `false` even for a synchronous inner
    // schedule — the engine must keep calling `activations_into` so the
    // monitor actually observes the activations it is wrapping.
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn synchronous_activates_everyone() {
        let mut s = Synchronous;
        assert_eq!(s.activations(1, 4), vec![0, 1, 2, 3]);
        assert_eq!(s.activations(99, 2), vec![0, 1]);
    }

    #[test]
    fn activations_into_reuses_the_buffer() {
        let mut s = Synchronous;
        let mut buf = Vec::with_capacity(8);
        s.activations_into(1, 4, &mut buf);
        assert_eq!(buf, vec![0, 1, 2, 3]);
        let ptr = buf.as_ptr();
        s.activations_into(2, 3, &mut buf);
        assert_eq!(buf, vec![0, 1, 2]);
        assert_eq!(ptr, buf.as_ptr(), "no reallocation within capacity");
    }

    /// A legacy implementor that only overrides the allocating method must
    /// keep working through the `activations_into` default.
    #[test]
    fn legacy_allocating_implementors_still_work() {
        struct Legacy;
        impl Schedule for Legacy {
            fn activations(&mut self, t: u64, _n: usize) -> Vec<NodeId> {
                vec![t as usize % 2]
            }
        }
        let mut s = Legacy;
        let mut buf = vec![9, 9, 9];
        s.activations_into(3, 5, &mut buf);
        assert_eq!(buf, vec![1]);
        assert_eq!(s.activations(4, 5), vec![0]);
    }

    #[test]
    fn round_robin_single_is_n_fair() {
        let mut s = FairnessMonitor::new(RoundRobin::new(1));
        for t in 1..=20 {
            s.activations(t, 5);
        }
        assert_eq!(s.worst_gap(), 5);
    }

    #[test]
    fn round_robin_k_wraps() {
        let mut s = RoundRobin::new(3);
        assert_eq!(s.activations(1, 4), vec![0, 1, 2]);
        assert_eq!(s.activations(2, 4), vec![0, 1, 3]);
    }

    #[test]
    fn round_robin_period_is_n_over_gcd() {
        assert_eq!(RoundRobin::new(1).period_on(5), 5);
        assert_eq!(RoundRobin::new(2).period_on(6), 3);
        assert_eq!(RoundRobin::new(3).period_on(6), 2);
        assert_eq!(RoundRobin::new(6).period_on(6), 1);
        assert_eq!(RoundRobin::new(7).period_on(5), 5);
    }

    #[test]
    fn round_robin_activations_repeat_with_period() {
        let mut s = RoundRobin::new(2);
        let n = 6;
        let period = s.period_on(n);
        let lap: Vec<Vec<NodeId>> = (0..period as u64)
            .map(|t| s.activations(t + 1, n))
            .collect();
        for t in 0..period as u64 {
            assert_eq!(s.activations(period as u64 + t + 1, n), lap[t as usize]);
        }
    }

    #[test]
    fn scripted_cycles_and_reports_fairness() {
        let s = Scripted::cycle(vec![vec![0, 1], vec![1, 2], vec![0, 2]]);
        assert_eq!(s.fairness(3), Some(2));
        assert_eq!(s.period_on(3), 3);
        let mut s = s;
        assert_eq!(s.phase(3), 0);
        assert_eq!(s.activations(1, 3), vec![0, 1]);
        assert_eq!(s.phase(3), 1);
        assert_eq!(s.activations(2, 3), vec![1, 2]);
        assert_eq!(s.activations(3, 3), vec![0, 2]);
        assert_eq!(s.phase(3), 0);
        assert_eq!(s.activations(4, 3), vec![0, 1], "wraps around");
    }

    #[test]
    fn scripted_fairness_none_when_node_missing() {
        let s = Scripted::cycle(vec![vec![0], vec![1]]);
        assert_eq!(s.fairness(3), None);
        assert_eq!(s.fairness(2), Some(2));
    }

    #[test]
    #[should_panic(expected = "nonempty")]
    fn scripted_rejects_empty_sets() {
        Scripted::cycle(vec![vec![]]);
    }

    #[test]
    fn try_cycle_reports_structured_errors() {
        assert_eq!(
            Scripted::try_cycle(vec![]).unwrap_err(),
            ScheduleError::EmptyScript
        );
        assert_eq!(
            Scripted::try_cycle(vec![vec![0], vec![]]).unwrap_err(),
            ScheduleError::EmptyActivationSet { step: 1 }
        );
        assert!(Scripted::try_cycle(vec![vec![0]]).is_ok());
    }

    #[test]
    fn scripted_validate_catches_out_of_range_nodes() {
        let s = Scripted::cycle(vec![vec![0, 1], vec![2]]);
        assert_eq!(s.validate(3), Ok(()));
        assert_eq!(
            s.validate(2),
            Err(ScheduleError::NodeOutOfRange {
                step: 1,
                node: 2,
                node_count: 2,
            })
        );
        let msg = s.validate(2).unwrap_err().to_string();
        assert!(msg.contains("step 1") && msg.contains("node 2"), "{msg}");
    }

    #[test]
    #[should_panic(expected = "invalid scripted schedule")]
    fn scripted_out_of_range_node_panics_at_use_time() {
        let mut s = Scripted::cycle(vec![vec![5]]);
        let mut buf = Vec::new();
        s.activations_into(1, 3, &mut buf);
    }

    #[test]
    fn random_rfair_is_rfair_by_construction() {
        let rng = StdRng::seed_from_u64(3);
        let mut s = FairnessMonitor::new(RandomRFair::new(4, 0.2, rng));
        for t in 1..=500 {
            let set = s.activations(t, 9);
            assert!(!set.is_empty());
        }
        assert!(
            s.worst_gap() <= 4,
            "observed gap {} exceeds r=4",
            s.worst_gap()
        );
    }

    #[test]
    fn random_rfair_with_p0_is_pure_deadline() {
        let rng = StdRng::seed_from_u64(3);
        let mut s = FairnessMonitor::new(RandomRFair::new(3, 0.0, rng));
        for t in 1..=300 {
            assert!(!s.activations(t, 4).is_empty());
        }
        // With p = 0 nodes fire only at deadlines (or as the nonemptiness
        // fallback), so the worst gap is exactly r.
        assert_eq!(s.worst_gap(), 3);
    }

    #[test]
    fn random_rfair_gap_sampling_matches_bernoulli_rate() {
        // With r huge, activations are (almost) purely the geometric gap
        // sampler; each node must still be included with probability ≈ p
        // per step, independently — the distribution the per-node
        // Bernoulli formulation drew directly.
        let rng = StdRng::seed_from_u64(42);
        let (n, p, steps) = (16usize, 0.25, 4000u64);
        let mut s = RandomRFair::new(1000, p, rng);
        let mut hits = vec![0u32; n];
        for t in 1..=steps {
            for node in s.activations(t, n) {
                hits[node] += 1;
            }
        }
        let expect = steps as f64 * p;
        for (node, &h) in hits.iter().enumerate() {
            assert!(
                (f64::from(h) - expect).abs() < 120.0,
                "node {node}: {h} activations, expected ≈ {expect}"
            );
        }
    }

    #[test]
    fn random_rfair_emits_sorted_unique_sets() {
        let rng = StdRng::seed_from_u64(9);
        let mut s = RandomRFair::new(3, 0.7, rng);
        for t in 1..=200 {
            let set = s.activations(t, 11);
            assert!(set.windows(2).all(|w| w[0] < w[1]), "t={t}: {set:?}");
            assert!(set.iter().all(|&i| i < 11));
        }
    }

    #[test]
    fn random_rfair_p1_activates_everyone() {
        let rng = StdRng::seed_from_u64(5);
        let mut s = RandomRFair::new(4, 1.0, rng);
        for t in 1..=20 {
            assert_eq!(s.activations(t, 6), vec![0, 1, 2, 3, 4, 5]);
        }
    }

    #[test]
    fn random_rfair_zero_nodes_yields_empty_set() {
        // The nonemptiness fallback used to sample random_range(0..0) here.
        let rng = StdRng::seed_from_u64(3);
        let mut s = RandomRFair::new(2, 0.5, rng);
        assert_eq!(s.activations(1, 0), Vec::<NodeId>::new());
        // And the schedule still works when nodes appear afterwards.
        let set = s.activations(2, 4);
        assert!(!set.is_empty());
        assert!(set.iter().all(|&i| i < 4));
    }

    #[test]
    fn random_rfair_keeps_deadlines_across_node_count_growth() {
        // With p = 0, activations are exactly the deadline-forced nodes
        // plus the nonemptiness fallback. Mirror the per-node wait times
        // independently and check that every overdue node is activated —
        // the invariant a from-scratch rebuild of `since` would violate
        // right after the node count grows.
        let rng = StdRng::seed_from_u64(11);
        let mut s = RandomRFair::new(3, 0.0, rng);
        let mut since = [0usize; 6];
        let mut buf = Vec::new();
        for t in 1..=20u64 {
            let n = if t <= 5 { 2 } else { 6 };
            s.activations_into(t, n, &mut buf);
            assert!(!buf.is_empty());
            for wait in since.iter_mut().take(n) {
                *wait += 1;
            }
            for (node, &wait) in since.iter().enumerate().take(n) {
                if wait >= 3 {
                    assert!(
                        buf.contains(&node),
                        "t={t}: node {node} overdue, got {buf:?}"
                    );
                }
            }
            for &node in &buf {
                since[node] = 0;
            }
        }
    }

    #[test]
    fn fairness_monitor_never_claims_synchrony() {
        // Claiming it would let the engine bypass activations_into and the
        // monitor would observe nothing.
        assert!(!FairnessMonitor::new(Synchronous).is_synchronous());
        assert!(!FairnessMonitor::new(RoundRobin::new(1)).is_synchronous());
    }
}
