//! Schedules `σ : N⁺ → 2^[n]` and fairness.
//!
//! A schedule decides which nodes are activated at each time step. The paper
//! distinguishes *fair* schedules (every node activated infinitely often)
//! and *r-fair* schedules (every node activated at least once in every `r`
//! consecutive steps); the synchronous case is `r = 1`.

use rand::{Rng, RngExt};

use crate::NodeId;

/// A source of activation sets.
///
/// `activations(t, n)` returns the set `σ(t)` for time step `t ≥ 1` on a
/// graph with `n` nodes. Implementations may be stateful (e.g. random
/// schedules track deadlines) but must return a nonempty subset of `0..n`.
pub trait Schedule {
    /// The activation set for time step `t` (1-based) on `n` nodes.
    fn activations(&mut self, t: u64, n: usize) -> Vec<NodeId>;

    /// Whether this schedule activates **every** node at **every** step
    /// and is stateless, i.e. `activations(t, n) = [0, …, n−1]` for all
    /// `t`. The engine uses this to dispatch to its allocation-free
    /// synchronous fast path
    /// ([`Simulation::step_sync`](crate::engine::Simulation::step_sync))
    /// without calling `activations` at all. Only override to return
    /// `true` if both conditions hold exactly.
    fn is_synchronous(&self) -> bool {
        false
    }
}

/// The synchronous schedule: every node is activated at every step
/// (1-fair). This is the setting of the paper's Part II.
#[derive(Debug, Clone, Copy, Default)]
pub struct Synchronous;

impl Schedule for Synchronous {
    fn activations(&mut self, _t: u64, n: usize) -> Vec<NodeId> {
        (0..n).collect()
    }

    fn is_synchronous(&self) -> bool {
        true
    }
}

/// Round-robin: activates `k` consecutive nodes per step, wrapping around.
/// With `k = 1` this is the canonical n-fair sequential schedule.
#[derive(Debug, Clone)]
pub struct RoundRobin {
    k: usize,
    next: usize,
}

impl RoundRobin {
    /// A round-robin schedule activating `k ≥ 1` nodes per step.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(
            k >= 1,
            "round-robin must activate at least one node per step"
        );
        RoundRobin { k, next: 0 }
    }
}

impl Schedule for RoundRobin {
    fn activations(&mut self, _t: u64, n: usize) -> Vec<NodeId> {
        let mut set = Vec::with_capacity(self.k.min(n));
        for i in 0..self.k.min(n) {
            set.push((self.next + i) % n);
        }
        self.next = (self.next + self.k) % n.max(1);
        set.sort_unstable();
        set.dedup();
        set
    }
}

/// A scripted schedule: replays a fixed sequence of activation sets,
/// cycling when it reaches the end. This is how the adversarial schedules
/// from the paper's proofs (e.g. the Example 1 oscillation and the
/// Theorem B.8 set-disjointness schedule) are expressed.
#[derive(Debug, Clone)]
pub struct Scripted {
    steps: Vec<Vec<NodeId>>,
    pos: usize,
}

impl Scripted {
    /// Builds a scripted schedule from `steps`; after the last entry the
    /// script repeats from the beginning.
    ///
    /// # Panics
    ///
    /// Panics if `steps` is empty or contains an empty activation set.
    pub fn cycle(steps: Vec<Vec<NodeId>>) -> Self {
        assert!(
            !steps.is_empty(),
            "scripted schedule needs at least one step"
        );
        assert!(
            steps.iter().all(|s| !s.is_empty()),
            "activation sets must be nonempty"
        );
        Scripted { steps, pos: 0 }
    }

    /// The script length before repetition.
    pub fn period(&self) -> usize {
        self.steps.len()
    }

    /// The largest gap between consecutive activations of any node over one
    /// period (considering the cyclic repetition): the smallest `r` for
    /// which this schedule is r-fair.
    ///
    /// Returns `None` if some node in `0..n` never appears (the schedule is
    /// not even fair for that node).
    pub fn fairness(&self, n: usize) -> Option<usize> {
        let period = self.steps.len();
        let mut worst = 0usize;
        for node in 0..n {
            let hits: Vec<usize> = (0..period)
                .filter(|&i| self.steps[i].contains(&node))
                .collect();
            if hits.is_empty() {
                return None;
            }
            for (k, &h) in hits.iter().enumerate() {
                let prev = if k == 0 {
                    hits[hits.len() - 1] as isize - period as isize
                } else {
                    hits[k - 1] as isize
                };
                let gap = (h as isize - prev) as usize;
                worst = worst.max(gap);
            }
        }
        Some(worst)
    }
}

impl Schedule for Scripted {
    fn activations(&mut self, _t: u64, _n: usize) -> Vec<NodeId> {
        let set = self.steps[self.pos].clone();
        self.pos = (self.pos + 1) % self.steps.len();
        set
    }
}

/// A randomized r-fair schedule: each step activates each node
/// independently with probability `p`, then force-includes every node whose
/// activation deadline (r steps since last activation) has arrived, so the
/// produced schedule is r-fair **by construction**.
#[derive(Debug)]
pub struct RandomRFair<R> {
    r: usize,
    p: f64,
    rng: R,
    since: Vec<usize>,
}

impl<R: Rng> RandomRFair<R> {
    /// Creates an r-fair random schedule with per-node inclusion probability
    /// `p` (forced inclusions are added on top).
    ///
    /// # Panics
    ///
    /// Panics if `r == 0` or `p` is not in `[0, 1]`.
    pub fn new(r: usize, p: f64, rng: R) -> Self {
        assert!(r >= 1, "fairness parameter r must be at least 1");
        assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
        RandomRFair {
            r,
            p,
            rng,
            since: Vec::new(),
        }
    }

    /// The fairness parameter `r`.
    pub fn r(&self) -> usize {
        self.r
    }
}

impl<R: Rng> Schedule for RandomRFair<R> {
    fn activations(&mut self, _t: u64, n: usize) -> Vec<NodeId> {
        if self.since.len() != n {
            self.since = vec![0; n];
        }
        let mut set: Vec<NodeId> = Vec::new();
        for node in 0..n {
            self.since[node] += 1;
            let forced = self.since[node] >= self.r;
            if forced || self.rng.random_bool(self.p) {
                set.push(node);
                self.since[node] = 0;
            }
        }
        if set.is_empty() {
            // A schedule maps to a *nonempty* subset; activate one random
            // node so the step is well-formed.
            let node = self.rng.random_range(0..n);
            set.push(node);
            self.since[node] = 0;
        }
        set
    }
}

/// Wraps a schedule and records the observed fairness: the largest gap any
/// node has gone without activation. Useful to *check* that an allegedly
/// r-fair schedule really is one.
#[derive(Debug)]
pub struct FairnessMonitor<S> {
    inner: S,
    since: Vec<usize>,
    worst_gap: usize,
}

impl<S: Schedule> FairnessMonitor<S> {
    /// Wraps `inner`.
    pub fn new(inner: S) -> Self {
        FairnessMonitor {
            inner,
            since: Vec::new(),
            worst_gap: 0,
        }
    }

    /// The largest observed activation gap so far (a lower bound on the
    /// schedule's true fairness parameter `r`).
    pub fn worst_gap(&self) -> usize {
        self.worst_gap
    }

    /// Consumes the monitor, returning the wrapped schedule.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: Schedule> Schedule for FairnessMonitor<S> {
    fn activations(&mut self, t: u64, n: usize) -> Vec<NodeId> {
        if self.since.len() != n {
            self.since = vec![0; n];
        }
        let set = self.inner.activations(t, n);
        for node in 0..n {
            self.since[node] += 1;
        }
        for &node in &set {
            self.worst_gap = self.worst_gap.max(self.since[node]);
            self.since[node] = 0;
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn synchronous_activates_everyone() {
        let mut s = Synchronous;
        assert_eq!(s.activations(1, 4), vec![0, 1, 2, 3]);
        assert_eq!(s.activations(99, 2), vec![0, 1]);
    }

    #[test]
    fn round_robin_single_is_n_fair() {
        let mut s = FairnessMonitor::new(RoundRobin::new(1));
        for t in 1..=20 {
            s.activations(t, 5);
        }
        assert_eq!(s.worst_gap(), 5);
    }

    #[test]
    fn round_robin_k_wraps() {
        let mut s = RoundRobin::new(3);
        assert_eq!(s.activations(1, 4), vec![0, 1, 2]);
        assert_eq!(s.activations(2, 4), vec![0, 1, 3]);
    }

    #[test]
    fn scripted_cycles_and_reports_fairness() {
        let s = Scripted::cycle(vec![vec![0, 1], vec![1, 2], vec![0, 2]]);
        assert_eq!(s.fairness(3), Some(2));
        let mut s = s;
        assert_eq!(s.activations(1, 3), vec![0, 1]);
        assert_eq!(s.activations(2, 3), vec![1, 2]);
        assert_eq!(s.activations(3, 3), vec![0, 2]);
        assert_eq!(s.activations(4, 3), vec![0, 1], "wraps around");
    }

    #[test]
    fn scripted_fairness_none_when_node_missing() {
        let s = Scripted::cycle(vec![vec![0], vec![1]]);
        assert_eq!(s.fairness(3), None);
        assert_eq!(s.fairness(2), Some(2));
    }

    #[test]
    #[should_panic(expected = "nonempty")]
    fn scripted_rejects_empty_sets() {
        Scripted::cycle(vec![vec![]]);
    }

    #[test]
    fn random_rfair_is_rfair_by_construction() {
        let rng = StdRng::seed_from_u64(3);
        let mut s = FairnessMonitor::new(RandomRFair::new(4, 0.2, rng));
        for t in 1..=500 {
            let set = s.activations(t, 9);
            assert!(!set.is_empty());
        }
        assert!(
            s.worst_gap() <= 4,
            "observed gap {} exceeds r=4",
            s.worst_gap()
        );
    }

    #[test]
    fn random_rfair_with_p0_is_pure_deadline() {
        let rng = StdRng::seed_from_u64(3);
        let mut s = FairnessMonitor::new(RandomRFair::new(3, 0.0, rng));
        for t in 1..=300 {
            assert!(!s.activations(t, 4).is_empty());
        }
        // With p = 0 nodes fire only at deadlines (or as the nonemptiness
        // fallback), so the worst gap is exactly r.
        assert_eq!(s.worst_gap(), 3);
    }
}
