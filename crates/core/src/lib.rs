//! # stateless-core
//!
//! The model of *stateless distributed computation* from
//! "Stateless Computation" (Dolev, Erdmann, Lutz, Schapira, Zair — PODC 2017).
//!
//! Processors have **no internal state**. Each node `i` of a strongly
//! connected directed graph is a pure *reaction function*
//!
//! ```text
//! δᵢ : Σ⁻ⁱ × X → Σ⁺ⁱ × Y
//! ```
//!
//! mapping the labels of its incoming edges and its private input to labels
//! for its outgoing edges and an output value. An *adversarial schedule*
//! `σ : t ↦ σ(t) ⊆ [n]` decides which nodes react at each time step; the
//! aggregate transition is `(ℓᵗ, yᵗ) = δ(ℓᵗ⁻¹, x, σ(t))`.
//!
//! This crate provides the pieces of that definition as composable types:
//!
//! * [`graph::DiGraph`] — directed graphs, plus the standard topologies the
//!   paper studies ([`topology`]): rings, cliques, stars, hypercubes, tori.
//! * [`label::Label`] — the label space `Σ` (any hashable value type).
//! * [`reaction::Reaction`] — the reaction function `δᵢ`.
//! * [`protocol::Protocol`] — a graph together with one reaction per node
//!   (the pair `(Σ, δ)` of the paper).
//! * [`schedule::Schedule`] — synchronous, round-robin, scripted, and random
//!   r-fair schedules, plus fairness monitoring; all buffered
//!   ([`Schedule::activations_into`](schedule::Schedule::activations_into)).
//! * [`engine::Simulation`] — executes `(ℓᵗ, yᵗ) = δ(ℓᵗ⁻¹, x, σ(t))`.
//! * [`fault::FaultModel`] — Byzantine / crash fault sets whose reactions
//!   are replaced by adversarially-chosen outputs; the engine replays
//!   recorded adversary scripts
//!   ([`Simulation::step_with_adversary`](engine::Simulation::step_with_adversary)),
//!   the exact verifier in `stabilization-verify` quantifies over every
//!   strategy.
//! * [`convergence`] — exact classification of synchronous *and*
//!   periodically scheduled runs (label-stable / oscillating) by pluggable
//!   cycle detection ([`convergence::CycleDetector`]: history arena or
//!   O(1)-memory Brent), plus parallel sweep drivers.
//! * [`intern`] — the shared state-interning machinery behind the fast
//!   paths: seeded fingerprint hashing with exact-equality confirmation,
//!   flat bit packing, and block-chunked history arenas. Used by
//!   [`convergence`] and by the exact product-graph explorer in
//!   `stabilization-verify`.
//! * [`checkpoint`] — crash-safe checkpoint storage: checksummed segment
//!   files with epoch rotation and an atomically-renamed manifest, the
//!   persistence layer behind the exact verifier's resumable exploration
//!   in `stabilization-verify`.
//! * [`scc`] — strongly connected components of flat CSR digraphs: a
//!   deterministic parallel trim + Forward–Backward engine plus the
//!   serial Tarjan reference, shared by [`graph::DiGraph`] and the exact
//!   verifier's product-graph condensation.
//! * [`symmetry`] — behaviorally-validated topology automorphisms and
//!   orbit-canonical rewriting of packed product states, the engine behind
//!   the exact verifier's symmetry-quotient exploration.
//!
//! ## Quickstart
//!
//! ```
//! use stateless_core::prelude::*;
//!
//! // A 1-bit OR protocol on the clique K₃: every node broadcasts whether it
//! // has seen a 1; outputs converge to OR(x₁,x₂,x₃) in one synchronous round.
//! let graph = topology::clique(3);
//! let mut builder = Protocol::builder(graph, 1.0).name("or-on-clique");
//! for node in 0..3 {
//!     builder = builder.reaction(
//!         node,
//!         FnReaction::new(move |_, incoming: &[bool], input| {
//!             let bit = input == 1 || incoming.iter().any(|&b| b);
//!             (vec![bit; 2], u64::from(bit))
//!         }),
//!     );
//! }
//! let protocol = builder.build()?;
//! let mut sim = Simulation::new(&protocol, &[0, 1, 0], vec![false; 6])?;
//! sim.run(&mut Synchronous, 3);
//! assert_eq!(sim.outputs(), &[1, 1, 1]);
//! # Ok::<(), stateless_core::CoreError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod convergence;
pub mod engine;
pub mod error;
pub mod fault;
pub mod graph;
pub mod intern;
pub mod label;
pub mod protocol;
pub mod reaction;
pub mod scc;
pub mod schedule;
pub mod symmetry;
pub mod topology;
pub mod trace;

pub use error::CoreError;

/// Identifies a node (processor) of a [`graph::DiGraph`]; nodes are `0..n`.
pub type NodeId = usize;
/// Identifies a directed edge of a [`graph::DiGraph`], in insertion order.
pub type EdgeId = usize;
/// A private node input `xᵢ` (the paper's input space `X`, encoded in `u64`;
/// Boolean inputs use `0`/`1`).
pub type Input = u64;
/// A node output value `yᵢ` (the paper's `Y`; Boolean outputs use `0`/`1`).
pub type Output = u64;

/// Convenient glob-import of the whole public surface.
pub mod prelude {
    pub use crate::convergence::{
        classify_scheduled, classify_sync, classify_sync_with, CycleDetector, SyncOutcome,
    };
    pub use crate::engine::Simulation;
    pub use crate::error::CoreError;
    pub use crate::fault::FaultModel;
    pub use crate::graph::DiGraph;
    pub use crate::label::Label;
    pub use crate::protocol::{Protocol, ProtocolBuilder};
    pub use crate::reaction::{ConstReaction, FnBufReaction, FnReaction, Reaction};
    pub use crate::schedule::{
        FairnessMonitor, PeriodicSchedule, RandomRFair, RoundRobin, Schedule, ScheduleError,
        Scripted, Synchronous,
    };
    pub use crate::symmetry::SymmetryMode;
    pub use crate::topology;
    pub use crate::{EdgeId, Input, NodeId, Output};
}
