//! Topology automorphisms and orbit-canonical packed states — the
//! symmetry-reduction machinery behind the exact verifier's
//! `SymmetryMode::Auto`.
//!
//! # Model
//!
//! An [`Automorphism`] of a protocol is a node permutation `π` together
//! with the edge permutation `σ` it induces (`σ(edge(u, v)) =
//! edge(π(u), π(v))`) such that the *dynamics* commute with it: for every
//! node `i` and every assignment of in-labels, node `π(i)` reacting on the
//! `σ`-permuted in-labels produces exactly the `σ`-permuted out-labels and
//! the same output word, and `inputs[π(i)] = inputs[i]`. Under such a
//! permutation, applying activation set `A` to a permuted product state
//! lands on the permuted successor — so whole runs, r-fair schedules,
//! cycles, and verdicts transport along the group.
//!
//! # Derivation ([`Symmetry::derive`])
//!
//! Candidate node permutations are proposed purely from the graph shape —
//! cyclic rotation and reflection on `n` nodes (rings), coordinate
//! rotations/swaps and single-bit translates when `n` is a power of two
//! (hypercubes), row/column shifts for every grid factorization of `n`
//! (tori) — and then **validated behaviorally**: a candidate is kept only
//! if the induced edge permutation exists (it is a graph automorphism)
//! and exhaustive probing over every in-labeling of every node (bounded
//! by a probe budget) confirms reaction equivariance. Validation is what
//! makes `Auto` sound for *arbitrary* reactions: a reflection on a
//! bidirectional ring, for example, swaps each node's clockwise and
//! counter-clockwise slots and survives only if the reaction genuinely
//! treats them symmetrically. The validated generators are closed into
//! the full group (bounded by a closure cap; on overflow the derivation
//! degrades soundly to the identity).
//!
//! # Canonicalization ([`Symmetry::canonicalize`])
//!
//! The canonical form of a packed product state is the
//! lexicographically-least element of its orbit (label indices, then
//! countdown fields, then auxiliary output words). Pure cyclic groups on
//! ring-shaped layouts use Booth's minimal-rotation algorithm
//! ([`booth_least_rotation`], O(n)); every other group falls back to the
//! generator-orbit scan over the (small, capped) closure. Either way the
//! representative is a deterministic function of the state alone — never
//! of thread timing — so the verifier's cross-thread determinism
//! contract survives quotienting verbatim. The element that was applied
//! is returned so callers (witness reconstruction) can *de*-canonicalize:
//! a quotient cycle lifts to a concrete cycle by conjugating each
//! activation mask with the accumulated group element and unrolling until
//! the accumulator returns to the identity.

use std::collections::HashMap;

use crate::graph::DiGraph;
use crate::intern::{pack, unpack};
use crate::label::Label;
use crate::protocol::Protocol;
use crate::{EdgeId, Input};

/// Total reaction probes [`Symmetry::derive`] may spend validating one
/// candidate permutation (the sum over nodes of `|Σ|^indeg`); candidates
/// whose exhaustive validation would exceed it are rejected — soundly,
/// since rejecting a true automorphism only costs reduction.
const PROBE_CAP: u64 = 1 << 14;

/// Cap on the generated group order. Ring/dihedral/hypercube groups at
/// `n ≤ 16` are far below it; if a closure ever exceeds the cap the
/// derivation returns the identity group instead.
const CLOSURE_CAP: usize = 1024;

/// Symmetry reduction mode for the exact verifier (`Limits::symmetry`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SymmetryMode {
    /// No reduction: explore the full product graph (the default, and
    /// exactly the pre-symmetry behavior).
    #[default]
    Off,
    /// Derive validated automorphisms from the protocol
    /// ([`Symmetry::derive`]) and intern only orbit-canonical states.
    /// Verdicts and replayed witnesses are identical to [`Off`]; state
    /// and edge counts shrink by up to the group order.
    ///
    /// [`Off`]: SymmetryMode::Off
    Auto,
}

/// One validated protocol automorphism: a node permutation and the edge
/// permutation it induces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Automorphism {
    /// `node_perm[i]` is the image `π(i)` of node `i`.
    pub node_perm: Vec<u32>,
    /// `edge_perm[e]` is the image `σ(e)` of edge `e`, where
    /// `σ(edge(u, v)) = edge(π(u), π(v))`.
    pub edge_perm: Vec<u32>,
}

impl Automorphism {
    /// The identity on `n` nodes and `e` edges.
    pub fn identity(n: usize, e: usize) -> Self {
        Automorphism {
            node_perm: (0..n as u32).collect(),
            edge_perm: (0..e as u32).collect(),
        }
    }

    /// Whether this is the identity permutation.
    pub fn is_identity(&self) -> bool {
        self.node_perm
            .iter()
            .enumerate()
            .all(|(i, &p)| p == i as u32)
    }

    /// Function composition `self ∘ other` (apply `other` first).
    pub fn compose(&self, other: &Automorphism) -> Automorphism {
        Automorphism {
            node_perm: other
                .node_perm
                .iter()
                .map(|&i| self.node_perm[i as usize])
                .collect(),
            edge_perm: other
                .edge_perm
                .iter()
                .map(|&e| self.edge_perm[e as usize])
                .collect(),
        }
    }

    /// The inverse permutation.
    pub fn inverse(&self) -> Automorphism {
        let mut node_perm = vec![0u32; self.node_perm.len()];
        for (i, &p) in self.node_perm.iter().enumerate() {
            node_perm[p as usize] = i as u32;
        }
        let mut edge_perm = vec![0u32; self.edge_perm.len()];
        for (e, &p) in self.edge_perm.iter().enumerate() {
            edge_perm[p as usize] = e as u32;
        }
        Automorphism {
            node_perm,
            edge_perm,
        }
    }

    /// Maps an activation bitmask through the node permutation: bit `i`
    /// of `mask` becomes bit `π(i)` of the result.
    pub fn apply_mask(&self, mask: u32) -> u32 {
        let mut out = 0u32;
        for (i, &p) in self.node_perm.iter().enumerate() {
            if mask >> i & 1 == 1 {
                out |= 1 << p;
            }
        }
        out
    }
}

/// The bit layout of a packed product state, as the verifier packs it:
/// `edges` label-index fields of `label_width` bits, then `nodes`
/// countdown fields of `countdown_width` bits, in `words` little-endian
/// `u64` words; `aux` auxiliary output words (one per node, or zero)
/// ride in a parallel row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PackedLayout {
    /// Bits per packed label-index field.
    pub label_width: u32,
    /// Bits per packed countdown field.
    pub countdown_width: u32,
    /// Number of label fields (the protocol's edge count).
    pub edges: usize,
    /// Number of countdown fields (the protocol's node count).
    pub nodes: usize,
    /// Packed `u64` words per state.
    pub words: usize,
    /// Auxiliary output words per state (`nodes` when outputs are
    /// tracked, else 0).
    pub aux: usize,
}

/// Reusable decode/compare buffers for [`Symmetry::canonicalize`]; keep
/// one per worker and the per-call cost is allocation-free.
#[derive(Debug, Default)]
pub struct CanonScratch {
    labels: Vec<u32>,
    cds: Vec<u32>,
    aux: Vec<u64>,
    cand_labels: Vec<u32>,
    cand_cds: Vec<u32>,
    cand_aux: Vec<u64>,
    best_labels: Vec<u32>,
    best_cds: Vec<u32>,
    best_aux: Vec<u64>,
    tuples: Vec<(u32, u32, u64)>,
}

/// A validated automorphism group of a protocol, with the machinery to
/// rewrite packed product states to their orbit-canonical form. Obtain
/// one from [`Symmetry::derive`] (validated, always sound) or
/// [`Symmetry::from_generators`] (caller-asserted, for tests).
#[derive(Debug, Clone)]
pub struct Symmetry {
    /// The full group, element 0 the identity, in deterministic
    /// closure-discovery order.
    elements: Vec<Automorphism>,
    /// Booth fast path: when the group is exactly the `n` rotations of a
    /// ring-shaped layout (`e == n`, edge `k` co-rotating with node `k`),
    /// `ring[j]` is the element index of rotation by `j`.
    ring: Option<Vec<u32>>,
}

impl Symmetry {
    /// The trivial (identity-only) group on `n` nodes and `e` edges.
    pub fn identity(n: usize, e: usize) -> Self {
        Symmetry {
            elements: vec![Automorphism::identity(n, e)],
            ring: None,
        }
    }

    /// Closes `generators` into a group (identity first, deterministic
    /// order) **without behavioral validation** — the caller asserts the
    /// generators really are protocol automorphisms. Returns `None` if
    /// the closure exceeds the internal cap or a generator is malformed
    /// (not a permutation of `0..n` / `0..e`). Prefer
    /// [`Symmetry::derive`] outside tests.
    pub fn from_generators(n: usize, e: usize, generators: &[Automorphism]) -> Option<Self> {
        for g in generators {
            if !is_permutation(&g.node_perm, n) || !is_permutation(&g.edge_perm, e) {
                return None;
            }
        }
        let elements = close(n, e, generators)?;
        let ring = detect_ring(&elements, n, e);
        Some(Symmetry { elements, ring })
    }

    /// Derives the validated automorphism group of `protocol` under
    /// `inputs` over `alphabet` — see the module docs. Always sound:
    /// every returned element has passed exhaustive behavioral probing,
    /// and anything unverifiable degrades to the identity group.
    pub fn derive<L: Label>(protocol: &Protocol<L>, inputs: &[Input], alphabet: &[L]) -> Self {
        let g = protocol.graph();
        let (n, e) = (g.node_count(), g.edge_count());
        if n < 2 || e == 0 || inputs.len() != n || alphabet.is_empty() {
            return Symmetry::identity(n, e);
        }
        let mut alpha: Vec<L> = Vec::with_capacity(alphabet.len());
        for l in alphabet {
            if !alpha.contains(l) {
                alpha.push(l.clone());
            }
        }
        let mut generators: Vec<Automorphism> = Vec::new();
        for perm in candidate_perms(n) {
            if let Some(auto) = validate(protocol, inputs, &alpha, &perm) {
                generators.push(auto);
            }
        }
        if generators.is_empty() {
            return Symmetry::identity(n, e);
        }
        let Some(elements) = close(n, e, &generators) else {
            return Symmetry::identity(n, e);
        };
        let ring = detect_ring(&elements, n, e);
        Symmetry { elements, ring }
    }

    /// The stabilizer subgroup of a node coloring: keeps exactly the
    /// elements whose node permutation preserves `colors`
    /// (`colors[π(i)] == colors[i]` for every node), in the original
    /// deterministic order. Used by the verifier to restrict symmetry to
    /// fault-placement-preserving automorphisms — a Byzantine node may
    /// only map to a Byzantine node, a crash node to a crash node. The
    /// Booth ring fast path is re-detected on the subgroup (restriction
    /// usually breaks the pure-rotation shape).
    ///
    /// Color-preservation is closed under composition and inverse, so the
    /// filtered set is itself a group; the identity always survives.
    pub fn restrict_to_coloring(&self, colors: &[u64]) -> Symmetry {
        let elements: Vec<Automorphism> = self
            .elements
            .iter()
            .filter(|el| {
                el.node_perm
                    .iter()
                    .enumerate()
                    .all(|(i, &p)| colors[p as usize] == colors[i])
            })
            .cloned()
            .collect();
        let (n, e) = (elements[0].node_perm.len(), elements[0].edge_perm.len());
        let ring = detect_ring(&elements, n, e);
        Symmetry { elements, ring }
    }

    /// The group order (≥ 1; element 0 is the identity).
    pub fn order(&self) -> usize {
        self.elements.len()
    }

    /// Whether the group is identity-only (no reduction possible).
    pub fn is_trivial(&self) -> bool {
        self.elements.len() <= 1
    }

    /// The group elements; index 0 is the identity.
    pub fn elements(&self) -> &[Automorphism] {
        &self.elements
    }

    /// Rewrites the packed state (`words` per `layout`, plus its `aux`
    /// output row) to the lexicographically-least element of its orbit,
    /// returning the index of the group element that was applied
    /// (`canonical = elements[returned] · original`; 0 means the state
    /// was already canonical). Idempotent, and constant on orbits:
    /// `canonicalize(g · s) == canonicalize(s)` for every group element
    /// `g` — the property quotient exploration rests on.
    pub fn canonicalize(
        &self,
        layout: &PackedLayout,
        words: &mut [u64],
        aux: &mut [u64],
        scratch: &mut CanonScratch,
    ) -> usize {
        if self.is_trivial() {
            return 0;
        }
        let (e, n) = (layout.edges, layout.nodes);
        let (lw, cw) = (layout.label_width, layout.countdown_width);
        let sc = scratch;
        sc.labels.clear();
        sc.labels
            .extend((0..e).map(|k| unpack(words, k * lw as usize, lw) as u32));
        sc.cds.clear();
        sc.cds
            .extend((0..n).map(|i| unpack(words, e * lw as usize + i * cw as usize, cw) as u32));
        let chosen = if let Some(ring) = &self.ring {
            // Booth fast path: the orbit is the n rotations of the
            // per-position (label, countdown, aux) tuple sequence; the
            // least rotation start m corresponds to rotating *by*
            // (n − m) mod n.
            sc.tuples.clear();
            for i in 0..n {
                sc.tuples
                    .push((sc.labels[i], sc.cds[i], aux.get(i).copied().unwrap_or(0)));
            }
            let m = booth_least_rotation(&sc.tuples);
            ring[(n - m) % n] as usize
        } else {
            // Generator-orbit scan: apply every element, keep the least
            // (labels, countdowns, aux) image.
            let mut best = 0usize;
            sc.best_labels.clone_from(&sc.labels);
            sc.best_cds.clone_from(&sc.cds);
            sc.best_aux.clear();
            sc.best_aux.extend_from_slice(aux);
            sc.cand_labels.resize(e, 0);
            sc.cand_cds.resize(n, 0);
            sc.cand_aux.resize(aux.len(), 0);
            for (idx, el) in self.elements.iter().enumerate().skip(1) {
                for (k, &l) in sc.labels.iter().enumerate() {
                    sc.cand_labels[el.edge_perm[k] as usize] = l;
                }
                for (i, &c) in sc.cds.iter().enumerate() {
                    sc.cand_cds[el.node_perm[i] as usize] = c;
                }
                for (i, &a) in aux.iter().enumerate() {
                    sc.cand_aux[el.node_perm[i] as usize] = a;
                }
                if (&sc.cand_labels, &sc.cand_cds, &sc.cand_aux)
                    < (&sc.best_labels, &sc.best_cds, &sc.best_aux)
                {
                    best = idx;
                    std::mem::swap(&mut sc.best_labels, &mut sc.cand_labels);
                    std::mem::swap(&mut sc.best_cds, &mut sc.cand_cds);
                    std::mem::swap(&mut sc.best_aux, &mut sc.cand_aux);
                }
            }
            if best != 0 {
                sc.labels.clone_from(&sc.best_labels);
                sc.cds.clone_from(&sc.best_cds);
                sc.aux.clone_from(&sc.best_aux);
            }
            best
        };
        if chosen == 0 {
            return 0;
        }
        if self.ring.is_some() {
            // Materialize the Booth winner through the chosen element.
            let el = &self.elements[chosen];
            sc.cand_labels.resize(e, 0);
            sc.cand_cds.resize(n, 0);
            sc.cand_aux.resize(aux.len(), 0);
            for (k, &l) in sc.labels.iter().enumerate() {
                sc.cand_labels[el.edge_perm[k] as usize] = l;
            }
            for (i, &c) in sc.cds.iter().enumerate() {
                sc.cand_cds[el.node_perm[i] as usize] = c;
            }
            for (i, &a) in aux.iter().enumerate() {
                sc.cand_aux[el.node_perm[i] as usize] = a;
            }
            sc.labels.clone_from(&sc.cand_labels);
            sc.cds.clone_from(&sc.cand_cds);
            sc.aux.clone_from(&sc.cand_aux);
        }
        words.fill(0);
        for (k, &l) in sc.labels.iter().enumerate() {
            pack(words, k * lw as usize, lw, u64::from(l));
        }
        for (i, &c) in sc.cds.iter().enumerate() {
            pack(words, e * lw as usize + i * cw as usize, cw, u64::from(c));
        }
        aux.copy_from_slice(&sc.aux);
        chosen
    }
}

/// Booth's minimal-rotation algorithm: the least index `m` such that the
/// rotation of `seq` starting at `m` is lexicographically minimal among
/// all rotations (ties resolve to the smallest `m`). O(len) time.
pub fn booth_least_rotation<T: Ord>(seq: &[T]) -> usize {
    let n = seq.len();
    if n <= 1 {
        return 0;
    }
    let at = |i: usize| &seq[i % n];
    let mut f: Vec<isize> = vec![-1; 2 * n];
    let mut k: usize = 0;
    for j in 1..2 * n {
        let mut i = f[j - k - 1];
        while i != -1 && at(j) != at(k + i as usize + 1) {
            if at(j) < at(k + i as usize + 1) {
                k = j - i as usize - 1;
            }
            i = f[i as usize];
        }
        if i == -1 && at(j) != at(k) {
            if at(j) < at(k) {
                k = j;
            }
            f[j - k] = -1;
        } else {
            f[j - k] = i + 1;
        }
    }
    k % n
}

/// Shape-derived candidate node permutations for an `n`-node graph, in a
/// fixed order (deduplicated, identity excluded). Wrong guesses cost
/// nothing but a rejected validation.
fn candidate_perms(n: usize) -> Vec<Vec<u32>> {
    let mut candidates: Vec<Vec<u32>> = Vec::new();
    let mut add = |perm: Vec<u32>| {
        if perm.iter().enumerate().any(|(i, &p)| p != i as u32) && !candidates.contains(&perm) {
            candidates.push(perm);
        }
    };
    // Ring rotation and reflection.
    add((0..n).map(|i| ((i + 1) % n) as u32).collect());
    add((0..n).map(|i| ((n - i) % n) as u32).collect());
    // Hypercube coordinate rotation/swap and a single-bit translate.
    if n.is_power_of_two() && n >= 4 {
        let d = n.trailing_zeros() as usize;
        add((0..n)
            .map(|v| (((v << 1) | (v >> (d - 1))) & (n - 1)) as u32)
            .collect());
        add((0..n)
            .map(|v| ((v & !3) | ((v & 1) << 1) | ((v >> 1) & 1)) as u32)
            .collect());
        add((0..n).map(|v| (v ^ 1) as u32).collect());
    }
    // Torus row/column shifts for every w×h grid factorization.
    for w in 2..n {
        if !n.is_multiple_of(w) {
            continue;
        }
        let h = n / w;
        if h < 2 {
            continue;
        }
        add((0..n)
            .map(|id| (id / w * w + (id % w + 1) % w) as u32)
            .collect());
        add((0..n)
            .map(|id| ((id / w + 1) % h * w + id % w) as u32)
            .collect());
    }
    candidates
}

fn is_permutation(perm: &[u32], n: usize) -> bool {
    if perm.len() != n {
        return false;
    }
    let mut seen = vec![false; n];
    for &p in perm {
        let p = p as usize;
        if p >= n || seen[p] {
            return false;
        }
        seen[p] = true;
    }
    true
}

/// Validates one candidate node permutation against the protocol: the
/// induced edge permutation must exist (graph automorphism), inputs must
/// be constant on node orbits, and exhaustive probing (capped at
/// [`PROBE_CAP`] reactions) must confirm reaction equivariance node by
/// node. Returns the full [`Automorphism`] on success.
fn validate<L: Label>(
    protocol: &Protocol<L>,
    inputs: &[Input],
    alpha: &[L],
    node_perm: &[u32],
) -> Option<Automorphism> {
    let g: &DiGraph = protocol.graph();
    let (n, e) = (g.node_count(), g.edge_count());
    if !is_permutation(node_perm, n) {
        return None;
    }
    let mut edge_perm = vec![0u32; e];
    let mut seen_edge = vec![false; e];
    for (id, u, v) in g.edges() {
        let f = g.edge(node_perm[u] as usize, node_perm[v] as usize)?;
        if seen_edge[f] {
            return None;
        }
        seen_edge[f] = true;
        edge_perm[id] = f as u32;
    }
    for i in 0..n {
        if inputs[node_perm[i] as usize] != inputs[i] {
            return None;
        }
    }
    let q = alpha.len() as u64;
    let mut probes = 0u64;
    for i in 0..n {
        let mut c = 1u64;
        for _ in 0..g.in_degree(i) {
            c = c.saturating_mul(q);
        }
        probes = probes.saturating_add(c);
    }
    if probes > PROBE_CAP {
        return None;
    }
    let base = alpha[0].clone();
    let mut lab_a = vec![base.clone(); e];
    let mut lab_b = vec![base.clone(); e];
    let (mut in_a, mut out_a) = (Vec::new(), Vec::new());
    let (mut in_b, mut out_b) = (Vec::new(), Vec::new());
    for i in 0..n {
        let pi = node_perm[i] as usize;
        let ins: Vec<EdgeId> = g.in_edges(i).to_vec();
        // Out-slot correspondence: slot s of node i maps to the slot of
        // σ(out_edges(i)[s]) within out_edges(π(i)).
        let out_map: Option<Vec<usize>> = g
            .out_edges(i)
            .iter()
            .map(|&f| {
                let f2 = edge_perm[f] as usize;
                g.out_edges(pi).iter().position(|&x| x == f2)
            })
            .collect();
        let out_map = out_map?;
        let mut digits = vec![0usize; ins.len()];
        'probe: loop {
            for (s, &f) in ins.iter().enumerate() {
                lab_a[f] = alpha[digits[s]].clone();
                lab_b[edge_perm[f] as usize] = alpha[digits[s]].clone();
            }
            let y_a = protocol.apply_buffered(i, &lab_a, inputs[i], &mut in_a, &mut out_a);
            let y_b = protocol.apply_buffered(pi, &lab_b, inputs[pi], &mut in_b, &mut out_b);
            let ok = y_a == y_b
                && out_map
                    .iter()
                    .enumerate()
                    .all(|(s, &s2)| out_a[s] == out_b[s2]);
            for &f in &ins {
                lab_a[f] = base.clone();
                lab_b[edge_perm[f] as usize] = base.clone();
            }
            if !ok {
                return None;
            }
            let mut k = 0;
            while k < digits.len() {
                digits[k] += 1;
                if digits[k] < alpha.len() {
                    continue 'probe;
                }
                digits[k] = 0;
                k += 1;
            }
            break;
        }
    }
    Some(Automorphism {
        node_perm: node_perm.to_vec(),
        edge_perm,
    })
}

/// Closes `generators` under composition (identity first, breadth-first
/// discovery order — deterministic for a fixed generator list). `None`
/// if the group would exceed [`CLOSURE_CAP`].
fn close(n: usize, e: usize, generators: &[Automorphism]) -> Option<Vec<Automorphism>> {
    let mut elements = vec![Automorphism::identity(n, e)];
    let mut index: HashMap<Vec<u32>, usize> = HashMap::new();
    index.insert(elements[0].node_perm.clone(), 0);
    let mut i = 0;
    while i < elements.len() {
        for g in generators {
            let prod = g.compose(&elements[i]);
            if !index.contains_key(&prod.node_perm) {
                if elements.len() >= CLOSURE_CAP {
                    return None;
                }
                index.insert(prod.node_perm.clone(), elements.len());
                elements.push(prod);
            }
        }
        i += 1;
    }
    Some(elements)
}

/// Detects the Booth fast path: the group is exactly the `n` rotations
/// of a ring-shaped layout, with edge `k` co-rotating with node `k`.
/// Returns `ring` with `ring[j]` the element index of rotation by `j`.
fn detect_ring(elements: &[Automorphism], n: usize, e: usize) -> Option<Vec<u32>> {
    if e != n || elements.len() != n {
        return None;
    }
    let mut ring = vec![u32::MAX; n];
    for (idx, el) in elements.iter().enumerate() {
        let j = el.node_perm[0] as usize;
        let is_rot = (0..n).all(|i| {
            el.node_perm[i] as usize == (i + j) % n && el.edge_perm[i] as usize == (i + j) % n
        });
        if !is_rot || ring[j] != u32::MAX {
            return None;
        }
        ring[j] = idx as u32;
    }
    Some(ring)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reaction::FnReaction;
    use crate::topology;

    fn rotation_ring(n: usize) -> Protocol<bool> {
        Protocol::builder(topology::unidirectional_ring(n), 1.0)
            .uniform_reaction(FnReaction::new(|_, inc: &[bool], _| (vec![inc[0]], 0)))
            .build()
            .unwrap()
    }

    #[test]
    fn booth_agrees_with_brute_force() {
        let cases: Vec<Vec<u32>> = vec![
            vec![0],
            vec![1, 0],
            vec![0, 0, 0],
            vec![2, 1, 0, 1],
            vec![1, 0, 1, 0],
            vec![3, 1, 2, 1, 3, 0],
            vec![5, 4, 3, 2, 1, 0],
        ];
        for s in cases {
            let n = s.len();
            let rot = |m: usize| -> Vec<u32> { (0..n).map(|i| s[(i + m) % n]).collect() };
            let brute = (0..n).min_by_key(|&m| (rot(m), m)).unwrap();
            assert_eq!(booth_least_rotation(&s), brute, "seq {s:?}");
        }
    }

    #[test]
    fn derive_finds_ring_rotations_and_uses_booth() {
        let p = rotation_ring(5);
        let sym = Symmetry::derive(&p, &[0; 5], &[false, true]);
        assert_eq!(sym.order(), 5);
        assert!(sym.ring.is_some(), "pure cyclic ring takes the Booth path");
    }

    #[test]
    fn derive_rejects_asymmetric_inputs() {
        let p = rotation_ring(5);
        let sym = Symmetry::derive(&p, &[1, 0, 0, 0, 0], &[false, true]);
        assert!(sym.is_trivial());
    }

    #[test]
    fn canonicalize_is_orbit_constant_on_a_ring() {
        let p = rotation_ring(4);
        let sym = Symmetry::derive(&p, &[0; 4], &[false, true]);
        let layout = PackedLayout {
            label_width: 1,
            countdown_width: 2,
            edges: 4,
            nodes: 4,
            words: 1,
            aux: 0,
        };
        let mut scratch = CanonScratch::default();
        // State: labels 1,0,0,1 / countdowns 2,1,3,1 (stored − 1).
        let labels = [1u64, 0, 0, 1];
        let cds = [1u64, 0, 2, 0];
        let pack_state = |labels: &[u64], cds: &[u64]| -> Vec<u64> {
            let mut w = vec![0u64; 1];
            for (k, &l) in labels.iter().enumerate() {
                pack(&mut w, k, 1, l);
            }
            for (i, &c) in cds.iter().enumerate() {
                pack(&mut w, 4 + 2 * i, 2, c);
            }
            w
        };
        let mut canon0 = pack_state(&labels, &cds);
        sym.canonicalize(&layout, &mut canon0, &mut [], &mut scratch);
        for rot in 1..4 {
            let rl: Vec<u64> = (0..4).map(|k| labels[(k + 4 - rot) % 4]).collect();
            let rc: Vec<u64> = (0..4).map(|i| cds[(i + 4 - rot) % 4]).collect();
            let mut w = pack_state(&rl, &rc);
            sym.canonicalize(&layout, &mut w, &mut [], &mut scratch);
            assert_eq!(w, canon0, "rotation {rot} lands on the same canonical");
        }
    }

    #[test]
    fn coloring_restriction_keeps_placement_preserving_elements() {
        let p = rotation_ring(5);
        let sym = Symmetry::derive(&p, &[0; 5], &[false, true]);
        assert_eq!(sym.order(), 5);
        // Marking node 2 faulty kills every nontrivial rotation.
        let restricted = sym.restrict_to_coloring(&[0, 0, 1, 0, 0]);
        assert!(restricted.is_trivial());
        assert!(restricted.ring.is_none());
        // A uniform coloring keeps the whole group and the Booth path.
        let unrestricted = sym.restrict_to_coloring(&[7; 5]);
        assert_eq!(unrestricted.order(), 5);
        assert!(unrestricted.ring.is_some());
    }

    #[test]
    fn from_generators_rejects_malformed_permutations() {
        assert!(Symmetry::from_generators(
            3,
            3,
            &[Automorphism {
                node_perm: vec![0, 0, 1],
                edge_perm: vec![0, 1, 2],
            }]
        )
        .is_none());
    }
}
