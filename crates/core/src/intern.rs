//! Shared state-interning machinery: seeded fingerprint hashing, a
//! fingerprint → id index with exact-equality confirmation, flat bit
//! packing, and a block-chunked history arena.
//!
//! These are the pieces behind the fingerprint-arena fast paths — the
//! [`convergence`](crate::convergence) cycle detector and the exact
//! product-graph explorer in `stabilization-verify` both resolve states
//! the same way:
//!
//! 1. encode the state into a flat, allocation-free representation
//!    (a row of an arena, or a few [bit-packed](pack) `u64` words);
//! 2. hash it with the seeded [`FxHasher`] into a 64-bit fingerprint;
//! 3. probe a [`FingerprintIndex`]: every fingerprint hit is confirmed by
//!    exact equality against the arena, so collisions cost a comparison
//!    but never an incorrect answer, and no owned key (no
//!    `HashMap<Vec<_>, _>` clone) is ever stored.
//!
//! [`ChunkedArena`] backs the histories themselves: size-capped blocks
//! mean appending a million rows never reallocates-and-copies the rows
//! already written.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::{RwLock, RwLockReadGuard, RwLockWriteGuard};

/// An FxHash-style multiplicative [`Hasher`] with a fixed seed: one
/// rotate-xor-multiply per 8-byte word, ~4× faster than SipHash on the
/// wide labelings and packed state words the fast paths fingerprint. Not
/// collision-resistant against adversaries — which is fine, because every
/// fingerprint hit is confirmed by exact equality against the arena.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

/// The golden-ratio multiplier used by rustc's FxHash.
const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    /// Starts a fingerprint from an initial word (length prefixes make
    /// prefix states hash differently).
    pub fn seeded(word: u64) -> Self {
        FxHasher { hash: word }
    }

    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    fn finish(&self) -> u64 {
        self.hash
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(buf));
        }
    }

    fn write_u8(&mut self, i: u8) {
        self.add(u64::from(i));
    }

    fn write_u32(&mut self, i: u32) {
        self.add(u64::from(i));
    }

    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`] — use for `HashMap`s keyed by values
/// that are already well-mixed words (fingerprints, small indices), where
/// SipHash would waste the fast path.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Seeded FxHash fingerprint of a packed state: the row words, then the
/// auxiliary words. This is **the** state fingerprint — the product-graph
/// explorer's sharding, its confirm-equality probes, and the checkpoint
/// restore path all call this one function, so an interned state always
/// lands in the same shard no matter who hashes it.
pub fn state_fingerprint(row: &[u64], aux: &[u64]) -> u64 {
    let mut h = FxHasher::default();
    for &w in row {
        h.write_u64(w);
    }
    for &a in aux {
        h.write_u64(a);
    }
    h.finish()
}

/// Fingerprint → id index with exact-equality confirmation.
///
/// Maps 64-bit fingerprints to the id of the first state that produced
/// them. Because fingerprints can collide, every hit must be *confirmed*
/// by the caller against its arena; unconfirmed entries (a genuine 64-bit
/// collision between distinct states) go to a small side list so the map
/// itself stays one bare `u64 → u64` entry per state — no owned keys, no
/// per-entry heap allocation.
#[derive(Debug, Default)]
pub struct FingerprintIndex {
    seen: HashMap<u64, u64, FxBuildHasher>,
    collisions: Vec<(u64, u64)>,
}

impl FingerprintIndex {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty index with room for `capacity` states.
    pub fn with_capacity(capacity: usize) -> Self {
        FingerprintIndex {
            seen: HashMap::with_capacity_and_hasher(capacity, FxBuildHasher::default()),
            collisions: Vec::new(),
        }
    }

    /// Number of states interned (confirmed-distinct entries).
    pub fn len(&self) -> usize {
        self.seen.len() + self.collisions.len()
    }

    /// Whether no state has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }

    /// Looks up `fp`; `confirm(id)` must report whether the state stored
    /// under `id` is exactly equal to the one being probed.
    ///
    /// Returns `Some(id)` of the confirmed-equal existing state, or `None`
    /// after recording `candidate` as the id owning this fingerprint (the
    /// caller then appends the state to its arena under that id).
    pub fn probe(&mut self, fp: u64, candidate: u64, confirm: impl Fn(u64) -> bool) -> Option<u64> {
        match self.seen.entry(fp) {
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(candidate);
                None
            }
            std::collections::hash_map::Entry::Occupied(o) => {
                let first = *o.get();
                if confirm(first) {
                    return Some(first);
                }
                // 64-bit collision: consult (and extend) the side list.
                let extra = self
                    .collisions
                    .iter()
                    .filter(|&&(f, _)| f == fp)
                    .map(|&(_, id)| id)
                    .find(|&id| confirm(id));
                if extra.is_none() {
                    self.collisions.push((fp, candidate));
                }
                extra
            }
        }
    }

    /// Read-only twin of [`probe`](FingerprintIndex::probe): looks up
    /// `fp` and returns the confirmed-equal existing id, or `None`.
    /// Never records anything — this is the lookup the edge-less
    /// verifier's successor oracle uses on states that are guaranteed
    /// to have been interned already, from shared read guards.
    pub fn find(&self, fp: u64, confirm: impl Fn(u64) -> bool) -> Option<u64> {
        let &first = self.seen.get(&fp)?;
        if confirm(first) {
            return Some(first);
        }
        self.collisions
            .iter()
            .filter(|&&(f, _)| f == fp)
            .map(|&(_, id)| id)
            .find(|&id| confirm(id))
    }
}

/// Number of top fingerprint bits selecting a shard of a
/// [`ShardedStateIndex`]. The count is a **fixed constant**, independent
/// of the thread count: shard assignment feeds the `(shard, local)` state
/// ids, so varying it with the machine would make interned ids (and
/// everything numbered off them) host-dependent.
pub const SHARD_BITS: u32 = 6;

/// Number of shards of a [`ShardedStateIndex`] (`2^SHARD_BITS`).
pub const SHARD_COUNT: usize = 1 << SHARD_BITS;

/// The shard owning a fingerprint: its top [`SHARD_BITS`] bits. The seeded
/// FxHash mixes every written word into the high bits, so top-bit sharding
/// spreads states evenly even for near-identical packed rows.
#[inline]
pub fn shard_of(fp: u64) -> usize {
    (fp >> (64 - SHARD_BITS)) as usize
}

/// Packs a `(shard, local)` state id into one `u64`: shard in bits
/// 32..\[32 + [`SHARD_BITS`]\), local id in the low 32 bits.
#[inline]
pub fn pack_state_id(shard: usize, local: u32) -> u64 {
    debug_assert!(shard < SHARD_COUNT);
    ((shard as u64) << 32) | u64::from(local)
}

/// Unpacks a state id written by [`pack_state_id`].
#[inline]
pub fn unpack_state_id(id: u64) -> (usize, u32) {
    ((id >> 32) as usize, id as u32)
}

/// One shard of a [`ShardedStateIndex`]: a [`FingerprintIndex`] (with its
/// collision side list) plus the shard-owned row storage the index
/// confirms against. Shards are self-contained — interning never reads
/// another shard — which is what makes batch interning embarrassingly
/// parallel: workers own disjoint shards, so they never contend.
#[derive(Debug)]
pub struct StateShard {
    index: FingerprintIndex,
    /// Packed state rows; local id `i` is `rows.row(i)`.
    rows: ChunkedArena<u64>,
    /// Auxiliary per-state rows (e.g. tracked output words); empty row
    /// length when unused.
    aux: ChunkedArena<u64>,
    /// Local id → caller-assigned dense id. The caller appends these in
    /// local-id order once it has fixed a deterministic global numbering
    /// (see [`StateShard::push_dense`]); entries may lag behind `rows`
    /// while a batch is in flight.
    dense: Vec<u32>,
}

impl StateShard {
    fn new(row_len: usize, aux_len: usize) -> Self {
        StateShard {
            index: FingerprintIndex::new(),
            rows: ChunkedArena::new(row_len),
            aux: ChunkedArena::new(aux_len),
            dense: Vec::new(),
        }
    }

    /// Number of states interned into this shard.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the shard holds no states.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Interns the state `(row, aux)` under fingerprint `fp` (which must
    /// have been computed over exactly `row` then `aux`, and must map to
    /// this shard). Returns the local id and whether the state was fresh.
    /// Every fingerprint hit is confirmed by exact equality against the
    /// shard arenas, so collisions cost a comparison but never a wrong id.
    pub fn intern(&mut self, fp: u64, row: &[u64], aux: &[u64]) -> (u32, bool) {
        let (rows, auxes) = (&self.rows, &self.aux);
        let candidate = rows.len() as u64;
        let hit = self.index.probe(fp, candidate, |id| {
            let id = id as usize;
            rows.row(id) == row && auxes.row(id) == aux
        });
        match hit {
            Some(id) => (id as u32, false),
            None => {
                self.rows.push_row(row);
                self.aux.push_row(aux);
                (candidate as u32, true)
            }
        }
    }

    /// Read-only twin of [`intern`](StateShard::intern): the local id of
    /// the already-interned state `(row, aux)` under fingerprint `fp`,
    /// or `None` if no equal state was ever interned. Every fingerprint
    /// hit is confirmed by exact equality, so collisions never resolve
    /// to a wrong id. Takes `&self`, so concurrent readers can resolve
    /// regenerated successors under shared read locks.
    pub fn lookup(&self, fp: u64, row: &[u64], aux: &[u64]) -> Option<u32> {
        let (rows, auxes) = (&self.rows, &self.aux);
        self.index
            .find(fp, |id| {
                let id = id as usize;
                rows.row(id) == row && auxes.row(id) == aux
            })
            .map(|id| id as u32)
    }

    /// The packed row of local state `local`.
    pub fn row(&self, local: u32) -> &[u64] {
        self.rows.row(local as usize)
    }

    /// The auxiliary row of local state `local` (empty when unused).
    pub fn aux_row(&self, local: u32) -> &[u64] {
        self.aux.row(local as usize)
    }

    /// The dense id assigned to local state `local`.
    ///
    /// # Panics
    ///
    /// Panics if the caller has not yet assigned one (see
    /// [`push_dense`](StateShard::push_dense)).
    pub fn dense_of(&self, local: u32) -> u32 {
        self.dense[local as usize]
    }

    /// Records the dense id of the next not-yet-numbered local state.
    /// Dense ids must be appended in local-id order — the caller fixes the
    /// cross-shard order (the deterministic merge), the shard only stores
    /// the mapping.
    pub fn push_dense(&mut self, dense: u32) {
        debug_assert!(self.dense.len() < self.rows.len(), "no unnumbered state");
        self.dense.push(dense);
    }

    /// Bytes of row storage currently allocated by this shard's arenas.
    pub fn allocated_bytes(&self) -> usize {
        self.rows.allocated_bytes() + self.aux.allocated_bytes()
    }

    /// The packed state rows, block by block, whole rows in local-id
    /// order — the zero-copy export checkpointing streams to disk.
    pub fn row_blocks(&self) -> impl Iterator<Item = &[u64]> {
        self.rows.blocks()
    }

    /// The auxiliary rows, block by block, whole rows in local-id order
    /// — the auxiliary twin of [`row_blocks`](StateShard::row_blocks).
    /// Rows of length zero occupy no bytes, so the iterator may be
    /// empty even after states have been interned.
    pub fn aux_blocks(&self) -> impl Iterator<Item = &[u64]> {
        self.aux.blocks()
    }

    /// The dense ids assigned so far, in local-id order. Equals
    /// [`len`](StateShard::len) entries once a batch has fully merged.
    pub fn dense_ids(&self) -> &[u32] {
        &self.dense
    }
}

/// A fingerprint-sharded state interner: [`SHARD_COUNT`] independent
/// [`StateShard`]s, each owning its fingerprint index, collision side
/// list, and row arenas. A state's shard is [`shard_of`] its seeded
/// fingerprint, and its id is the `(shard, local)` pair packed by
/// [`pack_state_id`].
///
/// # Determinism contract
///
/// Shard assignment depends only on the fingerprint, never on thread
/// count or timing. If every shard's `intern` calls happen in a
/// deterministic order (e.g. batch records sorted by their position in
/// the exploration stream), then all `(shard, local)` ids — and any dense
/// numbering merged from per-shard discovery order — are bit-identical
/// across thread counts. The parallel product-graph explorer in
/// `stabilization-verify` relies on exactly this.
///
/// # Locking
///
/// Shards sit behind [`RwLock`]s: expansion phases take read guards on
/// all shards at once (many concurrent readers, no writers), interning
/// phases hand each shard's write guard to exactly one worker. Nothing
/// blocks in steady state — the locks exist to prove exclusivity to the
/// compiler, not to arbitrate contention.
#[derive(Debug)]
pub struct ShardedStateIndex {
    shards: Vec<RwLock<StateShard>>,
}

impl ShardedStateIndex {
    /// An empty sharded index over packed rows of `row_len` words and
    /// auxiliary rows of `aux_len` words (0 when unused).
    pub fn new(row_len: usize, aux_len: usize) -> Self {
        ShardedStateIndex {
            shards: (0..SHARD_COUNT)
                .map(|_| RwLock::new(StateShard::new(row_len, aux_len)))
                .collect(),
        }
    }

    /// Total number of states interned across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| self.read_one(s).len()).sum()
    }

    /// Whether no state has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Read-locks shard `s`.
    pub fn read(&self, s: usize) -> RwLockReadGuard<'_, StateShard> {
        self.read_one(&self.shards[s])
    }

    /// Write-locks shard `s` (for an interning phase; each shard should be
    /// claimed by exactly one worker at a time).
    pub fn write(&self, s: usize) -> RwLockWriteGuard<'_, StateShard> {
        self.shards[s]
            .write()
            .expect("state shard lock is never poisoned")
    }

    /// Read-locks every shard at once, in shard order — the cheap way for
    /// an expansion worker to resolve arbitrary `(shard, local)` ids
    /// without a lock round-trip per state.
    pub fn read_all(&self) -> Vec<RwLockReadGuard<'_, StateShard>> {
        self.shards.iter().map(|s| self.read_one(s)).collect()
    }

    /// Bytes of row storage allocated across all shards.
    pub fn allocated_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| self.read_one(s).allocated_bytes())
            .sum()
    }

    fn read_one<'a>(&self, s: &'a RwLock<StateShard>) -> RwLockReadGuard<'a, StateShard> {
        s.read().expect("state shard lock is never poisoned")
    }
}

/// Bits needed to store one of `cardinality` distinct values:
/// `⌈log₂ cardinality⌉`, with 0 for cardinalities 0 and 1 (a single
/// possible value needs no bits at all).
pub fn bits_for(cardinality: usize) -> u32 {
    if cardinality <= 1 {
        0
    } else {
        usize::BITS - (cardinality - 1).leading_zeros()
    }
}

/// Writes the low `width` bits of `value` into `words` at bit offset
/// `bit` (little-endian within and across words; fields may straddle a
/// word boundary). The target bits must currently be zero — states are
/// packed once into zeroed scratch, never rewritten in place.
///
/// `width = 0` writes nothing (fields over single-valued domains vanish
/// from the representation).
///
/// # Panics
///
/// Debug-panics if `value` does not fit in `width` bits or the field runs
/// past the end of `words`.
#[inline]
pub fn pack(words: &mut [u64], bit: usize, width: u32, value: u64) {
    debug_assert!(width <= 64);
    if width == 0 {
        return;
    }
    debug_assert!(
        width == 64 || value < 1u64 << width,
        "value overflows field"
    );
    let word = bit / 64;
    let off = (bit % 64) as u32;
    words[word] |= value << off;
    let spill = off + width;
    if spill > 64 {
        // The field straddles into the next word.
        words[word + 1] |= value >> (64 - off);
    }
    debug_assert!(bit + width as usize <= words.len() * 64);
}

/// Reads back a `width`-bit field written by [`pack`]. `width = 0` reads 0.
#[inline]
pub fn unpack(words: &[u64], bit: usize, width: u32) -> u64 {
    if width == 0 {
        return 0;
    }
    let word = bit / 64;
    let off = (bit % 64) as u32;
    let mut v = words[word] >> off;
    let spill = off + width;
    if spill > 64 {
        v |= words[word + 1] << (64 - off);
    }
    if width == 64 {
        v
    } else {
        v & ((1u64 << width) - 1)
    }
}

/// [`ChunkedArena`] block sizing: blocks start at ~4 KiB and double up to
/// a fixed ~1 MiB cap, so short histories (a sweep runs thousands of
/// small classifications) cost one small allocation while million-row
/// histories grow in constant-size blocks. A full block is never
/// reallocated — no row ever moves after being written, and rows stay
/// contiguous (a block always holds whole rows).
const ARENA_FIRST_BLOCK_BYTES: usize = 1 << 12;
const ARENA_MAX_BLOCK_BYTES: usize = 1 << 20;

/// A grow-only arena of fixed-length rows stored in size-capped blocks.
///
/// `push_row` appends one row; `row(i)` returns it as a contiguous slice.
/// Unlike a flat `Vec`, growth never copies existing rows (no realloc
/// churn, no page-fault storms on million-row histories) — the trade is
/// one block lookup per access.
#[derive(Debug)]
pub struct ChunkedArena<T> {
    blocks: Vec<Vec<T>>,
    /// `starts[b]` = index of the first row stored in block `b`.
    starts: Vec<usize>,
    row_len: usize,
    /// Row capacity of the next block to allocate (doubles up to the cap).
    next_block_rows: usize,
    max_block_rows: usize,
    rows: usize,
}

impl<T: Clone> ChunkedArena<T> {
    /// An empty arena of rows of `row_len` elements.
    pub fn new(row_len: usize) -> Self {
        let row_bytes = row_len.max(1) * std::mem::size_of::<T>().max(1);
        ChunkedArena {
            blocks: Vec::new(),
            starts: Vec::new(),
            row_len,
            next_block_rows: (ARENA_FIRST_BLOCK_BYTES / row_bytes).max(1),
            max_block_rows: (ARENA_MAX_BLOCK_BYTES / row_bytes).max(1),
            rows: 0,
        }
    }

    /// Number of rows stored.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// Whether the arena holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Total bytes of row storage currently allocated.
    pub fn allocated_bytes(&self) -> usize {
        self.blocks.iter().map(Vec::capacity).sum::<usize>() * std::mem::size_of::<T>()
    }

    /// The stored rows, block by block, in row order. Blocks are never
    /// realloc-copied after a row lands in them, so this is the zero-copy
    /// export path (checkpointing streams these slices straight to disk).
    pub fn blocks(&self) -> impl Iterator<Item = &[T]> {
        self.blocks.iter().map(|b| b.as_slice())
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != row_len`.
    pub fn push_row(&mut self, row: &[T]) {
        assert_eq!(row.len(), self.row_len, "row length mismatch");
        // A block is "full" when the next row would not fit its capacity
        // (capacity may exceed the request; never realloc a live block).
        let full = match self.blocks.last() {
            None => true,
            Some(b) => b.len() + self.row_len > b.capacity(),
        };
        if full {
            self.blocks.push(Vec::with_capacity(
                self.next_block_rows * self.row_len.max(1),
            ));
            self.starts.push(self.rows);
            self.next_block_rows = (self.next_block_rows * 2).min(self.max_block_rows);
        }
        self.blocks
            .last_mut()
            .expect("block just ensured")
            .extend_from_slice(row);
        self.rows += 1;
    }

    /// The `i`-th row, as one contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn row(&self, i: usize) -> &[T] {
        assert!(i < self.rows, "row {i} out of bounds ({} rows)", self.rows);
        // Block sizes double then plateau, so there are O(log n) blocks
        // plus a linear tail; partition_point finds the owning block.
        let b = self.starts.partition_point(|&s| s <= i) - 1;
        let start = (i - self.starts[b]) * self.row_len;
        &self.blocks[b][start..start + self.row_len]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_for_matches_ceil_log2() {
        assert_eq!(bits_for(0), 0);
        assert_eq!(bits_for(1), 0);
        assert_eq!(bits_for(2), 1);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(4), 2);
        assert_eq!(bits_for(5), 3);
        assert_eq!(bits_for(16), 4);
        assert_eq!(bits_for(17), 5);
    }

    #[test]
    fn pack_unpack_roundtrips_across_word_boundaries() {
        // 7-bit fields never align with 64-bit words: every straddle case
        // is exercised.
        let mut words = vec![0u64; 3];
        let values: Vec<u64> = (0..24).map(|k| (k * 37 + 5) % 128).collect();
        for (k, &v) in values.iter().enumerate() {
            pack(&mut words, k * 7, 7, v);
        }
        for (k, &v) in values.iter().enumerate() {
            assert_eq!(unpack(&words, k * 7, 7), v, "field {k}");
        }
    }

    #[test]
    fn pack_unpack_zero_width_is_identity() {
        let mut words = vec![0u64; 1];
        pack(&mut words, 13, 0, 0);
        assert_eq!(words[0], 0);
        assert_eq!(unpack(&words, 13, 0), 0);
    }

    #[test]
    fn pack_unpack_full_width() {
        let mut words = vec![0u64; 2];
        pack(&mut words, 3, 64, u64::MAX - 7);
        assert_eq!(unpack(&words, 3, 64), u64::MAX - 7);
    }

    #[test]
    fn fingerprint_index_interns_and_confirms() {
        let states: Vec<u64> = vec![10, 20, 30, 10, 20];
        let mut arena: Vec<u64> = Vec::new();
        let mut index = FingerprintIndex::new();
        let mut ids = Vec::new();
        for &s in &states {
            // Deliberately colliding fingerprint (all states hash to 1):
            // confirmation must still resolve them exactly.
            let id = match index.probe(1, arena.len() as u64, |id| arena[id as usize] == s) {
                Some(existing) => existing,
                None => {
                    arena.push(s);
                    (arena.len() - 1) as u64
                }
            };
            ids.push(id);
        }
        assert_eq!(ids, vec![0, 1, 2, 0, 1]);
        assert_eq!(arena, vec![10, 20, 30]);
        assert_eq!(index.len(), 3);
    }

    #[test]
    fn chunked_arena_rows_survive_growth() {
        // Tiny rows force many rows per block; wide enough total to cross
        // several block boundaries if blocks were small. Use a row size
        // that doesn't divide the block size evenly.
        let mut arena: ChunkedArena<u32> = ChunkedArena::new(3);
        let total = 100_000;
        for i in 0..total {
            let row = [i as u32, (i * 2) as u32, (i * 3) as u32];
            arena.push_row(&row);
        }
        assert_eq!(arena.len(), total);
        for i in (0..total).step_by(977) {
            assert_eq!(arena.row(i), &[i as u32, (i * 2) as u32, (i * 3) as u32]);
        }
        assert!(arena.allocated_bytes() >= total * 3 * 4);
    }

    #[test]
    fn chunked_arena_handles_empty_rows() {
        let mut arena: ChunkedArena<u64> = ChunkedArena::new(0);
        for _ in 0..10 {
            arena.push_row(&[]);
        }
        assert_eq!(arena.len(), 10);
        assert_eq!(arena.row(9), &[] as &[u64]);
    }

    #[test]
    fn state_id_pack_roundtrips() {
        for shard in [0usize, 1, SHARD_COUNT - 1] {
            for local in [0u32, 1, 12345, u32::MAX] {
                assert_eq!(unpack_state_id(pack_state_id(shard, local)), (shard, local));
            }
        }
    }

    #[test]
    fn shard_of_uses_top_bits() {
        assert_eq!(shard_of(0), 0);
        assert_eq!(shard_of(u64::MAX), SHARD_COUNT - 1);
        assert_eq!(shard_of(1u64 << (64 - SHARD_BITS)), 1);
    }

    #[test]
    fn sharded_index_interns_and_dedups() {
        let index = ShardedStateIndex::new(2, 1);
        let states: Vec<([u64; 2], [u64; 1])> =
            (0..100).map(|i| ([i % 10, i % 7], [i % 3])).collect();
        let mut ids = Vec::new();
        for (row, aux) in &states {
            let mut h = FxHasher::default();
            for &w in row {
                h.write_u64(w);
            }
            for &w in aux {
                h.write_u64(w);
            }
            let fp = h.finish();
            let s = shard_of(fp);
            let (local, _) = index.write(s).intern(fp, row, aux);
            ids.push(pack_state_id(s, local));
        }
        // Distinct (row, aux) pairs get distinct ids; repeats hit.
        let distinct: std::collections::HashSet<_> = states.iter().collect();
        let distinct_ids: std::collections::HashSet<_> = ids.iter().collect();
        assert_eq!(distinct.len(), distinct_ids.len());
        assert_eq!(index.len(), distinct.len());
        // Every id resolves back to its row.
        for (k, (row, aux)) in states.iter().enumerate() {
            let (s, local) = unpack_state_id(ids[k]);
            let shard = index.read(s);
            assert_eq!(shard.row(local), row);
            assert_eq!(shard.aux_row(local), aux);
        }
        assert!(index.allocated_bytes() > 0);
    }

    #[test]
    fn sharded_index_parallel_interning_is_deterministic() {
        // Intern the same record stream twice — once serially, once with
        // one worker per shard — and require identical (shard, local) ids.
        let records: Vec<[u64; 1]> = (0..5000u64).map(|i| [i % 997]).collect();
        let ids_of = |parallel: bool| -> Vec<u64> {
            let index = ShardedStateIndex::new(1, 0);
            let with_fp: Vec<(u64, [u64; 1])> = records
                .iter()
                .map(|r| {
                    let mut h = FxHasher::default();
                    h.write_u64(r[0]);
                    (h.finish(), *r)
                })
                .collect();
            if parallel {
                std::thread::scope(|scope| {
                    for s in 0..SHARD_COUNT {
                        let (index, with_fp) = (&index, &with_fp);
                        scope.spawn(move || {
                            let mut shard = index.write(s);
                            for (fp, row) in with_fp.iter().filter(|(fp, _)| shard_of(*fp) == s) {
                                shard.intern(*fp, row, &[]);
                            }
                        });
                    }
                });
            } else {
                for (fp, row) in &with_fp {
                    index.write(shard_of(*fp)).intern(*fp, row, &[]);
                }
            }
            with_fp
                .iter()
                .map(|(fp, row)| {
                    let s = shard_of(*fp);
                    let mut shard = index.write(s);
                    let (local, fresh) = shard.intern(*fp, row, &[]);
                    assert!(!fresh, "every record was already interned");
                    pack_state_id(s, local)
                })
                .collect()
        };
        assert_eq!(ids_of(false), ids_of(true));
    }

    #[test]
    fn shard_dense_ids_round_trip() {
        let index = ShardedStateIndex::new(1, 0);
        let mut shard = index.write(3);
        let (a, fresh_a) = shard.intern(7, &[1], &[]);
        let (b, fresh_b) = shard.intern(9, &[2], &[]);
        assert!(fresh_a && fresh_b);
        shard.push_dense(41);
        shard.push_dense(40);
        assert_eq!(shard.dense_of(a), 41);
        assert_eq!(shard.dense_of(b), 40);
    }

    #[test]
    fn block_export_rebuilds_an_identical_shard() {
        // The checkpoint restore path: stream rows/aux/dense out of one
        // shard block by block, re-intern them in local-id order into a
        // fresh shard, and require identical ids, rows, and dense map.
        let index = ShardedStateIndex::new(2, 1);
        let rows: Vec<([u64; 2], [u64; 1])> = (0..500u64).map(|i| ([i, i * 3], [i % 5])).collect();
        {
            let mut shard = index.write(0);
            for (k, (row, aux)) in rows.iter().enumerate() {
                let (local, fresh) = shard.intern(state_fingerprint(row, aux), row, aux);
                assert!(fresh);
                assert_eq!(local as usize, k);
                shard.push_dense((k * 7) as u32);
            }
        }
        let shard = index.read(0);
        let flat_rows: Vec<u64> = shard.row_blocks().flatten().copied().collect();
        let flat_aux: Vec<u64> = shard.aux_blocks().flatten().copied().collect();
        let dense: Vec<u32> = shard.dense_ids().to_vec();
        assert_eq!(flat_rows.len(), shard.len() * 2);
        assert_eq!(flat_aux.len(), shard.len());
        let rebuilt = ShardedStateIndex::new(2, 1);
        {
            let mut fresh_shard = rebuilt.write(0);
            for (k, &d) in dense.iter().enumerate() {
                let row = &flat_rows[k * 2..k * 2 + 2];
                let aux = &flat_aux[k..k + 1];
                let (local, fresh) = fresh_shard.intern(state_fingerprint(row, aux), row, aux);
                assert!(fresh, "restored rows are distinct");
                assert_eq!(local as usize, k, "local ids replay in order");
                fresh_shard.push_dense(d);
            }
        }
        let restored = rebuilt.read(0);
        for (k, (row, aux)) in rows.iter().enumerate() {
            assert_eq!(restored.row(k as u32), row);
            assert_eq!(restored.aux_row(k as u32), aux);
            assert_eq!(restored.dense_of(k as u32), shard.dense_of(k as u32));
            assert_eq!(
                restored.lookup(state_fingerprint(row, aux), row, aux),
                Some(k as u32)
            );
        }
    }

    #[test]
    fn seeded_hasher_differs_by_seed() {
        let mut a = FxHasher::seeded(1);
        let mut b = FxHasher::seeded(2);
        a.write_u64(42);
        b.write_u64(42);
        assert_ne!(a.finish(), b.finish());
    }
}
