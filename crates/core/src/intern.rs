//! Shared state-interning machinery: seeded fingerprint hashing, a
//! fingerprint → id index with exact-equality confirmation, flat bit
//! packing, and a block-chunked history arena.
//!
//! These are the pieces behind the fingerprint-arena fast paths — the
//! [`convergence`](crate::convergence) cycle detector and the exact
//! product-graph explorer in `stabilization-verify` both resolve states
//! the same way:
//!
//! 1. encode the state into a flat, allocation-free representation
//!    (a row of an arena, or a few [bit-packed](pack) `u64` words);
//! 2. hash it with the seeded [`FxHasher`] into a 64-bit fingerprint;
//! 3. probe a [`FingerprintIndex`]: every fingerprint hit is confirmed by
//!    exact equality against the arena, so collisions cost a comparison
//!    but never an incorrect answer, and no owned key (no
//!    `HashMap<Vec<_>, _>` clone) is ever stored.
//!
//! [`ChunkedArena`] backs the histories themselves: size-capped blocks
//! mean appending a million rows never reallocates-and-copies the rows
//! already written.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// An FxHash-style multiplicative [`Hasher`] with a fixed seed: one
/// rotate-xor-multiply per 8-byte word, ~4× faster than SipHash on the
/// wide labelings and packed state words the fast paths fingerprint. Not
/// collision-resistant against adversaries — which is fine, because every
/// fingerprint hit is confirmed by exact equality against the arena.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

/// The golden-ratio multiplier used by rustc's FxHash.
const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    /// Starts a fingerprint from an initial word (length prefixes make
    /// prefix states hash differently).
    pub fn seeded(word: u64) -> Self {
        FxHasher { hash: word }
    }

    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    fn finish(&self) -> u64 {
        self.hash
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(buf));
        }
    }

    fn write_u8(&mut self, i: u8) {
        self.add(u64::from(i));
    }

    fn write_u32(&mut self, i: u32) {
        self.add(u64::from(i));
    }

    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`] — use for `HashMap`s keyed by values
/// that are already well-mixed words (fingerprints, small indices), where
/// SipHash would waste the fast path.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Fingerprint → id index with exact-equality confirmation.
///
/// Maps 64-bit fingerprints to the id of the first state that produced
/// them. Because fingerprints can collide, every hit must be *confirmed*
/// by the caller against its arena; unconfirmed entries (a genuine 64-bit
/// collision between distinct states) go to a small side list so the map
/// itself stays one bare `u64 → u64` entry per state — no owned keys, no
/// per-entry heap allocation.
#[derive(Debug, Default)]
pub struct FingerprintIndex {
    seen: HashMap<u64, u64, FxBuildHasher>,
    collisions: Vec<(u64, u64)>,
}

impl FingerprintIndex {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty index with room for `capacity` states.
    pub fn with_capacity(capacity: usize) -> Self {
        FingerprintIndex {
            seen: HashMap::with_capacity_and_hasher(capacity, FxBuildHasher::default()),
            collisions: Vec::new(),
        }
    }

    /// Number of states interned (confirmed-distinct entries).
    pub fn len(&self) -> usize {
        self.seen.len() + self.collisions.len()
    }

    /// Whether no state has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }

    /// Looks up `fp`; `confirm(id)` must report whether the state stored
    /// under `id` is exactly equal to the one being probed.
    ///
    /// Returns `Some(id)` of the confirmed-equal existing state, or `None`
    /// after recording `candidate` as the id owning this fingerprint (the
    /// caller then appends the state to its arena under that id).
    pub fn probe(&mut self, fp: u64, candidate: u64, confirm: impl Fn(u64) -> bool) -> Option<u64> {
        match self.seen.entry(fp) {
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(candidate);
                None
            }
            std::collections::hash_map::Entry::Occupied(o) => {
                let first = *o.get();
                if confirm(first) {
                    return Some(first);
                }
                // 64-bit collision: consult (and extend) the side list.
                let extra = self
                    .collisions
                    .iter()
                    .filter(|&&(f, _)| f == fp)
                    .map(|&(_, id)| id)
                    .find(|&id| confirm(id));
                if extra.is_none() {
                    self.collisions.push((fp, candidate));
                }
                extra
            }
        }
    }
}

/// Bits needed to store one of `cardinality` distinct values:
/// `⌈log₂ cardinality⌉`, with 0 for cardinalities 0 and 1 (a single
/// possible value needs no bits at all).
pub fn bits_for(cardinality: usize) -> u32 {
    if cardinality <= 1 {
        0
    } else {
        usize::BITS - (cardinality - 1).leading_zeros()
    }
}

/// Writes the low `width` bits of `value` into `words` at bit offset
/// `bit` (little-endian within and across words; fields may straddle a
/// word boundary). The target bits must currently be zero — states are
/// packed once into zeroed scratch, never rewritten in place.
///
/// `width = 0` writes nothing (fields over single-valued domains vanish
/// from the representation).
///
/// # Panics
///
/// Debug-panics if `value` does not fit in `width` bits or the field runs
/// past the end of `words`.
#[inline]
pub fn pack(words: &mut [u64], bit: usize, width: u32, value: u64) {
    debug_assert!(width <= 64);
    if width == 0 {
        return;
    }
    debug_assert!(
        width == 64 || value < 1u64 << width,
        "value overflows field"
    );
    let word = bit / 64;
    let off = (bit % 64) as u32;
    words[word] |= value << off;
    let spill = off + width;
    if spill > 64 {
        // The field straddles into the next word.
        words[word + 1] |= value >> (64 - off);
    }
    debug_assert!(bit + width as usize <= words.len() * 64);
}

/// Reads back a `width`-bit field written by [`pack`]. `width = 0` reads 0.
#[inline]
pub fn unpack(words: &[u64], bit: usize, width: u32) -> u64 {
    if width == 0 {
        return 0;
    }
    let word = bit / 64;
    let off = (bit % 64) as u32;
    let mut v = words[word] >> off;
    let spill = off + width;
    if spill > 64 {
        v |= words[word + 1] << (64 - off);
    }
    if width == 64 {
        v
    } else {
        v & ((1u64 << width) - 1)
    }
}

/// [`ChunkedArena`] block sizing: blocks start at ~4 KiB and double up to
/// a fixed ~1 MiB cap, so short histories (a sweep runs thousands of
/// small classifications) cost one small allocation while million-row
/// histories grow in constant-size blocks. A full block is never
/// reallocated — no row ever moves after being written, and rows stay
/// contiguous (a block always holds whole rows).
const ARENA_FIRST_BLOCK_BYTES: usize = 1 << 12;
const ARENA_MAX_BLOCK_BYTES: usize = 1 << 20;

/// A grow-only arena of fixed-length rows stored in size-capped blocks.
///
/// `push_row` appends one row; `row(i)` returns it as a contiguous slice.
/// Unlike a flat `Vec`, growth never copies existing rows (no realloc
/// churn, no page-fault storms on million-row histories) — the trade is
/// one block lookup per access.
#[derive(Debug)]
pub struct ChunkedArena<T> {
    blocks: Vec<Vec<T>>,
    /// `starts[b]` = index of the first row stored in block `b`.
    starts: Vec<usize>,
    row_len: usize,
    /// Row capacity of the next block to allocate (doubles up to the cap).
    next_block_rows: usize,
    max_block_rows: usize,
    rows: usize,
}

impl<T: Clone> ChunkedArena<T> {
    /// An empty arena of rows of `row_len` elements.
    pub fn new(row_len: usize) -> Self {
        let row_bytes = row_len.max(1) * std::mem::size_of::<T>().max(1);
        ChunkedArena {
            blocks: Vec::new(),
            starts: Vec::new(),
            row_len,
            next_block_rows: (ARENA_FIRST_BLOCK_BYTES / row_bytes).max(1),
            max_block_rows: (ARENA_MAX_BLOCK_BYTES / row_bytes).max(1),
            rows: 0,
        }
    }

    /// Number of rows stored.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// Whether the arena holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Total bytes of row storage currently allocated.
    pub fn allocated_bytes(&self) -> usize {
        self.blocks.iter().map(Vec::capacity).sum::<usize>() * std::mem::size_of::<T>()
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != row_len`.
    pub fn push_row(&mut self, row: &[T]) {
        assert_eq!(row.len(), self.row_len, "row length mismatch");
        // A block is "full" when the next row would not fit its capacity
        // (capacity may exceed the request; never realloc a live block).
        let full = match self.blocks.last() {
            None => true,
            Some(b) => b.len() + self.row_len > b.capacity(),
        };
        if full {
            self.blocks.push(Vec::with_capacity(
                self.next_block_rows * self.row_len.max(1),
            ));
            self.starts.push(self.rows);
            self.next_block_rows = (self.next_block_rows * 2).min(self.max_block_rows);
        }
        self.blocks
            .last_mut()
            .expect("block just ensured")
            .extend_from_slice(row);
        self.rows += 1;
    }

    /// The `i`-th row, as one contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn row(&self, i: usize) -> &[T] {
        assert!(i < self.rows, "row {i} out of bounds ({} rows)", self.rows);
        // Block sizes double then plateau, so there are O(log n) blocks
        // plus a linear tail; partition_point finds the owning block.
        let b = self.starts.partition_point(|&s| s <= i) - 1;
        let start = (i - self.starts[b]) * self.row_len;
        &self.blocks[b][start..start + self.row_len]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_for_matches_ceil_log2() {
        assert_eq!(bits_for(0), 0);
        assert_eq!(bits_for(1), 0);
        assert_eq!(bits_for(2), 1);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(4), 2);
        assert_eq!(bits_for(5), 3);
        assert_eq!(bits_for(16), 4);
        assert_eq!(bits_for(17), 5);
    }

    #[test]
    fn pack_unpack_roundtrips_across_word_boundaries() {
        // 7-bit fields never align with 64-bit words: every straddle case
        // is exercised.
        let mut words = vec![0u64; 3];
        let values: Vec<u64> = (0..24).map(|k| (k * 37 + 5) % 128).collect();
        for (k, &v) in values.iter().enumerate() {
            pack(&mut words, k * 7, 7, v);
        }
        for (k, &v) in values.iter().enumerate() {
            assert_eq!(unpack(&words, k * 7, 7), v, "field {k}");
        }
    }

    #[test]
    fn pack_unpack_zero_width_is_identity() {
        let mut words = vec![0u64; 1];
        pack(&mut words, 13, 0, 0);
        assert_eq!(words[0], 0);
        assert_eq!(unpack(&words, 13, 0), 0);
    }

    #[test]
    fn pack_unpack_full_width() {
        let mut words = vec![0u64; 2];
        pack(&mut words, 3, 64, u64::MAX - 7);
        assert_eq!(unpack(&words, 3, 64), u64::MAX - 7);
    }

    #[test]
    fn fingerprint_index_interns_and_confirms() {
        let states: Vec<u64> = vec![10, 20, 30, 10, 20];
        let mut arena: Vec<u64> = Vec::new();
        let mut index = FingerprintIndex::new();
        let mut ids = Vec::new();
        for &s in &states {
            // Deliberately colliding fingerprint (all states hash to 1):
            // confirmation must still resolve them exactly.
            let id = match index.probe(1, arena.len() as u64, |id| arena[id as usize] == s) {
                Some(existing) => existing,
                None => {
                    arena.push(s);
                    (arena.len() - 1) as u64
                }
            };
            ids.push(id);
        }
        assert_eq!(ids, vec![0, 1, 2, 0, 1]);
        assert_eq!(arena, vec![10, 20, 30]);
        assert_eq!(index.len(), 3);
    }

    #[test]
    fn chunked_arena_rows_survive_growth() {
        // Tiny rows force many rows per block; wide enough total to cross
        // several block boundaries if blocks were small. Use a row size
        // that doesn't divide the block size evenly.
        let mut arena: ChunkedArena<u32> = ChunkedArena::new(3);
        let total = 100_000;
        for i in 0..total {
            let row = [i as u32, (i * 2) as u32, (i * 3) as u32];
            arena.push_row(&row);
        }
        assert_eq!(arena.len(), total);
        for i in (0..total).step_by(977) {
            assert_eq!(arena.row(i), &[i as u32, (i * 2) as u32, (i * 3) as u32]);
        }
        assert!(arena.allocated_bytes() >= total * 3 * 4);
    }

    #[test]
    fn chunked_arena_handles_empty_rows() {
        let mut arena: ChunkedArena<u64> = ChunkedArena::new(0);
        for _ in 0..10 {
            arena.push_row(&[]);
        }
        assert_eq!(arena.len(), 10);
        assert_eq!(arena.row(9), &[] as &[u64]);
    }

    #[test]
    fn seeded_hasher_differs_by_seed() {
        let mut a = FxHasher::seeded(1);
        let mut b = FxHasher::seeded(2);
        a.write_u64(42);
        b.write_u64(42);
        assert_ne!(a.finish(), b.finish());
    }
}
