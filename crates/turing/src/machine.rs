//! Deterministic space-bounded machines and their configuration space `Z`.

use std::error::Error;
use std::fmt;

/// The blank work-tape symbol.
pub const BLANK: u8 = 2;

/// One transition: what to do in a `(state, work symbol, input bit)`
/// situation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transition {
    /// Next control state.
    pub next_state: u32,
    /// Symbol written to the current work cell (`0`, `1`, or [`BLANK`]).
    pub write: u8,
    /// Work head movement (−1, 0, +1), clamped to the tape.
    pub work_move: i8,
    /// Input head movement (−1, 0, +1), clamped to the input.
    pub input_move: i8,
}

/// A machine configuration: an element of `Z = Q × {0,1,␣}^s × [s] × [n]`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Config {
    /// Control state.
    pub state: u32,
    /// Work tape contents (`work.len() == s`).
    pub work: Vec<u8>,
    /// Work head position in `0..s`.
    pub work_head: usize,
    /// Input head position in `0..n`.
    pub input_head: usize,
}

/// Errors from machine construction and execution.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MachineError {
    /// Input length does not match the machine's declared input length.
    WrongInputLength {
        /// Length supplied.
        got: usize,
        /// Declared input length.
        expected: usize,
    },
    /// The machine revisited a configuration without halting — it is not a
    /// decider on this input.
    NotADecider,
    /// A transition referenced an out-of-range state or symbol.
    InvalidTransition {
        /// Description of the violation.
        what: String,
    },
    /// A configuration index was out of range.
    BadConfigIndex {
        /// The offending index.
        index: u64,
        /// The configuration count `|Z|`.
        count: u64,
    },
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::WrongInputLength { got, expected } => {
                write!(f, "input has length {got}, machine expects {expected}")
            }
            MachineError::NotADecider => {
                write!(
                    f,
                    "machine looped without halting; it is not a decider here"
                )
            }
            MachineError::InvalidTransition { what } => {
                write!(f, "invalid transition: {what}")
            }
            MachineError::BadConfigIndex { index, count } => {
                write!(
                    f,
                    "configuration index {index} out of range (|Z| = {count})"
                )
            }
        }
    }
}

impl Error for MachineError {}

/// A deterministic machine with bounded work tape and per-length (advice
/// absorbed) transition table. Build with [`Machine::builder`].
#[derive(Debug, Clone)]
pub struct Machine {
    n_states: u32,
    work_len: usize,
    input_len: usize,
    accepting: Vec<bool>,
    halting: Vec<bool>,
    // transitions[(state * 3 + work_sym) * 2 + bit]
    transitions: Vec<Transition>,
}

impl Machine {
    /// Starts building a machine with `n_states` control states, a work
    /// tape of `work_len ≥ 1` cells, for inputs of length `input_len ≥ 1`.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn builder(n_states: u32, work_len: usize, input_len: usize) -> MachineBuilder {
        assert!(
            n_states >= 1 && work_len >= 1 && input_len >= 1,
            "dimensions must be positive"
        );
        let default = Transition {
            next_state: 0,
            write: BLANK,
            work_move: 0,
            input_move: 0,
        };
        MachineBuilder {
            machine: Machine {
                n_states,
                work_len,
                input_len,
                accepting: vec![false; n_states as usize],
                halting: vec![false; n_states as usize],
                transitions: vec![default; n_states as usize * 6],
            },
        }
    }

    /// Number of control states `|Q|`.
    pub fn state_count(&self) -> u32 {
        self.n_states
    }

    /// Work tape length `s`.
    pub fn work_len(&self) -> usize {
        self.work_len
    }

    /// Declared input length `n`.
    pub fn input_len(&self) -> usize {
        self.input_len
    }

    /// `|Z| = |Q| · 3^s · s · n`, the size of the configuration space.
    pub fn config_count(&self) -> u64 {
        u64::from(self.n_states)
            * 3u64.pow(self.work_len as u32)
            * self.work_len as u64
            * self.input_len as u64
    }

    /// The canonical initial configuration `z₀`: state 0, blank tape, both
    /// heads at 0.
    pub fn initial_config(&self) -> Config {
        Config {
            state: 0,
            work: vec![BLANK; self.work_len],
            work_head: 0,
            input_head: 0,
        }
    }

    /// Whether `config`'s state is accepting (the paper's `F`).
    pub fn is_accepting(&self, config: &Config) -> bool {
        self.accepting[config.state as usize]
    }

    /// Whether `config`'s state is halting (halting configurations are
    /// absorbing under [`step_with_bit`](Self::step_with_bit)).
    pub fn is_halting(&self, config: &Config) -> bool {
        self.halting[config.state as usize]
    }

    /// The partial global transition `π(z, b)`: one step given that the bit
    /// currently under the input head is `b`. Halting configurations map to
    /// themselves, which is what lets the ring protocol keep circulating
    /// them until the periodic reset.
    pub fn step_with_bit(&self, config: &Config, bit: bool) -> Config {
        if self.is_halting(config) {
            return config.clone();
        }
        let work_sym = config.work[config.work_head];
        let t = self.transitions
            [(config.state as usize * 3 + work_sym as usize) * 2 + usize::from(bit)];
        let mut next = config.clone();
        next.state = t.next_state;
        next.work[config.work_head] = t.write;
        next.work_head = clamp_move(config.work_head, t.work_move, self.work_len);
        next.input_head = clamp_move(config.input_head, t.input_move, self.input_len);
        next
    }

    /// One step reading the true input `x`.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::WrongInputLength`] on arity mismatch.
    pub fn step(&self, config: &Config, x: &[bool]) -> Result<Config, MachineError> {
        if x.len() != self.input_len {
            return Err(MachineError::WrongInputLength {
                got: x.len(),
                expected: self.input_len,
            });
        }
        Ok(self.step_with_bit(config, x[config.input_head]))
    }

    /// Runs the machine to halting and returns acceptance.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::WrongInputLength`] on arity mismatch and
    /// [`MachineError::NotADecider`] if the machine runs `|Z|` steps without
    /// halting (a decider never revisits a configuration, so `|Z|` steps
    /// always suffice).
    pub fn decide(&self, x: &[bool]) -> Result<bool, MachineError> {
        let mut config = self.initial_config();
        for _ in 0..=self.config_count() {
            if self.is_halting(&config) {
                return Ok(self.is_accepting(&config));
            }
            config = self.step(&config, x)?;
        }
        Err(MachineError::NotADecider)
    }

    /// Bijectively encodes a configuration as an index in `0..|Z|`
    /// (mixed-radix over state, work contents, work head, input head).
    pub fn config_to_index(&self, config: &Config) -> u64 {
        let mut work_val = 0u64;
        for &sym in config.work.iter().rev() {
            work_val = work_val * 3 + u64::from(sym);
        }
        ((u64::from(config.state) * 3u64.pow(self.work_len as u32) + work_val)
            * self.work_len as u64
            + config.work_head as u64)
            * self.input_len as u64
            + config.input_head as u64
    }

    /// Inverse of [`config_to_index`](Self::config_to_index).
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::BadConfigIndex`] if `index ≥ |Z|`.
    pub fn index_to_config(&self, index: u64) -> Result<Config, MachineError> {
        if index >= self.config_count() {
            return Err(MachineError::BadConfigIndex {
                index,
                count: self.config_count(),
            });
        }
        let input_head = (index % self.input_len as u64) as usize;
        let rest = index / self.input_len as u64;
        let work_head = (rest % self.work_len as u64) as usize;
        let rest = rest / self.work_len as u64;
        let mut work_val = rest % 3u64.pow(self.work_len as u32);
        let state = (rest / 3u64.pow(self.work_len as u32)) as u32;
        let mut work = vec![0u8; self.work_len];
        for slot in work.iter_mut() {
            *slot = (work_val % 3) as u8;
            work_val /= 3;
        }
        Ok(Config {
            state,
            work,
            work_head,
            input_head,
        })
    }
}

fn clamp_move(pos: usize, delta: i8, len: usize) -> usize {
    let next = pos as i64 + i64::from(delta);
    next.clamp(0, len as i64 - 1) as usize
}

/// Builds a [`Machine`]; see [`Machine::builder`].
#[derive(Debug, Clone)]
pub struct MachineBuilder {
    machine: Machine,
}

impl MachineBuilder {
    /// Sets the transition for `(state, work_sym, bit)`.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::InvalidTransition`] if a state or symbol is
    /// out of range.
    pub fn on(
        &mut self,
        state: u32,
        work_sym: u8,
        bit: bool,
        t: Transition,
    ) -> Result<&mut Self, MachineError> {
        let m = &mut self.machine;
        if state >= m.n_states || t.next_state >= m.n_states {
            return Err(MachineError::InvalidTransition {
                what: format!("state {} or next {} out of range", state, t.next_state),
            });
        }
        if work_sym > BLANK || t.write > BLANK {
            return Err(MachineError::InvalidTransition {
                what: format!("work symbol {} or write {} out of range", work_sym, t.write),
            });
        }
        if !(-1..=1).contains(&t.work_move) || !(-1..=1).contains(&t.input_move) {
            return Err(MachineError::InvalidTransition {
                what: "head moves must be in -1..=1".into(),
            });
        }
        m.transitions[(state as usize * 3 + work_sym as usize) * 2 + usize::from(bit)] = t;
        Ok(self)
    }

    /// Sets the same transition (verbatim, including `write`) for every
    /// work symbol — for states whose behavior is work-tape independent.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::InvalidTransition`] as in [`on`](Self::on).
    pub fn on_any_work(
        &mut self,
        state: u32,
        bit: bool,
        t: Transition,
    ) -> Result<&mut Self, MachineError> {
        for sym in 0..=BLANK {
            self.on(state, sym, bit, t)?;
        }
        Ok(self)
    }

    /// Like [`on_any_work`](Self::on_any_work) but rewrites the scanned
    /// symbol unchanged — for states that must *not* disturb the work tape
    /// while the head rests on recorded data.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::InvalidTransition`] as in [`on`](Self::on).
    pub fn on_any_work_preserve(
        &mut self,
        state: u32,
        bit: bool,
        t: Transition,
    ) -> Result<&mut Self, MachineError> {
        for sym in 0..=BLANK {
            self.on(state, sym, bit, Transition { write: sym, ..t })?;
        }
        Ok(self)
    }

    /// Marks `state` as halting; `accept` decides its verdict.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::InvalidTransition`] if `state` is out of
    /// range.
    pub fn halt(&mut self, state: u32, accept: bool) -> Result<&mut Self, MachineError> {
        if state >= self.machine.n_states {
            return Err(MachineError::InvalidTransition {
                what: format!("halting state {state} out of range"),
            });
        }
        self.machine.halting[state as usize] = true;
        self.machine.accepting[state as usize] = accept;
        Ok(self)
    }

    /// Finalizes the machine.
    pub fn build(self) -> Machine {
        self.machine
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two states: 0 scans right flipping parity into the state… kept
    /// minimal here; richer machines live in `library`.
    fn always_accept(n: usize) -> Machine {
        let mut b = Machine::builder(2, 1, n);
        b.on_any_work(
            0,
            false,
            Transition {
                next_state: 1,
                write: 0,
                work_move: 0,
                input_move: 0,
            },
        )
        .unwrap();
        b.on_any_work(
            0,
            true,
            Transition {
                next_state: 1,
                write: 0,
                work_move: 0,
                input_move: 0,
            },
        )
        .unwrap();
        b.halt(1, true).unwrap();
        b.build()
    }

    #[test]
    fn decide_trivial_machine() {
        let m = always_accept(4);
        assert!(m.decide(&[false, true, false, true]).unwrap());
        assert_eq!(
            m.decide(&[true]),
            Err(MachineError::WrongInputLength {
                got: 1,
                expected: 4
            })
        );
    }

    #[test]
    fn halting_configs_are_absorbing() {
        let m = always_accept(3);
        let mut c = m.initial_config();
        c = m.step_with_bit(&c, true);
        assert_eq!(c.state, 1);
        let c2 = m.step_with_bit(&c, false);
        assert_eq!(c, c2);
    }

    #[test]
    fn config_index_round_trips() {
        let m = Machine::builder(3, 2, 4).build();
        assert_eq!(m.config_count(), 3 * 9 * 2 * 4);
        for idx in 0..m.config_count() {
            let c = m.index_to_config(idx).unwrap();
            assert_eq!(m.config_to_index(&c), idx);
        }
        assert!(m.index_to_config(m.config_count()).is_err());
    }

    #[test]
    fn spinning_machine_is_not_a_decider() {
        // One non-halting state that never moves: loops forever.
        let m = Machine::builder(1, 1, 2).build();
        assert_eq!(m.decide(&[true, false]), Err(MachineError::NotADecider));
    }

    #[test]
    fn head_moves_clamp_at_tape_ends() {
        let mut b = Machine::builder(2, 1, 2);
        b.on_any_work(
            0,
            false,
            Transition {
                next_state: 0,
                write: 0,
                work_move: -1,
                input_move: -1,
            },
        )
        .unwrap();
        b.on_any_work(
            0,
            true,
            Transition {
                next_state: 1,
                write: 0,
                work_move: 1,
                input_move: 1,
            },
        )
        .unwrap();
        b.halt(1, true).unwrap();
        let m = b.build();
        let c = m.initial_config();
        let c = m.step_with_bit(&c, false);
        assert_eq!((c.work_head, c.input_head), (0, 0), "clamped at left");
        let c = m.step_with_bit(&c, true);
        assert_eq!(
            (c.work_head, c.input_head),
            (0, 1),
            "work tape len 1 clamps"
        );
    }

    #[test]
    fn builder_rejects_bad_transitions() {
        let mut b = Machine::builder(2, 1, 2);
        assert!(b
            .on(
                5,
                0,
                false,
                Transition {
                    next_state: 0,
                    write: 0,
                    work_move: 0,
                    input_move: 0
                }
            )
            .is_err());
        assert!(b
            .on(
                0,
                7,
                false,
                Transition {
                    next_state: 0,
                    write: 0,
                    work_move: 0,
                    input_move: 0
                }
            )
            .is_err());
        assert!(b
            .on(
                0,
                0,
                false,
                Transition {
                    next_state: 0,
                    write: 0,
                    work_move: 2,
                    input_move: 0
                }
            )
            .is_err());
        assert!(b.halt(9, true).is_err());
    }

    #[test]
    fn work_tape_is_read_back() {
        // Write the first input bit to the work tape, step again and branch
        // on the written symbol.
        let mut b = Machine::builder(4, 1, 2);
        // State 0: record bit into work cell.
        b.on_any_work(
            0,
            false,
            Transition {
                next_state: 1,
                write: 0,
                work_move: 0,
                input_move: 1,
            },
        )
        .unwrap();
        b.on_any_work(
            0,
            true,
            Transition {
                next_state: 1,
                write: 1,
                work_move: 0,
                input_move: 1,
            },
        )
        .unwrap();
        // State 1: accept iff recorded symbol is 1 (regardless of input bit).
        for bit in [false, true] {
            b.on(
                1,
                0,
                bit,
                Transition {
                    next_state: 2,
                    write: 0,
                    work_move: 0,
                    input_move: 0,
                },
            )
            .unwrap();
            b.on(
                1,
                1,
                bit,
                Transition {
                    next_state: 3,
                    write: 1,
                    work_move: 0,
                    input_move: 0,
                },
            )
            .unwrap();
        }
        b.halt(2, false).unwrap();
        b.halt(3, true).unwrap();
        let m = b.build();
        assert!(m.decide(&[true, false]).unwrap());
        assert!(!m.decide(&[false, true]).unwrap());
    }
}
