//! Per-length machines for the running-example languages of Theorem 5.2.
//!
//! Each constructor builds a decider for inputs of length exactly `n`; the
//! non-uniformity (state counts growing with `n`) stands in for the advice
//! tape, as documented at the crate root. All machines halt within `|Z|`
//! steps and have `|Z| = poly(n)` configurations, so their ring simulations
//! carry `O(log n)`-bit labels.

use crate::machine::{Machine, Transition};

/// Parity: accepts iff an odd number of input bits are 1.
///
/// States `pos·2 + parity` for `pos ∈ 0..n`, plus halting states `2n`
/// (reject) and `2n+1` (accept).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn parity_machine(n: usize) -> Machine {
    assert!(n >= 1, "parity machine needs n ≥ 1");
    let n_states = 2 * n as u32 + 2;
    let mut b = Machine::builder(n_states, 1, n);
    for pos in 0..n as u32 {
        for parity in 0..2u32 {
            let state = pos * 2 + parity;
            for bit in [false, true] {
                let next_parity = parity ^ u32::from(bit);
                let next_state = if pos + 1 == n as u32 {
                    2 * n as u32 + next_parity
                } else {
                    (pos + 1) * 2 + next_parity
                };
                b.on_any_work(
                    state,
                    bit,
                    Transition {
                        next_state,
                        write: 0,
                        work_move: 0,
                        input_move: 1,
                    },
                )
                .expect("states in range");
            }
        }
    }
    b.halt(2 * n as u32, false).expect("state in range");
    b.halt(2 * n as u32 + 1, true).expect("state in range");
    b.build()
}

/// Modular counting: accepts iff `Σᵢ xᵢ ≡ residue (mod modulus)`.
///
/// # Panics
///
/// Panics if `n == 0`, `modulus < 2`, or `residue ≥ modulus`.
pub fn mod_count_machine(n: usize, modulus: u32, residue: u32) -> Machine {
    assert!(n >= 1, "machine needs n ≥ 1");
    assert!(modulus >= 2 && residue < modulus, "bad modulus/residue");
    let scan_states = modulus * n as u32;
    // Halting states: scan_states + c for c in 0..modulus.
    let n_states = scan_states + modulus;
    let mut b = Machine::builder(n_states, 1, n);
    for pos in 0..n as u32 {
        for count in 0..modulus {
            let state = pos * modulus + count;
            for bit in [false, true] {
                let next_count = (count + u32::from(bit)) % modulus;
                let next_state = if pos + 1 == n as u32 {
                    scan_states + next_count
                } else {
                    (pos + 1) * modulus + next_count
                };
                b.on_any_work(
                    state,
                    bit,
                    Transition {
                        next_state,
                        write: 0,
                        work_move: 0,
                        input_move: 1,
                    },
                )
                .expect("states in range");
            }
        }
    }
    for count in 0..modulus {
        b.halt(scan_states + count, count == residue)
            .expect("state in range");
    }
    b.build()
}

/// Accepts iff the input contains `11` as a factor.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn contains_11_machine(n: usize) -> Machine {
    assert!(n >= 1, "machine needs n ≥ 1");
    // States pos·2 + seen_one, then reject = 2n, accept = 2n+1.
    let reject = 2 * n as u32;
    let accept = reject + 1;
    let mut b = Machine::builder(accept + 1, 1, n);
    for pos in 0..n as u32 {
        for seen in 0..2u32 {
            let state = pos * 2 + seen;
            let step_to = |s: u32| {
                if pos + 1 == n as u32 {
                    reject
                } else {
                    (pos + 1) * 2 + s
                }
            };
            b.on_any_work(
                state,
                false,
                Transition {
                    next_state: step_to(0),
                    write: 0,
                    work_move: 0,
                    input_move: 1,
                },
            )
            .expect("states in range");
            let on_one = if seen == 1 { accept } else { step_to(1) };
            b.on_any_work(
                state,
                true,
                Transition {
                    next_state: on_one,
                    write: 0,
                    work_move: 0,
                    input_move: 1,
                },
            )
            .expect("states in range");
        }
    }
    b.halt(reject, false).expect("state in range");
    b.halt(accept, true).expect("state in range");
    b.build()
}

/// Accepts iff the first and last input bits are equal — a machine that
/// genuinely *uses its work tape*: it records `x₀` on the tape, walks to
/// the end of the input, and compares.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn first_equals_last_machine(n: usize) -> Machine {
    assert!(n >= 2, "needs at least two input bits");
    // State 0: record x₀, move right.
    // States 1..n-1: walk right (pos = state).
    // State n-1: at the last bit, compare with the recorded work symbol.
    // Halting: n (reject), n+1 (accept).
    let walk_last = n as u32 - 1;
    let reject = n as u32;
    let accept = reject + 1;
    let mut b = Machine::builder(accept + 1, 1, n);
    for bit in [false, true] {
        b.on_any_work(
            0,
            bit,
            Transition {
                next_state: 1,
                write: u8::from(bit),
                work_move: 0,
                input_move: 1,
            },
        )
        .expect("states in range");
    }
    for pos in 1..walk_last {
        for bit in [false, true] {
            b.on_any_work_preserve(
                pos,
                bit,
                Transition {
                    next_state: pos + 1,
                    write: 0,
                    work_move: 0,
                    input_move: 1,
                },
            )
            .expect("states in range");
        }
    }
    // Careful: on_any_work would clobber the recorded symbol; compare per
    // work symbol explicitly.
    for (work_sym, last_bit) in [(0u8, false), (0, true), (1, false), (1, true)] {
        let matches = (work_sym == 1) == last_bit;
        b.on(
            walk_last,
            work_sym,
            last_bit,
            Transition {
                next_state: if matches { accept } else { reject },
                write: work_sym,
                work_move: 0,
                input_move: 0,
            },
        )
        .expect("states in range");
    }
    b.halt(reject, false).expect("state in range");
    b.halt(accept, true).expect("state in range");
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute<F: Fn(&[bool]) -> bool>(m: &Machine, f: F) {
        let n = m.input_len();
        assert!(n <= 10);
        for bits in 0..1u32 << n {
            let x: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(m.decide(&x).unwrap(), f(&x), "x = {x:?}");
        }
    }

    #[test]
    fn parity_machine_matches() {
        for n in 1..=6 {
            brute(&parity_machine(n), |x| {
                x.iter().filter(|&&b| b).count() % 2 == 1
            });
        }
    }

    #[test]
    fn mod_count_machine_matches() {
        for n in 1..=5 {
            for m in 2..=3 {
                for r in 0..m {
                    brute(&mod_count_machine(n, m, r), |x| {
                        x.iter().filter(|&&b| b).count() as u32 % m == r
                    });
                }
            }
        }
    }

    #[test]
    fn contains_11_machine_matches() {
        for n in 1..=7 {
            brute(&contains_11_machine(n), |x| {
                x.windows(2).any(|w| w[0] && w[1])
            });
        }
    }

    #[test]
    fn first_equals_last_machine_matches() {
        for n in 2..=7 {
            brute(&first_equals_last_machine(n), |x| x[0] == x[n - 1]);
        }
    }

    #[test]
    fn config_spaces_are_polynomial() {
        let m = parity_machine(8);
        // |Z| = (2n+2)·3·1·n.
        assert_eq!(m.config_count(), 18 * 3 * 8);
        let m = mod_count_machine(6, 3, 0);
        assert_eq!(m.config_count(), (3 * 6 + 3) as u64 * 3 * 6);
    }

    #[test]
    fn machines_halt_well_within_config_count() {
        let m = contains_11_machine(6);
        let x = [false, true, true, false, false, true];
        let mut c = m.initial_config();
        let mut steps = 0u64;
        while !m.is_halting(&c) {
            c = m.step(&c, &x).unwrap();
            steps += 1;
            assert!(steps <= m.config_count());
        }
        assert!(steps <= 6);
    }
}
