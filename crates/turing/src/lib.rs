//! # turing-machine
//!
//! The **space-bounded Turing machine substrate** of Theorem 5.2
//! (`OSu_log ≡ L/poly`): deterministic machines with
//!
//! * a read-only input tape of `n` bits with a clamped head,
//! * a bounded read/write work tape over `{0, 1, ␣}`,
//! * an explicitly indexed configuration space
//!   `Z = Q × {0,1,␣}^s × [s] × [n]`, exactly the set the paper's protocol
//!   labels carry.
//!
//! **Substitution note (recorded in DESIGN.md):** the paper gives the
//! machine a separate read-only *advice tape*. Because advice depends only
//! on `n`, we absorb it into the per-length transition table — the machines
//! in [`library`] are constructed per input length, which is the same
//! non-uniformity L/poly grants. This keeps `|Z|` polynomial in `n` and the
//! protocol labels logarithmic, which is all Theorem 5.2 uses.
//!
//! ```
//! use turing_machine::library;
//!
//! let m = library::parity_machine(5);
//! assert!(m.decide(&[true, false, true, true, false])?);
//! assert!(!m.decide(&[true, false, false, true, false])?);
//! # Ok::<(), turing_machine::MachineError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod library;
pub mod machine;

pub use machine::{Config, Machine, MachineBuilder, MachineError, Transition};
