//! Job parsing and execution for `verifyd`.
//!
//! A job is one line of flat JSON (see [`Job::parse`]); running it
//! yields one result row per verified instance — one row for a
//! single-placement job, one per placement for an `f`-sweep — each
//! routed through the shared [`VerdictCache`] and carrying its
//! hit / miss / resumed provenance.

use std::path::Path;
use std::time::Instant;

use stabilization_verify::{
    sweep_byzantine_placements_cached, sweep_crash_placements_cached, CheckpointPolicy, Limits,
    Verdict, VerdictCache,
};
use stateless_core::prelude::*;
use stateless_core::topology;
use stateless_protocols::bfs_tree::{bfs_alphabet, bfs_tree_protocol};

/// One verification job, parsed from a line of flat JSON.
///
/// Required fields: `id` (string), `graph` (`biring` / `uniring` /
/// `clique` / `star` / `path`), `n`. Optional: `root` (default 0),
/// `cap` (distance cap, default `n`), `r` (default 1), `model`
/// (`byzantine`, the default, or `crash`), `f` (present ⇒ sweep over
/// every placement of `f` faulty nodes), `exclude` (sweep mode: node
/// ids never faulty), `faulty` (single mode: the exact faulty set,
/// default none), `max_states`, `deadline_ms`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Job {
    /// Caller-chosen job id, echoed in every result row.
    pub id: String,
    /// Topology family name.
    pub graph: String,
    /// Node count.
    pub n: usize,
    /// BFS root.
    pub root: usize,
    /// Distance cap (the BFS alphabet is `0..=cap`).
    pub cap: u64,
    /// Stabilization parameter r.
    pub r: u8,
    /// Fault kind: `byzantine` or `crash`.
    pub model: String,
    /// Sweep mode when present: quantify over every placement of `f`
    /// faulty nodes.
    pub f: Option<usize>,
    /// Sweep mode: nodes excluded from placements.
    pub exclude: Vec<NodeId>,
    /// Single mode: the exact faulty node set.
    pub faulty: Vec<NodeId>,
    /// State-budget override.
    pub max_states: Option<usize>,
    /// Wall-clock deadline; expiry degrades to a `partial` row that a
    /// resubmission resumes (the cache keeps the resume pointer).
    pub deadline_ms: Option<u64>,
}

impl Job {
    /// Parses one job line. Blank lines are `Ok(None)`; anything else
    /// that does not parse is a one-line error message (the caller
    /// turns it into an error row, keyed by `id` when one is present).
    pub fn parse(line: &str) -> Result<Option<Job>, String> {
        if line.trim().is_empty() {
            return Ok(None);
        }
        let id = string_field(line, "id").ok_or("missing \"id\"")?;
        let graph = string_field(line, "graph").ok_or("missing \"graph\"")?;
        let n = number_field(line, "n").ok_or("missing \"n\"")? as usize;
        let job = Job {
            id,
            graph,
            n,
            root: number_field(line, "root").unwrap_or(0.0) as usize,
            cap: number_field(line, "cap").unwrap_or(n as f64) as u64,
            r: number_field(line, "r").unwrap_or(1.0) as u8,
            model: string_field(line, "model").unwrap_or_else(|| "byzantine".into()),
            f: number_field(line, "f").map(|v| v as usize),
            exclude: list_field(line, "exclude").unwrap_or_default(),
            faulty: list_field(line, "faulty").unwrap_or_default(),
            max_states: number_field(line, "max_states").map(|v| v as usize),
            deadline_ms: number_field(line, "deadline_ms").map(|v| v as u64),
        };
        if job.r == 0 {
            return Err("\"r\" must be at least 1".into());
        }
        Ok(Some(job))
    }
}

/// Runs one job through `cache` and returns its result rows (JSON
/// lines). A failing job yields a single error row rather than tearing
/// the batch down; `wall_ms` in every row is the wall time of the
/// enclosing job (a sweep's rows share it). `ckpt_root`, when given,
/// hosts a per-fingerprint checkpoint directory for deadline-bearing
/// single-placement jobs, so an expired deadline leaves a resumable
/// checkpoint behind the cache's resume pointer.
pub fn run_job(
    job: &Job,
    cache: &VerdictCache,
    threads: usize,
    ckpt_root: Option<&Path>,
) -> Vec<String> {
    let started = Instant::now();
    match run_job_inner(job, cache, threads, ckpt_root) {
        Ok(rows) => {
            let wall_ms = started.elapsed().as_secs_f64() * 1e3;
            rows.into_iter()
                .map(|row| {
                    format!(
                        "{{\"id\":{},\"placement\":{},\"verdict\":\"{}\",\"states\":{},\"cache\":\"{}\",\"wall_ms\":{:.3}}}",
                        json_string(&job.id),
                        json_ids(&row.placement),
                        row.verdict,
                        row.states,
                        row.cache,
                        wall_ms
                    )
                })
                .collect()
        }
        Err(what) => vec![error_row(&job.id, &what)],
    }
}

/// The error row for a job (or an unparseable line) — `id` may be
/// empty when the line had none.
pub fn error_row(id: &str, what: &str) -> String {
    format!(
        "{{\"id\":{},\"error\":{}}}",
        json_string(id),
        json_string(what)
    )
}

/// One result row before formatting.
struct Row {
    placement: Vec<NodeId>,
    verdict: &'static str,
    states: usize,
    cache: &'static str,
}

fn run_job_inner(
    job: &Job,
    cache: &VerdictCache,
    threads: usize,
    ckpt_root: Option<&Path>,
) -> Result<Vec<Row>, String> {
    let graph = build_graph(&job.graph, job.n)?;
    if job.root >= job.n {
        return Err(format!("root {} out of range for n = {}", job.root, job.n));
    }
    let protocol = bfs_tree_protocol(graph, job.root, job.cap, FaultModel::none())
        .map_err(|e| e.to_string())?;
    let inputs = vec![0u64; job.n];
    let alphabet = bfs_alphabet(job.cap);
    let mut limits = Limits {
        threads,
        ..Limits::default()
    };
    if let Some(max_states) = job.max_states {
        limits.max_states = max_states;
    }
    if let Some(ms) = job.deadline_ms {
        limits.deadline = Some(std::time::Duration::from_millis(ms));
    }
    match job.f {
        Some(f) => {
            // Sweep mode: one row per placement, all through the cache.
            let sweep = match job.model.as_str() {
                "byzantine" => sweep_byzantine_placements_cached,
                "crash" => sweep_crash_placements_cached,
                other => return Err(format!("unknown fault model \"{other}\"")),
            };
            let rows = sweep(
                &protocol,
                &inputs,
                &alphabet,
                job.r,
                limits,
                f,
                &job.exclude,
                cache,
            )
            .map_err(|e| e.to_string())?;
            Ok(rows
                .into_iter()
                .map(|row| Row {
                    placement: row.placement,
                    verdict: verdict_str(&row.verdict),
                    states: row.stats.states,
                    cache: row.cache.as_str(),
                })
                .collect())
        }
        None => {
            // Single mode: the exact faulty set from `faulty`.
            limits.faults = match (job.model.as_str(), job.faulty.is_empty()) {
                (_, true) => FaultModel::none(),
                ("byzantine", false) => {
                    FaultModel::byzantine(&job.faulty).map_err(|e| e.to_string())?
                }
                ("crash", false) => FaultModel::crash(&job.faulty).map_err(|e| e.to_string())?,
                (other, false) => return Err(format!("unknown fault model \"{other}\"")),
            };
            if limits.deadline.is_some() {
                if let Some(root) = ckpt_root {
                    // A deadline needs a checkpoint to degrade to a
                    // *resumable* partial; key the directory by the
                    // instance fingerprint so resubmissions find it.
                    let fp = VerdictCache::label_fingerprint(
                        &protocol, &inputs, &alphabet, job.r, &limits,
                    );
                    limits.checkpoint =
                        Some(CheckpointPolicy::new(root.join(format!("ckpt-{fp:016x}"))));
                }
            }
            let hit = cache
                .verify_label(&protocol, &inputs, &alphabet, job.r, &limits)
                .map_err(|e| e.to_string())?;
            Ok(vec![Row {
                placement: job.faulty.clone(),
                verdict: verdict_str(&hit.verdict),
                states: hit.stats.states,
                cache: hit.outcome.as_str(),
            }])
        }
    }
}

fn build_graph(family: &str, n: usize) -> Result<DiGraph, String> {
    // Validate sizes here: the topology constructors assert, and a bad
    // job line must become an error row, not a panic.
    let need = |min: usize| {
        if n < min {
            Err(format!(
                "graph \"{family}\" needs at least {min} nodes, got {n}"
            ))
        } else {
            Ok(())
        }
    };
    match family {
        "biring" => {
            need(3)?;
            Ok(topology::bidirectional_ring(n))
        }
        "uniring" => {
            need(2)?;
            Ok(topology::unidirectional_ring(n))
        }
        "clique" => {
            need(2)?;
            Ok(topology::clique(n))
        }
        "star" => {
            need(2)?;
            Ok(topology::star(n))
        }
        "path" => {
            need(2)?;
            Ok(topology::bidirectional_path(n))
        }
        other => Err(format!("unknown graph family \"{other}\"")),
    }
}

fn verdict_str(verdict: &Verdict<u64>) -> &'static str {
    match verdict {
        Verdict::Stabilizing => "stabilizing",
        Verdict::NotStabilizing(_) => "not_stabilizing",
        Verdict::Partial { .. } => "partial",
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_ids(ids: &[NodeId]) -> String {
    let inner: Vec<String> = ids.iter().map(|id| id.to_string()).collect();
    format!("[{}]", inner.join(","))
}

/// Extracts the string value of `"key":"…"` from one JSON line.
fn string_field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => out.push(chars.next()?),
            _ => out.push(c),
        }
    }
    None
}

/// Extracts the numeric value of `"key":…` from one JSON line.
fn number_field(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !matches!(c, '0'..='9' | '.' | '-' | '+' | 'e' | 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts the `"key":[…]` integer list from one JSON line.
fn list_field(line: &str, key: &str) -> Option<Vec<NodeId>> {
    let pat = format!("\"{key}\":[");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find(']')?;
    let body = rest[..end].trim();
    if body.is_empty() {
        return Some(Vec::new());
    }
    body.split(',')
        .map(|part| part.trim().parse::<NodeId>().ok())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use stabilization_verify::cache::DEFAULT_BYTE_BUDGET;

    #[test]
    fn jobs_parse_with_defaults_and_reject_garbage() {
        let job = Job::parse(
            r#"{"id":"j1","graph":"biring","n":4,"root":0,"cap":2,"r":1,"model":"byzantine","f":1,"exclude":[0,2],"max_states":100000,"deadline_ms":5000}"#,
        )
        .unwrap()
        .unwrap();
        assert_eq!(job.id, "j1");
        assert_eq!(job.graph, "biring");
        assert_eq!((job.n, job.root, job.cap, job.r), (4, 0, 2, 1));
        assert_eq!(job.f, Some(1));
        assert_eq!(job.exclude, vec![0, 2]);
        assert_eq!(job.max_states, Some(100_000));
        assert_eq!(job.deadline_ms, Some(5000));

        let sparse = Job::parse(r#"{"id":"j2","graph":"uniring","n":3}"#)
            .unwrap()
            .unwrap();
        assert_eq!(sparse.root, 0);
        assert_eq!(sparse.cap, 3, "cap defaults to n");
        assert_eq!(sparse.r, 1);
        assert_eq!(sparse.model, "byzantine");
        assert_eq!(sparse.f, None);
        assert!(sparse.exclude.is_empty() && sparse.faulty.is_empty());

        assert_eq!(Job::parse("   ").unwrap(), None, "blank lines are skipped");
        assert!(Job::parse(r#"{"graph":"biring","n":4}"#).is_err());
        assert!(Job::parse(r#"{"id":"x","graph":"biring"}"#).is_err());
        assert!(Job::parse(r#"{"id":"x","graph":"biring","n":4,"r":0}"#).is_err());
    }

    #[test]
    fn single_jobs_hit_the_cache_on_repeat() {
        let cache = VerdictCache::in_memory(DEFAULT_BYTE_BUDGET);
        let job = Job::parse(r#"{"id":"s1","graph":"biring","n":3,"cap":2,"faulty":[1]}"#)
            .unwrap()
            .unwrap();
        let cold = run_job(&job, &cache, 1, None);
        assert_eq!(cold.len(), 1);
        assert!(cold[0].contains("\"cache\":\"miss\""), "cold: {}", cold[0]);
        assert!(cold[0].contains("\"placement\":[1]"), "cold: {}", cold[0]);
        let warm = run_job(&job, &cache, 1, None);
        assert!(warm[0].contains("\"cache\":\"hit\""), "warm: {}", warm[0]);
        // Identical verdict and states either way.
        let strip = |row: &str| row.split(",\"cache\"").next().unwrap().to_string();
        assert_eq!(strip(&cold[0]), strip(&warm[0]));
    }

    #[test]
    fn sweep_jobs_emit_one_row_per_placement_and_warm_to_hits() {
        let cache = VerdictCache::in_memory(DEFAULT_BYTE_BUDGET);
        let job = Job::parse(r#"{"id":"w1","graph":"biring","n":3,"cap":2,"f":1,"exclude":[0]}"#)
            .unwrap()
            .unwrap();
        let cold = run_job(&job, &cache, 1, None);
        assert_eq!(cold.len(), 2, "placements of 1 fault over {{1,2}}");
        assert!(cold.iter().all(|row| row.contains("\"cache\":\"miss\"")));
        let warm = run_job(&job, &cache, 1, None);
        assert!(
            warm.iter().all(|row| row.contains("\"cache\":\"hit\"")),
            "warm rows: {warm:?}"
        );
    }

    #[test]
    fn bad_jobs_become_error_rows_not_panics() {
        let cache = VerdictCache::in_memory(DEFAULT_BYTE_BUDGET);
        for line in [
            r#"{"id":"b1","graph":"mobius","n":4}"#,
            r#"{"id":"b2","graph":"biring","n":2}"#,
            r#"{"id":"b3","graph":"biring","n":4,"root":9}"#,
            r#"{"id":"b4","graph":"biring","n":3,"model":"gremlin","f":1}"#,
        ] {
            let job = Job::parse(line).unwrap().unwrap();
            let rows = run_job(&job, &cache, 1, None);
            assert_eq!(rows.len(), 1, "{line}");
            assert!(rows[0].contains("\"error\":"), "{line} -> {}", rows[0]);
        }
    }
}
