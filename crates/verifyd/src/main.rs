//! `verifyd` — the batch verdict service.
//!
//! Reads line-JSON verification jobs (see [`jobs::Job::parse`]) from
//! stdin or a watched spool directory — no network anywhere — routes
//! every instance through a shared memoized
//! [`VerdictCache`], and emits one line-JSON verdict row per instance
//! with `cache: hit|miss|resumed` provenance.
//!
//! # Modes
//!
//! **Stdin** (default): one job per line on stdin, one result row per
//! instance on stdout, in job order.
//!
//! ```text
//! echo '{"id":"j1","graph":"biring","n":4,"cap":2,"r":1,"f":1}' | verifyd
//! ```
//!
//! **Spool** (`--spool DIR`): scans `DIR` for `*.jobs` files (sorted by
//! name), processes each batch, writes `<stem>.results` next to it
//! (tmp-then-rename, so a reader never sees a torn file), renames the
//! input to `<name>.done`, and keeps polling every `--poll-ms` unless
//! `--once`.
//!
//! # Flags
//!
//! | flag | meaning |
//! |---|---|
//! | `--spool DIR` | watch `DIR` for `*.jobs` batches instead of stdin |
//! | `--once` | spool mode: process what is there, then exit |
//! | `--poll-ms MS` | spool poll interval (default 200) |
//! | `--cache-dir DIR` | persist the verdict cache in `DIR` (survives restarts) |
//! | `--budget BYTES` | cache byte budget (default 64 MiB) |
//! | `--threads N` | worker threads per verification (default 0 = all cores) |

use std::io::{BufRead, Write};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use stabilization_verify::cache::DEFAULT_BYTE_BUDGET;
use stabilization_verify::VerdictCache;

mod jobs;

use jobs::{error_row, run_job, Job};

struct Config {
    spool: Option<PathBuf>,
    once: bool,
    poll_ms: u64,
    cache_dir: Option<PathBuf>,
    budget: usize,
    threads: usize,
}

fn parse_args() -> Result<Config, String> {
    let mut config = Config {
        spool: None,
        once: false,
        poll_ms: 200,
        cache_dir: None,
        budget: DEFAULT_BYTE_BUDGET,
        threads: 0,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| args.next().ok_or(format!("{what} needs a value"));
        match arg.as_str() {
            "--spool" => config.spool = Some(PathBuf::from(value("--spool")?)),
            "--once" => config.once = true,
            "--poll-ms" => {
                config.poll_ms = value("--poll-ms")?
                    .parse()
                    .map_err(|_| "--poll-ms must be an integer")?;
            }
            "--cache-dir" => config.cache_dir = Some(PathBuf::from(value("--cache-dir")?)),
            "--budget" => {
                config.budget = value("--budget")?
                    .parse()
                    .map_err(|_| "--budget must be an integer byte count")?;
            }
            "--threads" => {
                config.threads = value("--threads")?
                    .parse()
                    .map_err(|_| "--threads must be an integer")?;
            }
            other => return Err(format!("unknown flag \"{other}\" (see the crate docs)")),
        }
    }
    Ok(config)
}

/// Runs every job line of `text`, appending result rows to `out`.
fn run_batch(text: &str, cache: &VerdictCache, config: &Config, out: &mut Vec<String>) {
    // Deadline checkpoints live beside the cache so resume pointers
    // stay valid across restarts of a persistent service.
    let ckpt_root = config.cache_dir.as_deref();
    for line in text.lines() {
        match Job::parse(line) {
            Ok(Some(job)) => out.extend(run_job(&job, cache, config.threads, ckpt_root)),
            Ok(None) => {}
            Err(what) => out.push(error_row("", &format!("bad job line: {what}"))),
        }
    }
}

fn run_stdin(cache: &VerdictCache, config: &Config) -> Result<(), String> {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut stdout = stdout.lock();
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| format!("reading stdin: {e}"))?;
        let mut rows = Vec::new();
        run_batch(&line, cache, config, &mut rows);
        for row in rows {
            writeln!(stdout, "{row}").map_err(|e| format!("writing stdout: {e}"))?;
        }
        stdout.flush().map_err(|e| format!("writing stdout: {e}"))?;
    }
    Ok(())
}

/// One spool pass: returns how many batch files were processed.
fn spool_pass(dir: &Path, cache: &VerdictCache, config: &Config) -> Result<usize, String> {
    let listing = std::fs::read_dir(dir).map_err(|e| format!("reading spool {dir:?}: {e}"))?;
    let mut batches: Vec<PathBuf> = listing
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|path| path.extension().is_some_and(|ext| ext == "jobs"))
        .collect();
    batches.sort();
    for batch in &batches {
        let text = std::fs::read_to_string(batch).map_err(|e| format!("reading {batch:?}: {e}"))?;
        let mut rows = Vec::new();
        run_batch(&text, cache, config, &mut rows);
        // Results land tmp-then-rename so a concurrent reader never
        // sees a torn file, then the input is marked done — exactly
        // once even if we crash between the two (a reprocessed batch
        // is all cache hits and rewrites identical results).
        let results = batch.with_extension("results");
        let tmp = batch.with_extension("results.tmp");
        std::fs::write(&tmp, rows.join("\n") + "\n")
            .map_err(|e| format!("writing {tmp:?}: {e}"))?;
        std::fs::rename(&tmp, &results).map_err(|e| format!("renaming {tmp:?}: {e}"))?;
        let done = batch.with_extension("jobs.done");
        std::fs::rename(batch, &done).map_err(|e| format!("renaming {batch:?}: {e}"))?;
        eprintln!(
            "verifyd: {} -> {} ({} rows)",
            batch.display(),
            results.display(),
            rows.len()
        );
    }
    Ok(batches.len())
}

fn run_spool(dir: &Path, cache: &VerdictCache, config: &Config) -> Result<(), String> {
    loop {
        spool_pass(dir, cache, config)?;
        if config.once {
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_millis(config.poll_ms));
    }
}

fn main() -> ExitCode {
    let config = match parse_args() {
        Ok(config) => config,
        Err(what) => {
            eprintln!("verifyd: {what}");
            return ExitCode::FAILURE;
        }
    };
    let cache = match &config.cache_dir {
        Some(dir) => match VerdictCache::open(dir, config.budget) {
            Ok(cache) => cache,
            Err(e) => {
                eprintln!("verifyd: opening cache dir {dir:?}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => VerdictCache::in_memory(config.budget),
    };
    let outcome = match &config.spool {
        Some(dir) => run_spool(dir, &cache, &config),
        None => run_stdin(&cache, &config),
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(what) => {
            eprintln!("verifyd: {what}");
            ExitCode::FAILURE
        }
    }
}
