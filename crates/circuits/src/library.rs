//! Standard circuits for the functions the paper reasons about:
//! majority, equality, parity, thresholds, modular counting, palindromes.

use crate::circuit::{Circuit, CircuitBuilder, GateSource};

/// XOR-chain parity: outputs 1 iff an odd number of inputs are 1.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn parity(n: usize) -> Circuit {
    assert!(n >= 1, "parity needs at least one input");
    let mut b = Circuit::builder(n);
    let mut acc = GateSource::Input(0);
    for i in 1..n {
        acc = b.xor(acc, GateSource::Input(i)).expect("sources are valid");
    }
    b.finish(acc).expect("output source is valid")
}

/// AND of all inputs.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn and_all(n: usize) -> Circuit {
    assert!(n >= 1, "and needs at least one input");
    let mut b = Circuit::builder(n);
    let mut acc = GateSource::Input(0);
    for i in 1..n {
        acc = b.and(acc, GateSource::Input(i)).expect("sources are valid");
    }
    b.finish(acc).expect("output source is valid")
}

/// OR of all inputs.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn or_all(n: usize) -> Circuit {
    assert!(n >= 1, "or needs at least one input");
    let mut b = Circuit::builder(n);
    let mut acc = GateSource::Input(0);
    for i in 1..n {
        acc = b.or(acc, GateSource::Input(i)).expect("sources are valid");
    }
    b.finish(acc).expect("output source is valid")
}

/// Appends a popcount to `b`: the binary sum `Σᵢ xᵢ` of all `n` inputs,
/// least-significant bit first.
fn popcount(b: &mut CircuitBuilder, n: usize) -> Vec<GateSource> {
    let mut acc: Vec<GateSource> = Vec::new();
    for i in 0..n {
        // Ripple-increment `acc` by Input(i).
        let mut carry = GateSource::Input(i);
        for slot in acc.iter_mut() {
            let sum = b.xor(*slot, carry).expect("sources are valid");
            carry = b.and(*slot, carry).expect("sources are valid");
            *slot = sum;
        }
        acc.push(carry);
    }
    acc
}

/// Appends a comparison `value ≥ threshold` where `value` is a
/// little-endian bit vector of gate sources and `threshold` a constant.
fn ge_const(b: &mut CircuitBuilder, value: &[GateSource], threshold: usize) -> GateSource {
    let width = value
        .len()
        .max(usize::BITS as usize - threshold.leading_zeros() as usize);
    let mut gt = GateSource::Const(false);
    let mut eq = GateSource::Const(true);
    for i in (0..width).rev() {
        let v = value.get(i).copied().unwrap_or(GateSource::Const(false));
        let t_bit = threshold >> i & 1 == 1;
        if t_bit {
            eq = b.and(eq, v).expect("sources are valid");
        } else {
            let e_and_v = b.and(eq, v).expect("sources are valid");
            gt = b.or(gt, e_and_v).expect("sources are valid");
            let not_v = b.not(v).expect("sources are valid");
            eq = b.and(eq, not_v).expect("sources are valid");
        }
    }
    b.or(gt, eq).expect("sources are valid")
}

/// Threshold function: outputs 1 iff at least `t` inputs are 1.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn threshold(n: usize, t: usize) -> Circuit {
    assert!(n >= 1, "threshold needs at least one input");
    let mut b = Circuit::builder(n);
    let sum = popcount(&mut b, n);
    let out = ge_const(&mut b, &sum, t);
    b.finish(out).expect("output source is valid")
}

/// The paper's majority `Majₙ`: outputs 1 iff `Σᵢ xᵢ ≥ n/2`
/// (Section 6; note the non-strict inequality with real `n/2`).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn majority(n: usize) -> Circuit {
    // Σ ≥ n/2 over the reals ⟺ Σ ≥ ⌈n/2⌉ over the integers.
    threshold(n, n.div_ceil(2))
}

/// The paper's equality `Eqₙ`: for even `n`, outputs 1 iff
/// `(x₁,…,x_{n/2}) = (x_{n/2+1},…,xₙ)`; the constant 0 for odd `n`
/// (Section 6 defines `Eqₙ(x) = 1` only when `n` is even).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn equality(n: usize) -> Circuit {
    assert!(n >= 1, "equality needs at least one input");
    if n % 2 == 1 {
        return Circuit::builder(n)
            .finish(GateSource::Const(false))
            .expect("const output");
    }
    let half = n / 2;
    let mut b = Circuit::builder(n);
    let mut acc = GateSource::Const(true);
    for i in 0..half {
        let same = b
            .eq(GateSource::Input(i), GateSource::Input(half + i))
            .expect("valid");
        acc = b.and(acc, same).expect("valid");
    }
    b.finish(acc).expect("output source is valid")
}

/// Palindrome: outputs 1 iff `x` equals its reversal.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn palindrome(n: usize) -> Circuit {
    assert!(n >= 1, "palindrome needs at least one input");
    let mut b = Circuit::builder(n);
    let mut acc = GateSource::Const(true);
    for i in 0..n / 2 {
        let same = b
            .eq(GateSource::Input(i), GateSource::Input(n - 1 - i))
            .expect("valid");
        acc = b.and(acc, same).expect("valid");
    }
    b.finish(acc).expect("output source is valid")
}

/// Modular counting: outputs 1 iff `Σᵢ xᵢ ≡ residue (mod modulus)`.
///
/// Tracks the running count one-hot in `modulus` wires, so the circuit has
/// `O(n·modulus)` gates — the shape of a deterministic finite automaton
/// unrolled over the input, which is also how the logspace Turing machines
/// of Theorem 5.2 decide these languages.
///
/// # Panics
///
/// Panics if `n == 0`, `modulus < 2`, or `residue ≥ modulus`.
pub fn mod_count(n: usize, modulus: usize, residue: usize) -> Circuit {
    assert!(n >= 1, "mod_count needs at least one input");
    assert!(modulus >= 2, "modulus must be at least 2");
    assert!(residue < modulus, "residue must be below the modulus");
    let mut b = Circuit::builder(n);
    let mut state: Vec<GateSource> = (0..modulus).map(|k| GateSource::Const(k == 0)).collect();
    for i in 0..n {
        let x = GateSource::Input(i);
        let not_x = b.not(x).expect("valid");
        let mut next = Vec::with_capacity(modulus);
        for k in 0..modulus {
            let from_prev = b.and(x, state[(k + modulus - 1) % modulus]).expect("valid");
            let stay = b.and(not_x, state[k]).expect("valid");
            next.push(b.or(from_prev, stay).expect("valid"));
        }
        state = next;
    }
    b.finish(state[residue]).expect("output source is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute<F: Fn(&[bool]) -> bool>(c: &Circuit, f: F) {
        let n = c.input_count();
        assert!(n <= 12, "brute-force check only for small n");
        for bits in 0..1u32 << n {
            let x: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(c.eval(&x).unwrap(), f(&x), "x = {x:?}");
        }
    }

    #[test]
    fn parity_matches_brute_force() {
        for n in 1..=6 {
            brute(&parity(n), |x| x.iter().filter(|&&b| b).count() % 2 == 1);
        }
    }

    #[test]
    fn and_or_match_brute_force() {
        for n in 1..=5 {
            brute(&and_all(n), |x| x.iter().all(|&b| b));
            brute(&or_all(n), |x| x.iter().any(|&b| b));
        }
    }

    #[test]
    fn majority_matches_paper_definition() {
        for n in 1..=8 {
            brute(&majority(n), |x| {
                let ones = x.iter().filter(|&&b| b).count();
                2 * ones >= n
            });
        }
    }

    #[test]
    fn threshold_matches_brute_force() {
        for n in 1..=6 {
            for t in 0..=n + 1 {
                brute(&threshold(n, t), |x| x.iter().filter(|&&b| b).count() >= t);
            }
        }
    }

    #[test]
    fn equality_matches_paper_definition() {
        for n in 1..=8 {
            brute(&equality(n), |x| n % 2 == 0 && x[..n / 2] == x[n / 2..]);
        }
    }

    #[test]
    fn palindrome_matches_brute_force() {
        for n in 1..=7 {
            brute(&palindrome(n), |x| {
                let mut r = x.to_vec();
                r.reverse();
                r == x
            });
        }
    }

    #[test]
    fn mod_count_matches_brute_force() {
        for n in 1..=6 {
            for m in 2..=4 {
                for r in 0..m {
                    brute(&mod_count(n, m, r), |x| {
                        x.iter().filter(|&&b| b).count() % m == r
                    });
                }
            }
        }
    }

    #[test]
    fn sizes_are_reasonable() {
        assert_eq!(parity(8).size(), 7);
        assert!(majority(16).size() < 400, "got {}", majority(16).size());
        assert!(mod_count(10, 3, 0).size() <= 10 * 3 * 3 + 10);
    }
}
