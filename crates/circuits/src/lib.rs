//! # boolean-circuit
//!
//! The **P/poly substrate** of "Stateless Computation" (Theorem 5.4):
//! fan-in-2 Boolean circuits, their evaluation, builders for the standard
//! functions the paper discusses (majority, equality, parity, …), and
//! truth-table synthesis.
//!
//! Circuits here are DAGs in topological order (a gate may only reference
//! strictly earlier gates), which is exactly the `g₁, g₂, …, g_{|C|}` gate
//! ordering the paper's ring compilation relies on.
//!
//! ```
//! use boolean_circuit::library;
//!
//! let maj = library::majority(5);
//! assert!(maj.eval(&[true, true, false, true, false])?);
//! assert!(!maj.eval(&[true, false, false, true, false])?);
//! # Ok::<(), boolean_circuit::CircuitError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod circuit;
pub mod library;
pub mod synthesis;

pub use circuit::{Circuit, CircuitBuilder, CircuitError, Gate, GateId, GateOp, GateSource};
