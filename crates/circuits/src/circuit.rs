//! Fan-in-2 Boolean circuits in topological order.

use std::error::Error;
use std::fmt;

/// Index of a gate within a circuit, in topological order.
pub type GateId = usize;

/// Where a gate (or the circuit output) reads a bit from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateSource {
    /// The `i`-th circuit input variable.
    Input(usize),
    /// The output of an earlier gate.
    Gate(GateId),
    /// A Boolean constant.
    Const(bool),
}

/// The Boolean operation a gate computes on its two sources.
///
/// Unary NOT is expressed as `Nand(a, a)`; buffers as `And(a, a)` — the
/// builder provides `not`/`buf` conveniences that do this for you, keeping
/// every gate binary as in the paper's fan-in-2 model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateOp {
    /// Logical conjunction.
    And,
    /// Logical disjunction.
    Or,
    /// Exclusive or.
    Xor,
    /// Negated conjunction.
    Nand,
    /// Negated disjunction.
    Nor,
    /// Negated exclusive or (equivalence).
    Xnor,
}

impl GateOp {
    /// Applies the operation to two bits.
    pub fn apply(self, a: bool, b: bool) -> bool {
        match self {
            GateOp::And => a && b,
            GateOp::Or => a || b,
            GateOp::Xor => a ^ b,
            GateOp::Nand => !(a && b),
            GateOp::Nor => !(a || b),
            GateOp::Xnor => !(a ^ b),
        }
    }
}

/// A single fan-in-2 gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Gate {
    /// The operation.
    pub op: GateOp,
    /// First input source.
    pub a: GateSource,
    /// Second input source.
    pub b: GateSource,
}

/// Errors from circuit construction and evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CircuitError {
    /// Input vector length did not match the circuit's input arity.
    WrongInputLength {
        /// Length supplied.
        got: usize,
        /// The circuit's input count.
        expected: usize,
    },
    /// A gate referenced an input variable beyond the declared arity or a
    /// gate at or after its own position (breaking topological order).
    InvalidSource {
        /// Index of the offending gate (`None` for the output source).
        gate: Option<GateId>,
        /// The invalid source.
        source: GateSource,
    },
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::WrongInputLength { got, expected } => {
                write!(f, "input has length {got}, circuit expects {expected}")
            }
            CircuitError::InvalidSource { gate, source } => match gate {
                Some(g) => write!(f, "gate {g} has invalid source {source:?}"),
                None => write!(f, "circuit output has invalid source {source:?}"),
            },
        }
    }
}

impl Error for CircuitError {}

/// An immutable fan-in-2 Boolean circuit with one output bit.
///
/// Build with [`CircuitBuilder`]. Gates are stored in topological order:
/// gate `j` may only read inputs, constants, and gates `< j`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Circuit {
    n_inputs: usize,
    gates: Vec<Gate>,
    output: GateSource,
}

impl Circuit {
    /// Starts building a circuit over `n_inputs` input variables.
    pub fn builder(n_inputs: usize) -> CircuitBuilder {
        CircuitBuilder {
            n_inputs,
            gates: Vec::new(),
        }
    }

    /// Number of input variables.
    pub fn input_count(&self) -> usize {
        self.n_inputs
    }

    /// Number of gates `|C|`.
    pub fn size(&self) -> usize {
        self.gates.len()
    }

    /// The gates in topological order.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// The source feeding the circuit's output bit.
    pub fn output(&self) -> GateSource {
        self.output
    }

    /// Evaluates the circuit on `x`.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::WrongInputLength`] on arity mismatch.
    pub fn eval(&self, x: &[bool]) -> Result<bool, CircuitError> {
        let values = self.eval_gates(x)?;
        Ok(self.resolve(self.output, x, &values))
    }

    /// Evaluates the circuit, returning the value of every gate (indexed by
    /// [`GateId`]). Used by the ring compiler's tests to cross-check
    /// intermediate values.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::WrongInputLength`] on arity mismatch.
    pub fn eval_gates(&self, x: &[bool]) -> Result<Vec<bool>, CircuitError> {
        if x.len() != self.n_inputs {
            return Err(CircuitError::WrongInputLength {
                got: x.len(),
                expected: self.n_inputs,
            });
        }
        let mut values = Vec::with_capacity(self.gates.len());
        for gate in &self.gates {
            let a = self.resolve(gate.a, x, &values);
            let b = self.resolve(gate.b, x, &values);
            values.push(gate.op.apply(a, b));
        }
        Ok(values)
    }

    fn resolve(&self, source: GateSource, x: &[bool], values: &[bool]) -> bool {
        match source {
            GateSource::Input(i) => x[i],
            GateSource::Gate(g) => values[g],
            GateSource::Const(c) => c,
        }
    }

    /// The full truth table (only for small circuits).
    ///
    /// # Panics
    ///
    /// Panics if `input_count() > 24`.
    pub fn truth_table(&self) -> Vec<bool> {
        assert!(self.n_inputs <= 24, "truth table would be too large");
        (0..1usize << self.n_inputs)
            .map(|bits| {
                let x: Vec<bool> = (0..self.n_inputs).map(|i| bits >> i & 1 == 1).collect();
                self.eval(&x).expect("arity is correct by construction")
            })
            .collect()
    }
}

/// Builds a [`Circuit`] gate by gate; see [`Circuit::builder`].
///
/// # Examples
///
/// ```
/// use boolean_circuit::{Circuit, GateSource};
///
/// // x0 XOR x1 (2-input parity)
/// let mut b = Circuit::builder(2);
/// let g = b.xor(GateSource::Input(0), GateSource::Input(1))?;
/// let c = b.finish(g)?;
/// assert!(c.eval(&[true, false])?);
/// assert!(!c.eval(&[true, true])?);
/// # Ok::<(), boolean_circuit::CircuitError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CircuitBuilder {
    n_inputs: usize,
    gates: Vec<Gate>,
}

impl CircuitBuilder {
    fn check(&self, source: GateSource) -> Result<(), CircuitError> {
        let ok = match source {
            GateSource::Input(i) => i < self.n_inputs,
            GateSource::Gate(g) => g < self.gates.len(),
            GateSource::Const(_) => true,
        };
        if ok {
            Ok(())
        } else {
            Err(CircuitError::InvalidSource {
                gate: Some(self.gates.len()),
                source,
            })
        }
    }

    /// Appends a gate and returns a source referring to it.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidSource`] if an operand is invalid.
    pub fn gate(
        &mut self,
        op: GateOp,
        a: GateSource,
        b: GateSource,
    ) -> Result<GateSource, CircuitError> {
        self.check(a)?;
        self.check(b)?;
        self.gates.push(Gate { op, a, b });
        Ok(GateSource::Gate(self.gates.len() - 1))
    }

    /// Appends `a AND b`.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidSource`] if an operand is invalid.
    pub fn and(&mut self, a: GateSource, b: GateSource) -> Result<GateSource, CircuitError> {
        self.gate(GateOp::And, a, b)
    }

    /// Appends `a OR b`.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidSource`] if an operand is invalid.
    pub fn or(&mut self, a: GateSource, b: GateSource) -> Result<GateSource, CircuitError> {
        self.gate(GateOp::Or, a, b)
    }

    /// Appends `a XOR b`.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidSource`] if an operand is invalid.
    pub fn xor(&mut self, a: GateSource, b: GateSource) -> Result<GateSource, CircuitError> {
        self.gate(GateOp::Xor, a, b)
    }

    /// Appends `NOT a` (as `NAND(a, a)`).
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidSource`] if the operand is invalid.
    pub fn not(&mut self, a: GateSource) -> Result<GateSource, CircuitError> {
        self.gate(GateOp::Nand, a, a)
    }

    /// Appends a buffer (as `AND(a, a)`), useful to materialize an input or
    /// constant as a gate.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidSource`] if the operand is invalid.
    pub fn buf(&mut self, a: GateSource) -> Result<GateSource, CircuitError> {
        self.gate(GateOp::And, a, a)
    }

    /// Appends `a == b` (XNOR).
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidSource`] if an operand is invalid.
    pub fn eq(&mut self, a: GateSource, b: GateSource) -> Result<GateSource, CircuitError> {
        self.gate(GateOp::Xnor, a, b)
    }

    /// Number of gates appended so far.
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// Whether no gate has been appended yet.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// Finalizes the circuit with `output` as its output source.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidSource`] if `output` is invalid.
    pub fn finish(self, output: GateSource) -> Result<Circuit, CircuitError> {
        let ok = match output {
            GateSource::Input(i) => i < self.n_inputs,
            GateSource::Gate(g) => g < self.gates.len(),
            GateSource::Const(_) => true,
        };
        if !ok {
            return Err(CircuitError::InvalidSource {
                gate: None,
                source: output,
            });
        }
        Ok(Circuit {
            n_inputs: self.n_inputs,
            gates: self.gates,
            output,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use GateSource::{Const, Gate as G, Input};

    #[test]
    fn ops_apply_truth_tables() {
        assert!(GateOp::And.apply(true, true));
        assert!(!GateOp::And.apply(true, false));
        assert!(GateOp::Or.apply(false, true));
        assert!(GateOp::Xor.apply(true, false));
        assert!(!GateOp::Xor.apply(true, true));
        assert!(GateOp::Nand.apply(false, true));
        assert!(!GateOp::Nand.apply(true, true));
        assert!(GateOp::Nor.apply(false, false));
        assert!(GateOp::Xnor.apply(true, true));
    }

    #[test]
    fn builds_and_evaluates_simple_formula() {
        // (x0 AND x1) OR NOT x2
        let mut b = Circuit::builder(3);
        let and = b.and(Input(0), Input(1)).unwrap();
        let not = b.not(Input(2)).unwrap();
        let or = b.or(and, not).unwrap();
        let c = b.finish(or).unwrap();
        assert_eq!(c.size(), 3);
        for bits in 0..8u32 {
            let x: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
            let expected = (x[0] && x[1]) || !x[2];
            assert_eq!(c.eval(&x).unwrap(), expected, "x = {x:?}");
        }
    }

    #[test]
    fn constant_and_passthrough_outputs() {
        let b = Circuit::builder(2);
        let c = b.finish(Const(true)).unwrap();
        assert!(c.eval(&[false, false]).unwrap());
        let b = Circuit::builder(2);
        let c = b.finish(Input(1)).unwrap();
        assert!(c.eval(&[false, true]).unwrap());
        assert!(!c.eval(&[true, false]).unwrap());
    }

    #[test]
    fn rejects_forward_references() {
        let mut b = Circuit::builder(1);
        let err = b.and(Input(0), G(0)).unwrap_err();
        assert!(matches!(err, CircuitError::InvalidSource { .. }));
        let mut b = Circuit::builder(1);
        let err = b.and(Input(1), Input(0)).unwrap_err();
        assert!(matches!(err, CircuitError::InvalidSource { .. }));
    }

    #[test]
    fn rejects_bad_output_source() {
        let b = Circuit::builder(1);
        assert!(b.finish(G(0)).is_err());
    }

    #[test]
    fn eval_validates_arity() {
        let mut b = Circuit::builder(2);
        let g = b.xor(Input(0), Input(1)).unwrap();
        let c = b.finish(g).unwrap();
        assert_eq!(
            c.eval(&[true]),
            Err(CircuitError::WrongInputLength {
                got: 1,
                expected: 2
            })
        );
    }

    #[test]
    fn truth_table_of_xor() {
        let mut b = Circuit::builder(2);
        let g = b.xor(Input(0), Input(1)).unwrap();
        let c = b.finish(g).unwrap();
        assert_eq!(c.truth_table(), vec![false, true, true, false]);
    }

    #[test]
    fn eval_gates_exposes_intermediates() {
        let mut b = Circuit::builder(2);
        let a = b.and(Input(0), Input(1)).unwrap();
        let o = b.or(a, Input(0)).unwrap();
        let c = b.finish(o).unwrap();
        let vals = c.eval_gates(&[true, false]).unwrap();
        assert_eq!(vals, vec![false, true]);
    }
}
