//! Circuit synthesis: truth tables → circuits, and random circuits.
//!
//! The paper's Theorem 5.4 proof uses the fact that *any* function
//! `g : {0,1}^N → {0,1}^M` has a circuit of size `M·N·2^N`;
//! [`from_truth_table`] is that (exponential, DNF-shaped) construction,
//! used for tiny helper functions inside larger compilations and for tests.

use crate::circuit::{Circuit, CircuitError, GateOp, GateSource};

/// Synthesizes a circuit from a truth table in input-minor order:
/// `table[bits]` is the value at the assignment whose `i`-th variable is
/// bit `i` of `bits`.
///
/// The construction is a disjunction of minterms, size `O(n·2ⁿ)` — the
/// general exponential upper bound the paper quotes.
///
/// # Errors
///
/// Returns [`CircuitError::WrongInputLength`] if `table.len() != 2^n`.
pub fn from_truth_table(n: usize, table: &[bool]) -> Result<Circuit, CircuitError> {
    if table.len() != 1usize << n {
        return Err(CircuitError::WrongInputLength {
            got: table.len(),
            expected: 1 << n,
        });
    }
    let mut b = Circuit::builder(n);
    let mut acc = GateSource::Const(false);
    for (bits, &value) in table.iter().enumerate() {
        if !value {
            continue;
        }
        let mut minterm = GateSource::Const(true);
        for i in 0..n {
            let lit = if bits >> i & 1 == 1 {
                GateSource::Input(i)
            } else {
                b.not(GateSource::Input(i))?
            };
            minterm = b.and(minterm, lit)?;
        }
        acc = b.or(acc, minterm)?;
    }
    b.finish(acc)
}

/// Generates a random fan-in-2 circuit with `size` gates over `n` inputs,
/// drawing operations and operands uniformly. Deterministic for a fixed
/// RNG state; the circuit's output is its last gate.
///
/// # Panics
///
/// Panics if `n == 0` or `size == 0`.
pub fn random_circuit<R: rand::Rng>(n: usize, size: usize, rng: &mut R) -> Circuit {
    use rand::RngExt;
    assert!(n >= 1 && size >= 1, "need at least one input and one gate");
    let ops = [
        GateOp::And,
        GateOp::Or,
        GateOp::Xor,
        GateOp::Nand,
        GateOp::Nor,
        GateOp::Xnor,
    ];
    let mut b = Circuit::builder(n);
    let mut last = GateSource::Input(0);
    for g in 0..size {
        let pick = |rng: &mut R, b_len: usize| {
            let total = n + b_len;
            let k = rng.random_range(0..total);
            if k < n {
                GateSource::Input(k)
            } else {
                GateSource::Gate(k - n)
            }
        };
        let a = pick(rng, g);
        let c = pick(rng, g);
        let op = ops[rng.random_range(0..ops.len())];
        last = b.gate(op, a, c).expect("random sources are valid");
    }
    b.finish(last).expect("last gate is a valid output")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn truth_table_round_trips() {
        // A random-looking 3-input function.
        let table = [true, false, false, true, true, true, false, false];
        let c = from_truth_table(3, &table).unwrap();
        assert_eq!(c.truth_table(), table.to_vec());
    }

    #[test]
    fn truth_table_constants() {
        let c = from_truth_table(2, &[false; 4]).unwrap();
        assert_eq!(c.truth_table(), vec![false; 4]);
        let c = from_truth_table(2, &[true; 4]).unwrap();
        assert_eq!(c.truth_table(), vec![true; 4]);
    }

    #[test]
    fn truth_table_rejects_bad_length() {
        assert!(from_truth_table(3, &[true; 7]).is_err());
    }

    #[test]
    fn every_three_input_function_synthesizes() {
        for bits in 0..256u32 {
            let table: Vec<bool> = (0..8).map(|i| bits >> i & 1 == 1).collect();
            let c = from_truth_table(3, &table).unwrap();
            assert_eq!(c.truth_table(), table);
        }
    }

    #[test]
    fn random_circuit_is_deterministic_per_seed() {
        let mut r1 = StdRng::seed_from_u64(11);
        let mut r2 = StdRng::seed_from_u64(11);
        let c1 = random_circuit(4, 20, &mut r1);
        let c2 = random_circuit(4, 20, &mut r2);
        assert_eq!(c1, c2);
        assert_eq!(c1.size(), 20);
        // Evaluates without error.
        c1.eval(&[true, false, true, false]).unwrap();
    }
}
