//! # branching-program
//!
//! The **L/poly substrate** of "Stateless Computation" (Theorem 5.2):
//! deterministic branching programs, a small library of them, and the two
//! conversions that make the theorem executable:
//!
//! * [`convert::bp_to_uniring_protocol`] — compiles a branching program of
//!   size `S` into an *output-stabilizing* stateless protocol on the
//!   unidirectional `n`-ring with label complexity `O(log S + log n)`
//!   (the `L/poly ⊆ OSu_log` direction);
//! * [`convert::uniring_protocol_to_bp`] — extracts from any stateless
//!   protocol on the unidirectional ring a branching program of size
//!   `O(n·|Σ|²)` computing the protocol's converged output (the
//!   `OSu_log ⊆ L/poly` direction, following the single-label simulation
//!   loop in the proof of Theorem 5.2 / Lemma C.2).
//!
//! ```
//! use branching_program::library;
//!
//! let bp = library::parity(4);
//! assert!(bp.eval(&[true, false, true, true])?);
//! assert!(!bp.eval(&[true, false, true, false])?);
//! # Ok::<(), branching_program::BpError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod convert;
pub mod library;
pub mod program;

pub use program::{BpError, BpNode, BpTarget, BranchingProgram};
