//! Deterministic branching programs as topologically ordered DAGs.

use std::error::Error;
use std::fmt;

/// Where a branch leads: a later node, or a verdict sink.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BpTarget {
    /// Continue at the node with the given index (must be **greater** than
    /// the current node's index — programs are topologically ordered, so
    /// every evaluation terminates in at most `size` queries).
    Node(usize),
    /// Accept the input.
    Accept,
    /// Reject the input.
    Reject,
}

/// An internal node: query variable `var` and branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BpNode {
    /// Index of the input variable this node queries.
    pub var: usize,
    /// Target when the variable is 0.
    pub if_zero: BpTarget,
    /// Target when the variable is 1.
    pub if_one: BpTarget,
}

/// Errors from branching-program construction and evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BpError {
    /// Input vector length did not match the program's input arity.
    WrongInputLength {
        /// Length supplied.
        got: usize,
        /// Expected input count.
        expected: usize,
    },
    /// A node queried a variable beyond the declared arity.
    BadVariable {
        /// The offending node.
        node: usize,
        /// The variable index it queries.
        var: usize,
    },
    /// A node branched to itself or an earlier node, breaking topological
    /// order.
    NotTopological {
        /// The offending node.
        node: usize,
        /// The target it branches to.
        target: usize,
    },
    /// The start target referenced a nonexistent node.
    BadStart {
        /// The nonexistent node index.
        target: usize,
    },
}

impl fmt::Display for BpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BpError::WrongInputLength { got, expected } => {
                write!(f, "input has length {got}, program expects {expected}")
            }
            BpError::BadVariable { node, var } => {
                write!(f, "node {node} queries out-of-range variable {var}")
            }
            BpError::NotTopological { node, target } => {
                write!(f, "node {node} branches backwards/self to node {target}")
            }
            BpError::BadStart { target } => {
                write!(f, "start target references nonexistent node {target}")
            }
        }
    }
}

impl Error for BpError {}

/// A deterministic branching program.
///
/// Nodes are topologically ordered (every branch goes strictly forward),
/// so evaluation always terminates within `size()` queries — this is the
/// path-length bound the ring compilation of
/// [`convert`](crate::convert) relies on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BranchingProgram {
    n_inputs: usize,
    nodes: Vec<BpNode>,
    start: BpTarget,
}

impl BranchingProgram {
    /// Constructs and validates a program.
    ///
    /// # Errors
    ///
    /// Returns [`BpError::BadVariable`], [`BpError::NotTopological`], or
    /// [`BpError::BadStart`] when the node list is malformed.
    pub fn new(n_inputs: usize, nodes: Vec<BpNode>, start: BpTarget) -> Result<Self, BpError> {
        for (i, node) in nodes.iter().enumerate() {
            if node.var >= n_inputs {
                return Err(BpError::BadVariable {
                    node: i,
                    var: node.var,
                });
            }
            for t in [node.if_zero, node.if_one] {
                if let BpTarget::Node(j) = t {
                    if j <= i {
                        return Err(BpError::NotTopological { node: i, target: j });
                    }
                    if j >= nodes.len() {
                        return Err(BpError::BadStart { target: j });
                    }
                }
            }
        }
        if let BpTarget::Node(j) = start {
            if j >= nodes.len() {
                return Err(BpError::BadStart { target: j });
            }
        }
        Ok(BranchingProgram {
            n_inputs,
            nodes,
            start,
        })
    }

    /// Number of input variables.
    pub fn input_count(&self) -> usize {
        self.n_inputs
    }

    /// Number of internal nodes (the program's *size*).
    pub fn size(&self) -> usize {
        self.nodes.len()
    }

    /// The internal nodes in topological order.
    pub fn nodes(&self) -> &[BpNode] {
        &self.nodes
    }

    /// The entry target.
    pub fn start(&self) -> BpTarget {
        self.start
    }

    /// Follows one branch from `target` under input `x`; verdict targets
    /// are fixed points.
    ///
    /// # Panics
    ///
    /// Panics if `x` is shorter than a queried variable index — call
    /// [`eval`](Self::eval) for validated evaluation.
    pub fn step(&self, target: BpTarget, x: &[bool]) -> BpTarget {
        match target {
            BpTarget::Node(v) => {
                let node = self.nodes[v];
                if x[node.var] {
                    node.if_one
                } else {
                    node.if_zero
                }
            }
            sink => sink,
        }
    }

    /// Evaluates the program on `x`.
    ///
    /// # Errors
    ///
    /// Returns [`BpError::WrongInputLength`] on arity mismatch.
    pub fn eval(&self, x: &[bool]) -> Result<bool, BpError> {
        if x.len() != self.n_inputs {
            return Err(BpError::WrongInputLength {
                got: x.len(),
                expected: self.n_inputs,
            });
        }
        let mut at = self.start;
        // Topological order guarantees termination in ≤ size steps.
        for _ in 0..=self.nodes.len() {
            match at {
                BpTarget::Accept => return Ok(true),
                BpTarget::Reject => return Ok(false),
                BpTarget::Node(_) => at = self.step(at, x),
            }
        }
        unreachable!("topological order bounds path length by size()")
    }

    /// The full truth table (only for small programs).
    ///
    /// # Panics
    ///
    /// Panics if `input_count() > 24`.
    pub fn truth_table(&self) -> Vec<bool> {
        assert!(self.n_inputs <= 24, "truth table would be too large");
        (0..1usize << self.n_inputs)
            .map(|bits| {
                let x: Vec<bool> = (0..self.n_inputs).map(|i| bits >> i & 1 == 1).collect();
                self.eval(&x).expect("arity correct by construction")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use BpTarget::{Accept, Node, Reject};

    #[test]
    fn single_node_is_the_variable() {
        let bp = BranchingProgram::new(
            1,
            vec![BpNode {
                var: 0,
                if_zero: Reject,
                if_one: Accept,
            }],
            Node(0),
        )
        .unwrap();
        assert!(!bp.eval(&[false]).unwrap());
        assert!(bp.eval(&[true]).unwrap());
        assert_eq!(bp.size(), 1);
    }

    #[test]
    fn constant_programs_need_no_nodes() {
        let bp = BranchingProgram::new(3, vec![], Accept).unwrap();
        assert_eq!(bp.truth_table(), vec![true; 8]);
    }

    #[test]
    fn rejects_backward_and_self_branches() {
        let err = BranchingProgram::new(
            1,
            vec![BpNode {
                var: 0,
                if_zero: Node(0),
                if_one: Accept,
            }],
            Node(0),
        )
        .unwrap_err();
        assert_eq!(err, BpError::NotTopological { node: 0, target: 0 });
    }

    #[test]
    fn rejects_bad_variable_and_start() {
        let err = BranchingProgram::new(
            1,
            vec![BpNode {
                var: 3,
                if_zero: Reject,
                if_one: Accept,
            }],
            Node(0),
        )
        .unwrap_err();
        assert_eq!(err, BpError::BadVariable { node: 0, var: 3 });
        let err = BranchingProgram::new(1, vec![], Node(0)).unwrap_err();
        assert_eq!(err, BpError::BadStart { target: 0 });
    }

    #[test]
    fn eval_validates_arity() {
        let bp = BranchingProgram::new(2, vec![], Reject).unwrap();
        assert_eq!(
            bp.eval(&[true]),
            Err(BpError::WrongInputLength {
                got: 1,
                expected: 2
            })
        );
    }

    #[test]
    fn and_of_two_variables() {
        let bp = BranchingProgram::new(
            2,
            vec![
                BpNode {
                    var: 0,
                    if_zero: Reject,
                    if_one: Node(1),
                },
                BpNode {
                    var: 1,
                    if_zero: Reject,
                    if_one: Accept,
                },
            ],
            Node(0),
        )
        .unwrap();
        assert_eq!(bp.truth_table(), vec![false, false, false, true]);
    }
}
