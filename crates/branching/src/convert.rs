//! The two directions of Theorem 5.2, made executable.
//!
//! * **L/poly ⊆ OSu_log**: [`bp_to_uniring_protocol`] compiles a branching
//!   program into an output-stabilizing protocol on the unidirectional
//!   ring. A single label circulates carrying the program's control state;
//!   node 0 periodically resets the evaluation (that is what makes the
//!   protocol *self-stabilizing*: whatever garbage the adversary planted in
//!   the initial labeling is flushed at the first reset) and publishes the
//!   verdict of the completed pass, which every node then outputs.
//! * **OSu_log ⊆ L/poly**: [`uniring_protocol_to_bp`] unrolls the
//!   single-label simulation loop from the proof (Appendix C, "Simulation
//!   of protocol Aₙ") into a branching program of size `n·|Σ|²`: layer `t`
//!   holds one node per label value, queries `x_{t mod n}`, and the final
//!   layer's output bit decides acceptance. Lemma C.2 (`Rₙ ≤ n·|Σ|`)
//!   guarantees `n·|Σ|` layers suffice.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use stateless_core::label::{bits_for_cardinality, Label};
use stateless_core::prelude::*;

use crate::program::{BpNode, BpTarget, BranchingProgram};

/// Control state carried by the circulating label of a compiled program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BpPhase {
    /// Evaluation is at this internal node, waiting to pass its variable's
    /// ring position.
    At(u32),
    /// Evaluation finished with acceptance.
    Accept,
    /// Evaluation finished with rejection.
    Reject,
}

/// The ring label of a compiled branching program: control state, a
/// saturating hop counter that triggers the periodic reset, and the verdict
/// of the last completed evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BpRingLabel {
    /// Control state of the in-flight evaluation.
    pub phase: BpPhase,
    /// Hops since the last reset, saturating at the reset threshold.
    pub hops: u32,
    /// Verdict of the last completed evaluation — the bit every node
    /// outputs.
    pub verdict: bool,
}

impl Default for BpRingLabel {
    fn default() -> Self {
        BpRingLabel {
            phase: BpPhase::Reject,
            hops: 0,
            verdict: false,
        }
    }
}

/// Errors from the protocol ↔ branching-program conversions.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConvertError {
    /// The protocol's graph is not the unidirectional ring `0→1→…→n−1→0`.
    NotUnidirectionalRing,
    /// The protocol emitted a label missing from the supplied alphabet.
    UnknownLabel,
    /// The program's input arity does not match the ring size.
    ArityMismatch {
        /// Program inputs.
        program: usize,
        /// Ring nodes.
        ring: usize,
    },
    /// A reaction misbehaved while being probed.
    Core(CoreError),
}

impl fmt::Display for ConvertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConvertError::NotUnidirectionalRing => {
                write!(f, "protocol does not run on the unidirectional ring")
            }
            ConvertError::UnknownLabel => {
                write!(f, "protocol emitted a label outside the supplied alphabet")
            }
            ConvertError::ArityMismatch { program, ring } => {
                write!(
                    f,
                    "program has {program} inputs but the ring has {ring} nodes"
                )
            }
            ConvertError::Core(e) => write!(f, "protocol probe failed: {e}"),
        }
    }
}

impl Error for ConvertError {}

impl From<CoreError> for ConvertError {
    fn from(e: CoreError) -> Self {
        ConvertError::Core(e)
    }
}

/// Hop budget for one complete evaluation of `bp` on an `n`-ring: each of
/// the ≤ `size` queries waits at most `n` hops for its variable's node,
/// plus one round of slack.
fn reset_period(bp: &BranchingProgram, n: usize) -> u32 {
    (n * (bp.size() + 1)) as u32
}

/// Compiles a branching program into an output-stabilizing stateless
/// protocol on the unidirectional `n`-ring (`n = bp.input_count()`).
///
/// Label complexity is `log₂((S+2)·(nS+n+1)·2) = O(log S + log n)` bits for
/// a size-`S` program — logarithmic for polynomial-size programs, as
/// Theorem 5.2 requires. The protocol *output*-stabilizes to `bp(x)` at
/// every node from **any** initial labeling; its labels never stabilize
/// (the counter circulates forever), which is exactly the regime of the
/// class `OSu`.
///
/// # Errors
///
/// Returns [`ConvertError::ArityMismatch`] if `bp.input_count() < 2`
/// (a ring needs two nodes).
pub fn bp_to_uniring_protocol(
    bp: &BranchingProgram,
) -> Result<Protocol<BpRingLabel>, ConvertError> {
    let n = bp.input_count();
    if n < 2 {
        return Err(ConvertError::ArityMismatch {
            program: n,
            ring: 2,
        });
    }
    let cap = reset_period(bp, n);
    let label_bits = bits_for_cardinality((bp.size() as u128 + 2) * (u128::from(cap) + 1) * 2);
    let graph = topology::unidirectional_ring(n);
    let mut builder =
        Protocol::builder(graph, label_bits).name(format!("bp-on-uniring(n={n}, S={})", bp.size()));
    for node in 0..n {
        let bp = bp.clone();
        builder = builder.reaction(
            node,
            FnBufReaction::new(
                vec![BpRingLabel::default()],
                move |i: NodeId, incoming: &[BpRingLabel], input, out: &mut [BpRingLabel]| {
                    let lab = incoming[0];
                    let mut phase = lab.phase;
                    let mut hops = lab.hops.saturating_add(1).min(cap);
                    let mut verdict = lab.verdict;
                    if i == 0 && hops >= cap {
                        // Publish the completed evaluation's verdict and restart.
                        verdict = matches!(phase, BpPhase::Accept);
                        phase = target_to_phase(bp.start());
                        hops = 0;
                    }
                    // Answer every pending query owned by this node.
                    while let BpPhase::At(v) = phase {
                        let node = bp.nodes()[v as usize];
                        if node.var != i {
                            break;
                        }
                        let t = if input == 1 {
                            node.if_one
                        } else {
                            node.if_zero
                        };
                        phase = target_to_phase(t);
                    }
                    out[0] = BpRingLabel {
                        phase,
                        hops,
                        verdict,
                    };
                    u64::from(verdict)
                },
            ),
        );
    }
    Ok(builder.build().expect("all ring nodes have reactions"))
}

fn target_to_phase(t: BpTarget) -> BpPhase {
    match t {
        BpTarget::Node(v) => BpPhase::At(v as u32),
        BpTarget::Accept => BpPhase::Accept,
        BpTarget::Reject => BpPhase::Reject,
    }
}

/// A safe synchronous-round budget for a protocol produced by
/// [`bp_to_uniring_protocol`] to output-stabilize from an arbitrary
/// initial labeling: two full reset periods plus one lap for the verdict
/// to propagate.
pub fn output_rounds_bound(bp: &BranchingProgram) -> u64 {
    let n = bp.input_count();
    u64::from(reset_period(bp, n)) * 2 + 2 * n as u64
}

/// Extracts a branching program computing the converged output of a
/// stateless protocol on the unidirectional `n`-ring, by unrolling the
/// single-label simulation loop of Theorem 5.2's proof for `n·|Σ|`
/// iterations starting from the uniform labeling `(ℓ₀, …, ℓ₀)`.
///
/// The resulting program has `n·|Σ|²` internal nodes and queries variables
/// in the cyclic order `x₀, x₁, …` — it is an *oblivious* branching program
/// of width `|Σ|`, which is the structural reason unidirectional rings sit
/// inside L/poly.
///
/// The extraction is faithful when the protocol output-stabilizes on the
/// synchronous schedule from the uniform initial labeling within `n·|Σ|`
/// rounds — which Lemma C.2 guarantees for every output-stabilizing
/// protocol with label space `alphabet`.
///
/// # Errors
///
/// * [`ConvertError::NotUnidirectionalRing`] if the graph is not the ring;
/// * [`ConvertError::UnknownLabel`] if a reaction emits a label outside
///   `alphabet` (the alphabet must be closed under the reactions);
/// * [`ConvertError::Core`] if a reaction misbehaves.
pub fn uniring_protocol_to_bp<L: Label>(
    protocol: &Protocol<L>,
    alphabet: &[L],
    initial: &L,
) -> Result<BranchingProgram, ConvertError> {
    let g = protocol.graph();
    let n = g.node_count();
    let ring_ok = g.edge_count() == n && (0..n).all(|i| g.edge(i, (i + 1) % n) == Some(i));
    if !ring_ok {
        return Err(ConvertError::NotUnidirectionalRing);
    }
    let index: HashMap<&L, usize> = alphabet.iter().enumerate().map(|(k, l)| (l, k)).collect();
    let sigma = alphabet.len();
    let start_k = *index.get(initial).ok_or(ConvertError::UnknownLabel)?;
    let layers = n * sigma;

    // Probe δ_j(ℓ, b): set every edge to ℓ (node j reads only edge j−1) and
    // apply node j.
    let probe = |j: usize, k: usize, b: u64| -> Result<(usize, bool), ConvertError> {
        let labeling = vec![alphabet[k].clone(); n];
        let (out, y) = protocol.apply(j, &labeling, b)?;
        let k_next = *index.get(&out[0]).ok_or(ConvertError::UnknownLabel)?;
        Ok((k_next, y == 1))
    };

    let mut nodes = Vec::with_capacity(layers * sigma);
    for t in 0..layers {
        let j = t % n;
        for k in 0..sigma {
            let go = |b: u64| -> Result<BpTarget, ConvertError> {
                let (k_next, y) = probe(j, k, b)?;
                Ok(if t + 1 == layers {
                    if y {
                        BpTarget::Accept
                    } else {
                        BpTarget::Reject
                    }
                } else {
                    BpTarget::Node((t + 1) * sigma + k_next)
                })
            };
            let if_zero = go(0)?;
            let if_one = go(1)?;
            nodes.push(BpNode {
                var: j,
                if_zero,
                if_one,
            });
        }
    }
    Ok(BranchingProgram::new(n, nodes, BpTarget::Node(start_k))
        .expect("layered unrolling is topological"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library;

    /// A tiny output-stabilizing uniring protocol computing OR of all
    /// inputs with Σ = {false, true}: sticky disjunction.
    fn or_ring(n: usize) -> Protocol<bool> {
        Protocol::builder(topology::unidirectional_ring(n), 1.0)
            .name("sticky-or")
            .uniform_reaction(FnReaction::new(|_, incoming: &[bool], input| {
                let b = incoming[0] || input == 1;
                (vec![b], u64::from(b))
            }))
            .build()
            .unwrap()
    }

    fn ring_output<L: Label>(p: &Protocol<L>, x: &[bool], init: Vec<L>, rounds: u64) -> Vec<u64> {
        let inputs: Vec<u64> = x.iter().map(|&b| u64::from(b)).collect();
        let mut sim = Simulation::new(p, &inputs, init).unwrap();
        sim.run(&mut Synchronous, rounds);
        sim.outputs().to_vec()
    }

    #[test]
    fn compiled_parity_outputs_correctly_from_default_labels() {
        for n in 2..=5 {
            let bp = library::parity(n);
            let p = bp_to_uniring_protocol(&bp).unwrap();
            let rounds = output_rounds_bound(&bp);
            for bits in 0..1u32 << n {
                let x: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
                let expected = u64::from(bp.eval(&x).unwrap());
                let outs = ring_output(&p, &x, vec![BpRingLabel::default(); n], rounds);
                assert_eq!(outs, vec![expected; n], "n={n} x={x:?}");
            }
        }
    }

    #[test]
    fn compiled_majority_self_stabilizes_from_adversarial_labels() {
        let n = 5;
        let bp = library::majority(n);
        let p = bp_to_uniring_protocol(&bp).unwrap();
        let rounds = output_rounds_bound(&bp);
        let x = [true, true, false, true, false];
        // Adversarial initial labeling: a bogus Accept verdict with a stale
        // in-flight evaluation and desynchronized counters.
        let init: Vec<BpRingLabel> = (0..n)
            .map(|i| BpRingLabel {
                phase: BpPhase::At(0),
                hops: (i * 7) as u32,
                verdict: i % 2 == 0,
            })
            .collect();
        let outs = ring_output(&p, &x, init, 3 * rounds);
        assert_eq!(outs, vec![1; n]);
    }

    #[test]
    fn compiled_constant_program_works() {
        let bp = BranchingProgram::new(3, vec![], BpTarget::Accept).unwrap();
        let p = bp_to_uniring_protocol(&bp).unwrap();
        let outs = ring_output(
            &p,
            &[false, false, false],
            vec![BpRingLabel::default(); 3],
            output_rounds_bound(&bp),
        );
        assert_eq!(outs, vec![1; 3]);
    }

    #[test]
    fn extracted_bp_matches_or_protocol() {
        for n in 2..=5 {
            let p = or_ring(n);
            let bp = uniring_protocol_to_bp(&p, &[false, true], &false).unwrap();
            assert_eq!(bp.size(), n * 2 * 2);
            for bits in 0..1u32 << n {
                let x: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
                let expected = x.iter().any(|&b| b);
                assert_eq!(bp.eval(&x).unwrap(), expected, "n={n} x={x:?}");
            }
        }
    }

    #[test]
    fn extraction_rejects_non_rings() {
        let p = Protocol::builder(topology::clique(3), 1.0)
            .uniform_reaction(FnReaction::new(|_, _: &[bool], _| (vec![false; 2], 0)))
            .build()
            .unwrap();
        assert_eq!(
            uniring_protocol_to_bp(&p, &[false, true], &false).unwrap_err(),
            ConvertError::NotUnidirectionalRing
        );
    }

    #[test]
    fn extraction_rejects_unknown_labels() {
        let p = Protocol::builder(topology::unidirectional_ring(3), 2.0)
            .uniform_reaction(FnReaction::new(|_, _: &[u8], _| (vec![9u8], 0)))
            .build()
            .unwrap();
        assert_eq!(
            uniring_protocol_to_bp(&p, &[0u8, 1], &0).unwrap_err(),
            ConvertError::UnknownLabel
        );
    }

    #[test]
    fn round_trip_bp_to_protocol_to_outputs_on_equality() {
        let n = 6;
        let bp = library::equality(n);
        let p = bp_to_uniring_protocol(&bp).unwrap();
        let rounds = output_rounds_bound(&bp);
        for x in [
            [true, false, true, true, false, true],
            [true, false, true, false, false, true],
        ] {
            let expected = u64::from(bp.eval(&x).unwrap());
            let outs = ring_output(&p, &x, vec![BpRingLabel::default(); n], rounds);
            assert_eq!(outs, vec![expected; n]);
        }
    }
}
