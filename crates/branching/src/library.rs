//! A library of hand-built branching programs for the languages the paper
//! uses as running examples.

use crate::program::{BpNode, BpTarget, BranchingProgram};

/// Parity: accepts iff an odd number of inputs are 1. Width-2 layered
/// program of size `2n`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn parity(n: usize) -> BranchingProgram {
    assert!(n >= 1, "parity needs at least one input");
    // Layer i has two nodes: (i, even) at index 2i and (i, odd) at 2i+1.
    let mut nodes = Vec::with_capacity(2 * n);
    for i in 0..n {
        let next = |odd: bool| -> BpTarget {
            if i + 1 == n {
                if odd {
                    BpTarget::Accept
                } else {
                    BpTarget::Reject
                }
            } else {
                BpTarget::Node(2 * (i + 1) + usize::from(odd))
            }
        };
        // Even-so-far node.
        nodes.push(BpNode {
            var: i,
            if_zero: next(false),
            if_one: next(true),
        });
        // Odd-so-far node.
        nodes.push(BpNode {
            var: i,
            if_zero: next(true),
            if_one: next(false),
        });
    }
    BranchingProgram::new(n, nodes, BpTarget::Node(0)).expect("layered program is topological")
}

/// Threshold: accepts iff at least `t` inputs are 1. Layered counting
/// program of width `t+1` and size `O(n·t)`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn threshold(n: usize, t: usize) -> BranchingProgram {
    assert!(n >= 1, "threshold needs at least one input");
    if t == 0 {
        return BranchingProgram::new(n, vec![], BpTarget::Accept).expect("constant");
    }
    if t > n {
        return BranchingProgram::new(n, vec![], BpTarget::Reject).expect("constant");
    }
    // Node (i, c) = "reading variable i with count c so far", for c in
    // 0..=min(i, t-1); counts ≥ t accept immediately.
    // Index layout: layer i starts at offset[i], holding width(i) nodes.
    let width = |i: usize| (i.min(t - 1)) + 1;
    let mut offset = vec![0usize; n + 1];
    for i in 0..n {
        offset[i + 1] = offset[i] + width(i);
    }
    let mut nodes = Vec::with_capacity(offset[n]);
    for i in 0..n {
        for c in 0..width(i) {
            let go = |c_next: usize| -> BpTarget {
                if c_next >= t {
                    return BpTarget::Accept;
                }
                if i + 1 == n {
                    return BpTarget::Reject;
                }
                // Remaining inputs can still reach t?
                if c_next + (n - i - 1) < t {
                    return BpTarget::Reject;
                }
                BpTarget::Node(offset[i + 1] + c_next.min(width(i + 1) - 1))
            };
            nodes.push(BpNode {
                var: i,
                if_zero: go(c),
                if_one: go(c + 1),
            });
        }
    }
    BranchingProgram::new(n, nodes, BpTarget::Node(0)).expect("layered program is topological")
}

/// The paper's majority `Majₙ`: accepts iff `Σᵢ xᵢ ≥ n/2`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn majority(n: usize) -> BranchingProgram {
    threshold(n, n.div_ceil(2))
}

/// The paper's equality `Eqₙ`: accepts iff `n` is even and the first half
/// of the input equals the second half. Width-2 program of size `≤ n`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn equality(n: usize) -> BranchingProgram {
    assert!(n >= 1, "equality needs at least one input");
    if n % 2 == 1 {
        return BranchingProgram::new(n, vec![], BpTarget::Reject).expect("constant");
    }
    let half = n / 2;
    // Pair i occupies nodes 3i (query xᵢ), 3i+1 (saw 0, query x_{half+i}),
    // 3i+2 (saw 1, query x_{half+i}).
    let mut nodes = Vec::with_capacity(3 * half);
    for i in 0..half {
        let next = if i + 1 == half {
            BpTarget::Accept
        } else {
            BpTarget::Node(3 * (i + 1))
        };
        nodes.push(BpNode {
            var: i,
            if_zero: BpTarget::Node(3 * i + 1),
            if_one: BpTarget::Node(3 * i + 2),
        });
        nodes.push(BpNode {
            var: half + i,
            if_zero: next,
            if_one: BpTarget::Reject,
        });
        nodes.push(BpNode {
            var: half + i,
            if_zero: BpTarget::Reject,
            if_one: next,
        });
    }
    BranchingProgram::new(n, nodes, BpTarget::Node(0)).expect("pairwise program is topological")
}

/// Accepts iff the input contains two consecutive ones (`11` as a factor).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn contains_11(n: usize) -> BranchingProgram {
    assert!(n >= 1, "contains_11 needs at least one input");
    if n == 1 {
        return BranchingProgram::new(n, vec![], BpTarget::Reject).expect("constant");
    }
    // Node (i, seen_one) at index 2i + seen.
    let mut nodes = Vec::with_capacity(2 * n);
    for i in 0..n {
        let cont = |seen: bool| -> BpTarget {
            if i + 1 == n {
                BpTarget::Reject
            } else {
                BpTarget::Node(2 * (i + 1) + usize::from(seen))
            }
        };
        nodes.push(BpNode {
            var: i,
            if_zero: cont(false),
            if_one: cont(true),
        });
        nodes.push(BpNode {
            var: i,
            if_zero: cont(false),
            if_one: BpTarget::Accept,
        });
    }
    BranchingProgram::new(n, nodes, BpTarget::Node(0)).expect("layered program is topological")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute<F: Fn(&[bool]) -> bool>(bp: &BranchingProgram, f: F) {
        let n = bp.input_count();
        assert!(n <= 12);
        for bits in 0..1u32 << n {
            let x: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(bp.eval(&x).unwrap(), f(&x), "x = {x:?}");
        }
    }

    #[test]
    fn parity_matches() {
        for n in 1..=7 {
            brute(&parity(n), |x| x.iter().filter(|&&b| b).count() % 2 == 1);
        }
    }

    #[test]
    fn threshold_matches() {
        for n in 1..=6 {
            for t in 0..=n + 1 {
                brute(&threshold(n, t), |x| x.iter().filter(|&&b| b).count() >= t);
            }
        }
    }

    #[test]
    fn majority_matches_paper_definition() {
        for n in 1..=7 {
            brute(&majority(n), |x| 2 * x.iter().filter(|&&b| b).count() >= n);
        }
    }

    #[test]
    fn equality_matches_paper_definition() {
        for n in 1..=8 {
            brute(&equality(n), |x| n % 2 == 0 && x[..n / 2] == x[n / 2..]);
        }
    }

    #[test]
    fn contains_11_matches() {
        for n in 1..=8 {
            brute(&contains_11(n), |x| x.windows(2).any(|w| w[0] && w[1]));
        }
    }

    #[test]
    fn sizes_are_linear_for_width2_programs() {
        assert_eq!(parity(10).size(), 20);
        assert!(equality(10).size() <= 15);
        assert!(majority(11).size() <= 11 * 7);
    }
}
