//! Interdomain routing (BGP) as stateless computation: the Stable Paths
//! Problem of Griffin, Shepherd and Wilfong — the paper's headline
//! motivating application (Section 1.1).
//!
//! A node's "state" is exactly its last route advertisement per neighbor,
//! i.e. an edge label; route selection maps the neighbors' most recent
//! advertisements to a new selection — a reaction function. Stable routing
//! trees are stable labelings, so the paper's Theorem 3.1 turns the
//! classic DISAGREE gadget (two stable trees) into a protocol that cannot
//! converge under every (n−1)-fair activation schedule.

use std::sync::Arc;

use stateless_core::prelude::*;
use stateless_core::reaction::FnBufReaction;

/// A route: the sequence of nodes from the owner down to the destination
/// (node 0). The empty vector is "no route".
pub type Route = Vec<u8>;

/// A Stable Paths Problem instance: node 0 is the destination; every
/// other node ranks its permitted paths (best first).
#[derive(Debug, Clone)]
pub struct SppInstance {
    n: usize,
    /// `permitted[i]` for `i ≥ 1`: ranked routes, each starting with `i`
    /// and ending with `0`.
    permitted: Vec<Vec<Route>>,
}

impl SppInstance {
    /// Creates an instance. `permitted[0]` must be empty (the destination
    /// originates `[0]` itself).
    ///
    /// # Panics
    ///
    /// Panics if a path does not start at its owner or end at 0.
    pub fn new(n: usize, permitted: Vec<Vec<Route>>) -> Self {
        assert_eq!(permitted.len(), n, "one (possibly empty) list per node");
        for (i, paths) in permitted.iter().enumerate() {
            for p in paths {
                assert!(
                    p.first() == Some(&(i as u8)),
                    "path must start at its owner"
                );
                assert!(p.last() == Some(&0), "path must end at the destination");
            }
        }
        SppInstance { n, permitted }
    }

    /// Number of nodes (destination included).
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Compiles BGP route selection into a stateless protocol on the
    /// clique `K_n`: every node broadcasts its currently selected route;
    /// upon activation it re-selects the best-ranked permitted path whose
    /// tail matches its next hop's current advertisement. The node output
    /// is the rank of the selected path (`u64::MAX ⇒ no route`).
    pub fn to_protocol(&self) -> Protocol<Route> {
        let n = self.n;
        let deg = n - 1;
        let longest = self
            .permitted
            .iter()
            .flatten()
            .map(|p| p.len())
            .max()
            .unwrap_or(1) as f64;
        let mut builder =
            Protocol::builder(topology::clique(n), longest * (n as f64).log2().max(1.0))
                .name(format!("bgp-spp({n} nodes)"));
        // The destination always advertises [0].
        builder = builder.reaction(
            0,
            FnBufReaction::new(
                vec![vec![0u8]; deg],
                move |_, _: &[Route], _, out: &mut [Route]| {
                    for slot in out {
                        slot.clear();
                        slot.push(0);
                    }
                    0
                },
            ),
        );
        for node in 1..n {
            let paths = Arc::new(self.permitted[node].clone());
            builder = builder.reaction(
                node,
                FnBufReaction::new(
                    vec![Vec::new(); deg],
                    move |me: NodeId, incoming: &[Route], _, out: &mut [Route]| {
                        let label_of = |who: NodeId| -> &Route {
                            &incoming[if who < me { who } else { who - 1 }]
                        };
                        let mut chosen: &[u8] = &[];
                        let mut rank = u64::MAX;
                        for (k, p) in paths.iter().enumerate() {
                            let next_hop = p[1] as NodeId;
                            if label_of(next_hop)[..] == p[1..] {
                                chosen = p;
                                rank = k as u64;
                                break;
                            }
                        }
                        // Rewrite the buffer routes in place, reusing their
                        // capacity.
                        for slot in out {
                            slot.clear();
                            slot.extend_from_slice(chosen);
                        }
                        rank
                    },
                ),
            );
        }
        builder.build().expect("all nodes have reactions")
    }

    /// The per-node-uniform labeling where each node advertises `routes[i]`.
    ///
    /// # Panics
    ///
    /// Panics unless `routes` has exactly one entry per node.
    pub fn labeling_from(&self, routes: &[Route]) -> Vec<Route> {
        assert_eq!(routes.len(), self.n, "one route per node");
        let graph = topology::clique(self.n);
        let mut labeling = vec![Vec::new(); graph.edge_count()];
        for (node, route) in routes.iter().enumerate().take(self.n) {
            for &e in graph.out_edges(node) {
                labeling[e] = route.clone();
            }
        }
        labeling
    }
}

/// GOOD GADGET: a chain where everyone prefers routing through the
/// previous node — a unique stable tree; converges under every fair
/// schedule.
pub fn good_gadget() -> SppInstance {
    SppInstance::new(
        3,
        vec![vec![], vec![vec![1, 0]], vec![vec![2, 1, 0], vec![2, 0]]],
    )
}

/// DISAGREE: both nodes prefer routing through each other. Two stable
/// trees — by Theorem 3.1, not label (n−1)-stabilizing; the synchronous
/// run from direct routes flips forever.
pub fn disagree_gadget() -> SppInstance {
    SppInstance::new(
        3,
        vec![
            vec![],
            vec![vec![1, 2, 0], vec![1, 0]],
            vec![vec![2, 1, 0], vec![2, 0]],
        ],
    )
}

/// BAD GADGET: three nodes with cyclic preferences around the
/// destination — **no** stable tree at all; BGP oscillates forever under
/// any schedule that keeps everyone moving.
pub fn bad_gadget() -> SppInstance {
    SppInstance::new(
        4,
        vec![
            vec![],
            vec![vec![1, 2, 0], vec![1, 0]],
            vec![vec![2, 3, 0], vec![2, 0]],
            vec![vec![3, 1, 0], vec![3, 0]],
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use stateless_core::convergence::{classify_sync, SyncOutcome};

    #[test]
    fn good_gadget_converges_everywhere() {
        let spp = good_gadget();
        let p = spp.to_protocol();
        for start in [
            vec![vec![0], vec![], vec![]],
            vec![vec![0], vec![1, 0], vec![2, 0]],
            vec![vec![], vec![1, 0], vec![2, 1, 0]],
        ] {
            let init = spp.labeling_from(&start);
            let outcome = classify_sync(&p, &[0; 3], init, 100_000).unwrap();
            match outcome {
                SyncOutcome::LabelStable { outputs, .. } => {
                    assert_eq!(outputs, vec![0, 0, 0], "best ranks everywhere");
                }
                other => panic!("good gadget must converge, got {other:?}"),
            }
        }
    }

    #[test]
    fn disagree_has_two_stable_trees() {
        let spp = disagree_gadget();
        let p = spp.to_protocol();
        let tree_a = spp.labeling_from(&[vec![0], vec![1, 2, 0], vec![2, 0]]);
        let tree_b = spp.labeling_from(&[vec![0], vec![1, 0], vec![2, 1, 0]]);
        assert!(p.is_stable_labeling(&tree_a, &[0; 3]).unwrap());
        assert!(p.is_stable_labeling(&tree_b, &[0; 3]).unwrap());
    }

    #[test]
    fn disagree_oscillates_synchronously_from_direct_routes() {
        let spp = disagree_gadget();
        let p = spp.to_protocol();
        let init = spp.labeling_from(&[vec![0], vec![1, 0], vec![2, 0]]);
        let outcome = classify_sync(&p, &[0; 3], init, 100_000).unwrap();
        assert!(
            matches!(outcome, SyncOutcome::Oscillating { .. }),
            "the BGP 'route flap': both switch up, invalidate each other, fall back"
        );
    }

    #[test]
    fn disagree_converges_under_sequential_activation() {
        // One-at-a-time activations settle into one of the two trees.
        let spp = disagree_gadget();
        let p = spp.to_protocol();
        let init = spp.labeling_from(&[vec![0], vec![1, 0], vec![2, 0]]);
        let mut sim = Simulation::new(&p, &[0; 3], init).unwrap();
        let mut sched = RoundRobin::new(1);
        sim.run_until_label_stable(&mut sched, 100).unwrap();
        assert!(sim.is_label_stable());
    }

    #[test]
    fn bad_gadget_never_stabilizes() {
        let spp = bad_gadget();
        let p = spp.to_protocol();
        for start in [
            vec![vec![0], vec![1, 0], vec![2, 0], vec![3, 0]],
            vec![vec![0], vec![], vec![], vec![]],
            vec![vec![0], vec![1, 2, 0], vec![2, 0], vec![3, 1, 0]],
        ] {
            let init = spp.labeling_from(&start);
            let outcome = classify_sync(&p, &[0; 4], init, 100_000).unwrap();
            assert!(
                matches!(outcome, SyncOutcome::Oscillating { .. }),
                "bad gadget has no stable tree"
            );
        }
    }

    #[test]
    fn instance_validation() {
        let bad = std::panic::catch_unwind(|| SppInstance::new(2, vec![vec![], vec![vec![0, 1]]]));
        assert!(bad.is_err(), "path must start at owner / end at 0");
    }
}
