//! Diffusion of technologies in social networks (Morris-style contagion)
//! as stateless computation.
//!
//! Each agent adopts a technology iff at least a `q` fraction of its
//! neighbors currently adopt it — a best response to coordination
//! pressure. All-adopt and none-adopt are both stable labelings, so
//! Theorem 3.1 applies: no matter the threshold, the dynamics cannot be
//! label (n−1)-stabilizing.

use stateless_core::graph::DiGraph;
use stateless_core::prelude::*;
use stateless_core::reaction::FnBufReaction;

/// Builds the threshold-adoption protocol on `graph` (use a symmetric
/// graph for the classic model): a node outputs and broadcasts 1 iff at
/// least `num/den` of its in-neighbors currently broadcast 1.
///
/// # Panics
///
/// Panics if `den == 0`, `num > den`, or some node has no in-neighbors.
pub fn contagion_protocol(graph: DiGraph, num: usize, den: usize) -> Protocol<bool> {
    assert!(
        den > 0 && num <= den,
        "threshold must be a fraction in [0, 1]"
    );
    let n = graph.node_count();
    for i in 0..n {
        assert!(
            graph.in_degree(i) > 0,
            "every agent needs neighbors to observe"
        );
    }
    let mut builder =
        Protocol::builder(graph.clone(), 1.0).name(format!("contagion(q={num}/{den}, n={n})"));
    for node in 0..n {
        let deg_out = graph.out_degree(node);
        builder = builder.reaction(
            node,
            FnBufReaction::new(
                vec![false; deg_out],
                move |_, incoming: &[bool], _, out: &mut [bool]| {
                    let adopters = incoming.iter().filter(|&&b| b).count();
                    // adopters / indegree ≥ num / den  ⟺  adopters·den ≥ num·indegree
                    let adopt = adopters * den >= num * incoming.len() && num > 0 || num == 0;
                    out.fill(adopt);
                    u64::from(adopt)
                },
            ),
        );
    }
    builder.build().expect("all agents have reactions")
}

/// Seeds: the uniform labeling where exactly the given nodes broadcast 1.
pub fn seeded_labeling(graph: &DiGraph, seeds: &[NodeId]) -> Vec<bool> {
    let mut labeling = vec![false; graph.edge_count()];
    for &s in seeds {
        for &e in graph.out_edges(s) {
            labeling[e] = true;
        }
    }
    labeling
}

#[cfg(test)]
mod tests {
    use super::*;
    use stabilization_verify::{enumerate_stable_labelings, verify_label_stabilization, Limits};
    use stateless_core::convergence::{classify_sync, SyncOutcome};
    use stateless_core::topology;

    #[test]
    fn both_extremes_are_stable() {
        let g = topology::bidirectional_ring(6);
        let p = contagion_protocol(g.clone(), 1, 2);
        assert!(p
            .is_stable_labeling(&vec![false; g.edge_count()], &[0; 6])
            .unwrap());
        assert!(p
            .is_stable_labeling(&vec![true; g.edge_count()], &[0; 6])
            .unwrap());
    }

    #[test]
    fn theorem_3_1_applies_to_contagion() {
        // Two stable labelings ⟹ not (n−1)-stabilizing: the checker finds
        // an oscillating 2-fair schedule on the triangle.
        let g = topology::clique(3);
        let p = contagion_protocol(g, 1, 2);
        let stable = enumerate_stable_labelings(&p, &[0; 3], &[false, true]).unwrap();
        assert!(stable.len() >= 2);
        let v =
            verify_label_stabilization(&p, &[0; 3], &[false, true], 2, Limits::default()).unwrap();
        assert!(!v.is_stabilizing(), "Theorem 3.1 in action");
    }

    #[test]
    fn low_threshold_spreads_from_one_seed() {
        let g = topology::bidirectional_ring(7);
        let p = contagion_protocol(g.clone(), 1, 2);
        let init = seeded_labeling(&g, &[3]);
        let outcome = classify_sync(&p, &[0; 7], init, 100_000).unwrap();
        match outcome {
            SyncOutcome::LabelStable { outputs, .. } => {
                assert_eq!(outputs, vec![1; 7], "full adoption");
            }
            other => panic!("contagion should saturate, got {other:?}"),
        }
    }

    #[test]
    fn high_threshold_dies_from_one_seed() {
        let g = topology::bidirectional_ring(7);
        let p = contagion_protocol(g.clone(), 2, 2);
        let init = seeded_labeling(&g, &[3]);
        let outcome = classify_sync(&p, &[0; 7], init, 100_000).unwrap();
        match outcome {
            SyncOutcome::LabelStable { outputs, .. } => {
                assert_eq!(outputs, vec![0; 7], "isolated adopter retreats");
            }
            other => panic!("expected die-out, got {other:?}"),
        }
    }

    #[test]
    fn contiguous_block_spreads_under_unanimity_on_both_sides() {
        // With q = 1/2 on the ring, a block of two adjacent seeds spreads.
        let g = topology::bidirectional_ring(8);
        let p = contagion_protocol(g.clone(), 1, 2);
        let init = seeded_labeling(&g, &[3, 4]);
        let outcome = classify_sync(&p, &[0; 8], init, 100_000).unwrap();
        assert_eq!(
            outcome.final_outputs().expect("stabilizes"),
            &vec![1; 8][..]
        );
    }
}
