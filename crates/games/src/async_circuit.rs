//! Asynchronous Boolean circuits with feedback loops as stateless
//! computation — the paper's hardware-flavored application.
//!
//! Gates react to the most recent values on their input wires; wire values
//! are edge labels and gate evaluation is the reaction function. An
//! adversarial activation schedule models uncontrolled gate delays, so
//! Theorem 3.1 reads: a feedback circuit with two settled states (like an
//! SR latch) can be kept **metastable** forever by delay patterns that are
//! (n−1)-fair.

use stateless_core::prelude::*;
use stateless_core::reaction::FnBufReaction;

/// A cross-coupled NOR latch: node 0 is `Q`, node 1 is `Q̄`; their
/// *inputs* are the external Set and Reset lines (`x₀ = R`, `x₁ = S`).
///
/// With `S = R = 0` the latch holds either state — two stable labelings —
/// and the synchronous schedule from `(0, 0)` produces the classic
/// metastable ping-pong.
pub fn sr_latch() -> Protocol<bool> {
    Protocol::builder(topology::clique(2), 1.0)
        .name("sr-latch")
        .uniform_reaction(FnBufReaction::new(
            vec![false],
            |_, incoming: &[bool], input, out: &mut [bool]| {
                // NOR of the external line and the other gate's output.
                let bit = !(input == 1 || incoming[0]);
                out[0] = bit;
                u64::from(bit)
            },
        ))
        .build()
        .expect("both gates have reactions")
}

/// A ring oscillator: `k` inverters in a directed cycle. For odd `k` there
/// is **no** stable labeling at all — the free-running clock of
/// asynchronous design, and a protocol that fails to label-stabilize for
/// every `r`.
///
/// # Panics
///
/// Panics if `k < 2`.
pub fn ring_oscillator(k: usize) -> Protocol<bool> {
    Protocol::builder(topology::unidirectional_ring(k), 1.0)
        .name(format!("ring-oscillator({k})"))
        .uniform_reaction(FnBufReaction::new(
            vec![false],
            |_, incoming: &[bool], _, out: &mut [bool]| {
                let bit = !incoming[0];
                out[0] = bit;
                u64::from(bit)
            },
        ))
        .build()
        .expect("all inverters have reactions")
}

#[cfg(test)]
mod tests {
    use super::*;
    use stabilization_verify::{enumerate_stable_labelings, verify_label_stabilization, Limits};
    use stateless_core::convergence::{classify_sync, SyncOutcome};

    #[test]
    fn latch_holds_both_states_when_lines_are_idle() {
        let p = sr_latch();
        let stable = enumerate_stable_labelings(&p, &[0, 0], &[false, true]).unwrap();
        // Labeling = [edge 0→1, edge 1→0] = [Q, Q̄].
        assert_eq!(stable.len(), 2);
        assert!(stable.contains(&vec![true, false]));
        assert!(stable.contains(&vec![false, true]));
    }

    #[test]
    fn latch_metastability_is_a_theorem_3_1_instance() {
        let p = sr_latch();
        // Two stable labelings, n = 2 ⟹ not (n−1) = 1-stabilizing.
        let v =
            verify_label_stabilization(&p, &[0, 0], &[false, true], 1, Limits::default()).unwrap();
        assert!(!v.is_stabilizing());
        // The concrete metastable run: simultaneous gate switching.
        let outcome = classify_sync(&p, &[0, 0], vec![false, false], 1000).unwrap();
        assert!(matches!(
            outcome,
            SyncOutcome::Oscillating { period: 2, .. }
        ));
    }

    #[test]
    fn asserting_set_resolves_the_latch() {
        let p = sr_latch();
        // S = 1, R = 0: unique fixed point (Q, Q̄) = (1, 0), reached from
        // everywhere even under adversarial 2-fair schedules.
        let v =
            verify_label_stabilization(&p, &[0, 1], &[false, true], 2, Limits::default()).unwrap();
        assert!(v.is_stabilizing());
        let outcome = classify_sync(&p, &[0, 1], vec![false, false], 1000).unwrap();
        match outcome {
            SyncOutcome::LabelStable { labeling, .. } => {
                assert_eq!(labeling, vec![true, false]);
            }
            other => panic!("expected resolution, got {other:?}"),
        }
    }

    #[test]
    fn odd_ring_oscillator_has_no_stable_labeling() {
        let p = ring_oscillator(3);
        let stable = enumerate_stable_labelings(&p, &[0; 3], &[false, true]).unwrap();
        assert!(stable.is_empty());
        let outcome = classify_sync(&p, &[0; 3], vec![false, false, false], 1000).unwrap();
        assert!(matches!(outcome, SyncOutcome::Oscillating { .. }));
    }

    #[test]
    fn even_ring_of_inverters_latches() {
        let p = ring_oscillator(4);
        let stable = enumerate_stable_labelings(&p, &[0; 4], &[false, true]).unwrap();
        assert_eq!(stable.len(), 2, "alternating labelings are fixed points");
    }
}
