//! Finite strategic games and best-response dynamics as stateless
//! computation.
//!
//! The paper's framing: "best-response dynamics can be formalized in our
//! model as the scenario that both the output set of each node and the
//! labels of each of its outgoing edges are the same set and represent
//! that node's possible strategies" (Section 3). A pure Nash equilibrium
//! corresponds exactly to a stable labeling, so a game with two or more
//! pure equilibria cannot best-response-converge under every
//! (n−1)-fair schedule.

use std::sync::Arc;

use stateless_core::prelude::*;
use stateless_core::reaction::FnBufReaction;

/// A utility function: `utility(player, profile)` scores a full strategy
/// profile for one player.
type Utility = Arc<dyn Fn(usize, &[usize]) -> i64 + Send + Sync>;

/// A finite strategic game: `strategy_counts[i]` strategies per player and
/// an integer utility function over full profiles.
pub struct Game {
    strategy_counts: Vec<usize>,
    utility: Utility,
}

impl std::fmt::Debug for Game {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Game")
            .field("players", &self.strategy_counts.len())
            .finish()
    }
}

impl Game {
    /// Creates a game; `utility(player, profile)` scores a full strategy
    /// profile for one player.
    ///
    /// # Panics
    ///
    /// Panics if there are fewer than 2 players or a player has no
    /// strategies.
    pub fn new<U>(strategy_counts: Vec<usize>, utility: U) -> Self
    where
        U: Fn(usize, &[usize]) -> i64 + Send + Sync + 'static,
    {
        assert!(strategy_counts.len() >= 2, "need at least two players");
        assert!(
            strategy_counts.iter().all(|&s| s >= 1),
            "players need strategies"
        );
        Game {
            strategy_counts,
            utility: Arc::new(utility),
        }
    }

    /// Number of players.
    pub fn player_count(&self) -> usize {
        self.strategy_counts.len()
    }

    /// The lowest-index best response of `player` to `profile` (the
    /// paper's dynamics assume unique best responses; ties are broken
    /// deterministically toward the smallest strategy id, preserving
    /// determinism of the induced reaction functions).
    pub fn best_response(&self, player: usize, profile: &[usize]) -> usize {
        let mut best = 0;
        let mut best_u = i64::MIN;
        let mut trial = profile.to_vec();
        for s in 0..self.strategy_counts[player] {
            trial[player] = s;
            let u = (self.utility)(player, &trial);
            if u > best_u {
                best_u = u;
                best = s;
            }
        }
        best
    }

    /// Whether `profile` is a pure Nash equilibrium.
    pub fn is_nash(&self, profile: &[usize]) -> bool {
        (0..self.player_count()).all(|p| {
            let mut trial = profile.to_vec();
            let here = (self.utility)(p, profile);
            (0..self.strategy_counts[p]).all(|s| {
                trial[p] = s;
                let u = (self.utility)(p, &trial);
                trial[p] = profile[p];
                u <= here
            })
        })
    }

    /// Enumerates all pure Nash equilibria (small games only).
    pub fn pure_equilibria(&self) -> Vec<Vec<usize>> {
        let n = self.player_count();
        let mut out = Vec::new();
        let mut profile = vec![0usize; n];
        loop {
            if self.is_nash(&profile) {
                out.push(profile.clone());
            }
            let mut i = 0;
            loop {
                if i == n {
                    return out;
                }
                profile[i] += 1;
                if profile[i] == self.strategy_counts[i] {
                    profile[i] = 0;
                    i += 1;
                } else {
                    break;
                }
            }
        }
    }

    /// Compiles best-response dynamics into a stateless protocol on the
    /// clique: labels are strategy ids, each node broadcasts its strategy
    /// and best-responds to the observed profile. Stable labelings =
    /// pure Nash equilibria.
    pub fn to_protocol(&self) -> Protocol<u64> {
        let n = self.player_count();
        let deg = n - 1;
        let max_s = *self.strategy_counts.iter().max().expect("nonempty") as f64;
        let mut builder = Protocol::builder(topology::clique(n), max_s.log2().max(1.0))
            .name(format!("best-response({n} players)"));
        for player in 0..n {
            let utility = Arc::clone(&self.utility);
            let counts = self.strategy_counts.clone();
            builder = builder.reaction(
                player,
                FnBufReaction::new(
                    vec![0u64; deg],
                    move |me: NodeId, incoming: &[u64], _, out: &mut [u64]| {
                        // Reconstruct the observed profile; our own entry is
                        // immaterial (best_response scans it).
                        let mut profile = vec![0usize; counts.len()];
                        for (k, other) in (0..counts.len()).filter(|&o| o != me).enumerate() {
                            profile[other] = (incoming[k] as usize).min(counts[other] - 1);
                        }
                        let mut best = 0;
                        let mut best_u = i64::MIN;
                        for s in 0..counts[me] {
                            profile[me] = s;
                            let u = (utility)(me, &profile);
                            if u > best_u {
                                best_u = u;
                                best = s;
                            }
                        }
                        out.fill(best as u64);
                        best as u64
                    },
                ),
            );
        }
        builder.build().expect("all players have reactions")
    }
}

/// A 2-player coordination game: both prefer matching strategies —
/// two pure equilibria, the canonical Theorem 3.1 instability example.
pub fn coordination() -> Game {
    Game::new(vec![2, 2], |p, prof| {
        let _ = p;
        i64::from(prof[0] == prof[1])
    })
}

/// Matching pennies: no pure equilibrium, best responses cycle forever.
pub fn matching_pennies() -> Game {
    Game::new(vec![2, 2], |p, prof| {
        let matches = prof[0] == prof[1];
        if (p == 0) == matches {
            1
        } else {
            -1
        }
    })
}

/// Prisoner's dilemma: a dominant-strategy equilibrium — best-response
/// dynamics converge under every fair schedule.
pub fn prisoners_dilemma() -> Game {
    // Strategy 0 = cooperate, 1 = defect.
    Game::new(vec![2, 2], |p, prof| {
        let (mine, theirs) = (prof[p], prof[1 - p]);
        match (mine, theirs) {
            (0, 0) => 3,
            (0, 1) => 0,
            (1, 0) => 5,
            (1, 1) => 1,
            _ => unreachable!("binary strategies"),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use stabilization_verify::{enumerate_stable_labelings, verify_label_stabilization, Limits};
    use stateless_core::convergence::{classify_sync, SyncOutcome};

    #[test]
    fn equilibria_enumeration() {
        assert_eq!(coordination().pure_equilibria().len(), 2);
        assert_eq!(matching_pennies().pure_equilibria().len(), 0);
        assert_eq!(prisoners_dilemma().pure_equilibria(), vec![vec![1, 1]]);
    }

    #[test]
    fn stable_labelings_are_exactly_pure_equilibria() {
        let game = coordination();
        let p = game.to_protocol();
        let stable = enumerate_stable_labelings(&p, &[0, 0], &[0u64, 1]).unwrap();
        assert_eq!(stable.len(), 2);
        assert!(stable.contains(&vec![0, 0]));
        assert!(stable.contains(&vec![1, 1]));
    }

    #[test]
    fn coordination_is_not_1_stabilizing_by_theorem_3_1() {
        // n = 2, two equilibria: Theorem 3.1 with r = n − 1 = 1 (the
        // synchronous schedule) predicts oscillation — indeed, mismatched
        // players swap forever.
        let game = coordination();
        let p = game.to_protocol();
        let v = verify_label_stabilization(&p, &[0, 0], &[0u64, 1], 1, Limits::default()).unwrap();
        assert!(!v.is_stabilizing());
        let outcome = classify_sync(&p, &[0, 0], vec![0u64, 1], 1000).unwrap();
        assert!(matches!(outcome, SyncOutcome::Oscillating { .. }));
    }

    #[test]
    fn matching_pennies_never_settles() {
        let p = matching_pennies().to_protocol();
        for init in [[0u64, 0], [0, 1], [1, 0], [1, 1]] {
            let outcome = classify_sync(&p, &[0, 0], init.to_vec(), 1000).unwrap();
            assert!(
                matches!(outcome, SyncOutcome::Oscillating { .. }),
                "init = {init:?}"
            );
        }
    }

    #[test]
    fn dominant_strategies_converge_from_everywhere() {
        let p = prisoners_dilemma().to_protocol();
        let v = verify_label_stabilization(&p, &[0, 0], &[0u64, 1], 2, Limits::default()).unwrap();
        assert!(
            v.is_stabilizing(),
            "unique dominant equilibrium converges even at r = 2"
        );
    }

    #[test]
    fn three_player_congestion_style_game_converges() {
        // Players pick one of two links; cost = load on the chosen link.
        let game = Game::new(vec![2, 2, 2], |p, prof| {
            let load = prof.iter().filter(|&&s| s == prof[p]).count() as i64;
            -load
        });
        let p = game.to_protocol();
        // Under round-robin (one player moves at a time) this is a
        // potential game: it must settle.
        let mut sim = Simulation::new(&p, &[0; 3], vec![0u64; 6]).unwrap();
        let mut sched = RoundRobin::new(1);
        sim.run_until_label_stable(&mut sched, 100).unwrap();
        let outs = sim.outputs();
        // A balanced split: not all on one link.
        assert!(outs.contains(&0) && outs.contains(&1));
    }
}
