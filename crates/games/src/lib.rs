//! # best-response
//!
//! The application layer of "Stateless Computation" (Sections 1.1 and 3):
//! systems in which strategic nodes repeatedly best-respond to each
//! other's most recent actions are *stateless protocols*, so Theorem 3.1
//! (multiple stable labelings ⟹ no label (n−1)-stabilization) yields
//! non-convergence results for all of them:
//!
//! * [`game`] — finite strategic games; best-response dynamics compiled to
//!   a stateless protocol on the clique;
//! * [`bgp`] — interdomain routing as the Stable Paths Problem, with the
//!   classic Good/Bad/Disagree gadgets;
//! * [`contagion`] — diffusion of technologies in social networks
//!   (threshold adoption, Morris-style);
//! * [`async_circuit`] — asynchronous Boolean circuits with feedback
//!   (SR latch, ring oscillator).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod async_circuit;
pub mod bgp;
pub mod contagion;
pub mod game;
