//! # comm-complexity
//!
//! Lower-bound machinery from Part II of "Stateless Computation":
//!
//! * [`fooling`] — fooling sets (Definition 6.1), the cut-aware
//!   label-complexity bound of Theorem 6.2, and the verified fooling sets
//!   behind Corollaries 6.3 (equality) and 6.4 (majority);
//! * [`counting`] — the counting bound of Theorem 5.10
//!   (`Lₙ ≥ n/(4k)` on degree-`k` graphs);
//! * [`disjointness`] — set-disjointness utilities for the Theorem 4.1
//!   communication reduction.
//!
//! ```
//! use comm_complexity::fooling;
//! use stateless_core::topology;
//!
//! // Corollary 6.3: label-stabilizing equality on the bidirectional
//! // 12-ring needs ≥ 1 bit labels (and Θ(n) asymptotically).
//! let fs = fooling::equality_fooling_set(12)?;
//! let ring = topology::bidirectional_ring(12);
//! assert!(fs.label_bound(&ring)? >= 1.0);
//! # Ok::<(), comm_complexity::fooling::FoolingError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod counting;
pub mod disjointness;
pub mod fooling;
