//! The counting bound of Theorem 5.10: on graph families of constant
//! maximum degree `k`, some Boolean function needs labels of
//! `Lₙ ≥ n/(4k)` bits — no topology-independent shortcut exists.

/// The Theorem 5.10 lower bound `n/(4k)` in bits.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn theorem_5_10_bound(n: usize, k: usize) -> f64 {
    assert!(k >= 1, "degree must be positive");
    n as f64 / (4.0 * k as f64)
}

/// `log₂` of the number of distinct stateless protocols on an `n`-node
/// graph of maximum degree `k` with label space size `2^label_bits`
/// (the counting step of the proof: `(2|Σ|^k)^{2n|Σ|^k}` protocols).
pub fn log2_protocol_count(n: usize, k: usize, label_bits: f64) -> f64 {
    let log_sigma = label_bits;
    // |Σ|^k = 2^(k·L); count = (2·|Σ|^k)^(2n·|Σ|^k)
    let sigma_k_log = k as f64 * log_sigma;
    let exponent = 2.0 * n as f64 * sigma_k_log.exp2();
    exponent * (1.0 + sigma_k_log)
}

/// `log₂` of the number of Boolean functions on `n` bits: `2^n`.
pub fn log2_function_count(n: usize) -> f64 {
    (n as f64).exp2()
}

/// Whether `label_bits`-bit labels are *information-theoretically ruled
/// out* for computing all Boolean functions on some degree-`k` `n`-node
/// graph: true iff there are fewer protocols than functions.
pub fn labels_insufficient(n: usize, k: usize, label_bits: f64) -> bool {
    log2_protocol_count(n, k, label_bits) < log2_function_count(n)
}

/// The smallest integer label length (in bits) **not** ruled out by the
/// counting argument — an explicit witness that the `n/(4k)` bound is the
/// right shape.
pub fn min_feasible_label_bits(n: usize, k: usize) -> u32 {
    (0..=n as u32)
        .find(|&bits| !labels_insufficient(n, k, f64::from(bits)))
        .unwrap_or(n as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_matches_formula() {
        assert!((theorem_5_10_bound(32, 2) - 4.0).abs() < 1e-12);
        assert!((theorem_5_10_bound(100, 4) - 6.25).abs() < 1e-12);
    }

    #[test]
    fn tiny_labels_are_insufficient_for_large_n() {
        // With 1-bit labels on a degree-4 graph, 2n·2^4·(1+4) protocols
        // cannot cover 2^(2^n) functions once n is moderately large.
        assert!(labels_insufficient(16, 4, 1.0));
        assert!(labels_insufficient(24, 2, 2.0));
    }

    #[test]
    fn linear_labels_are_sufficient_by_counting() {
        // n-bit labels always escape the counting obstruction.
        for n in [8usize, 12, 16] {
            assert!(!labels_insufficient(n, 2, n as f64));
        }
    }

    #[test]
    fn min_feasible_bits_respects_the_theorem_bound() {
        for n in [16usize, 24, 32, 48] {
            for k in [2usize, 4] {
                let feasible = min_feasible_label_bits(n, k);
                // The paper's n/(4k) is a lower bound on the *worst-case*
                // function; the counting threshold sits at the same shape
                // (within constant factors, it is Θ(n/k)).
                assert!(
                    f64::from(feasible) >= theorem_5_10_bound(n, k) / 4.0,
                    "n={n} k={k}: feasible={feasible}"
                );
                assert!(
                    f64::from(feasible) <= n as f64,
                    "never beyond the trivial bound"
                );
            }
        }
    }

    #[test]
    fn protocol_count_grows_with_labels() {
        let small = log2_protocol_count(10, 2, 1.0);
        let large = log2_protocol_count(10, 2, 4.0);
        assert!(large > small);
    }
}
