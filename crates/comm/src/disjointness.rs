//! Set-disjointness, the second reduction source of Theorem 4.1
//! (Theorem B.7 uses DISJ for the high-fairness regime `r ≥ 2^{n/2}`).

/// Whether the characteristic vectors `x` and `y` are disjoint
/// (`EA ∩ EB = ∅` in the paper's notation).
///
/// # Panics
///
/// Panics if the vectors have different lengths.
pub fn disjoint(x: &[bool], y: &[bool]) -> bool {
    assert_eq!(
        x.len(),
        y.len(),
        "characteristic vectors must have equal length"
    );
    x.iter().zip(y).all(|(&a, &b)| !(a && b))
}

/// The first index in the intersection, if any.
///
/// # Panics
///
/// Panics if the vectors have different lengths.
pub fn first_intersection(x: &[bool], y: &[bool]) -> Option<usize> {
    assert_eq!(
        x.len(),
        y.len(),
        "characteristic vectors must have equal length"
    );
    x.iter().zip(y).position(|(&a, &b)| a && b)
}

/// The deterministic communication-complexity lower bound for
/// set-disjointness on `q`-element universes: `q + 1` bits (the classic
/// fooling-set argument; the paper uses the weaker `≥ q`).
pub fn disjointness_lower_bound(q: usize) -> usize {
    q + 1
}

/// The paper's mapping `I(j) = 1 + (j − 1) mod q` (1-indexed in the text),
/// here 0-indexed: the universe element that snake position `j` queries
/// when the snake is cut into chunks of length `q`.
pub fn chunk_index(j: usize, q: usize) -> usize {
    j % q
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disjointness_basics() {
        assert!(disjoint(&[true, false], &[false, true]));
        assert!(!disjoint(&[true, false], &[true, true]));
        assert!(disjoint(&[], &[]));
        assert_eq!(
            first_intersection(&[false, true, true], &[false, false, true]),
            Some(2)
        );
        assert_eq!(first_intersection(&[true, false], &[false, true]), None);
    }

    #[test]
    fn chunk_index_wraps() {
        assert_eq!(chunk_index(0, 3), 0);
        assert_eq!(chunk_index(5, 3), 2);
        assert_eq!(chunk_index(6, 3), 0);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_lengths_panic() {
        disjoint(&[true], &[true, false]);
    }
}
