//! Fooling sets and the Theorem 6.2 label-complexity lower bound.
//!
//! **Reproduction note.** Corollary 6.3 as printed fixes only `x₁ = 1`,
//! but Theorem 6.2's hypotheses require the inputs of *every* node with a
//! cut edge to be constant across the fooling set — on the bidirectional
//! ring that is two coordinates per side. We therefore fix `x₁` **and**
//! `x_{n/2}` (and drop the one offending chain element for majority),
//! giving bounds `(n−4)/8` and `log(⌊n/2⌋−1)/4`: identical asymptotics,
//! hypotheses machine-verified. The discrepancy is recorded in
//! EXPERIMENTS.md (E13).

use std::error::Error;
use std::fmt;

use stateless_core::graph::DiGraph;
use stateless_core::{EdgeId, NodeId};

/// Errors from fooling-set verification.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FoolingError {
    /// Some pair disagreed with the claimed function value `b`.
    WrongValue {
        /// Index of the offending pair.
        pair: usize,
    },
    /// Two pairs failed the fooling condition (both cross evaluations
    /// still gave `b`).
    NotFooling {
        /// The two offending pair indices.
        pairs: (usize, usize),
    },
    /// A node with a cut edge had a non-constant input across the set,
    /// violating Theorem 6.2's hypotheses.
    BoundaryNotConstant {
        /// The offending node.
        node: NodeId,
    },
    /// Construction parameters were invalid (e.g. odd `n` for equality).
    BadParameters {
        /// Human-readable description.
        what: String,
    },
}

impl fmt::Display for FoolingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FoolingError::WrongValue { pair } => {
                write!(f, "pair {pair} does not evaluate to the claimed value")
            }
            FoolingError::NotFooling { pairs } => {
                write!(
                    f,
                    "pairs {} and {} violate the fooling condition",
                    pairs.0, pairs.1
                )
            }
            FoolingError::BoundaryNotConstant { node } => {
                write!(f, "cut node {node} has a non-constant input across the set")
            }
            FoolingError::BadParameters { what } => write!(f, "bad parameters: {what}"),
        }
    }
}

impl Error for FoolingError {}

/// A Boolean function over concatenated inputs, boxed for storage in a
/// [`FoolingSet`].
pub type BoolFn = Box<dyn Fn(&[bool]) -> bool + Send + Sync>;

/// A fooling set for `f : {0,1}^n → {0,1}` split at position `m`
/// (Definition 6.1), together with the function it fools.
pub struct FoolingSet {
    /// Split position: `x`-parts have length `m`, `y`-parts `n − m`.
    pub m: usize,
    /// Total input length.
    pub n: usize,
    /// The pairs `(x, y) ∈ S`.
    pub pairs: Vec<(Vec<bool>, Vec<bool>)>,
    /// The common function value `b`.
    pub value: bool,
    /// The function being fooled.
    pub f: BoolFn,
}

impl fmt::Debug for FoolingSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FoolingSet")
            .field("m", &self.m)
            .field("n", &self.n)
            .field("size", &self.pairs.len())
            .field("value", &self.value)
            .finish()
    }
}

impl FoolingSet {
    /// `|S|`.
    pub fn size(&self) -> usize {
        self.pairs.len()
    }

    fn concat(&self, x: &[bool], y: &[bool]) -> Vec<bool> {
        let mut v = Vec::with_capacity(self.n);
        v.extend_from_slice(x);
        v.extend_from_slice(y);
        v
    }

    /// Verifies Definition 6.1: every pair evaluates to `value`, and for
    /// every two distinct pairs at least one cross evaluation differs.
    ///
    /// Runs `O(|S|²)` evaluations of `f`.
    ///
    /// # Errors
    ///
    /// Returns [`FoolingError::WrongValue`] or [`FoolingError::NotFooling`]
    /// pinpointing the violation.
    pub fn verify(&self) -> Result<(), FoolingError> {
        for (i, (x, y)) in self.pairs.iter().enumerate() {
            if (self.f)(&self.concat(x, y)) != self.value {
                return Err(FoolingError::WrongValue { pair: i });
            }
        }
        for i in 0..self.pairs.len() {
            for j in i + 1..self.pairs.len() {
                let (xi, yi) = &self.pairs[i];
                let (xj, yj) = &self.pairs[j];
                let cross_a = (self.f)(&self.concat(xi, yj)) == self.value;
                let cross_b = (self.f)(&self.concat(xj, yi)) == self.value;
                if cross_a && cross_b {
                    return Err(FoolingError::NotFooling { pairs: (i, j) });
                }
            }
        }
        Ok(())
    }

    /// Verifies Theorem 6.2's boundary hypotheses on `graph`: every node
    /// `i < m` with an edge into `[m..n)` has constant `xᵢ` across the
    /// set, and every node `i ≥ m` with an edge into `[0..m)` has constant
    /// `y_{i−m}`.
    ///
    /// Returns the cut sizes `(|C|, |D|)` on success.
    ///
    /// # Errors
    ///
    /// Returns [`FoolingError::BoundaryNotConstant`] naming the node.
    pub fn verify_boundary(&self, graph: &DiGraph) -> Result<(usize, usize), FoolingError> {
        let (c_edges, d_edges) = cut_edges(graph, self.m);
        for &e in &c_edges {
            let (i, _) = graph.endpoints(e);
            let first = self.pairs[0].0[i];
            if self.pairs.iter().any(|(x, _)| x[i] != first) {
                return Err(FoolingError::BoundaryNotConstant { node: i });
            }
        }
        for &e in &d_edges {
            let (i, _) = graph.endpoints(e);
            let first = self.pairs[0].1[i - self.m];
            if self.pairs.iter().any(|(_, y)| y[i - self.m] != first) {
                return Err(FoolingError::BoundaryNotConstant { node: i });
            }
        }
        Ok((c_edges.len(), d_edges.len()))
    }

    /// The Theorem 6.2 lower bound on `graph`:
    /// `Lₙ ≥ log₂|S| / (|C| + |D|)` bits, after verifying both the fooling
    /// property and the boundary hypotheses.
    ///
    /// # Errors
    ///
    /// Propagates verification failures.
    pub fn label_bound(&self, graph: &DiGraph) -> Result<f64, FoolingError> {
        self.verify()?;
        let (c, d) = self.verify_boundary(graph)?;
        Ok((self.size() as f64).log2() / (c + d) as f64)
    }
}

/// The cut edge sets of Theorem 6.2: `C` (from `[0..m)` into `[m..n)`) and
/// `D` (from `[m..n)` into `[0..m)`).
pub fn cut_edges(graph: &DiGraph, m: usize) -> (Vec<EdgeId>, Vec<EdgeId>) {
    let mut c = Vec::new();
    let mut d = Vec::new();
    for (e, u, v) in graph.edges() {
        if u < m && v >= m {
            c.push(e);
        } else if v < m && u >= m {
            d.push(e);
        }
    }
    (c, d)
}

/// The paper's equality function `Eqₙ` (Section 6).
pub fn equality_fn(x: &[bool]) -> bool {
    let n = x.len();
    n.is_multiple_of(2) && x[..n / 2] == x[n / 2..]
}

/// The paper's majority function `Majₙ` (Section 6): `Σxᵢ ≥ n/2`.
pub fn majority_fn(x: &[bool]) -> bool {
    2 * x.iter().filter(|&&b| b).count() >= x.len()
}

/// The Corollary 6.3 fooling set for `Eqₙ` on the bidirectional `n`-ring:
/// `S = {(x, x) : x₁ = x_{n/2} = 1}`, split at `m = n/2`.
///
/// Size `2^{n/2−2}`, giving the bound `(n−4)/8` bits (see the module-level
/// reproduction note on the constant).
///
/// # Errors
///
/// Returns [`FoolingError::BadParameters`] unless `n` is even and ≥ 6.
pub fn equality_fooling_set(n: usize) -> Result<FoolingSet, FoolingError> {
    if !n.is_multiple_of(2) || n < 6 {
        return Err(FoolingError::BadParameters {
            what: format!("equality fooling set needs even n ≥ 6, got {n}"),
        });
    }
    let m = n / 2;
    // Free coordinates: positions 1..m-1 of x (0-indexed); x₀ and x_{m−1}
    // are pinned to 1 so the ring's four cut nodes see constant inputs.
    let free = m - 2;
    let mut pairs = Vec::with_capacity(1 << free);
    for bits in 0..1u64 << free {
        let mut x = vec![true; m];
        for (k, slot) in x.iter_mut().enumerate().take(m - 1).skip(1) {
            *slot = bits >> (k - 1) & 1 == 1;
        }
        pairs.push((x.clone(), x));
    }
    Ok(FoolingSet {
        m,
        n,
        pairs,
        value: true,
        f: Box::new(equality_fn),
    })
}

/// The Corollary 6.4 fooling set for `Majₙ` on the bidirectional `n`-ring:
/// the chain `Q = {(1, 1^k 0^{m−1−k})}` paired with complements,
/// split at `m = ⌊n/2⌋`.
///
/// Size `⌊n/2⌋ − 1` (one chain element dropped to satisfy the boundary
/// hypotheses; see the module-level note), giving the bound
/// `log₂(⌊n/2⌋−1)/4` bits.
///
/// # Errors
///
/// Returns [`FoolingError::BadParameters`] for `n < 6`.
pub fn majority_fooling_set(n: usize) -> Result<FoolingSet, FoolingError> {
    if n < 6 {
        return Err(FoolingError::BadParameters {
            what: format!("majority fooling set needs n ≥ 6, got {n}"),
        });
    }
    let m = n / 2;
    let mut pairs = Vec::with_capacity(m - 1);
    // k = m−1 would set x_{m−1} = 1, breaking boundary constancy; drop it.
    for k in 0..m - 1 {
        let mut x = vec![false; m];
        x[0] = true;
        for slot in x.iter_mut().take(k + 1).skip(1) {
            *slot = true;
        }
        let mut y: Vec<bool> = x.iter().map(|&b| !b).collect();
        if n % 2 == 1 {
            y.push(true); // the paper's fixed trailing 1 for odd rings
        }
        pairs.push((x, y));
    }
    Ok(FoolingSet {
        m,
        n,
        pairs,
        value: true,
        f: Box::new(majority_fn),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use stateless_core::topology;

    #[test]
    fn equality_fooling_set_verifies_and_bounds() {
        for n in [6usize, 8, 10, 12] {
            let fs = equality_fooling_set(n).unwrap();
            assert_eq!(fs.size(), 1 << (n / 2 - 2));
            fs.verify().unwrap();
            let g = topology::bidirectional_ring(n);
            let bound = fs.label_bound(&g).unwrap();
            let expected = (n as f64 - 4.0) / 8.0;
            assert!(
                (bound - expected).abs() < 1e-9,
                "n={n}: {bound} vs {expected}"
            );
        }
    }

    #[test]
    fn majority_fooling_set_verifies_and_bounds() {
        for n in [6usize, 7, 9, 10, 12, 15] {
            let fs = majority_fooling_set(n).unwrap();
            assert_eq!(fs.size(), n / 2 - 1);
            fs.verify().unwrap();
            let g = topology::bidirectional_ring(n);
            let bound = fs.label_bound(&g).unwrap();
            let expected = ((n / 2 - 1) as f64).log2() / 4.0;
            assert!((bound - expected).abs() < 1e-9, "n={n}");
        }
    }

    #[test]
    fn bad_parameters_are_rejected() {
        assert!(equality_fooling_set(7).is_err());
        assert!(equality_fooling_set(4).is_err());
        assert!(majority_fooling_set(4).is_err());
    }

    #[test]
    fn verify_catches_wrong_value() {
        let fs = FoolingSet {
            m: 1,
            n: 2,
            pairs: vec![(vec![true], vec![false])],
            value: true,
            f: Box::new(equality_fn),
        };
        assert_eq!(fs.verify(), Err(FoolingError::WrongValue { pair: 0 }));
    }

    #[test]
    fn verify_catches_non_fooling_pairs() {
        // OR is constant 1 on these pairs and all crosses: not fooling.
        let fs = FoolingSet {
            m: 1,
            n: 2,
            pairs: vec![(vec![true], vec![false]), (vec![true], vec![true])],
            value: true,
            f: Box::new(|x: &[bool]| x.iter().any(|&b| b)),
        };
        assert_eq!(fs.verify(), Err(FoolingError::NotFooling { pairs: (0, 1) }));
    }

    #[test]
    fn boundary_violation_is_detected() {
        // Equality fooling set WITHOUT pinning x_{m−1}: boundary check on
        // the ring must fail.
        let n = 8;
        let m = 4;
        let mut pairs = Vec::new();
        for bits in 0..8u8 {
            let mut x = vec![true; m];
            for (k, slot) in x.iter_mut().enumerate().skip(1) {
                *slot = bits >> (k - 1) & 1 == 1;
            }
            pairs.push((x.clone(), x));
        }
        let fs = FoolingSet {
            m,
            n,
            pairs,
            value: true,
            f: Box::new(equality_fn),
        };
        fs.verify().unwrap();
        let g = topology::bidirectional_ring(n);
        assert_eq!(
            fs.verify_boundary(&g),
            Err(FoolingError::BoundaryNotConstant { node: 3 })
        );
    }

    #[test]
    fn cut_edges_on_the_ring_are_four() {
        let g = topology::bidirectional_ring(10);
        let (c, d) = cut_edges(&g, 5);
        assert_eq!(c.len(), 2);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn cut_edges_on_clique_grow_quadratically() {
        let g = topology::clique(6);
        let (c, d) = cut_edges(&g, 3);
        assert_eq!(c.len(), 9);
        assert_eq!(d.len(), 9);
    }
}
