//! Theorem B.11: the String-Oscillation problem and its reduction to
//! stateful-protocol stabilization.
//!
//! **String-Oscillation**: given `g : Γᵐ → Γ ∪ {halt}`, does some initial
//! string `T` make the cursor procedure
//!
//! ```text
//! i ← 0; while g(T) ≠ halt { T[i] ← g(T); i ← (i+1) mod m }
//! ```
//!
//! run forever? The problem is PSPACE-complete; the reduction below turns
//! an instance into a stateful clique protocol on `K_{m+1}` that is label
//! r-stabilizing **iff** the procedure halts on every initial string —
//! which is how Theorem 4.2 inherits PSPACE-hardness.

use std::collections::HashSet;
use std::sync::Arc;

use crate::stateful::StatefulProtocol;

/// The oscillation map `g : Γ* → Γ ∪ {halt}` (`None` encodes `halt`).
type OscillationMap = Arc<dyn Fn(&[u8]) -> Option<u8> + Send + Sync>;

/// A String-Oscillation instance: the alphabet size `|Γ|` and the map `g`
/// (`None` encodes `halt`).
pub struct StringOscillation {
    m: usize,
    gamma: u8,
    g: OscillationMap,
}

impl std::fmt::Debug for StringOscillation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StringOscillation")
            .field("m", &self.m)
            .field("gamma", &self.gamma)
            .finish()
    }
}

/// The label of the reduction's protocol: every node carries a cursor
/// component and a symbol component (`(k, α)` in the paper; node `m`
/// carries the controller pair `(j, γ)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OscLabel {
    /// Cursor component (only meaningful on the controller node).
    pub idx: u8,
    /// Symbol component: `None` encodes the paper's `halt`.
    pub sym: Option<u8>,
}

impl StringOscillation {
    /// Creates an instance over strings of length `m` with symbols
    /// `0..gamma`.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0` or `gamma == 0`.
    pub fn new<G>(m: usize, gamma: u8, g: G) -> Self
    where
        G: Fn(&[u8]) -> Option<u8> + Send + Sync + 'static,
    {
        assert!(m >= 1 && gamma >= 1, "need a nonempty string and alphabet");
        StringOscillation {
            m,
            gamma,
            g: Arc::new(g),
        }
    }

    /// String length `m`.
    pub fn string_len(&self) -> usize {
        self.m
    }

    /// Alphabet size `|Γ|`.
    pub fn alphabet(&self) -> u8 {
        self.gamma
    }

    /// Runs the cursor procedure from `initial`; returns `true` if it
    /// loops forever (detected by revisiting a `(string, cursor)` state).
    ///
    /// # Panics
    ///
    /// Panics if `initial` has the wrong length or an out-of-range symbol.
    pub fn runs_forever(&self, initial: &[u8]) -> bool {
        assert_eq!(initial.len(), self.m, "string length mismatch");
        assert!(
            initial.iter().all(|&s| s < self.gamma),
            "symbol out of range"
        );
        let mut seen: HashSet<(Vec<u8>, usize)> = HashSet::new();
        let mut t = initial.to_vec();
        let mut i = 0usize;
        loop {
            match (self.g)(&t) {
                None => return false,
                Some(sym) => {
                    if !seen.insert((t.clone(), i)) {
                        return true;
                    }
                    t[i] = sym;
                    i = (i + 1) % self.m;
                }
            }
        }
    }

    /// Brute-force decision of the String-Oscillation instance: does *any*
    /// initial string loop forever? Exponential in `m` — the hardness the
    /// reduction transports.
    ///
    /// Returns the witness string if one exists.
    pub fn find_oscillating_string(&self) -> Option<Vec<u8>> {
        let mut t = vec![0u8; self.m];
        loop {
            if self.runs_forever(&t) {
                return Some(t);
            }
            // Odometer increment.
            let mut i = 0;
            loop {
                if i == self.m {
                    return None;
                }
                t[i] += 1;
                if t[i] == self.gamma {
                    t[i] = 0;
                    i += 1;
                } else {
                    break;
                }
            }
        }
    }

    /// The Theorem B.11 reduction: a stateful protocol on `K_{m+1}` that
    /// fails to stabilize exactly when some initial string loops forever.
    ///
    /// Node `i < m` holds string symbol `i`; node `m` is the controller
    /// carrying the cursor `(j, γ)`.
    pub fn to_stateful_protocol(&self) -> StatefulProtocol<OscLabel> {
        let m = self.m;
        let mut reactions: Vec<crate::stateful::StatefulReaction<OscLabel>> =
            Vec::with_capacity(m + 1);
        for i in 0..m {
            reactions.push(Arc::new(move |labels: &[OscLabel]| {
                let m = labels.len() - 1;
                let controller = labels[m];
                match controller.sym {
                    None => OscLabel { idx: 0, sym: None },
                    Some(gamma_val) if usize::from(controller.idx) == i => OscLabel {
                        idx: 0,
                        sym: Some(gamma_val),
                    },
                    Some(_) => OscLabel {
                        idx: 0,
                        sym: labels[i].sym,
                    },
                }
            }));
        }
        let g = Arc::clone(&self.g);
        let gamma = self.gamma;
        reactions.push(Arc::new(move |labels: &[OscLabel]| {
            let m = labels.len() - 1;
            let me = labels[m];
            match me.sym {
                None => OscLabel { idx: 0, sym: None },
                Some(gamma_val) => {
                    let j = usize::from(me.idx) % m;
                    if labels[j].sym == Some(gamma_val) {
                        // The write landed: advance the cursor and apply g.
                        let string: Option<Vec<u8>> = labels[..m]
                            .iter()
                            .map(|l| l.sym.filter(|&s| s < gamma))
                            .collect();
                        let next = match string {
                            Some(s) => (g)(&s),
                            None => None, // corrupt symbols: halt defensively
                        };
                        OscLabel {
                            idx: ((j + 1) % m) as u8,
                            sym: next,
                        }
                    } else {
                        me
                    }
                }
            }
        }));
        StatefulProtocol::new(reactions)
    }

    /// The initial label vector encoding string `t` with the controller
    /// primed at cursor 0 holding `g(t)`.
    ///
    /// # Panics
    ///
    /// Panics if `t` has the wrong length.
    pub fn initial_labels(&self, t: &[u8]) -> Vec<OscLabel> {
        assert_eq!(t.len(), self.m, "string length mismatch");
        let mut labels: Vec<OscLabel> = t
            .iter()
            .map(|&s| OscLabel {
                idx: 0,
                sym: Some(s),
            })
            .collect();
        labels.push(OscLabel {
            idx: 0,
            sym: (self.g)(t),
        });
        labels
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// g that immediately halts everywhere.
    fn halting() -> StringOscillation {
        StringOscillation::new(2, 2, |_| None)
    }

    /// g that rotates symbols forever: never halts.
    fn looping() -> StringOscillation {
        StringOscillation::new(2, 2, |t| Some(1 - t[0]))
    }

    /// g that halts iff the first symbol is 0 — and can never zero it:
    /// loops exactly on strings with `t[0] ≠ 0`.
    fn mixed() -> StringOscillation {
        StringOscillation::new(2, 3, |t| if t[0] == 0 { None } else { Some(t[0]) })
    }

    #[test]
    fn procedure_semantics() {
        assert!(!halting().runs_forever(&[0, 1]));
        assert!(looping().runs_forever(&[0, 0]));
        assert!(!mixed().runs_forever(&[0, 0]));
        assert!(!mixed().runs_forever(&[0, 2]));
        assert!(mixed().runs_forever(&[1, 0]));
        assert!(mixed().runs_forever(&[2, 1]));
    }

    #[test]
    fn brute_force_finds_witnesses() {
        assert_eq!(halting().find_oscillating_string(), None);
        assert!(looping().find_oscillating_string().is_some());
        let w = mixed().find_oscillating_string().expect("witness exists");
        assert!(mixed().runs_forever(&w));
    }

    #[test]
    fn reduction_preserves_oscillation() {
        // Looping g: the protocol must not stabilize from the primed
        // initial labels.
        let inst = looping();
        let p = inst.to_stateful_protocol();
        let init = inst.initial_labels(&[0, 0]);
        assert_eq!(p.sync_stabilizes(init, 10_000), Ok(false));
    }

    #[test]
    fn reduction_preserves_stabilization() {
        let inst = halting();
        let p = inst.to_stateful_protocol();
        for t in [[0u8, 0], [0, 1], [1, 0], [1, 1]] {
            let init = inst.initial_labels(&t);
            assert_eq!(p.sync_stabilizes(init, 10_000), Ok(true), "t = {t:?}");
        }
    }

    #[test]
    fn mixed_instance_matches_brute_force_per_string() {
        let inst = mixed();
        let p = inst.to_stateful_protocol();
        for a in 0..3u8 {
            for b in 0..3u8 {
                let loops = inst.runs_forever(&[a, b]);
                let stabilizes = p.sync_stabilizes(inst.initial_labels(&[a, b]), 100_000);
                assert_eq!(stabilizes, Ok(!loops), "t = [{a}, {b}]");
            }
        }
    }
}
