//! Lemma C.2(2): a unidirectional-ring protocol whose synchronous round
//! complexity is exactly `n·(|Σ|−1)`, witnessing that the `Rₙ ≤ n·|Σ|`
//! upper bound of Lemma C.2(1) is tight up to one lap.
//!
//! Node 0 increments the circulating value until it saturates at
//! `q−1 = |Σ|−1`; relays forward it unchanged. Every value must travel a
//! full lap to be incremented once, so saturation takes `n·(q−1)` rounds
//! from the all-zero labeling.

use stateless_core::prelude::*;
use stateless_core::reaction::FnBufReaction;

/// Builds the worst-case protocol on the unidirectional `n`-ring with
/// label space `Σ = {0, …, q−1}`.
///
/// Outputs are 1 exactly when a node observes the saturated value.
///
/// # Panics
///
/// Panics if `n < 2` or `q < 2`.
pub fn worst_case_protocol(n: usize, q: u64) -> Protocol<u64> {
    assert!(n >= 2 && q >= 2, "need n ≥ 2 nodes and q ≥ 2 labels");
    let mut builder = Protocol::builder(topology::unidirectional_ring(n), (q as f64).log2())
        .name(format!("worst-case(n={n}, q={q})"));
    builder = builder.reaction(
        0,
        FnBufReaction::new(
            vec![0u64],
            move |_, incoming: &[u64], _, out: &mut [u64]| {
                let v = incoming[0];
                if v >= q - 1 {
                    out[0] = q - 1;
                    1
                } else {
                    out[0] = v + 1;
                    0
                }
            },
        ),
    );
    for node in 1..n {
        builder = builder.reaction(
            node,
            FnBufReaction::new(
                vec![0u64],
                move |_, incoming: &[u64], _, out: &mut [u64]| {
                    let v = incoming[0].min(q - 1);
                    out[0] = v;
                    u64::from(v == q - 1)
                },
            ),
        );
    }
    builder.build().expect("all ring nodes have reactions")
}

/// The exact synchronous label-stabilization round count from the all-zero
/// labeling: `n·(q−1)`.
pub fn exact_rounds(n: usize, q: u64) -> u64 {
    n as u64 * (q - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stateless_core::convergence::{classify_sync, SyncOutcome};

    #[test]
    fn stabilization_takes_exactly_n_times_q_minus_1_rounds() {
        for n in [2usize, 3, 4, 5] {
            for q in [2u64, 3, 5, 8] {
                let p = worst_case_protocol(n, q);
                let outcome = classify_sync(&p, &vec![0; n], vec![0u64; n], 1_000_000).unwrap();
                match outcome {
                    SyncOutcome::LabelStable {
                        round, labeling, ..
                    } => {
                        assert_eq!(round, exact_rounds(n, q), "n={n} q={q}");
                        assert_eq!(labeling, vec![q - 1; n]);
                    }
                    other => panic!("expected stabilization, got {other:?}"),
                }
            }
        }
    }

    #[test]
    fn respects_the_lemma_upper_bound() {
        for n in [2usize, 4] {
            for q in [3u64, 6] {
                assert!(exact_rounds(n, q) <= n as u64 * q, "Rₙ ≤ n·|Σ|");
            }
        }
    }

    #[test]
    fn garbage_labels_above_q_are_clamped() {
        let p = worst_case_protocol(3, 4);
        let outcome = classify_sync(&p, &[0; 3], vec![99, 0, 7], 10_000).unwrap();
        assert!(outcome.is_label_stable());
    }
}
