//! A self-stabilizing BFS spanning-tree protocol on rooted topologies —
//! the classic distance/parent rule of Dolev-style silent stabilization,
//! in the stateless model (cf. the machine-checked treatment in
//! Altisen–Bozga, arXiv:2502.17035).
//!
//! The root floods distance `0`; every other node takes the minimum
//! incoming distance plus one (clamped to `cap`) as its own distance,
//! writes it on all outgoing edges, and outputs `(d << 8) | parent`,
//! where `parent` is the in-neighbor achieving the minimum (ties broken
//! toward the smallest node id). On a strongly connected graph the
//! fault-free protocol label-stabilizes to the true BFS distances from
//! the root, and the outputs decode to a BFS spanning tree.
//!
//! With Byzantine neighbors the picture is subtler — a faulty node
//! adjacent to the min-selection of a correct node can drag its distance
//! down and release it forever — which is exactly what the exact
//! verifier's fault model quantifies over (`Limits::faults` in
//! `stabilization-verify`): the f = 1 placement sweep on small rings
//! separates placements the rule tolerates from those it cannot.

use stateless_core::prelude::*;
use stateless_core::reaction::FnBufReaction;

/// Builds the BFS distance/parent protocol on `graph` rooted at `root`,
/// with the distance alphabet `{0, …, cap}`.
///
/// `faults` is validated up front: the root must be correct (a Byzantine
/// or crashed root makes "distance from the root" meaningless), and every
/// faulty id must name a node of `graph` with at least one node left
/// correct. Faults are *not* baked into the reactions — every node runs
/// the same rule; pass the same model to the verifier's `Limits::faults`
/// (or to `Simulation::step_with_adversary`) to subject the protocol to
/// it.
///
/// Outputs encode `(d << 8) | parent` (the root outputs 0), so node ids
/// must fit 8 bits.
///
/// # Errors
///
/// [`CoreError::InvalidParameter`] if `root` is out of range or faulty,
/// `cap == 0`, or `graph` has more than 256 nodes;
/// [`CoreError`] construction errors from the protocol builder (e.g. a
/// graph that is not strongly connected).
pub fn bfs_tree_protocol(
    graph: DiGraph,
    root: NodeId,
    cap: u64,
    faults: FaultModel,
) -> Result<Protocol<u64>, CoreError> {
    let n = graph.node_count();
    if root >= n {
        return Err(CoreError::InvalidParameter {
            what: format!("bfs_tree root {root} out of range for a graph with {n} nodes"),
        });
    }
    if cap == 0 {
        return Err(CoreError::InvalidParameter {
            what: "bfs_tree distance cap must be ≥ 1 (the alphabet is {0, …, cap})".into(),
        });
    }
    if n > 256 {
        return Err(CoreError::InvalidParameter {
            what: format!("bfs_tree outputs pack the parent id into 8 bits; {n} nodes exceed 256"),
        });
    }
    faults.validate(n)?;
    if faults.is_faulty(root) {
        return Err(CoreError::InvalidParameter {
            what: format!(
                "bfs_tree root {root} must be a correct node, but the fault model marks it faulty"
            ),
        });
    }
    let mut builder = Protocol::builder(graph.clone(), ((cap + 1) as f64).log2())
        .name(format!("bfs-tree(n={n}, root={root}, cap={cap})"));
    for node in 0..n {
        if node == root {
            builder = builder.reaction(
                node,
                FnBufReaction::new(
                    vec![0u64; graph.out_degree(node)],
                    move |_, _incoming: &[u64], _, out: &mut [u64]| {
                        out.fill(0);
                        0
                    },
                ),
            );
        } else {
            let nbrs = graph.in_neighbors(node);
            builder = builder.reaction(
                node,
                FnBufReaction::new(
                    vec![0u64; graph.out_degree(node)],
                    move |_, incoming: &[u64], _, out: &mut [u64]| {
                        // Min incoming distance; ties and slot order both
                        // resolve toward the smallest in-neighbor id, so
                        // the parent choice is schedule-independent.
                        let (mut best, mut parent) = (u64::MAX, 0u64);
                        for (slot, &d) in incoming.iter().enumerate() {
                            let p = nbrs[slot] as u64;
                            if d < best || (d == best && p < parent) {
                                best = d;
                                parent = p;
                            }
                        }
                        let d = best.saturating_add(1).min(cap);
                        out.fill(d);
                        (d << 8) | parent
                    },
                ),
            );
        }
    }
    builder.build()
}

/// The distance alphabet `{0, …, cap}` — the closed label set to hand the
/// exact verifier.
pub fn bfs_alphabet(cap: u64) -> Vec<u64> {
    (0..=cap).collect()
}

/// True BFS distances from `root`, clamped to `cap` — the labeling the
/// fault-free protocol stabilizes to (every edge out of `u` carries
/// `min(dist(u), cap)`).
///
/// # Panics
///
/// Panics if some node is unreachable from `root` (the builder already
/// requires strong connectivity).
pub fn expected_distances(graph: &DiGraph, root: NodeId, cap: u64) -> Vec<u64> {
    graph
        .bfs_distances(root)
        .into_iter()
        .map(|d| (d.expect("strongly connected graphs reach every node") as u64).min(cap))
        .collect()
}

/// Whether `labeling` (one label per edge, in edge-id order) is the BFS
/// fixpoint: every edge out of `u` carries `u`'s clamped BFS distance.
pub fn is_bfs_labeling(graph: &DiGraph, root: NodeId, cap: u64, labeling: &[u64]) -> bool {
    let dist = expected_distances(graph, root, cap);
    graph
        .edges()
        .all(|(id, u, _)| labeling.get(id).copied() == Some(dist[u]))
}

/// Decodes a node's output into `(distance, parent)`.
pub fn decode_output(y: Output) -> (u64, NodeId) {
    (y >> 8, (y & 0xff) as NodeId)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stateless_core::convergence::{classify_sync, SyncOutcome};

    fn converged_outputs(graph: DiGraph, root: NodeId, cap: u64, initial: Vec<u64>) -> Vec<Output> {
        let n = graph.node_count();
        let p = bfs_tree_protocol(graph.clone(), root, cap, FaultModel::none()).unwrap();
        let outcome = classify_sync(&p, &vec![0; n], initial, 10_000).unwrap();
        match outcome {
            SyncOutcome::LabelStable { labeling, .. } => {
                assert!(is_bfs_labeling(&graph, root, cap, &labeling));
                let mut sim = Simulation::new(&p, &vec![0; n], labeling).unwrap();
                sim.run(&mut Synchronous, 2);
                sim.outputs().to_vec()
            }
            other => panic!("expected label stabilization, got {other:?}"),
        }
    }

    #[test]
    fn stabilizes_to_bfs_distances_on_rings_paths_and_stars() {
        for (graph, root) in [
            (topology::bidirectional_ring(5), 0),
            (topology::bidirectional_path(4), 1),
            (topology::star(5), 0),
        ] {
            let cap = 4;
            let e = graph.edge_count();
            for initial in [vec![0u64; e], vec![cap; e], vec![3; e]] {
                converged_outputs(graph.clone(), root, cap, initial);
            }
        }
    }

    #[test]
    fn outputs_decode_to_a_bfs_spanning_tree() {
        // Path 0–1–2–3 rooted at 0: parents are the left neighbors.
        let ys = converged_outputs(topology::bidirectional_path(4), 0, 4, vec![2; 6]);
        assert_eq!(decode_output(ys[0]), (0, 0));
        assert_eq!(decode_output(ys[1]), (1, 0));
        assert_eq!(decode_output(ys[2]), (2, 1));
        assert_eq!(decode_output(ys[3]), (3, 2));
    }

    #[test]
    fn ring_ties_break_toward_the_smaller_neighbor() {
        // biring(4) rooted at 0: node 2 sees distance 1 from both 1 and
        // 3; the tie must resolve to parent 1.
        let ys = converged_outputs(topology::bidirectional_ring(4), 0, 3, vec![3; 8]);
        assert_eq!(decode_output(ys[2]), (2, 1));
    }

    #[test]
    fn distances_clamp_at_the_cap() {
        let graph = topology::bidirectional_path(5);
        let dist = expected_distances(&graph, 0, 2);
        assert_eq!(dist, vec![0, 1, 2, 2, 2]);
        converged_outputs(graph, 0, 2, vec![2; 8]);
    }

    #[test]
    fn bad_parameters_are_rejected_up_front() {
        let g = topology::bidirectional_ring(4);
        assert!(matches!(
            bfs_tree_protocol(g.clone(), 7, 2, FaultModel::none()),
            Err(CoreError::InvalidParameter { .. })
        ));
        assert!(matches!(
            bfs_tree_protocol(g.clone(), 0, 0, FaultModel::none()),
            Err(CoreError::InvalidParameter { .. })
        ));
        let faulty_root = FaultModel::byzantine(&[0]).unwrap();
        let err = bfs_tree_protocol(g.clone(), 0, 2, faulty_root).unwrap_err();
        assert!(err.to_string().contains("root"), "{err}");
        let oob = FaultModel::byzantine(&[9]).unwrap();
        assert!(matches!(
            bfs_tree_protocol(g, 0, 2, oob),
            Err(CoreError::InvalidParameter { .. })
        ));
    }
}
