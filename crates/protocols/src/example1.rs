//! Example 1 (Section 3): tightness of Theorem 3.1.
//!
//! A protocol on the clique `Kₙ` with label space `{0, 1}` whose reaction
//! is "send 1s unless every incoming edge is 0". It has exactly two stable
//! labelings (all-0 and all-1), so by Theorem 3.1 it is **not** label
//! (n−1)-stabilizing — and [`oscillation_schedule`] exhibits the witness
//! schedule. The paper shows it **is** label r-stabilizing for every
//! `r < n−1`, which `stabilization-verify` confirms exhaustively for small
//! `n` (experiment E4).

use stateless_core::prelude::*;
use stateless_core::reaction::FnBufReaction;

/// Builds the Example 1 protocol on `Kₙ`.
///
/// Each node emits the same bit on all its outgoing edges; its output is
/// that bit.
///
/// # Panics
///
/// Panics if `n < 3` (the example needs at least three nodes for the
/// fairness gap to exist).
pub fn example1_protocol(n: usize) -> Protocol<bool> {
    assert!(n >= 3, "Example 1 needs n ≥ 3");
    let deg = n - 1;
    Protocol::builder(topology::clique(n), 1.0)
        .name(format!("example1(K{n})"))
        .uniform_reaction(FnBufReaction::new(
            vec![false; deg],
            move |_, incoming: &[bool], _, out: &mut [bool]| {
                let bit = incoming.iter().any(|&b| b);
                out.fill(bit);
                u64::from(bit)
            },
        ))
        .build()
        .expect("all clique nodes have reactions")
}

/// The all-`bit` labeling of `Kₙ` — the protocol's two stable labelings
/// are `uniform_labeling(n, false)` and `uniform_labeling(n, true)`.
pub fn uniform_labeling(n: usize, bit: bool) -> Vec<bool> {
    vec![bit; n * (n - 1)]
}

/// The initial labeling from which [`oscillation_schedule`] oscillates:
/// exactly node 0 is "hot" (its outgoing edges are all 1).
pub fn hot_node_labeling(n: usize, hot: NodeId) -> Vec<bool> {
    let graph = topology::clique(n);
    let mut labeling = vec![false; graph.edge_count()];
    for &e in graph.out_edges(hot) {
        labeling[e] = true;
    }
    labeling
}

/// The (n−1)-fair schedule under which the protocol oscillates forever
/// from [`hot_node_labeling`]`(n, 0)`: at step `t` activate the pair
/// `{t mod n, (t+1) mod n}`.
///
/// Each node `i` is activated at consecutive steps `i, i+1 (mod n)` of the
/// period-`n` script, so its largest activation gap is exactly `n − 1` —
/// the schedule is (n−1)-fair and no fairer, matching the Theorem 3.1
/// threshold exactly.
pub fn oscillation_schedule(n: usize) -> Scripted {
    let steps = (0..n).map(|t| vec![t, (t + 1) % n]).collect();
    Scripted::cycle(steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stateless_core::engine::Simulation;
    use stateless_core::schedule::{FairnessMonitor, Schedule, Synchronous};

    #[test]
    fn both_uniform_labelings_are_stable() {
        for n in [3usize, 4, 5, 6] {
            let p = example1_protocol(n);
            let inputs = vec![0; n];
            assert!(p
                .is_stable_labeling(&uniform_labeling(n, false), &inputs)
                .unwrap());
            assert!(p
                .is_stable_labeling(&uniform_labeling(n, true), &inputs)
                .unwrap());
            assert!(!p
                .is_stable_labeling(&hot_node_labeling(n, 0), &inputs)
                .unwrap());
        }
    }

    #[test]
    fn oscillation_schedule_is_exactly_n_minus_1_fair() {
        for n in [3usize, 5, 8] {
            let sched = oscillation_schedule(n);
            assert_eq!(sched.fairness(n), Some(n - 1));
        }
    }

    #[test]
    fn oscillates_forever_under_the_adversarial_schedule() {
        for n in [3usize, 4, 6, 16] {
            let p = example1_protocol(n);
            let mut sim = Simulation::new(&p, &vec![0; n], hot_node_labeling(n, 0)).unwrap();
            let mut sched = FairnessMonitor::new(oscillation_schedule(n));
            let mut active = Vec::new();
            for t in 0..(10 * n) {
                sched.activations_into(sim.time() + 1, n, &mut active);
                sim.step_with(&active);
                // Invariant of the oscillation: exactly one hot node, and it
                // is node (t+1) mod n.
                let hot = hot_node_labeling(n, (t + 1) % n);
                assert_eq!(sim.labeling(), &hot[..], "n={n} t={t}");
            }
            assert!(sched.worst_gap() < n, "schedule stayed (n−1)-fair");
        }
    }

    #[test]
    fn oscillation_is_a_machine_checked_verdict() {
        // The paper's Example 1 witness, classified rather than replayed:
        // cycle detection in the (labeling, schedule-phase) product proves
        // the run under the (n−1)-fair script recurs forever. The hot
        // token takes n steps to return to node 0 while the script phase
        // also has period n, so the product cycle has period exactly n
        // and starts immediately.
        use stateless_core::convergence::{classify_scheduled, CycleDetector, SyncOutcome};
        for n in [3usize, 4, 6, 10] {
            let p = example1_protocol(n);
            let sched = oscillation_schedule(n);
            for detector in [CycleDetector::ExactArena, CycleDetector::Brent] {
                let outcome = classify_scheduled(
                    &p,
                    &vec![0; n],
                    hot_node_labeling(n, 0),
                    &sched,
                    10_000,
                    detector,
                )
                .unwrap();
                let SyncOutcome::Oscillating {
                    cycle_start,
                    period,
                    outputs_stable,
                } = outcome
                else {
                    panic!("Example 1 must oscillate (n={n}, {detector:?}), got {outcome:?}");
                };
                assert_eq!(cycle_start, 0, "n={n}");
                assert_eq!(period, n as u64, "n={n}");
                assert!(outputs_stable.is_none(), "the hot output circulates");
            }
        }
        // From a stable labeling the same adversary is harmless — and the
        // classifier says so exactly.
        let n = 4;
        let p = example1_protocol(n);
        let outcome = classify_scheduled(
            &p,
            &[0; 4],
            uniform_labeling(n, true),
            &oscillation_schedule(n),
            10_000,
            CycleDetector::ExactArena,
        )
        .unwrap();
        assert!(matches!(outcome, SyncOutcome::LabelStable { round: 0, .. }));
    }

    #[test]
    fn synchronous_run_converges_quickly() {
        // Under the 1-fair schedule the hot labeling spreads: two or more
        // nodes become hot after one step and the system locks at all-1.
        let n = 5;
        let p = example1_protocol(n);
        let mut sim = Simulation::new(&p, &[0; 5], hot_node_labeling(n, 0)).unwrap();
        sim.run_until_label_stable(&mut Synchronous, 50).unwrap();
        assert_eq!(sim.labeling(), &uniform_labeling(n, true)[..]);
    }

    #[test]
    fn theorem_3_1_tightness_verified_exactly_for_k3() {
        use stabilization_verify::{verify_label_stabilization, Limits, Verdict};
        let n = 3;
        let p = example1_protocol(n);
        // Two stable labelings exist, so Theorem 3.1 forbids label
        // (n−1)-stabilization: the checker must find an oscillation at
        // r = n−1 = 2 …
        let v =
            verify_label_stabilization(&p, &[0; 3], &[false, true], 2, Limits::default()).unwrap();
        assert!(
            matches!(v, Verdict::NotStabilizing(_)),
            "r = n−1 oscillates"
        );
        // … and Example 1 shows tightness: at r = n−2 = 1 every fair run
        // converges.
        let v =
            verify_label_stabilization(&p, &[0; 3], &[false, true], 1, Limits::default()).unwrap();
        assert!(v.is_stabilizing(), "r < n−1 stabilizes");
    }

    #[test]
    fn tightness_survives_the_symmetry_quotient() {
        // Example 1 is fully node-symmetric (uniform inputs, one
        // commutative OR reaction on the vertex-transitive clique), so
        // the verifier's derived automorphism group is nontrivial and
        // `SymmetryMode::Auto` explores a strictly smaller quotient —
        // with the bit-identical Theorem 3.1 verdicts on both sides of
        // the r = n−1 threshold.
        use stabilization_verify::{
            verify_label_stabilization_with_stats, Limits, SymmetryMode, Verdict,
        };
        let n = 3;
        let p = example1_protocol(n);
        let quotient = |r: u8, symmetry: SymmetryMode| {
            verify_label_stabilization_with_stats(
                &p,
                &[0; 3],
                &[false, true],
                r,
                Limits {
                    symmetry,
                    ..Limits::default()
                },
            )
            .unwrap()
        };
        for (r, stabilizing) in [(1u8, true), (2, false)] {
            let (full_v, full) = quotient(r, SymmetryMode::Off);
            let (quot_v, quot) = quotient(r, SymmetryMode::Auto);
            assert_eq!(full_v.is_stabilizing(), stabilizing, "r={r}");
            assert_eq!(quot_v.is_stabilizing(), stabilizing, "r={r} quotient");
            assert!(
                quot.states * 2 <= full.states,
                "r={r}: expected ≥2× fewer states, got {} vs {}",
                full.states,
                quot.states
            );
            if let Verdict::NotStabilizing(w) = quot_v {
                // The de-canonicalized witness replays on the real,
                // unquotiented system: its cyclic schedule must change
                // labels forever (checked by one full lap).
                let mut sim = Simulation::new(&p, &[0; 3], w.labeling.clone()).unwrap();
                let before = sim.labeling().to_vec();
                let mut changed = false;
                for step in w.schedule.iter().chain(w.schedule.iter()) {
                    sim.step_with(step);
                    changed |= sim.labeling() != &before[..];
                }
                assert!(changed, "witness oscillates on the concrete system");
            }
        }
    }

    #[test]
    fn all_zero_start_stays_zero() {
        let n = 4;
        let p = example1_protocol(n);
        let mut sim = Simulation::new(&p, &[0; 4], uniform_labeling(n, false)).unwrap();
        sim.run(&mut Synchronous, 10);
        assert_eq!(sim.labeling(), &uniform_labeling(n, false)[..]);
        assert_eq!(sim.outputs(), &[0; 4]);
    }
}
