//! # stateless-protocols
//!
//! Every protocol construction in "Stateless Computation", as runnable
//! code:
//!
//! | Paper anchor | Module | What it builds |
//! |---|---|---|
//! | Example 1 (§3) | [`example1`] | The clique protocol with two stable labelings; oscillates under an (n−1)-fair schedule, converges under anything fairer |
//! | Proposition 2.3 | [`generic`] | The two-spanning-tree protocol computing any `f` with `Lₙ = n+1`, `Rₙ ≤ 2n` |
//! | Lemma C.2(2) | [`worst_case`] | The unidirectional-ring protocol with `Rₙ = n(|Σ|−1)` |
//! | Theorem 5.2 | [`tm_ring`] | The logspace-TM simulation on the unidirectional ring |
//! | Claims 5.5 / 5.6 | [`counter`] | The stateless 2-counter and D-counter on odd bidirectional rings |
//! | Theorem 5.4 | [`circuit_ring`] | The Boolean-circuit compiler onto the bidirectional ring |
//! | Theorem 4.1 / B.4 / B.7 | [`snake_reduction`] | The snake-in-the-box clique protocols reducing EQ and DISJ to stabilization verification |
//! | Theorem B.11 | [`string_oscillation`] | The String-Oscillation problem and its stateful-protocol reduction |
//! | Theorem B.14 | [`metanode`] | The stateful → stateless metanode transformation `Kₙ → K₃ₙ` |
//! | §6 (fault tolerance), cf. arXiv:2502.17035 | [`bfs_tree`] | The self-stabilizing BFS distance/parent spanning-tree rule on rooted topologies, verified fault-free and under Byzantine placements |
//!
//! The branching-program compilations of Theorem 5.2 live in the
//! `branching-program` crate ([`branching_program::convert`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bfs_tree;
pub mod circuit_ring;
pub mod counter;
pub mod example1;
pub mod generic;
pub mod metanode;
pub mod snake_reduction;
pub mod stateful;
pub mod string_oscillation;
pub mod tm_ring;
pub mod worst_case;
