//! Theorem 5.4 (`P/poly ⊆ ÕSb_log`): compiling a Boolean circuit onto the
//! bidirectional ring.
//!
//! The ring has `N = 2|C| + n (+ helpers to make N odd)` nodes: the first
//! `n` hold the circuit inputs; each gate `gⱼ` owns a *compute node* and a
//! *memory node*. The compiled protocol layers four mechanisms:
//!
//! 1. the **D-counter** of Claim 5.6 ([`crate::counter`]) gives every node
//!    a synchronized clock value `c(t) = (t + φ) mod D`;
//! 2. the clock is partitioned into one **interval per gate** (in
//!    topological order): during gate `j`'s interval its input providers
//!    copy their values into the `i1`/`i2` fields at scheduled ticks (twice
//!    each, for the memory handshake), the fields ride clockwise, and the
//!    compute node applies the gate operation when they arrive;
//! 3. each computed bit is parked in the **memory gadget**: the compute
//!    and memory nodes bounce the `v` field between each other forever
//!    (writing the fresh value at two consecutive ticks makes the bounce a
//!    fixed point — the paper's "two consecutive time steps" trick);
//! 4. the output gate's memory node continuously publishes its bit into
//!    the `o` field, which relays clockwise; every node outputs `o`.
//!
//! Self-stabilization is inherited from the counter: whatever garbage the
//! initial labeling contains, once the clock synchronizes (`O(N)` rounds)
//! the next full clock cycle recomputes every gate from the true inputs in
//! topological order, and every cycle after that rewrites the same values.
//!
//! **Reproduction note (DESIGN.md):** interval offsets are re-derived with
//! `+3` slack per gate instead of the paper's `+1`; same `O(Σdⱼ)` clock
//! modulus, `O(N + D)` rounds and `O(log D)` label bits.

use std::collections::HashMap;
use std::sync::Arc;

use boolean_circuit::{Circuit, GateOp, GateSource};
use stateless_core::label::bits_for_cardinality;
use stateless_core::prelude::*;
use stateless_core::reaction::FnBufReaction;

use crate::counter::{CounterCore, CounterFields};

/// The compiled label: counter fields plus the four data bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct CircuitLabel {
    /// The Claim 5.6 counter fields.
    pub ctr: CounterFields,
    /// First gate-input bit in transit.
    pub i1: bool,
    /// Second gate-input bit in transit.
    pub i2: bool,
    /// The memory-gadget bit.
    pub v: bool,
    /// The published circuit output.
    pub o: bool,
}

/// Where a gate role reads its bit at compute time.
#[derive(Debug, Clone, Copy)]
enum RoleSrc {
    /// From the relayed `i1`/`i2` field.
    Field,
    /// A constant folded at compile time.
    Const(bool),
}

#[derive(Debug, Clone)]
struct GateTask {
    ticks: [u32; 2],
    op: GateOp,
    i1: RoleSrc,
    i2: RoleSrc,
}

#[derive(Debug, Clone, Copy)]
enum OWriter {
    /// A memory node publishes its remembered bit.
    Memory(NodeId),
    /// An input node publishes its input.
    Input(NodeId),
    /// Node 0 publishes a constant.
    Constant(bool),
}

struct Plan {
    core: CounterCore,
    n_inputs: usize,
    /// Per node: tick → (write i1?, write i2?).
    writes: Vec<HashMap<u32, (bool, bool)>>,
    /// Per node: the gate computed there, if any.
    compute: Vec<Option<GateTask>>,
    /// Which nodes are compute nodes (v echoes from clockwise) vs memory
    /// nodes (v echoes from counter-clockwise).
    is_compute: Vec<bool>,
    o_writer: OWriter,
}

/// A circuit compiled onto the bidirectional ring.
pub struct CompiledCircuit {
    protocol: Protocol<CircuitLabel>,
    ring_size: usize,
    modulus: u32,
    rounds_bound: u64,
}

impl std::fmt::Debug for CompiledCircuit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompiledCircuit")
            .field("ring_size", &self.ring_size)
            .field("modulus", &self.modulus)
            .field("rounds_bound", &self.rounds_bound)
            .finish()
    }
}

impl CompiledCircuit {
    /// The compiled protocol.
    pub fn protocol(&self) -> &Protocol<CircuitLabel> {
        &self.protocol
    }

    /// Ring size `N` (the paper's `2|C| + n`, padded to an odd count).
    pub fn ring_size(&self) -> usize {
        self.ring_size
    }

    /// The clock modulus `D`.
    pub fn modulus(&self) -> u32 {
        self.modulus
    }

    /// A safe synchronous round budget for every node's output to equal
    /// the circuit value from any initial labeling — the paper's
    /// `O(N + D)` shape.
    pub fn rounds_bound(&self) -> u64 {
        self.rounds_bound
    }

    /// Extends the circuit inputs `x` with zeros for the helper nodes,
    /// producing the protocol's input vector.
    pub fn ring_inputs(&self, x: &[bool]) -> Vec<Input> {
        let mut v: Vec<Input> = x.iter().map(|&b| u64::from(b)).collect();
        v.resize(self.ring_size, 0);
        v
    }
}

/// Compiles `circuit` into a stateless protocol on the bidirectional ring
/// (Theorem 5.4's construction).
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] if the circuit has no inputs.
pub fn compile_circuit(circuit: &Circuit) -> Result<CompiledCircuit, CoreError> {
    let n = circuit.input_count();
    if n == 0 {
        return Err(CoreError::InvalidParameter {
            what: "circuit must have at least one input".into(),
        });
    }
    let size = circuit.size();
    let gnode = |j: usize| n + 2 * j;
    let mnode = |j: usize| n + 2 * j + 1;
    let mut ring_size = (n + 2 * size).max(3);
    if ring_size.is_multiple_of(2) {
        ring_size += 1; // helper relay node to make the ring odd
    }

    // Resolve each gate's providers and lay out the clock intervals.
    let provider = |src: GateSource| -> Option<NodeId> {
        match src {
            GateSource::Input(i) => Some(i),
            GateSource::Gate(g) => Some(mnode(g)),
            GateSource::Const(_) => None,
        }
    };
    let mut writes: Vec<HashMap<u32, (bool, bool)>> = vec![HashMap::new(); ring_size];
    let mut compute: Vec<Option<GateTask>> = vec![None; ring_size];
    let mut is_compute = vec![false; ring_size];
    let mut t_start: u64 = 0;
    for (j, gate) in circuit.gates().iter().enumerate() {
        let g = gnode(j);
        is_compute[g] = true;
        let pa = provider(gate.a);
        let pb = provider(gate.b);
        // Distances are plain differences: providers always precede the
        // compute node, so data never wraps past node 0.
        let (d1, i1_src, i2_src) = match (pa, pb) {
            (Some(a), Some(b)) => {
                let (da, db) = ((g - a) as u64, (g - b) as u64);
                // The farther provider feeds i1 so its bits arrive together
                // with i2's (all our gate ops are commutative).
                let (far, far_d, near, near_d) = if da >= db {
                    (a, da, b, db)
                } else {
                    (b, db, a, da)
                };
                record_write(
                    &mut writes[far],
                    t_start,
                    true,
                    far == near && far_d == near_d,
                );
                let near_tick = t_start + (far_d - near_d);
                if far != near || far_d != near_d {
                    record_write(&mut writes[near], near_tick, false, true);
                }
                (far_d, RoleSrc::Field, RoleSrc::Field)
            }
            (Some(a), None) => {
                let da = (g - a) as u64;
                record_write(&mut writes[a], t_start, true, false);
                (da, RoleSrc::Field, const_of(gate.b))
            }
            (None, Some(b)) => {
                let db = (g - b) as u64;
                record_write(&mut writes[b], t_start, false, true);
                (db, const_of(gate.a), RoleSrc::Field)
            }
            (None, None) => (0, const_of(gate.a), const_of(gate.b)),
        };
        let c1 = t_start + d1;
        compute[g] = Some(GateTask {
            ticks: [c1 as u32, (c1 + 1) as u32],
            op: gate.op,
            i1: i1_src,
            i2: i2_src,
        });
        t_start += d1 + 3;
    }
    let modulus = (t_start.max(2)) as u32;

    let o_writer = match circuit.output() {
        GateSource::Gate(g) => OWriter::Memory(mnode(g)),
        GateSource::Input(i) => OWriter::Input(i),
        GateSource::Const(b) => OWriter::Constant(b),
    };

    let core = CounterCore::new(ring_size, modulus)?;
    let label_bits = 2.0 + 2.0 * bits_for_cardinality(u128::from(modulus)) + 4.0;
    let rounds_bound = 4 * ring_size as u64 + 8 + 2 * u64::from(modulus) + ring_size as u64 + 8;

    let plan = Arc::new(Plan {
        core,
        n_inputs: n,
        writes,
        compute,
        is_compute,
        o_writer,
    });

    let mut builder = Protocol::builder(topology::bidirectional_ring(ring_size), label_bits).name(
        format!("circuit-on-ring(N={ring_size}, |C|={size}, D={modulus})"),
    );
    for node in 0..ring_size {
        let plan = Arc::clone(&plan);
        builder = builder.reaction(
            node,
            FnBufReaction::new(
                vec![CircuitLabel::default(); 2],
                move |j: NodeId,
                      incoming: &[CircuitLabel],
                      input,
                      outgoing: &mut [CircuitLabel]| {
                    let (ccw, cw) = (incoming[0], incoming[1]);
                    let ctr = plan.core.react(j, ccw.ctr, cw.ctr);
                    let clock = plan.core.count(j, ccw.ctr, cw.ctr);

                    // Data defaults: clockwise relay; v echoes within the pair.
                    let mut i1 = ccw.i1;
                    let mut i2 = ccw.i2;
                    let mut v = if plan.is_compute[j] { cw.v } else { ccw.v };
                    let mut o = ccw.o;

                    // Scheduled provider writes.
                    if let Some(&(w1, w2)) = plan.writes[j].get(&clock) {
                        let value = if j < plan.n_inputs { input == 1 } else { ccw.v };
                        if w1 {
                            i1 = value;
                        }
                        if w2 {
                            i2 = value;
                        }
                    }
                    // Scheduled gate computation.
                    if let Some(task) = &plan.compute[j] {
                        if task.ticks.contains(&clock) {
                            let a = match task.i1 {
                                RoleSrc::Field => ccw.i1,
                                RoleSrc::Const(c) => c,
                            };
                            let b = match task.i2 {
                                RoleSrc::Field => ccw.i2,
                                RoleSrc::Const(c) => c,
                            };
                            v = task.op.apply(a, b);
                        }
                    }
                    // Output publication.
                    match plan.o_writer {
                        OWriter::Memory(m) if m == j => o = ccw.v,
                        OWriter::Input(i) if i == j => o = input == 1,
                        OWriter::Constant(c) if j == 0 => o = c,
                        _ => {}
                    }

                    outgoing.fill(CircuitLabel { ctr, i1, i2, v, o });
                    u64::from(o)
                },
            ),
        );
    }
    let protocol = builder.build().expect("all ring nodes have reactions");
    Ok(CompiledCircuit {
        protocol,
        ring_size,
        modulus,
        rounds_bound,
    })
}

fn record_write(map: &mut HashMap<u32, (bool, bool)>, tick: u64, i1: bool, i2: bool) {
    for t in [tick, tick + 1] {
        let entry = map.entry(t as u32).or_insert((false, false));
        entry.0 |= i1;
        entry.1 |= i2;
    }
}

fn const_of(src: GateSource) -> RoleSrc {
    match src {
        GateSource::Const(c) => RoleSrc::Const(c),
        _ => unreachable!("caller checked the source is a constant"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use boolean_circuit::library;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use stateless_core::engine::Simulation;
    use stateless_core::schedule::Synchronous;

    fn random_label<R: rand::RngExt>(rng: &mut R, d: u32) -> CircuitLabel {
        CircuitLabel {
            ctr: CounterFields {
                b1: rng.random_bool(0.5),
                b2: rng.random_bool(0.5),
                z: rng.random_range(0..2 * d),
                g: rng.random_range(0..2 * d),
            },
            i1: rng.random_bool(0.5),
            i2: rng.random_bool(0.5),
            v: rng.random_bool(0.5),
            o: rng.random_bool(0.5),
        }
    }

    fn check_all_inputs(circuit: &Circuit, seed: u64) {
        let compiled = compile_circuit(circuit).unwrap();
        let p = compiled.protocol();
        let n = circuit.input_count();
        let mut rng = StdRng::seed_from_u64(seed);
        for bits in 0..1u32 << n {
            let x: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
            let expected = u64::from(circuit.eval(&x).unwrap());
            let initial: Vec<CircuitLabel> = (0..p.edge_count())
                .map(|_| random_label(&mut rng, compiled.modulus()))
                .collect();
            let mut sim = Simulation::new(p, &compiled.ring_inputs(&x), initial).unwrap();
            sim.run(&mut Synchronous, compiled.rounds_bound());
            assert_eq!(
                sim.outputs(),
                &vec![expected; compiled.ring_size()][..],
                "x = {x:?} (N={}, D={})",
                compiled.ring_size(),
                compiled.modulus()
            );
        }
    }

    #[test]
    fn compiles_parity_3() {
        check_all_inputs(&library::parity(3), 1);
    }

    #[test]
    fn compiles_equality_4() {
        check_all_inputs(&library::equality(4), 2);
    }

    #[test]
    fn compiles_majority_3() {
        check_all_inputs(&library::majority(3), 3);
    }

    #[test]
    fn compiles_gates_with_constants_and_nots() {
        // NOT(x0) OR (x1 AND true)
        let mut b = Circuit::builder(2);
        let na = b.not(GateSource::Input(0)).unwrap();
        let and = b
            .and(GateSource::Input(1), GateSource::Const(true))
            .unwrap();
        let or = b.or(na, and).unwrap();
        let c = b.finish(or).unwrap();
        check_all_inputs(&c, 4);
    }

    #[test]
    fn compiles_passthrough_and_constant_outputs() {
        // Output is an input directly.
        let c = Circuit::builder(2).finish(GateSource::Input(1)).unwrap();
        check_all_inputs(&c, 5);
        // Output is a constant.
        let c = Circuit::builder(2).finish(GateSource::Const(true)).unwrap();
        check_all_inputs(&c, 6);
    }

    #[test]
    fn compiles_random_circuits() {
        let mut rng = StdRng::seed_from_u64(123);
        for trial in 0..4 {
            let c = boolean_circuit::synthesis::random_circuit(3, 6, &mut rng);
            check_all_inputs(&c, 100 + trial);
        }
    }

    #[test]
    fn ring_size_is_odd_and_matches_paper_shape() {
        let c = library::parity(4); // 3 gates
        let compiled = compile_circuit(&c).unwrap();
        // N = 2|C| + n = 10 → padded to 11.
        assert_eq!(compiled.ring_size(), 11);
        assert_eq!(compiled.ring_size() % 2, 1);
    }

    #[test]
    fn label_bits_are_logarithmic_in_d() {
        let c = library::equality(6);
        let compiled = compile_circuit(&c).unwrap();
        let d = f64::from(compiled.modulus());
        assert!(compiled.protocol().label_bits() <= 2.0 + 2.0 * (d.log2().ceil() + 1.0) + 4.0);
    }
}
